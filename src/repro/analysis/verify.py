"""Static verification passes over captured OOC programs and task DAGs.

The passes consume the *program protocol* — ``config`` / ``ops`` /
``mem_events`` / ``stats`` / ``label`` / ``volume_hint`` — and therefore
accept two producers interchangeably: a
:class:`~repro.analysis.capture.CapturedProgram` (flat op stream recorded
by the capture executor) and a first-class
:class:`~repro.runtime.task.TaskGraph` emitted by the DAG runtime's
:class:`~repro.runtime.builder.GraphBuilder` — no capture pass in
between; the graph's derived dataflow edges *are* the happens-before
relation the hazard pass checks. The passes prove (or refute) the
properties a plan must have *before* it is worth running:

* :func:`check_hazards` — happens-before hazard analysis: two ops touching
  overlapping device regions, at least one writing, with no stream-FIFO or
  event path between them, constitute a race under some legal schedule.
  Shares its core (:func:`repro.sim.race.find_hazards`) and its overlap
  predicate (:mod:`repro.util.regions`) with the dynamic trace detector.
* :func:`check_lifetimes` — allocator lifetime proofs: leaks (allocations
  never freed), double frees, and use-after-free (an op whose access
  window opens after its buffer's free), each naming the offending op or
  buffer.
* :func:`check_memory` — exact peak device memory: replay the alloc/free
  event log and compare the high-water mark against the budget. This is
  the number :mod:`repro.serve` admission charges in place of its plan
  heuristic.
* :func:`check_transfer_volume` — compare captured H2D/D2H volumes against
  the §3.2 closed forms (blocking Θ(k·mn), recursive Θ(log k·mn)). The
  models are *no-reuse worst cases*, so a healthy engine stays below
  ``VOLUME_SLACK`` times the model; a captured volume above that bound
  means the engine regressed past the paper's accounting. QR engines must
  additionally load every input element at least once (``m·n`` words).
* :func:`check_redundant_transfers` — dead-transfer detection: an H2D that
  re-moves the same host region into the same device region with no
  intervening write to either side is provably a no-op.

:func:`verify_program` runs every applicable pass and returns an
:class:`AnalysisReport`; :func:`assert_plan_ok` raises a typed
:class:`~repro.errors.PlanViolation` carrying the report when any finding
survives.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.capture import CapturedProgram, MemEvent
from repro.errors import PlanViolation
from repro.models.movement import (
    blocking_d2h_words,
    blocking_h2d_words,
    recursive_d2h_words,
    recursive_h2d_words,
)
from repro.sim.ops import OpKind, SimOp
from repro.sim.race import find_hazards
from repro.util.regions import rects_overlap

#: Documented constant factor on the §3.2 closed forms. The models count
#: the no-reuse worst case; the engines' reuse optimizations (§4.2) keep
#: measured volumes *below* the model, so 1.25x is generous headroom for
#: boundary effects at small shapes while still catching a Θ-regression
#: (e.g. an extra full-matrix round trip per panel) immediately.
VOLUME_SLACK = 1.25


@dataclass(frozen=True)
class AnalysisFinding:
    """One violation a verification pass proved about a captured program."""

    rule: str        # "race" | "leak" | "double-free" | "use-after-free" |
                     # "over-capacity" | "peak-over-budget" |
                     # "volume-over-model" | "volume-under-floor" |
                     # "redundant-h2d"
    message: str
    #: Name of the offending op (or buffer, for allocation findings).
    op: str = ""

    def __str__(self) -> str:
        where = f" [{self.op}]" if self.op else ""
        return f"{self.rule}{where}: {self.message}"


@dataclass
class AnalysisReport:
    """Everything the verifier proved about one captured program."""

    label: str
    n_ops: int = 0
    #: Exact high-water mark of live device bytes over the whole program.
    peak_bytes: int = 0
    #: The budget the peak was checked against (device capacity or an
    #: admission grant).
    budget_bytes: int = 0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    findings: list[AnalysisFinding] = field(default_factory=list)
    #: Which §3.2 model applied ("blocking", "recursive", or "" if none).
    volume_model: str = ""
    #: Model-predicted H2D/D2H bytes (0 when no model applied).
    model_h2d_bytes: int = 0
    model_d2h_bytes: int = 0
    #: Passes that could not run (with the reason), e.g. a volume model
    #: whose divisibility preconditions the shape does not meet.
    skipped: list[str] = field(default_factory=list)
    #: Predicted forward-error bound from the precision pass (0.0 when the
    #: pass did not run), the tolerance it was judged against (0.0 when the
    #: pass ran structurally only), and the plan tag it walked under.
    precision_bound: float = 0.0
    precision_tolerance: float = 0.0
    precision_plan: str = ""

    @property
    def ok(self) -> bool:
        """Whether every pass came back clean."""
        return not self.findings

    def summary(self) -> str:
        """One-line verdict for logs and the CLI."""
        if self.ok:
            verdict = "clean"
        else:
            counts = Counter(f.rule for f in self.findings)
            per_rule = " ".join(
                f"{rule}={n}" for rule, n in sorted(counts.items())
            )
            verdict = f"{len(self.findings)} violation(s) [{per_rule}]"
        line = (
            f"{self.label or 'plan'}: {verdict}; {self.n_ops} ops, "
            f"peak {self.peak_bytes} B of {self.budget_bytes} B budget, "
            f"H2D {self.h2d_bytes} B, D2H {self.d2h_bytes} B"
        )
        if self.precision_plan:
            line += f", err bound {self.precision_bound:.2e}"
            if self.precision_tolerance:
                line += f" (tol {self.precision_tolerance:.1e})"
            line += f" [{self.precision_plan}]"
        return line


# -- happens-before hazards ------------------------------------------------------


def check_hazards(program: CapturedProgram) -> list[AnalysisFinding]:
    """Unordered conflicting device accesses (races under *some* schedule)."""
    return [
        AnalysisFinding(
            rule="race",
            message=(
                f"unordered conflicting accesses to device buffer "
                f"{race.buffer_handle}: {race.op_a.name!r} vs "
                f"{race.op_b.name!r}"
            ),
            op=race.op_b.name,
        )
        for race in find_hazards(program.ops)
    ]


# -- allocator lifetime proofs ----------------------------------------------------


def check_lifetimes(program: CapturedProgram) -> list[AnalysisFinding]:
    """Leaks, double frees and use-after-free, each naming its culprit."""
    findings: list[AnalysisFinding] = []
    alloc_at: dict[int, int] = {}
    freed_at: dict[int, int] = {}
    names: dict[int, str] = {}
    for ev in program.mem_events:
        names.setdefault(ev.handle, ev.name or f"handle {ev.handle}")
        if ev.kind == "alloc":
            alloc_at[ev.handle] = ev.position
        elif ev.handle in freed_at and not ev.ok:
            findings.append(
                AnalysisFinding(
                    rule="double-free",
                    message=(
                        f"device buffer {names[ev.handle]!r} freed again at "
                        f"op position {ev.position} (first freed at position "
                        f"{freed_at[ev.handle]})"
                    ),
                    op=f"free {names[ev.handle]}",
                )
            )
        elif not ev.ok:
            findings.append(
                AnalysisFinding(
                    rule="double-free",
                    message=(
                        f"free of unknown device buffer {names[ev.handle]!r} "
                        f"at op position {ev.position}"
                    ),
                    op=f"free {names[ev.handle]}",
                )
            )
        else:
            freed_at[ev.handle] = ev.position

    for handle, pos in alloc_at.items():
        if handle not in freed_at:
            findings.append(
                AnalysisFinding(
                    rule="leak",
                    message=(
                        f"device buffer {names[handle]!r} allocated at op "
                        f"position {pos} is never freed"
                    ),
                    op=names[handle],
                )
            )

    for i, op in enumerate(program.ops):
        for acc in op.tags.get("accesses", ()):
            handle = acc[0]
            free_pos = freed_at.get(handle)
            if free_pos is not None and free_pos <= i:
                findings.append(
                    AnalysisFinding(
                        rule="use-after-free",
                        message=(
                            f"op {op.name!r} (issue index {i}) accesses "
                            f"device buffer {names.get(handle, handle)!r} "
                            f"freed at op position {free_pos}"
                        ),
                        op=op.name,
                    )
                )
                break  # one report per op is enough
    return findings


# -- exact peak device memory ------------------------------------------------------


def exact_peak_bytes(program: CapturedProgram) -> int:
    """The program's exact high-water mark of live device bytes.

    Replays the memory-event log: every alloc raises the watermark by its
    size, every legal free lowers it (illegal frees — already reported by
    :func:`check_lifetimes` — change nothing). This is exact, not a
    heuristic: the engines allocate eagerly at plan boundaries, so issue
    order is the allocation order of every legal schedule.
    """
    used = peak = 0
    live: set[int] = set()
    for ev in program.mem_events:
        if ev.kind == "alloc":
            live.add(ev.handle)
            used += ev.nbytes
            peak = max(peak, used)
        elif ev.handle in live:
            live.discard(ev.handle)
            used -= ev.nbytes
    return peak


def check_memory(
    program: CapturedProgram, budget_bytes: int
) -> tuple[int, list[AnalysisFinding]]:
    """Exact peak vs *budget_bytes*; returns ``(peak, findings)``."""
    findings: list[AnalysisFinding] = []
    used = peak = 0
    live: set[int] = set()
    crossing: MemEvent | None = None
    for ev in program.mem_events:
        if ev.kind == "alloc":
            live.add(ev.handle)
            used += ev.nbytes
            if used > peak:
                peak = used
                if peak > budget_bytes and crossing is None:
                    crossing = ev
        elif ev.handle in live:
            live.discard(ev.handle)
            used -= ev.nbytes
    if crossing is not None:
        findings.append(
            AnalysisFinding(
                rule="peak-over-budget",
                message=(
                    f"exact peak {peak} device bytes exceeds the "
                    f"{budget_bytes}-byte budget (first crossed allocating "
                    f"{crossing.name!r}, {crossing.nbytes} B, at op position "
                    f"{crossing.position})"
                ),
                op=crossing.name,
            )
        )
    return peak, findings


# -- §3.2 transfer-volume accounting ----------------------------------------------


def check_transfer_volume(
    program: CapturedProgram, report: AnalysisReport
) -> list[AnalysisFinding]:
    """Captured H2D/D2H volume vs the §3.2 closed-form worst case.

    Applies the model named by ``program.volume_hint``; fills the model
    fields of *report* and appends a skip note when the shape does not
    meet the model's preconditions (``n % b != 0``, or a non-power-of-two
    panel count for the recursive form).
    """
    if program.volume_hint is None:
        report.skipped.append("volume: no closed-form model for this engine")
        return []
    model, m, n, b = program.volume_hint
    eb = program.config.element_bytes
    if n % b:
        report.skipped.append(
            f"volume: §3.2 models need n % b == 0 (n={n}, b={b})"
        )
        return []
    k = n // b
    if model == "recursive" and (k & (k - 1)):
        report.skipped.append(
            f"volume: recursive model needs a power-of-two panel count, k={k}"
        )
        return []
    if model == "blocking":
        h2d_model = blocking_h2d_words(m, n, b)
        d2h_model = blocking_d2h_words(m, n, b)
    else:
        h2d_model = recursive_h2d_words(m, n, b)
        # The paper's recursive D2H form counts only the per-level R12 and
        # update writebacks; the one-time A <- Q leaf writeback (mn words,
        # which any correct engine must perform) is omitted from its
        # accounting, so the verifier's bound restores it. Documented in
        # docs/analysis.md.
        d2h_model = recursive_d2h_words(m, n, b) + m * n
    report.volume_model = model
    report.model_h2d_bytes = int(h2d_model * eb)
    report.model_d2h_bytes = int(d2h_model * eb)

    findings: list[AnalysisFinding] = []
    for direction, captured, bound in (
        ("H2D", program.stats.h2d_bytes, h2d_model * eb),
        ("D2H", program.stats.d2h_bytes, d2h_model * eb),
    ):
        limit = VOLUME_SLACK * bound
        if captured > limit:
            findings.append(
                AnalysisFinding(
                    rule="volume-over-model",
                    message=(
                        f"{direction} volume {captured} B exceeds "
                        f"{VOLUME_SLACK} x the §3.2 {model} model "
                        f"({bound:.0f} B): the engine moves asymptotically "
                        f"more data than the paper's accounting allows"
                    ),
                    op=direction.lower(),
                )
            )
    return findings


def check_volume_floor(
    program: CapturedProgram, floor_words: int
) -> list[AnalysisFinding]:
    """Captured H2D volume must load at least *floor_words* elements."""
    eb = program.config.element_bytes
    if program.stats.h2d_bytes < floor_words * eb:
        return [
            AnalysisFinding(
                rule="volume-under-floor",
                message=(
                    f"H2D volume {program.stats.h2d_bytes} B is below the "
                    f"{floor_words * eb}-byte input floor: the capture "
                    f"cannot have loaded every input element"
                ),
                op="h2d",
            )
        ]
    return []


# -- dead / redundant transfer detection ------------------------------------------


def _writes_device_region(op: SimOp, handle: int, rect: tuple[int, int, int, int]) -> bool:
    for acc in op.tags.get("accesses", ()):
        if acc[0] != handle or not acc[5]:
            continue
        if rects_overlap((acc[1], acc[2]), (acc[3], acc[4]), rect[:2], rect[2:]):
            return True
    return False


def _writes_host_region(
    op: SimOp, matrix_id: int, rect: tuple[int, int, int, int]
) -> bool:
    if op.kind is not OpKind.COPY_D2H:
        return False
    host = op.tags.get("host_region")
    if host is None or host[0] != matrix_id:
        return False
    return rects_overlap((host[1], host[2]), (host[3], host[4]), rect[:2], rect[2:])


def check_redundant_transfers(program: CapturedProgram) -> list[AnalysisFinding]:
    """H2D copies that are provably no-ops.

    An H2D is *dead* when an earlier H2D already moved the identical host
    region into the identical device region and, in between, nothing wrote
    to either side — no D2H touched the host region and no op wrote any
    overlapping part of the device region. (Re-loading the same host tile
    into a *rotated* buffer, or after the device copy was overwritten, is
    normal pipelining and is not flagged.)
    """
    findings: list[AnalysisFinding] = []
    last_load: dict[tuple, int] = {}
    for i, op in enumerate(program.ops):
        if op.kind is not OpKind.COPY_H2D:
            continue
        host = op.tags.get("host_region")
        accesses = op.tags.get("accesses", ())
        if host is None or not accesses:
            continue
        dst = accesses[0]
        key = (host, dst[0], dst[1], dst[2], dst[3], dst[4])
        j = last_load.get(key)
        last_load[key] = i
        if j is None:
            continue
        matrix_id, rect = host[0], (host[1], host[2], host[3], host[4])
        dev_rect = (dst[1], dst[2], dst[3], dst[4])
        dirty = any(
            _writes_device_region(mid_op, dst[0], dev_rect)
            or _writes_host_region(mid_op, matrix_id, rect)
            for mid_op in program.ops[j + 1 : i]
        )
        if not dirty:
            findings.append(
                AnalysisFinding(
                    rule="redundant-h2d",
                    message=(
                        f"op {op.name!r} (issue index {i}) re-moves "
                        f"{program.ops[j].tags.get('host_label', 'a tile')} "
                        f"already resident since issue index {j} with no "
                        f"intervening host or device write"
                    ),
                    op=op.name,
                )
            )
    return findings


# -- the driver -------------------------------------------------------------------


def verify_program(
    program,
    *,
    budget_bytes: int | None = None,
    input_floor_words: int | None = None,
    tolerance: float | None = None,
    precision=None,
) -> AnalysisReport:
    """Run every applicable pass over *program* — a
    :class:`~repro.analysis.capture.CapturedProgram` or a
    :class:`~repro.runtime.task.TaskGraph` (checked directly as a DAG).

    ``budget_bytes`` defaults to the program config's usable device bytes
    (the capacity the engines planned against); serve admission passes its
    own grant. ``input_floor_words`` optionally asserts a minimum H2D
    volume (QR programs pass ``m * n``).

    The precision pass (:mod:`repro.analysis.precision`) always runs its
    structural rules and records the predicted forward-error bound in the
    report; pass ``tolerance`` to additionally judge the bound (and each
    quantization step) against it, and ``precision`` (a
    :class:`~repro.analysis.precision.PrecisionPlan`) to override the plan
    the program's config implies.
    """
    budget = (
        program.config.usable_device_bytes
        if budget_bytes is None
        else budget_bytes
    )
    report = AnalysisReport(
        label=program.label,
        n_ops=len(program.ops),
        budget_bytes=budget,
        h2d_bytes=program.stats.h2d_bytes,
        d2h_bytes=program.stats.d2h_bytes,
    )
    report.findings.extend(check_hazards(program))
    report.findings.extend(check_lifetimes(program))
    peak, memory_findings = check_memory(program, budget)
    report.peak_bytes = peak
    report.findings.extend(memory_findings)
    report.findings.extend(check_transfer_volume(program, report))
    if input_floor_words is not None:
        report.findings.extend(check_volume_floor(program, input_floor_words))
    report.findings.extend(check_redundant_transfers(program))
    # lazy import: precision.py imports AnalysisFinding from this module
    from repro.analysis.precision import check_precision

    flow, precision_findings = check_precision(
        program, plan=precision, tolerance=tolerance
    )
    report.precision_bound = flow.bound
    report.precision_tolerance = tolerance or 0.0
    report.precision_plan = flow.plan.describe()
    report.findings.extend(precision_findings)
    return report


def assert_plan_ok(report: AnalysisReport) -> AnalysisReport:
    """Raise :class:`~repro.errors.PlanViolation` unless *report* is clean."""
    if not report.ok:
        raise PlanViolation(report)
    return report
