"""Symbolic plan capture: run an OOC engine without data or clock.

:class:`CaptureExecutor` implements the full
:class:`~repro.execution.base.Executor` interface but *executes nothing*:
every alloc/free/copy/GEMM/panel/stream/event call is recorded into a
:class:`CapturedProgram` — an issue-ordered op list with the same
stream-FIFO/event dependency edges the simulator and the concurrent
numeric executor honour (built on :class:`~repro.sim.scheduler.StreamProgram`),
plus a memory-event log interleaved with the op stream.

Two properties make the capture suitable for *static* verification:

* **No clock.** Ops carry zero duration; the only order is issue order and
  the dependency DAG. Whatever the verifier proves holds for every legal
  schedule, not just the one the simulator happened to pick.
* **No faults.** The :class:`CaptureAllocator` never raises — allocations
  past capacity, double frees and frees of unknown buffers are recorded as
  events instead of aborting the capture. A buggy plan therefore yields a
  complete program for :mod:`repro.analysis.verify` to analyse, with the
  offending operation named, rather than a half-recorded one and a
  traceback.

The engines plan their tilings from ``ex.allocator.free_bytes``, so a
capture under a given device capacity replays exactly the op stream the
real run would issue under that capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.execution.base import (
    DeviceBuffer,
    DeviceView,
    Executor,
    RunStats,
    as_view,
)
from repro.host.tiled import HostRegion
from repro.sim.memory import Allocation, _handle_counter
from repro.sim.ops import EngineKind, OpKind, SimOp
from repro.sim.scheduler import (
    StreamProgram,
    copy_name,
    device_access,
    gemm_name,
    panel_name,
)
from repro.sim.stream import Event, Stream
from repro.util.validation import nonnegative_int


@dataclass(frozen=True)
class MemEvent:
    """One allocator event, positioned in the op stream.

    ``position`` is the number of ops issued before the event, so an op at
    issue index ``i`` runs after every event with ``position <= i``. The
    lifetime pass in :mod:`repro.analysis.verify` reconstructs leaks,
    double frees, use-after-free windows and the exact peak from this log.
    """

    kind: str        # "alloc" | "free"
    handle: int
    name: str
    nbytes: int
    position: int
    #: Whether the allocator considered the event legal at capture time
    #: (False: an over-capacity alloc or a free of a non-live handle).
    ok: bool = True


class CaptureAllocator:
    """Byte-counting allocator that records instead of raising.

    Mirrors the :class:`~repro.sim.memory.DeviceAllocator` surface the
    engines consume (``free_bytes`` drives their tiling plans; ``peak``
    and ``check_balanced`` exist for API compatibility) but never throws:
    misuse becomes :class:`MemEvent` records for the verifier.
    """

    def __init__(self, capacity: int, events: list[MemEvent], owner: "CaptureExecutor"):
        self.capacity = nonnegative_int(capacity, "capacity")
        self.used = 0
        self.peak = 0
        self.live: dict[int, Allocation] = {}
        self.events = events
        self._owner = owner
        self.n_allocs = 0
        self.n_frees = 0

    @property
    def free_bytes(self) -> int:
        """Bytes the engines may plan against (never negative)."""
        return max(self.capacity - self.used, 0)

    def alloc(self, nbytes: int, name: str = "") -> Allocation:
        """Record an allocation; over-capacity requests are captured as
        ``ok=False`` events instead of raising."""
        nbytes = nonnegative_int(nbytes, "nbytes")
        allocation = Allocation(next(_handle_counter), name, nbytes)
        ok = nbytes <= self.free_bytes
        self.live[allocation.handle] = allocation
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        self.n_allocs += 1
        self.events.append(
            MemEvent("alloc", allocation.handle, name, nbytes, self._owner.position, ok)
        )
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Record a free; unknown/already-freed handles are captured as
        ``ok=False`` events instead of raising."""
        live = self.live.pop(allocation.handle, None)
        if live is not None:
            self.used -= live.nbytes
            self.n_frees += 1
        self.events.append(
            MemEvent(
                "free",
                allocation.handle,
                allocation.name,
                allocation.nbytes,
                self._owner.position,
                live is not None,
            )
        )

    def check_balanced(self) -> None:
        """No-op: leaks are verifier findings, not capture-time faults."""


@dataclass
class CapturedProgram:
    """A symbolically recorded OOC run, ready for static analysis."""

    config: SystemConfig
    ops: list[SimOp] = field(default_factory=list)
    mem_events: list[MemEvent] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)
    label: str = ""
    #: Optional §3.2 transfer-volume model this program should respect:
    #: ``(model, m, n, b)`` with model ``"blocking"`` or ``"recursive"``
    #: (set by the engine capture drivers; None for GEMM-style programs
    #: with no closed-form QR bound).
    volume_hint: tuple[str, int, int, int] | None = None

    def __len__(self) -> int:
        return len(self.ops)


class CaptureExecutor(Executor):
    """Executor that records a :class:`CapturedProgram` (see module doc)."""

    def __init__(self, config: SystemConfig, label: str = ""):
        super().__init__(config)
        self._stream_program = StreamProgram()
        self.program = CapturedProgram(config=config, label=label)
        self.program.ops = self._stream_program.ops
        self.allocator = CaptureAllocator(
            config.usable_device_bytes, self.program.mem_events, self
        )
        self.program.stats = self.stats

    @property
    def position(self) -> int:
        """Number of ops issued so far (memory events anchor to this)."""
        return len(self._stream_program.ops)

    # -- memory -----------------------------------------------------------------

    def alloc(self, rows: int, cols: int, name: str = "buf") -> DeviceBuffer:
        buf = DeviceBuffer(name=name, rows=rows, cols=cols)
        nbytes = rows * cols * self.config.element_bytes
        buf.payload["allocation"] = self.allocator.alloc(nbytes, name=name)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        # Double frees are recorded (the allocator logs the second free of
        # the handle as ok=False), never raised: the verifier names them.
        self.allocator.free(buf.payload["allocation"])
        buf.freed = True

    # -- streams ------------------------------------------------------------------

    def stream(self, name: str) -> Stream:
        return self._stream_program.stream(name)

    def record_event(self, stream: Stream) -> Event:
        return self._stream_program.record_event(stream)

    def wait_event(self, stream: Stream, event: Event) -> None:
        self._stream_program.wait_event(stream, event)

    def synchronize(self) -> None:
        """No-op: a capture has no clock and nothing in flight."""

    # -- op recording ----------------------------------------------------------------

    def _record(
        self,
        name: str,
        engine: EngineKind,
        kind: OpKind,
        stream: Stream,
        *,
        nbytes: int = 0,
        flops: int = 0,
        tags: dict[str, Any] | None = None,
    ) -> SimOp:
        op = SimOp(
            name=name,
            engine=engine,
            kind=kind,
            duration=0.0,
            nbytes=nbytes,
            flops=flops,
            tags=tags or {},
        )
        self._stream_program.append(op, stream)
        return op

    @staticmethod
    def _host_tag(region: HostRegion) -> tuple[int, int, int, int, int]:
        return (
            id(region.matrix),
            region.row0,
            region.row1,
            region.col0,
            region.col1,
        )

    # -- data movement ----------------------------------------------------------------

    def h2d(self, dst: DeviceBuffer | DeviceView, src: HostRegion, stream: Stream) -> None:
        dst = as_view(dst)
        self._check_copy_shapes(dst.shape, src.shape)
        self._record(
            copy_name("h2d", src, dst),
            EngineKind.H2D,
            OpKind.COPY_H2D,
            stream,
            nbytes=src.nbytes,
            tags={
                "accesses": [device_access(dst, True)],
                "host_region": self._host_tag(src),
                "host_label": src.label(),
            },
        )
        self.stats.h2d_bytes += src.nbytes

    def d2h(self, dst: HostRegion, src: DeviceBuffer | DeviceView, stream: Stream) -> None:
        src = as_view(src)
        self._check_copy_shapes(dst.shape, src.shape)
        self._record(
            copy_name("d2h", src, dst),
            EngineKind.D2H,
            OpKind.COPY_D2H,
            stream,
            nbytes=dst.nbytes,
            tags={
                "accesses": [device_access(src, False)],
                "host_region": self._host_tag(dst),
                "host_label": dst.label(),
            },
        )
        self.stats.d2h_bytes += dst.nbytes

    def d2d(
        self, dst: DeviceBuffer | DeviceView, src: DeviceBuffer | DeviceView, stream: Stream
    ) -> None:
        dst, src = as_view(dst), as_view(src)
        self._check_copy_shapes(dst.shape, src.shape)
        nbytes = dst.rows * dst.cols * self.config.element_bytes
        self._record(
            copy_name("d2d", src, dst),
            EngineKind.COMPUTE,
            OpKind.COPY_D2D,
            stream,
            nbytes=nbytes,
            tags={
                "accesses": [device_access(src, False), device_access(dst, True)]
            },
        )
        self.stats.d2d_bytes += nbytes

    # -- compute -----------------------------------------------------------------------

    def gemm(
        self,
        c: DeviceBuffer | DeviceView,
        a: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Stream,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        trans_a: bool = False,
        trans_b: bool = False,
        tag: str = "gemm",
    ) -> None:
        c, a, b = as_view(c), as_view(a), as_view(b)
        m, n, k = self._gemm_dims(c, a, b, trans_a, trans_b)
        flops = 2 * m * n * k
        self._record(
            gemm_name(tag, m, n, k),
            EngineKind.COMPUTE,
            OpKind.GEMM,
            stream,
            flops=flops,
            tags={
                "tag": tag,
                "accesses": [
                    device_access(a, False),
                    device_access(b, False),
                    device_access(c, True),
                ],
            },
        )
        self.stats.gemm_flops += flops
        self.stats.n_gemms += 1

    def panel_qr(
        self,
        panel: DeviceBuffer | DeviceView,
        r_out: DeviceBuffer | DeviceView,
        stream: Stream,
        *,
        tag: str = "panel",
    ) -> None:
        panel, r_out = as_view(panel), as_view(r_out)
        if r_out.shape != (panel.cols, panel.cols):
            raise ExecutionError(
                f"panel_qr: R is {r_out.shape}, expected "
                f"{(panel.cols, panel.cols)}"
            )
        flops = 2 * panel.rows * panel.cols * panel.cols
        self._record(
            panel_name(tag, panel.rows, panel.cols),
            EngineKind.COMPUTE,
            OpKind.PANEL,
            stream,
            flops=flops,
            tags={
                "tag": tag,
                "accesses": [device_access(panel, True), device_access(r_out, True)],
            },
        )
        self.stats.panel_flops += flops
        self.stats.n_panels += 1

    def trsm(
        self,
        a_tri: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Stream,
        *,
        lower: bool = True,
        unit_diag: bool = False,
        trans_a: bool = False,
        tag: str = "trsm",
    ) -> None:
        a_tri, b = as_view(a_tri), as_view(b)
        if a_tri.rows != a_tri.cols or b.rows != a_tri.rows:
            raise ExecutionError(
                f"trsm: incompatible shapes {a_tri.shape} / {b.shape}"
            )
        k, n = a_tri.rows, b.cols
        flops = k * k * n
        self._record(
            panel_name(tag, k, n),
            EngineKind.COMPUTE,
            OpKind.GEMM,
            stream,
            flops=flops,
            tags={
                "tag": tag,
                "accesses": [device_access(a_tri, False), device_access(b, True)],
            },
        )
        self.stats.gemm_flops += flops
        self.stats.n_gemms += 1

    def panel_lu(
        self,
        panel: DeviceBuffer | DeviceView,
        u_out: DeviceBuffer | DeviceView,
        stream: Stream,
        *,
        tag: str = "panel-lu",
    ) -> None:
        panel, u_out = as_view(panel), as_view(u_out)
        if u_out.shape != (panel.cols, panel.cols):
            raise ExecutionError(
                f"panel_lu: U is {u_out.shape}, expected "
                f"{(panel.cols, panel.cols)}"
            )
        flops = panel.rows * panel.cols * panel.cols
        self._record(
            panel_name(tag, panel.rows, panel.cols),
            EngineKind.COMPUTE,
            OpKind.PANEL,
            stream,
            flops=flops,
            tags={
                "tag": tag,
                "accesses": [device_access(panel, True), device_access(u_out, True)],
            },
        )
        self.stats.panel_flops += flops
        self.stats.n_panels += 1

    def panel_cholesky(
        self,
        panel: DeviceBuffer | DeviceView,
        stream: Stream,
        *,
        tag: str = "panel-chol",
    ) -> None:
        panel = as_view(panel)
        if panel.rows < panel.cols:
            raise ExecutionError(
                f"panel_cholesky: panel {panel.shape} shorter than its width"
            )
        b = panel.cols
        flops = b * b * b // 3 + (panel.rows - b) * b * b
        self._record(
            panel_name(tag, panel.rows, panel.cols),
            EngineKind.COMPUTE,
            OpKind.PANEL,
            stream,
            flops=flops,
            tags={"tag": tag, "accesses": [device_access(panel, True)]},
        )
        self.stats.panel_flops += flops
        self.stats.n_panels += 1

    # -- results ------------------------------------------------------------------------

    def finish(self) -> CapturedProgram:
        """The recorded program (the capture never has work in flight)."""
        return self.program
