"""Static precision / error-flow verification of mixed-precision plans.

The paper's speedup rests on fp16 TensorCore GEMMs with fp32 accumulation
(plus the Markidis-style fp16x3/fp16x4 precision-splitting variants); the
runtime health sentinel (docs/health.md) discovers precision trouble only
*after* burning device time. This pass proves — at capture/graph time,
before execution — that a plan's worst-case rounding error fits the
caller's tolerance, by abstract interpretation over the same *program
protocol* the rest of :mod:`repro.analysis.verify` consumes (so one pass
covers :class:`~repro.analysis.capture.CapturedProgram` op streams,
:class:`~repro.runtime.task.TaskGraph` DAGs, and the dist layer's
:class:`~repro.dist.placement.DeviceProgram` slices).

Precision lattice
-----------------
Formats are ranked by decreasing unit roundoff, seeded from
:data:`repro.tc.precision.UNIT_ROUNDOFF`::

    bf16 (2^-8) < fp16 (2^-11) <= tf32 (2^-11) < fp16x3 (2^-22)
        < fp16x4 (2^-24) <= fp32 (2^-24) < fp64 (2^-53)

tf32 ranks above fp16 at equal roundoff (fp32 exponent range, no overflow
hazard) and fp32 above fp16x4 (native, not a 4-term reconstruction).

Error-flow recurrence (first-order, Higham-style; constants folded into
the documented safety slack of the derived tolerances):

* every host-resident tile starts at ``u(storage)`` (the element format
  the config stores and transfers, from ``config.element_bytes``);
* ``h2d`` joins the host region's bound into the destination buffer,
  ``d2h`` stores back adding one ``u(storage)`` rounding;
* a GEMM with inputs quantized to format *f* and a *k*-term accumulation
  in format *g* adds ``2 u(f) + k u(g)`` on top of the *joined* (max)
  operand bound — the bound is an error **level**, not a sum: summing
  operand bounds re-counts shared ancestry at every level of a
  factorization and diverges exponentially in chain depth, while the
  constant factor the join drops is folded into the recurrence
  constants. *k* is recovered per-op from the recorded flops and the
  output rect, so the pass is **length-aware**: a deep reduction chain
  costs more than a shallow one, and repeated accumulation into the same
  buffer pays one step per op (the ``beta = 1`` worst case);
* a panel factorization of *r* rows behaves like a GEMM chain of depth
  *r* in the same formats: ``+ 2 u(f) + r u(g)``.

Because CAQR reduction-tree merges are ordinary panel ops on stacked R
factors, walking a dist graph prices the tree *by its depth*: a binomial
tree accrues ``log2 P`` merge contributions on the root R chain, a flat
tree ``P - 1`` — which is exactly what makes the flat tree the negative
control (see docs/dist.md).

The bound tracked is a predicted upper bound on the **relative residual**
``|A - Q R| / |A|`` (backward-error flavoured, so it stays O(u) for
ill-conditioned inputs — orthogonality loss is the health sentinel's
runtime concern, scaling with kappa, and is *not* claimed here). The
differential suite in ``tests/test_analysis_precision.py`` checks the
static bound upper-bounds the measured residual across the kappa sweep.

Findings (rule strings, all surfaced through the ordinary
:class:`~repro.analysis.verify.AnalysisReport`):

``tc-format-invariant``
    The plan breaks a TensorCore structural invariant: an input format
    outside the lattice, or a TC input format with a non-fp32 MMA
    accumulator.
``wasted-upcast``
    A multi-term split input format (fp16x3/fp16x4, 3-4x the TC work)
    quantizes data whose storage format is already far coarser — the
    extra split terms reconstruct bits the storage rounding destroyed.
``unsafe-downcast``
    A live-error-carrying tile is quantized through a format whose unit
    roundoff alone exceeds the caller's tolerance: no downstream op can
    recover, so the first such op is named. Only checked when a
    tolerance is given.
``tolerance-exceeded``
    The propagated terminal bound exceeds the caller's tolerance (and no
    single downcast explains it — ``unsafe-downcast`` takes precedence
    as the root cause, and either structural finding suppresses both
    tolerance rules).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.verify import AnalysisFinding
from repro.errors import PrecisionViolation, ValidationError
from repro.sim.ops import OpKind
from repro.tc.precision import UNIT_ROUNDOFF
from repro.util.regions import rects_overlap

#: The precision lattice, coarsest to finest (see module docstring for
#: the two documented rank tie-breaks).
PRECISION_LEVELS: tuple[str, ...] = (
    "bf16", "fp16", "tf32", "fp16x3", "fp16x4", "fp32", "fp64",
)

_RANK = {fmt: i for i, fmt in enumerate(PRECISION_LEVELS)}

#: Input formats consumed by the TensorCore MMA path (everything the
#: :func:`repro.tc.gemm.tc_gemm` quantizer accepts except plain fp32).
TC_INPUT_FORMATS = frozenset({"fp16", "bf16", "tf32", "fp16x3", "fp16x4"})

#: Multi-term split formats — each logical GEMM costs 3-4 hardware GEMMs,
#: so quantizing already-coarse data through them is pure waste.
SPLIT_FORMATS = frozenset({"fp16x3", "fp16x4"})

#: A split upcast is *wasted* when its effective roundoff is at least
#: this factor finer than the storage rounding the data already took
#: (fp16 storage + fp16x3 input is 2^11 finer: flagged; fp32 storage +
#: fp16x4 is exactly matched: clean).
WASTE_FACTOR = 256.0

#: Storage element format by config.element_bytes.
STORAGE_FORMATS = {2: "fp16", 4: "fp32", 8: "fp64"}

#: Default tolerance of the CLI precision sweep and the CI gate: generous
#: enough for every shipped split-precision plan at the sweep shapes
#: (predicted bounds sit near 1e-4), tight enough that a plain-fp16 deep
#: flat reduction tree (bound ~1e-2) is flagged.
DEFAULT_TOLERANCE = 1e-3

#: Rules this module emits (the serve admission path waives exactly these
#: when the job carries the health=escalate runtime fallback).
PRECISION_RULES = frozenset({
    "tc-format-invariant",
    "wasted-upcast",
    "unsafe-downcast",
    "tolerance-exceeded",
})


def roundoff(fmt: str) -> float:
    """Unit roundoff of lattice level *fmt*."""
    try:
        return UNIT_ROUNDOFF[fmt]
    except KeyError:
        raise ValidationError(
            f"unknown precision format {fmt!r}; lattice levels: "
            f"{', '.join(PRECISION_LEVELS)}"
        ) from None


def rank(fmt: str) -> int:
    """Lattice rank of *fmt* (higher = finer)."""
    try:
        return _RANK[fmt]
    except KeyError:
        raise ValidationError(
            f"unknown precision format {fmt!r}; lattice levels: "
            f"{', '.join(PRECISION_LEVELS)}"
        ) from None


@dataclass(frozen=True)
class PrecisionPlan:
    """The precision configuration of one plan, as the pass sees it.

    ``storage`` is the host/transfer element format (derived from
    ``config.element_bytes``), ``gemm_input`` the TC input-quantizer
    format (``config.precision.input_format``), ``accumulate`` the MMA
    accumulator format (fp32 on every real TensorCore).
    """

    storage: str = "fp32"
    gemm_input: str = "fp16"
    accumulate: str = "fp32"

    @staticmethod
    def from_config(config) -> "PrecisionPlan":
        """Derive the plan a :class:`~repro.config.SystemConfig` implies."""
        return PrecisionPlan(
            storage=STORAGE_FORMATS.get(config.element_bytes, "fp32"),
            gemm_input=config.precision.input_format,
        )

    def describe(self) -> str:
        """Compact ``storage->input/accumulate`` tag for report summaries."""
        return f"{self.storage}->{self.gemm_input}/{self.accumulate}"


@dataclass
class PrecisionFlow:
    """What one error-flow walk concluded about a program."""

    plan: PrecisionPlan
    #: Predicted relative-residual upper bound at the program's outputs.
    bound: float = 0.0
    #: GEMM-kind ops walked (trsm records as GEMM too).
    n_gemms: int = 0
    #: Deepest accumulation chain seen in a single op.
    max_k: int = 0
    #: Name of the first GEMM-kind op (anchor for plan-level findings).
    first_gemm: str = ""


def _valid_plan_findings(plan: PrecisionPlan) -> list[AnalysisFinding]:
    """Structural (walk-free) checks: lattice membership, TC accumulator
    invariant, wasted split upcasts."""
    findings: list[AnalysisFinding] = []
    for role, fmt in (
        ("storage", plan.storage),
        ("gemm input", plan.gemm_input),
        ("accumulate", plan.accumulate),
    ):
        if fmt not in _RANK:
            findings.append(
                AnalysisFinding(
                    rule="tc-format-invariant",
                    message=(
                        f"{role} format {fmt!r} is not a lattice level "
                        f"({', '.join(PRECISION_LEVELS)})"
                    ),
                    op=role,
                )
            )
    if findings:
        return findings
    if plan.gemm_input in TC_INPUT_FORMATS and plan.accumulate != "fp32":
        findings.append(
            AnalysisFinding(
                rule="tc-format-invariant",
                message=(
                    f"TensorCore MMA accumulates in fp32; a "
                    f"{plan.gemm_input} input with a {plan.accumulate} "
                    f"accumulator breaks the input-format invariant"
                ),
                op="accumulate",
            )
        )
    if (
        plan.gemm_input in SPLIT_FORMATS
        and roundoff(plan.gemm_input) * WASTE_FACTOR < roundoff(plan.storage)
    ):
        findings.append(
            AnalysisFinding(
                rule="wasted-upcast",
                message=(
                    f"{plan.gemm_input} split input "
                    f"(u={roundoff(plan.gemm_input):.1e}, "
                    f"{3 if plan.gemm_input == 'fp16x3' else 4}x TC work) on "
                    f"{plan.storage} storage (u={roundoff(plan.storage):.1e}): "
                    f"the extra split terms reconstruct bits the storage "
                    f"rounding already destroyed and buy no accuracy"
                ),
                op="gemm-input",
            )
        )
    return findings


def _op_accesses(op):
    reads, writes = [], []
    for acc in op.tags.get("accesses", ()):
        (writes if acc[5] else reads).append(acc)
    return reads, writes


def propagate(program, plan: PrecisionPlan | None = None) -> PrecisionFlow:
    """Walk *program*'s ops in issue order, tracking a per-buffer (and
    per-host-matrix) forward-error bound under *plan* (defaults to the
    plan the program's config implies).

    Issue order is a valid topological order of every legal schedule
    (the capture and graph builders emit it that way). Granularity is one
    bound per device buffer and per host *region* (matrix id + rect —
    partial reads join every overlapping stored region), and a device
    buffer's bound *resets* when a transfer overwrites it after compute — the engines rotate a handful
    of staging buffers for the whole run, and without the reset the
    stale bound of the previous tile would compound through every
    iteration of the panel loop. Consecutive transfer writes into the
    same buffer still ``max``-join (that is how partial loads stack two
    R factors into one merge buffer in the dist layer).
    """
    if plan is None:
        plan = PrecisionPlan.from_config(program.config)
    flow = PrecisionFlow(plan=plan)
    if (
        plan.storage not in _RANK
        or plan.gemm_input not in _RANK
        or plan.accumulate not in _RANK
    ):
        # structurally invalid plans are reported by check_precision; a
        # bound under unknown roundoffs would be meaningless
        flow.bound = float("inf")
        return flow
    u_store = roundoff(plan.storage)
    u_in = roundoff(plan.gemm_input)
    u_acc = roundoff(plan.accumulate)

    dev: dict[int, float] = {}
    # host bounds are keyed per *region* (matrix id + rect): the dist
    # layer stages every leaf's R factor through its own row slab of one
    # staging matrix, and a matrix-level key would chain all of a round's
    # independent merges through one shared max — erasing precisely the
    # binomial-vs-flat depth distinction the pass exists to price
    host: dict[tuple, float] = {}
    host_written: set[tuple] = set()
    #: Buffers whose latest write was a transfer: the next transfer into
    #: them stacks (max-join); a transfer after compute overwrites.
    staging: set[int] = set()

    def host_err(tag) -> float:
        if tag in host:
            return host[tag]
        # partial-rect read: join every overlapping stored region
        err = u_store
        for key, val in host.items():
            if key[0] == tag[0] and rects_overlap(
                (key[1], key[2]), (key[3], key[4]),
                (tag[1], tag[2]), (tag[3], tag[4]),
            ):
                err = max(err, val)
        return err

    def transfer_write(handle: int, err: float) -> None:
        if handle in staging:
            dev[handle] = max(dev.get(handle, 0.0), err)
        else:
            dev[handle] = err
            staging.add(handle)

    for op in program.ops:
        reads, writes = _op_accesses(op)
        if op.kind is OpKind.COPY_H2D:
            tag = op.tags.get("host_region")
            src = host_err(tag) if tag is not None else u_store
            for acc in writes:
                transfer_write(acc[0], src)
        elif op.kind is OpKind.COPY_D2H:
            tag = op.tags.get("host_region")
            err = max((dev.get(acc[0], 0.0) for acc in reads), default=0.0)
            if tag is not None:
                host[tag] = max(err + u_store, u_store)
                host_written.add(tag)
        elif op.kind is OpKind.COPY_D2D:
            err = max((dev.get(acc[0], 0.0) for acc in reads), default=0.0)
            for acc in writes:
                transfer_write(acc[0], err)
        elif op.kind is OpKind.GEMM:
            # covers true GEMMs (flops = 2 m n k) and trsm (flops = k^2 n,
            # recorded under the same kind): k_est recovers the
            # accumulation-chain length from the output rect — within 2x
            # for trsm, folded into the recurrence constants
            flow.n_gemms += 1
            if not flow.first_gemm:
                flow.first_gemm = op.name
            # max-join over operands (error *level*, not a sum: summing
            # re-counts shared ancestry every level and goes exponential
            # in chain depth; the 2x it drops per join is folded into the
            # recurrence constants) + the op's local contribution.
            operand_err = max(
                (dev.get(acc[0], 0.0) for acc in reads), default=0.0
            )
            k_est = 1
            if writes:
                acc = writes[0]
                out = max((acc[2] - acc[1]) * (acc[4] - acc[3]), 1)
                k_est = max(1, int(op.flops) // (2 * out))
            flow.max_k = max(flow.max_k, k_est)
            step = 2.0 * u_in + k_est * u_acc
            for acc in writes:
                dev[acc[0]] = (
                    max(operand_err, dev.get(acc[0], 0.0)) + step
                )
                staging.discard(acc[0])
        elif op.kind is OpKind.PANEL:
            # a panel factorization of r rows runs its inner products
            # through the same TC pipeline: one r-deep chain in-place
            err_in = max(
                (dev.get(acc[0], 0.0) for acc in reads + writes), default=0.0
            )
            rows = max(
                (acc[2] - acc[1] for acc in writes), default=1
            )
            flow.max_k = max(flow.max_k, rows)
            step = err_in + 2.0 * u_in + max(rows, 1) * u_acc
            for acc in writes:
                dev[acc[0]] = max(dev.get(acc[0], 0.0), step)
                staging.discard(acc[0])

    if host_written:
        flow.bound = max(host[tag] for tag in host_written)
    elif host:
        flow.bound = max(host.values())
    else:
        flow.bound = max(dev.values(), default=0.0)
    return flow


def check_precision(
    program,
    *,
    plan: PrecisionPlan | None = None,
    tolerance: float | None = None,
) -> tuple[PrecisionFlow, list[AnalysisFinding]]:
    """Run the full precision pass: structural invariants plus the
    error-flow walk, with the tolerance rules applied when *tolerance*
    is given (None runs the structural rules and reports the bound
    without judging it).

    Rule precedence keeps one finding per root cause: a structural
    (``tc-format-invariant`` / ``wasted-upcast``) finding suppresses the
    tolerance rules, and ``unsafe-downcast`` suppresses
    ``tolerance-exceeded`` (a bound blown by a single quantization step
    is the downcast's fault, not a second defect).
    """
    if plan is None:
        plan = PrecisionPlan.from_config(program.config)
    if tolerance is not None and tolerance <= 0.0:
        raise ValidationError(f"tolerance must be positive, got {tolerance}")
    findings = _valid_plan_findings(plan)
    flow = propagate(program, plan)
    if findings or tolerance is None:
        return flow, findings
    anchor = flow.first_gemm
    for role, fmt in (("gemm input", plan.gemm_input), ("storage", plan.storage)):
        if flow.n_gemms and roundoff(fmt) > tolerance:
            findings.append(
                AnalysisFinding(
                    rule="unsafe-downcast",
                    message=(
                        f"{role} format {fmt} (u={roundoff(fmt):.1e}) "
                        f"quantizes live tiles past the {tolerance:.1e} "
                        f"tolerance in a single step; no downstream op "
                        f"can recover (first at {anchor!r})"
                    ),
                    op=anchor,
                )
            )
            break
    if not findings and flow.bound > tolerance:
        findings.append(
            AnalysisFinding(
                rule="tolerance-exceeded",
                message=(
                    f"predicted forward-error bound {flow.bound:.2e} "
                    f"exceeds the caller's tolerance {tolerance:.1e} "
                    f"({flow.n_gemms} GEMM-kind ops, deepest chain "
                    f"k={flow.max_k}, plan {plan.describe()})"
                ),
                op=anchor,
            )
        )
    return flow, findings


def assert_precision_ok(report) -> None:
    """Raise :class:`~repro.errors.PrecisionViolation` if *report* carries
    any precision-rule finding (other findings are :func:`~repro.analysis.
    verify.assert_plan_ok`'s business)."""
    if any(f.rule in PRECISION_RULES for f in report.findings):
        raise PrecisionViolation(report)


__all__ = [
    "DEFAULT_TOLERANCE",
    "PRECISION_LEVELS",
    "PRECISION_RULES",
    "SPLIT_FORMATS",
    "STORAGE_FORMATS",
    "TC_INPUT_FORMATS",
    "WASTE_FACTOR",
    "PrecisionFlow",
    "PrecisionPlan",
    "assert_precision_ok",
    "check_precision",
    "propagate",
    "rank",
    "roundoff",
]
