"""Repo lint pack: AST rules encoding this codebase's invariants.

Six rules, each guarding a property the test suite and docs rely on but
ordinary linters cannot express:

``reproerror-raises``
    Every exception raised inside ``src/repro`` must be a
    :class:`~repro.errors.ReproError` subclass, so the CLI's single
    ``except ReproError`` handler (exit code 2) catches everything the
    library signals. Raising a bare builtin (``ValueError``, ``KeyError``,
    ...) escapes that contract. ``NotImplementedError``, ``SystemExit``,
    ``KeyboardInterrupt``, ``StopIteration`` and bare re-raises are allowed.

``precision-outside-tc``
    Half-precision dtypes (``float16`` / ``bfloat16``) may only appear
    under ``tc/`` — the emulated-TensorCore layer owns every rounding
    decision (see :mod:`repro.tc`). A stray ``np.float16`` elsewhere
    silently degrades a whole pipeline.

``raw-dtype-cast``
    The casting *operations* that dodge the attribute rule above:
    ``.astype(...)`` to a half-precision target, a ``dtype=`` keyword
    carrying a half-precision string (``"float16"`` / ``"bfloat16"`` /
    ``"half"`` / ``"e"``), and direct ``float16(...)``-style constructor
    calls — all forbidden outside ``tc/``. A raw cast bypasses the
    quantizer (:func:`repro.tc.precision.round_to`), so its rounding is
    invisible to the static precision pass
    (:mod:`repro.analysis.precision`) and the health sentinel.

``wallclock-in-step-logic``
    :mod:`repro.obs.clock` is the only sanctioned clock source: no module
    outside ``obs/`` may read the wall clock (``time.time``,
    ``datetime.now``, ...) **or** the measurement clocks
    (``time.perf_counter`` / ``time.monotonic`` and their ``_ns``
    variants) directly. Wall-clock values baked into checkpointed step
    state break bitwise-identical resume, and scattered measurement-clock
    reads are exactly the per-layer double timing the span recorder
    replaced — one timebase, one place to fake it in tests.
    ``time.sleep`` is covered too: pacing and backoff sleeps route
    through ``repro.obs.clock.sleep`` so a single monkeypatch fakes
    every retry ladder and injected stall in tests
    (docs/robustness.md).

``scheduler-bypass``
    Concurrent paths must route ops through the scheduler: calling an
    executor's ``._issue`` or touching ``SimOp.deps`` outside
    ``execution/``, ``sim/`` and ``analysis/`` bypasses the
    happens-before bookkeeping the race detector and verifier prove
    things about.

``layering-imports``
    Lower layers may not import up: ``dist/`` sits below the serving
    layer (``repro.serve`` *places jobs onto* device pools, not the
    other way around), so any ``import repro.serve`` under ``dist/``
    inverts the dependency and is a finding. The forbidden-edge map
    (:data:`_LAYERING_FORBIDDEN`) is the place to add further edges as
    layers accrete.

A finding on a given line is waived by a same-line comment
``# lint: allow[<rule>]``. Run via ``tools/lint_repro.py`` (CI runs it
next to ruff).
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass
from pathlib import Path

#: Builtin exceptions that may be raised directly anywhere (control flow or
#: subclass-contract signals, not library errors).
_ALLOWED_BUILTIN_RAISES = {
    "NotImplementedError",
    "SystemExit",
    "KeyboardInterrupt",
    "StopIteration",
    "StopAsyncIteration",
}

#: Builtin exception names the ``reproerror-raises`` rule recognises.
_BUILTIN_EXCEPTIONS = {
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "BlockingIOError", "BrokenPipeError", "BufferError", "ChildProcessError",
    "ConnectionAbortedError", "ConnectionError", "ConnectionRefusedError",
    "ConnectionResetError", "EOFError", "Exception", "FileExistsError",
    "FileNotFoundError", "FloatingPointError", "ImportError",
    "IndentationError", "IndexError", "InterruptedError",
    "IsADirectoryError", "KeyError", "LookupError", "MemoryError",
    "ModuleNotFoundError", "NameError", "NotADirectoryError", "OSError",
    "OverflowError", "PermissionError", "ProcessLookupError",
    "RecursionError", "ReferenceError", "RuntimeError", "SyntaxError",
    "SystemError", "TabError", "TimeoutError", "TypeError",
    "UnboundLocalError", "UnicodeDecodeError", "UnicodeEncodeError",
    "UnicodeError", "ValueError", "ZeroDivisionError",
}

#: Clock callables forbidden outside ``obs/``, as (object name,
#: attribute) pairs. Both wall clocks and measurement clocks: every
#: timestamp must come from :mod:`repro.obs.clock`.
_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "sleep"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: ``from time import ...`` names that would dodge the attribute-call
#: check above; importing them is itself a finding.
_WALLCLOCK_FROM_IMPORTS = {
    attr for base, attr in _WALLCLOCK_CALLS if base == "time"
}

#: The directory (relative to ``src/repro``) that owns clock access.
_OBS_DIR = "obs"

#: Directories allowed to call ``._issue`` / touch ``.deps`` directly.
_SCHEDULER_DIRS = ("execution", "sim", "analysis")

#: Dtype spellings (strings and bare names) the ``raw-dtype-cast`` rule
#: treats as half-precision targets; ``"e"`` is numpy's fp16 typecode.
_HALF_DTYPE_NAMES = {"float16", "bfloat16", "half"}
_HALF_DTYPE_STRINGS = _HALF_DTYPE_NAMES | {"e", "f2", "<f2", ">f2", "=f2"}

#: Layering edges that must not exist: top-level directory under
#: ``src/repro`` -> module prefixes it may never import.
_LAYERING_FORBIDDEN: dict[str, tuple[str, ...]] = {
    "dist": ("repro.serve",),
    # the injection plane is infrastructure every execution layer may
    # guard with; it must never know about the layers it faults
    "faults": ("repro.serve", "repro.dist", "repro.runtime"),
}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _waivers(source: str) -> dict[int, set[str]]:
    """Map line number -> rules waived by ``# lint: allow[rule]`` comments."""
    waived: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string
            marker = "lint: allow["
            start = text.find(marker)
            while start != -1:
                end = text.find("]", start)
                if end == -1:
                    break
                rule = text[start + len(marker) : end].strip()
                waived.setdefault(tok.start[0], set()).add(rule)
                start = text.find(marker, end)
    except tokenize.TokenError:
        pass
    return waived


def _rel_parts(path: Path, root: Path) -> tuple[str, ...]:
    try:
        return path.relative_to(root).parts
    except ValueError:
        return path.parts


def _is_half_dtype(node: ast.AST) -> str | None:
    """The half-precision dtype a node spells, if any (``raw-dtype-cast``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value.lower() in _HALF_DTYPE_STRINGS:
            return node.value
    elif isinstance(node, ast.Attribute) and node.attr in _HALF_DTYPE_NAMES:
        return node.attr
    elif isinstance(node, ast.Name) and node.id in _HALF_DTYPE_NAMES:
        return node.id
    return None


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if exc is None:
        return None  # bare re-raise
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def lint_source(source: str, path: str, rel_parts: tuple[str, ...]) -> list[LintFinding]:
    """Run every applicable rule over one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 1, "parse", str(exc.msg))]
    waived = _waivers(source)
    top = rel_parts[0] if rel_parts else ""
    in_tc = top == "tc"
    in_obs = top == _OBS_DIR
    in_scheduler = top in _SCHEDULER_DIRS
    findings: list[LintFinding] = []

    def report(node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if rule in waived.get(line, ()):
            return
        findings.append(LintFinding(path, line, rule, message))

    forbidden_imports = _LAYERING_FORBIDDEN.get(top, ())

    def check_layering(node: ast.AST, module: str | None) -> None:
        if module is None:
            return
        for prefix in forbidden_imports:
            if module == prefix or module.startswith(prefix + "."):
                report(
                    node,
                    "layering-imports",
                    f"{top}/ must not import {prefix} (lower layer "
                    f"importing up; see _LAYERING_FORBIDDEN)",
                )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                check_layering(node, alias.name)
        if isinstance(node, ast.ImportFrom):
            check_layering(node, node.module)
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if not in_obs and alias.name in _WALLCLOCK_FROM_IMPORTS:
                    report(
                        node,
                        "wallclock-in-step-logic",
                        f"from time import {alias.name} outside obs/; every "
                        f"clock read goes through repro.obs.clock "
                        f"(monotonic / wall_time)",
                    )
        if isinstance(node, ast.Raise):
            name = _raised_name(node)
            if (
                name in _BUILTIN_EXCEPTIONS
                and name not in _ALLOWED_BUILTIN_RAISES
            ):
                report(
                    node,
                    "reproerror-raises",
                    f"raise {name} escapes the ReproError hierarchy; raise a "
                    f"ReproError subclass (e.g. ValidationError) instead",
                )
        elif isinstance(node, ast.Attribute):
            if not in_tc and node.attr in ("float16", "bfloat16"):
                report(
                    node,
                    "precision-outside-tc",
                    f"half-precision dtype .{node.attr} outside tc/; all "
                    f"rounding decisions belong to the TensorCore layer",
                )
            if (
                not in_scheduler
                and node.attr == "deps"
                and isinstance(node.ctx, (ast.Store, ast.Del))
            ):
                report(
                    node,
                    "scheduler-bypass",
                    "mutating SimOp.deps outside execution/sim/analysis "
                    "bypasses the scheduler's happens-before bookkeeping",
                )
        if isinstance(node, ast.Call) and not in_tc:
            # raw-dtype-cast: the casting operations that dodge the
            # attribute rule — astype(<half>), dtype=<half string>, and
            # bare float16(...)-style constructor calls
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                for arg in node.args:
                    spelled = _is_half_dtype(arg)
                    if spelled is not None:
                        report(
                            node,
                            "raw-dtype-cast",
                            f"astype({spelled!r}) outside tc/ bypasses the "
                            f"quantizer (repro.tc.precision.round_to); the "
                            f"precision verifier cannot see raw casts",
                        )
            for kw in node.keywords:
                if kw.arg == "dtype":
                    spelled = _is_half_dtype(kw.value)
                    if spelled is not None:
                        report(
                            node,
                            "raw-dtype-cast",
                            f"dtype={spelled!r} outside tc/ allocates "
                            f"half-precision storage behind the precision "
                            f"verifier's back; route through repro.tc",
                        )
            if isinstance(node.func, ast.Name) and node.func.id in _HALF_DTYPE_NAMES:
                report(
                    node,
                    "raw-dtype-cast",
                    f"{node.func.id}(...) outside tc/ is a raw scalar/array "
                    f"cast; all rounding goes through repro.tc",
                )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else None
            if (
                not in_obs
                and base_name is not None
                and (base_name, func.attr) in _WALLCLOCK_CALLS
            ):
                report(
                    node,
                    "wallclock-in-step-logic",
                    f"{base_name}.{func.attr}() outside obs/; every clock "
                    f"read goes through repro.obs.clock (monotonic / "
                    f"wall_time) — one timebase, one place to fake it",
                )
            if not in_scheduler and func.attr == "_issue":
                report(
                    node,
                    "scheduler-bypass",
                    "direct ._issue() call outside execution/sim/analysis; "
                    "route ops through the executor's public interface",
                )
    return findings


def lint_file(path: Path, root: Path) -> list[LintFinding]:
    """Lint one file under the ``src/repro`` root."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), _rel_parts(path, root))


def lint_tree(root: Path) -> list[LintFinding]:
    """Lint every ``*.py`` under *root* (normally ``src/repro``).

    Findings come back sorted by path then line so output is stable for
    CI diffing.
    """
    findings: list[LintFinding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(lint_file(path, root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
