"""Capture drivers: run every shipped OOC engine symbolically.

Each ``capture_*`` function drives a real engine — the very code the
numeric and simulated executors run — over shape-only host matrices with a
:class:`~repro.analysis.capture.CaptureExecutor`, producing a
:class:`~repro.analysis.capture.CapturedProgram` for the verifier. Because
the engines plan from ``ex.allocator.free_bytes``, a capture under a given
config replays exactly the op stream a real run under that config would
issue.

:data:`ENGINE_CAPTURES` is the registry the CLI sweep and the CI
``static-analysis`` job iterate: every engine/driver configuration the
library ships (blocking/recursive QR — including the TSQR panel-algorithm
config — LU, Cholesky, and both OOC GEMM engines).

:func:`capture_job` maps a serve :class:`~repro.serve.job.JobSpec` onto
the matching capture so admission can verify a plan before charging it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.analysis.capture import CapturedProgram, CaptureExecutor
from repro.analysis.verify import AnalysisReport, verify_program
from repro.config import PAPER_SYSTEM, SystemConfig
from repro.host.tiled import HostMatrix
from repro.qr.options import QrOptions


def _options(b: int, options: QrOptions | None) -> QrOptions:
    if options is None:
        return QrOptions(blocksize=b)
    return replace(options, blocksize=b)


def capture_qr(
    config: SystemConfig,
    m: int,
    n: int,
    b: int,
    *,
    method: str = "blocking",
    options: QrOptions | None = None,
    label: str | None = None,
) -> CapturedProgram:
    """Symbolically capture one OOC QR run (blocking or recursive)."""
    from repro.qr.blocking import ooc_blocking_qr
    from repro.qr.recursive import ooc_recursive_qr

    eb = config.element_bytes
    ex = CaptureExecutor(config, label=label or f"qr-{method} {m}x{n} b={b}")
    a = HostMatrix.shape_only(m, n, eb, name="A")
    r = HostMatrix.shape_only(n, n, eb, name="R")
    driver = ooc_recursive_qr if method == "recursive" else ooc_blocking_qr
    driver(ex, a, r, _options(b, options))
    program = ex.finish()
    program.volume_hint = (method, m, n, min(b, n))
    return program


def capture_lu(
    config: SystemConfig,
    n: int,
    b: int,
    *,
    method: str = "blocking",
    options: QrOptions | None = None,
) -> CapturedProgram:
    """Symbolically capture one OOC LU run (square, unpivoted)."""
    from repro.factor.lu import ooc_blocking_lu, ooc_recursive_lu

    ex = CaptureExecutor(config, label=f"lu-{method} {n}x{n} b={b}")
    a = HostMatrix.shape_only(n, n, config.element_bytes, name="A")
    driver = ooc_recursive_lu if method == "recursive" else ooc_blocking_lu
    driver(ex, a, _options(b, options))
    program = ex.finish()
    # LU moves strictly less data per panel step than QR (no Q writeback),
    # so the §3.2 QR closed forms bound it from above.
    program.volume_hint = (method, n, n, min(b, n))
    return program


def capture_cholesky(
    config: SystemConfig,
    n: int,
    b: int,
    *,
    method: str = "blocking",
    options: QrOptions | None = None,
) -> CapturedProgram:
    """Symbolically capture one OOC Cholesky run (square SPD)."""
    from repro.factor.cholesky import (
        ooc_blocking_cholesky,
        ooc_recursive_cholesky,
    )

    ex = CaptureExecutor(config, label=f"chol-{method} {n}x{n} b={b}")
    a = HostMatrix.shape_only(n, n, config.element_bytes, name="A")
    driver = (
        ooc_recursive_cholesky if method == "recursive" else ooc_blocking_cholesky
    )
    driver(ex, a, _options(b, options))
    program = ex.finish()
    # Cholesky touches only the lower triangle — again bounded by QR.
    program.volume_hint = (method, n, n, min(b, n))
    return program


def capture_gemm(
    config: SystemConfig,
    m: int,
    n: int,
    k: int,
    b: int,
    *,
    kind: str = "inner",
    pipelined: bool = True,
) -> CapturedProgram:
    """Symbolically capture one OOC GEMM run.

    ``kind="inner"`` is the k-split engine (``C = AᵀB``, Fig 3);
    ``"outer"`` the row-streaming update engine (``C -= A B``, Fig 5).
    No §3.2 QR model applies, so the volume pass records a skip.
    """
    from repro.ooc.inner import run_ksplit_inner
    from repro.ooc.outer import run_rowstream_outer
    from repro.ooc.plan import plan_ksplit_inner, plan_rowstream_outer

    eb = config.element_bytes
    ex = CaptureExecutor(config, label=f"gemm-{kind} {m}x{n}x{k} b={b}")
    budget = ex.allocator.free_bytes // eb
    if kind == "inner":
        a = HostMatrix.shape_only(k, m, eb, name="A")
        bm = HostMatrix.shape_only(k, n, eb, name="B")
        c = HostMatrix.shape_only(m, n, eb, name="C")
        plan = plan_ksplit_inner(k, m, n, min(b, k), budget)
        run_ksplit_inner(
            ex, a.full(), bm.full(), c.full(), plan, pipelined=pipelined
        )
    else:
        a = HostMatrix.shape_only(m, k, eb, name="A")
        bm = HostMatrix.shape_only(k, n, eb, name="B")
        c = HostMatrix.shape_only(m, n, eb, name="C")
        plan = plan_rowstream_outer(m, k, n, min(b, m), budget)
        run_rowstream_outer(
            ex, c.full(), a.full(), bm.full(), plan, pipelined=pipelined
        )
    return ex.finish()


#: Engine registry for the sweep: name -> capture(config, m, n, b).
#: GEMM entries fold the reduction dimension into m; the TSQR entry runs
#: the QR drivers under the ``panel_algorithm="tsqr"`` config (same op
#: stream on device, but a distinct shipped configuration that admission
#: must be able to verify).
ENGINE_CAPTURES: dict[
    str, Callable[[SystemConfig, int, int, int], CapturedProgram]
] = {
    "qr-blocking": lambda cfg, m, n, b: capture_qr(cfg, m, n, b, method="blocking"),
    "qr-recursive": lambda cfg, m, n, b: capture_qr(cfg, m, n, b, method="recursive"),
    "qr-tsqr": lambda cfg, m, n, b: capture_qr(
        replace(cfg, panel_algorithm="tsqr"), m, n, b, method="recursive",
        label=f"qr-tsqr {m}x{n} b={b}",
    ),
    "lu-blocking": lambda cfg, m, n, b: capture_lu(cfg, n, b, method="blocking"),
    "lu-recursive": lambda cfg, m, n, b: capture_lu(cfg, n, b, method="recursive"),
    "chol-blocking": lambda cfg, m, n, b: capture_cholesky(
        cfg, n, b, method="blocking"
    ),
    "chol-recursive": lambda cfg, m, n, b: capture_cholesky(
        cfg, n, b, method="recursive"
    ),
    "gemm-inner": lambda cfg, m, n, b: capture_gemm(cfg, n, n, m, b, kind="inner"),
    "gemm-outer": lambda cfg, m, n, b: capture_gemm(cfg, m, n, n, b, kind="outer"),
}


def verify_engine(
    name: str,
    config: SystemConfig | None = None,
    *,
    m: int = 96,
    n: int = 64,
    b: int = 16,
    tolerance: float | None = None,
    precision=None,
) -> AnalysisReport:
    """Capture one registry engine and verify it.

    QR captures assert the ``m*n``-word input floor on top of the §3.2
    upper bounds (every input element must be loaded at least once).
    ``tolerance`` / ``precision`` flow through to the precision pass
    (see :func:`repro.analysis.verify.verify_program`).
    """
    config = config or PAPER_SYSTEM
    program = ENGINE_CAPTURES[name](config, m, n, b)
    floor = None
    if name.startswith("qr-"):
        floor = m * n
    return verify_program(
        program,
        input_floor_words=floor,
        tolerance=tolerance,
        precision=precision,
    )


def verify_all_engines(
    config: SystemConfig | None = None,
    *,
    m: int = 96,
    n: int = 64,
    b: int = 16,
) -> dict[str, AnalysisReport]:
    """Verify every registry engine at one (small) shape."""
    return {
        name: verify_engine(name, config, m=m, n=n, b=b)
        for name in ENGINE_CAPTURES
    }


def capture_job(spec, config: SystemConfig) -> CapturedProgram:
    """Capture the program a serve job would run under *config*.

    *config* must be the job's capped config (allocator capacity = the
    admission grant) so the engines shrink their tilings exactly as the
    real run will.
    """
    opts = spec.options
    shapes = spec.shapes()
    if spec.kind == "gemm":
        (r_a, c_a), (_r_b, c_b) = shapes
        if spec.trans_a:
            return capture_gemm(
                config, c_a, c_b, r_a, opts.blocksize,
                kind="inner", pipelined=opts.pipelined,
            )
        return capture_gemm(
            config, r_a, c_b, c_a, opts.blocksize,
            kind="outer", pipelined=opts.pipelined,
        )
    m, n = shapes[0]
    b = min(opts.blocksize, n)
    if spec.kind == "qr":
        return capture_qr(config, m, n, b, method=spec.method, options=opts)
    if spec.kind == "lu":
        return capture_lu(config, n, b, method=spec.method, options=opts)
    return capture_cholesky(config, n, b, method=spec.method, options=opts)
