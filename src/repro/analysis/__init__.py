"""Static analysis: plan verifier and repo lint pack.

Proves OOC pipelines race-free, leak-free, and within the device-memory
budget *before* they run. :mod:`repro.analysis.capture` records an
engine's op stream symbolically (no data, no clock);
:mod:`repro.analysis.verify` runs happens-before hazard analysis,
allocator lifetime proofs, exact peak-memory accounting, and §3.2
transfer-volume checks over the captured program;
:mod:`repro.analysis.engines` sweeps every shipped engine configuration;
:mod:`repro.analysis.precision` is the static precision / error-flow pass
(per-tile precision lattice + symbolic forward-error bound, judged
against a caller tolerance); :mod:`repro.analysis.lint` is the AST-based
repo lint pack behind ``tools/lint_repro.py``. See docs/analysis.md.

:func:`verify_program` also accepts a first-class
:class:`~repro.runtime.task.TaskGraph` from the DAG runtime directly —
see :mod:`repro.runtime` (its ``verify_engine_graph`` /
``verify_all_engine_graphs`` mirror the capture sweep; the runtime module
imports this package, so the graph sweep lives there to keep the
dependency one-way). See docs/runtime.md.
"""

from repro.analysis.capture import CapturedProgram, CaptureExecutor, MemEvent
from repro.analysis.engines import (
    ENGINE_CAPTURES,
    capture_cholesky,
    capture_gemm,
    capture_job,
    capture_lu,
    capture_qr,
    verify_all_engines,
    verify_engine,
)
from repro.analysis.precision import (
    DEFAULT_TOLERANCE,
    PRECISION_LEVELS,
    PRECISION_RULES,
    PrecisionFlow,
    PrecisionPlan,
    assert_precision_ok,
    check_precision,
    propagate,
)
from repro.analysis.verify import (
    VOLUME_SLACK,
    AnalysisFinding,
    AnalysisReport,
    assert_plan_ok,
    exact_peak_bytes,
    verify_program,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "ENGINE_CAPTURES",
    "PRECISION_LEVELS",
    "PRECISION_RULES",
    "VOLUME_SLACK",
    "AnalysisFinding",
    "AnalysisReport",
    "CaptureExecutor",
    "CapturedProgram",
    "MemEvent",
    "PrecisionFlow",
    "PrecisionPlan",
    "assert_plan_ok",
    "assert_precision_ok",
    "capture_cholesky",
    "capture_gemm",
    "capture_job",
    "capture_lu",
    "capture_qr",
    "check_precision",
    "exact_peak_bytes",
    "propagate",
    "verify_all_engines",
    "verify_engine",
    "verify_program",
]
