"""Dynamic schedulers for tile-task graphs.

Two execution strategies over a validated :class:`TaskGraph`:

* :meth:`DagScheduler.run_serial` — emission order on the calling thread.
  Because the builder records tasks in exactly the order the legacy
  executor would have run them, a serial replay is instruction-identical
  to the legacy serial run (the differential suite's baseline).
* :meth:`DagScheduler.run_threaded` — dynamic dataflow execution with one
  worker per copy engine (H2D, D2H) and ``compute_workers`` compute
  threads. A central ready set tracks tile readiness by indegree
  counting; compute tasks are round-robin dealt to per-worker deques and
  idle compute workers *steal* from the back of their peers' deques.
  ``lookahead`` bounds how far past the completion frontier the scheduler
  may run, trading overlap depth for resident working set (the DAG
  analogue of §4.2's bounded copy/compute lookahead).

Both entry points call :meth:`TaskGraph.validate` first, so a cyclic
graph raises :class:`~repro.errors.DeadlockError` immediately instead of
hanging; a stalled threaded run (a bug, or a starved worker pool) times
out into the same error rather than deadlocking the interpreter.

Determinism: every pair of conflicting tasks is connected by a direct
dataflow edge (see :mod:`repro.runtime.task`), so tasks that can run
concurrently touch disjoint data. Results are therefore bitwise
independent of worker count, steal order, and lookahead depth — the
property the scheduler suite asserts.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Protocol

from repro.errors import DeadlockError, ValidationError
from repro.faults.inject import as_injector
from repro.runtime.task import TaskGraph, TileTask
from repro.sim.ops import EngineKind

#: Bound on how long a worker may wait for a runnable task before the run
#: is declared stuck (same guard the concurrent executor uses).
_WAIT_TIMEOUT_S = 600.0


class GraphBackend(Protocol):
    """What schedulers require of an execution backend."""

    def execute(self, task: TileTask) -> None: ...  # pragma: no cover


class DagScheduler:
    """Schedules one :class:`TaskGraph` onto a :class:`GraphBackend`."""

    def __init__(self, graph: TaskGraph, *, lookahead: int | None = None):
        if lookahead is not None and lookahead < 0:
            raise ValidationError("lookahead must be None or >= 0")
        self.graph = graph
        self.lookahead = lookahead

    def validate(self) -> None:
        self.graph.validate()

    # -- serial -----------------------------------------------------------------

    def run_serial(self, backend: GraphBackend, *, faults=None) -> None:
        self.validate()
        injector = as_injector(faults)
        for task in self.graph.tasks:
            if injector is not None:
                # per-task guard (site "task", coordinate = task_id);
                # the scheduler has no retry/recovery of its own — an
                # injected fault surfaces loudly to the caller
                injector.check("task", op_index=task.task_id)
            backend.execute(task)
        finish = getattr(backend, "finish", None)
        if finish is not None:
            finish(self.graph)

    # -- threaded ---------------------------------------------------------------

    def run_threaded(
        self,
        backend: GraphBackend,
        *,
        compute_workers: int = 2,
        timeout_s: float = _WAIT_TIMEOUT_S,
        faults=None,
    ) -> None:
        if compute_workers < 1:
            raise ValidationError("compute_workers must be >= 1")
        self.validate()
        run = _ThreadedRun(
            self.graph, backend, compute_workers, self.lookahead, timeout_s,
            injector=as_injector(faults),
        )
        run.execute()
        finish = getattr(backend, "finish", None)
        if finish is not None:
            finish(self.graph)


class _ThreadedRun:
    """One threaded execution: shared ready-set state plus the workers.

    All scheduling state is guarded by a single condition variable.
    Workers pull from their queue under the lock, execute *outside* it,
    then re-acquire to retire the task and release dependents. This keeps
    dependency bookkeeping race-free while numeric bodies (which release
    the GIL inside BLAS) overlap.
    """

    def __init__(
        self,
        graph: TaskGraph,
        backend: GraphBackend,
        compute_workers: int,
        lookahead: int | None,
        timeout_s: float,
        injector=None,
    ):
        self.graph = graph
        self.backend = backend
        self.lookahead = lookahead
        self.timeout_s = timeout_s
        self.injector = injector
        self.tasks = graph.tasks
        n = len(self.tasks)
        self.indegree = [len(t.deps) for t in self.tasks]
        self.dependents: list[list[TileTask]] = [[] for _ in range(n)]
        for t in self.tasks:
            for dep in t.deps:
                self.dependents[dep.task_id].append(t)
        self.cond = threading.Condition()
        self.finished = bytearray(n)
        self.frontier = 0          # smallest unfinished task_id
        self.n_done = 0
        self.failure: BaseException | None = None
        # ready queues: one per copy engine, one deque per compute worker
        self.h2d: deque[TileTask] = deque()
        self.d2h: deque[TileTask] = deque()
        self.compute: list[deque[TileTask]] = [
            deque() for _ in range(compute_workers)
        ]
        self._deal = 0  # round-robin pointer for compute/mem tasks
        for t in self.tasks:
            if self.indegree[t.task_id] == 0:
                self._route(t)

    # -- routing (lock held) ----------------------------------------------------

    def _route(self, task: TileTask) -> None:
        if task.engine is EngineKind.H2D:
            self.h2d.append(task)
        elif task.engine is EngineKind.D2H:
            self.d2h.append(task)
        else:  # compute ops and allocator pseudo-tasks
            self.compute[self._deal % len(self.compute)].append(task)
            self._deal += 1

    def _eligible(self, task: TileTask) -> bool:
        if self.lookahead is None:
            return True
        return task.task_id <= self.frontier + self.lookahead

    def _take(self, queue: deque[TileTask], *, back: bool) -> TileTask | None:
        """Pop a runnable task, skipping over lookahead-gated ones."""
        for _ in range(len(queue)):
            task = queue.pop() if back else queue.popleft()
            if self._eligible(task):
                return task
            # put it back on the side we took it from and try the next
            if back:
                queue.appendleft(task)
            else:
                queue.append(task)
        return None

    def _pick(self, worker: int | None, queue: deque[TileTask]) -> TileTask | None:
        task = self._take(queue, back=False)
        if task is None and worker is not None:
            # work stealing: raid the *back* of a peer's deque so the
            # owner keeps its cache-warm front
            for shift in range(1, len(self.compute)):
                peer = self.compute[(worker + shift) % len(self.compute)]
                task = self._take(peer, back=True)
                if task is not None:
                    break
        return task

    # -- retirement (lock held) --------------------------------------------------

    def _retire(self, task: TileTask) -> None:
        self.finished[task.task_id] = 1
        self.n_done += 1
        while self.frontier < len(self.tasks) and self.finished[self.frontier]:
            self.frontier += 1
        for dependent in self.dependents[task.task_id]:
            self.indegree[dependent.task_id] -= 1
            if self.indegree[dependent.task_id] == 0:
                self._route(dependent)
        self.cond.notify_all()

    # -- worker loop -------------------------------------------------------------

    def _worker(self, worker: int | None, queue: deque[TileTask]) -> None:
        n = len(self.tasks)
        while True:
            with self.cond:
                task = None
                while True:
                    if self.failure is not None or self.n_done == n:
                        return
                    task = self._pick(worker, queue)
                    if task is not None:
                        break
                    if not self.cond.wait(self.timeout_s):
                        stuck = [
                            t for t in self.tasks if not self.finished[t.task_id]
                        ]
                        self.failure = DeadlockError(stuck)
                        self.cond.notify_all()
                        return
            try:
                if self.injector is not None:
                    # same per-task guard as the serial path; the
                    # injector is thread-safe and the failure latch
                    # surfaces the fault like any backend error
                    self.injector.check("task", op_index=task.task_id)
                self.backend.execute(task)
            except BaseException as exc:  # noqa: BLE001 - latched + re-raised
                with self.cond:
                    if self.failure is None:
                        self.failure = exc
                    self.cond.notify_all()
                return
            with self.cond:
                self._retire(task)

    def execute(self) -> None:
        threads = [
            threading.Thread(
                target=self._worker, args=(None, self.h2d), name="dag-h2d"
            ),
            threading.Thread(
                target=self._worker, args=(None, self.d2h), name="dag-d2h"
            ),
        ]
        threads.extend(
            threading.Thread(
                target=self._worker,
                args=(i, self.compute[i]),
                name=f"dag-compute-{i}",
            )
            for i in range(len(self.compute))
        )
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if self.failure is not None:
            raise self.failure


__all__ = ["DagScheduler", "GraphBackend"]
