"""GraphBuilder: drives the existing engines to *emit* task graphs.

The drivers in :mod:`repro.qr`, :mod:`repro.ooc` and :mod:`repro.factor`
are written against the abstract :class:`~repro.execution.base.Executor`
surface. :class:`GraphBuilder` subclasses the eager
:class:`~repro.execution.numeric.NumericExecutor` and overrides its single
op funnel (``_issue``) so that every op is recorded as a
:class:`~repro.runtime.task.TileTask` — carrying its engine class, tile
read/write sets, host regions, a cost hint from the hardware model, and
the unexecuted numeric closure — instead of running immediately. A
scheduler then executes the graph later, in any dependency-respecting
order.

Memory accounting is split in two so both planning and execution match
the legacy executors exactly:

* **build time** — ``alloc``/``free`` hit ``self.allocator`` eagerly, so
  drivers that plan from ``allocator.free_bytes`` (k-split depth, spill
  decisions, §4.1.2 staging buffers) make identical choices, and
  over-capacity plans raise ``OutOfDeviceMemoryError`` at the same point
  they would on the legacy path;
* **run time** — the recorded ``alloc``/``free`` pseudo-tasks replay the
  same sequence against the *backend's* allocator, with payload numpy
  arrays created lazily by the ``alloc`` task and dropped by ``free``.

With ``materialize=False`` the builder skips body closures entirely, so
symbolic graphs can be built from ``HostMatrix.shape_only`` inputs for
simulation and static analysis without allocating host data.
"""

from __future__ import annotations

from typing import Callable

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.execution.base import DeviceBuffer, DeviceView, as_view
from repro.execution.numeric import NumericExecutor
from repro.host.tiled import HostRegion
from repro.hw.transfer import Direction
from repro.runtime.task import TaskGraph
from repro.sim.ops import EngineKind, OpKind, SimOp

#: Tag key marking a buffer freed at *build* time. The real ``freed`` flag
#: must stay False until the graph executes (bodies read payload data), so
#: the builder's use-after-free / double-free checks key off this instead.
_GRAPH_FREED = "graph-freed"


class GraphBuilder(NumericExecutor):
    """Executor backend that records a :class:`TaskGraph` instead of
    running ops.

    Parameters
    ----------
    materialize:
        When True (numeric execution), each task keeps the closure the
        legacy executor would have run, operating on the same payload
        arrays — a serial replay is *instruction-identical* to the legacy
        serial run, which is what makes the differential suite's bitwise
        assertions possible. When False (simulation / analysis), bodies
        are dropped and host arrays are never touched.
    """

    def __init__(
        self,
        config: SystemConfig,
        *,
        label: str = "",
        materialize: bool = True,
    ):
        super().__init__(config, record=False)
        self.graph = TaskGraph(config, label=label)
        self.graph.stats = self.stats  # one shared accounting object
        self._materialize = materialize
        self._shape_hint: tuple[str, tuple[int, ...]] | None = None

    # -- op funnel --------------------------------------------------------------

    def _issue(
        self,
        stream,
        *,
        name: str,
        engine: EngineKind,
        kind: OpKind,
        body: Callable[[], None],
        nbytes: int = 0,
        flops: int = 0,
        tag: str | None = None,
        accesses=None,
        host_reads: tuple[HostRegion, ...] = (),
        host_writes: tuple[HostRegion, ...] = (),
    ) -> None:
        tags: dict = {}
        if tag is not None:
            tags["tag"] = tag
        if accesses is not None:
            tags["accesses"] = accesses
        # Host-side identity of transfers, for the redundant-reload pass.
        if kind is OpKind.COPY_H2D and host_reads:
            tags["host_region"] = _host_tag(host_reads[0])
            tags["host_label"] = host_reads[0].label()
        elif kind is OpKind.COPY_D2H and host_writes:
            tags["host_region"] = _host_tag(host_writes[0])
            tags["host_label"] = host_writes[0].label()
        op = SimOp(
            name=name,
            engine=engine,
            kind=kind,
            duration=0.0,
            nbytes=nbytes,
            flops=flops,
            tags=tags,
        )
        self.graph.add_op(
            op,
            body=body if self._materialize else None,
            cost=self._cost(kind, nbytes, flops),
            accesses=accesses or (),
            host_reads=host_reads,
            host_writes=host_writes,
        )
        self._shape_hint = None

    def _cost(self, kind: OpKind, nbytes: int, flops: int) -> float:
        """Model-seconds cost hint from the §2 hardware model. Shapes for
        compute ops come from thin overrides that stash ``_shape_hint``
        before delegating to the parent implementation."""
        cfg = self.config
        if kind is OpKind.COPY_H2D:
            return cfg.transfer.time(nbytes, Direction.H2D)
        if kind is OpKind.COPY_D2H:
            return cfg.transfer.time(nbytes, Direction.D2H)
        if kind is OpKind.COPY_D2D:
            return cfg.transfer.time(nbytes, Direction.D2D)
        hint = self._shape_hint
        if hint is not None:
            what, dims = hint
            if what == "gemm":
                m, n, k = dims
                return cfg.gemm.time(m, n, k, cfg.precision)
            if what == "panel":
                rows, cols = dims
                return cfg.panel.time(rows, cols)
        # trsm / LU / Cholesky panels (legacy-path engines run through
        # graph adapters only): coarse CUDA-core estimate.
        return flops / cfg.gpu.cuda_peak_flops if flops else 0.0

    # shape-stashing overrides: recompute op dimensions, then delegate

    def gemm(self, c, a, b, stream, *, alpha=1.0, beta=0.0, trans_a=False,
             trans_b=False, tag="gemm"):
        m, n, k = self._gemm_dims(
            as_view(c), as_view(a), as_view(b), trans_a, trans_b
        )
        self._shape_hint = ("gemm", (m, n, k))
        super().gemm(c, a, b, stream, alpha=alpha, beta=beta,
                     trans_a=trans_a, trans_b=trans_b, tag=tag)

    def panel_qr(self, panel, r_out, stream, *, tag="panel"):
        view = as_view(panel)
        self._shape_hint = ("panel", (view.rows, view.cols))
        super().panel_qr(panel, r_out, stream, tag=tag)

    def panel_lu(self, panel, u_out, stream, *, tag="panel-lu"):
        view = as_view(panel)
        self._shape_hint = ("panel-lu", (view.rows, view.cols))
        super().panel_lu(panel, u_out, stream, tag=tag)

    def panel_cholesky(self, panel, stream, *, tag="panel-chol"):
        view = as_view(panel)
        self._shape_hint = ("panel-chol", (view.rows, view.cols))
        super().panel_cholesky(panel, stream, tag=tag)

    def trsm(self, a_tri, b, stream, *, lower=True, unit_diag=False,
             trans_a=False, tag="trsm"):
        view = as_view(b)
        self._shape_hint = ("trsm", (view.rows, view.cols))
        super().trsm(a_tri, b, stream, lower=lower, unit_diag=unit_diag,
                     trans_a=trans_a, tag=tag)

    # -- memory -----------------------------------------------------------------

    def alloc(self, rows: int, cols: int, name: str = "buf") -> DeviceBuffer:
        nbytes = rows * cols * self.config.element_bytes
        buf = DeviceBuffer(name=name, rows=rows, cols=cols)
        # Eager accounting: planning parity with the legacy executors.
        buf.payload["allocation"] = self.allocator.alloc(nbytes, name=name)
        self.graph.add_alloc(buf, nbytes)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        if buf.freed or buf.payload.get(_GRAPH_FREED):
            raise ExecutionError(f"double free of device buffer {buf.name!r}")
        buf.payload[_GRAPH_FREED] = True
        self.allocator.free(buf.payload["allocation"])
        self.graph.add_free(buf)

    def _check_live(self, *views: DeviceView) -> None:
        # Build-time liveness: payload data does not exist yet (the alloc
        # *task* creates it), so check allocation records and the
        # graph-freed flag rather than the execution-time payload.
        for view in views:
            buf = view.buffer
            if buf.freed or buf.payload.get(_GRAPH_FREED):
                raise ExecutionError(
                    f"use of freed device buffer {buf.name!r}"
                )
            if "allocation" not in buf.payload:
                raise ExecutionError(
                    f"device buffer {buf.name!r} was not allocated by this "
                    "builder"
                )


def _host_tag(region: HostRegion) -> tuple[int, int, int, int, int]:
    """Stable identity of a host region for redundancy analysis — same
    scheme as ``CaptureExecutor._host_tag``."""
    return (
        id(region.matrix), region.row0, region.row1, region.col0, region.col1
    )


__all__ = ["GraphBuilder"]
