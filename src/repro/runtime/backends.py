"""Execution backends for scheduled task graphs.

A backend is anything with ``execute(task)`` (plus an optional
``finish(graph)`` hook): the scheduler decides *when* a task runs, the
backend decides *what* running means.

* :class:`NumericGraphBackend` — runs the recorded numeric closures
  against real payload arrays; the graph must have been built with
  ``materialize=True``. Allocator pseudo-tasks replay the build-time
  alloc/free sequence on the backend's own
  :class:`~repro.sim.memory.DeviceAllocator` (the ``alloc`` task creates
  the payload array lazily, ``free`` drops it), so execution-time peak
  memory is exactly the build-time — and hence the legacy — peak.
* :class:`SimGraphBackend` — translates the whole graph onto the
  discrete-event :class:`~repro.sim.simulator.GpuSimulator`, one stream
  per engine class with the derived dataflow edges as cross-stream
  dependencies, and returns the simulated :class:`~repro.sim.trace.Trace`.
* :class:`RecordingBackend` — test double that just logs execution order.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.obs.clock import monotonic as _monotonic
from repro.obs.span import NULL_RECORDER
from repro.runtime.task import TaskGraph, TileTask
from repro.sim.memory import DeviceAllocator
from repro.sim.ops import EngineKind, SimOp
from repro.sim.simulator import GpuSimulator
from repro.sim.trace import Trace


class NumericGraphBackend:
    """Eager numeric execution of a materialized task graph.

    With a live span recorder (``obs=``) every executed task becomes a
    span on its engine lane carrying its task id and dependency edges,
    and alloc/free pseudo-tasks become instants on a ``mem`` lane — the
    measured counterpart of the sim backend's predicted timeline.
    """

    def __init__(self, config: SystemConfig, *, obs=None):
        self.config = config
        self.allocator = DeviceAllocator(config.usable_device_bytes)
        self._t0: float | None = None
        self._t0_lock = threading.Lock()
        self.wall_s = 0.0
        self.obs = obs if obs is not None else NULL_RECORDER
        # Task spans run on pool threads with no open span stack; parent
        # them under whatever span is open where the backend is built
        # (the api layer constructs it inside the run's root span).
        self._obs_parent = self.obs.current_id() if self.obs.enabled else None
        self._obs_t0 = 0.0

    def _now(self) -> float:
        if self._t0 is None:
            with self._t0_lock:
                if self._t0 is None:
                    if self.obs.enabled:
                        self._obs_t0 = self.obs.now()
                    self._t0 = _monotonic()
        return _monotonic() - self._t0

    def execute(self, task: TileTask) -> None:
        if task.mem == "alloc":
            buf = task.buffer
            assert buf is not None
            # Replay of the build-time allocation, now creating the data.
            buf.payload["exec-allocation"] = self.allocator.alloc(
                task.nbytes, name=buf.name
            )
            buf.payload["data"] = np.zeros(
                (buf.rows, buf.cols), dtype=np.float32
            )
            if self.obs.enabled:
                self.obs.event(
                    f"alloc {buf.name}", cat="mem", lane="mem",
                    parent_id=self._obs_parent,
                    attrs={"task": task.task_id, "nbytes": task.nbytes},
                )
            return
        if task.mem == "free":
            buf = task.buffer
            assert buf is not None
            self.allocator.free(buf.payload.pop("exec-allocation"))
            buf.payload.pop("data", None)
            buf.freed = True
            if self.obs.enabled:
                self.obs.event(
                    f"free {buf.name}", cat="mem", lane="mem",
                    parent_id=self._obs_parent,
                    attrs={"task": task.task_id},
                )
            return
        if task.body is None:
            raise ExecutionError(
                "task graph was built without numeric payloads "
                "(materialize=False); it can only be simulated or analyzed"
            )
        op = task.op
        assert op is not None
        op.start = self._now()
        task.body()
        op.end = self._now()
        op.duration = op.end - op.start
        if self.obs.enabled:
            attrs = {
                "task": task.task_id,
                "deps": [dep.task_id for dep in task.deps],
            }
            if op.nbytes:
                attrs["nbytes"] = op.nbytes
            if op.flops:
                attrs["flops"] = op.flops
            self.obs.record(
                op.name,
                op.start + self._obs_t0,
                op.end + self._obs_t0,
                cat=op.kind.value,
                lane=op.engine.value,
                parent_id=self._obs_parent,
                attrs=attrs,
            )

    def finish(self, graph: TaskGraph) -> None:
        if self._t0 is not None:
            self.wall_s = _monotonic() - self._t0
            graph.stats.wall_s = self.wall_s

    def recorded_trace(self, graph: TaskGraph) -> Trace:
        """Wall-clock trace of the executed ops (mirrors the concurrent
        executor's recorded trace: real timestamps, zero model time)."""
        trace = Trace()
        for op in graph.ops:
            if op.scheduled:
                trace.add(op)
        return trace


class SimGraphBackend:
    """Discrete-event simulation of a task graph.

    Unlike the eager backends this consumes the graph whole (``run``):
    the simulator owns scheduling inside its engine model, so the DAG
    scheduler's role collapses to handing over ops with their dataflow
    edges. Graph ops are *cloned* before enqueueing — the simulator
    mutates timestamps and stream FIFO edges, and the graph must stay
    pristine for analysis after the run.
    """

    def __init__(self, config: SystemConfig):
        self.config = config
        self.sim = GpuSimulator(config)

    def run(self, graph: TaskGraph) -> Trace:
        graph.validate()
        streams = {
            engine: self.sim.stream(f"dag-{engine.value}")
            for engine in EngineKind
        }
        clones: dict[int, SimOp] = {}
        for task in graph.tasks:
            if task.mem == "alloc":
                buf = task.buffer
                assert buf is not None
                buf.payload["sim-allocation"] = self.sim.allocator.alloc(
                    task.nbytes, name=buf.name
                )
                continue
            if task.mem == "free":
                buf = task.buffer
                assert buf is not None
                self.sim.allocator.free(buf.payload.pop("sim-allocation"))
                continue
            src = task.op
            assert src is not None
            op = SimOp(
                name=src.name,
                engine=src.engine,
                kind=src.kind,
                duration=task.cost,
                nbytes=src.nbytes,
                flops=src.flops,
                tags=dict(src.tags),
            )
            self.sim.enqueue(op, streams[src.engine])
            for dep in task.deps:
                mapped = clones.get(dep.task_id)
                if mapped is not None:
                    op.deps.add(mapped)
            clones[task.task_id] = op
        trace = self.sim.run()
        graph.stats.makespan = trace.makespan
        return trace


class RecordingBackend:
    """Test backend: thread-safely records the order tasks executed in."""

    def __init__(self):
        self.order: list[int] = []
        self._lock = threading.Lock()

    def execute(self, task: TileTask) -> None:
        if task.body is not None:
            task.body()
        with self._lock:
            self.order.append(task.task_id)


__all__ = ["NumericGraphBackend", "RecordingBackend", "SimGraphBackend"]
