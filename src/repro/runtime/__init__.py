"""Tile-task DAG dataflow runtime (ROADMAP item 1).

Engines emit :class:`TaskGraph` objects — tasks carrying engine class
(h2d/compute/d2h), tile read/write sets, and a cost hint — via
:class:`GraphBuilder`; :class:`DagScheduler` executes them with dynamic
dataflow scheduling (lookahead, work stealing) on either the numeric
backend or the discrete-event simulator; and
:func:`repro.analysis.verify_program` checks the graphs directly. See
``docs/runtime.md`` for the task model, scheduler semantics, and the
per-engine migration status.
"""

from repro.runtime.backends import (
    NumericGraphBackend,
    RecordingBackend,
    SimGraphBackend,
)
from repro.runtime.builder import GraphBuilder
from repro.runtime.engines import (
    ENGINE_RUNTIME_STATUS,
    GRAPH_BUILDERS,
    build_cholesky_graph,
    build_gemm_graph,
    build_lu_graph,
    build_qr_graph,
    verify_all_engine_graphs,
    verify_engine_graph,
)
from repro.runtime.scheduler import DagScheduler, GraphBackend
from repro.runtime.task import (
    TaskGraph,
    TileTask,
    edges_consistent,
    node_signature,
)

__all__ = [
    "ENGINE_RUNTIME_STATUS",
    "GRAPH_BUILDERS",
    "DagScheduler",
    "GraphBackend",
    "GraphBuilder",
    "NumericGraphBackend",
    "RecordingBackend",
    "SimGraphBackend",
    "TaskGraph",
    "TileTask",
    "build_cholesky_graph",
    "build_gemm_graph",
    "build_lu_graph",
    "build_qr_graph",
    "edges_consistent",
    "node_signature",
    "verify_all_engine_graphs",
    "verify_engine_graph",
]
