"""Tile-task DAG core: tasks, dataflow wiring, and the graph container.

A :class:`TileTask` is one unit of work bound to a hardware engine class
(H2D DMA, compute, D2H DMA — :class:`~repro.sim.ops.EngineKind`) plus the
two allocator pseudo-tasks (``alloc``/``free``). Instead of issuing ops
imperatively against streams and events, an engine run is *recorded* as a
:class:`TaskGraph` (by :class:`~repro.runtime.builder.GraphBuilder`) whose
dependency edges are derived purely from declared data accesses:

* **device dataflow** — a task depends on every earlier task whose device
  access overlaps one of its own with at least one writer (the same
  conflict predicate the race detector applies, so by construction every
  hazard pair carries a direct edge);
* **host coherence** — the same rule over declared host-region reads and
  writes (spill/reload round trips through host staging are ordered
  without any host-side blocking);
* **allocator order** — ``alloc``/``free`` tasks act as whole-buffer
  writers (a buffer's first toucher waits for its allocation, its free
  waits for its last toucher) and are additionally chained in emission
  order, so every schedule replays the allocator sequence of the legacy
  executors and the exact peak of §5.2's memory accounting is preserved.

The graph exposes the :class:`~repro.analysis.capture.CapturedProgram`
protocol (``config`` / ``ops`` / ``mem_events`` / ``stats`` / ``label`` /
``volume_hint``), so :func:`repro.analysis.verify.verify_program` checks a
task graph directly — races, lifetimes, exact peak memory, §3.2 transfer
volume — with no capture pass in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.capture import MemEvent
from repro.config import SystemConfig
from repro.errors import DeadlockError
from repro.execution.base import DeviceBuffer, RunStats
from repro.host.tiled import HostRegion
from repro.sim.ops import EngineKind, OpKind, SimOp
from repro.util.regions import rects_overlap

#: Device access record: ``(handle, row0, row1, col0, col1, is_write)`` —
#: identical to :data:`repro.sim.scheduler.DeviceAccess`.
Access = tuple[int, int, int, int, int, bool]


def _accesses_conflict(a: Access, b: Access) -> bool:
    if a[0] != b[0] or not (a[5] or b[5]):
        return False
    return rects_overlap((a[1], a[2]), (a[3], a[4]), (b[1], b[2]), (b[3], b[4]))


def _host_conflict(a: HostRegion, b: HostRegion) -> bool:
    if a.matrix is not b.matrix:
        return False
    return rects_overlap(
        (a.row0, a.row1), (a.col0, a.col1), (b.row0, b.row1), (b.col0, b.col1)
    )


@dataclass(eq=False)
class TileTask:
    """One node of a task graph.

    Identity semantics (``eq=False``): dependency sets hold tasks
    directly. Real work carries its recorded :class:`~repro.sim.ops.SimOp`
    in ``op`` (mem tasks have ``op=None`` and ``mem`` set), an optional
    executable ``body`` (numeric closures; ``None`` for symbolic graphs),
    and a ``cost`` hint in model seconds that schedulers and the simulated
    backend may use.
    """

    task_id: int
    op: SimOp | None = None
    mem: str = ""                 # "" | "alloc" | "free"
    body: Callable[[], None] | None = None
    cost: float = 0.0
    buffer: DeviceBuffer | None = None
    nbytes: int = 0
    deps: list["TileTask"] = field(default_factory=list)
    accesses: tuple[Access, ...] = ()
    host_reads: tuple[HostRegion, ...] = ()
    host_writes: tuple[HostRegion, ...] = ()

    @property
    def name(self) -> str:
        if self.op is not None:
            return self.op.name
        what = self.buffer.name if self.buffer is not None else "?"
        return f"{self.mem} {what}"

    @property
    def engine(self) -> EngineKind | None:
        """Engine class of the task (``None`` for allocator tasks)."""
        return self.op.engine if self.op is not None else None

    @property
    def kind(self) -> OpKind | None:
        return self.op.kind if self.op is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TileTask({self.task_id}, {self.name!r})"


class TaskGraph:
    """A recorded tile-task DAG, ready to schedule, simulate, or verify.

    Satisfies the captured-program protocol consumed by
    :func:`repro.analysis.verify.verify_program`: ``ops`` is the
    emission-ordered list of real op nodes (allocator tasks excluded)
    whose ``deps`` are the derived dataflow edges, and ``mem_events``
    is the allocator log positioned against that op list exactly like a
    capture's.
    """

    def __init__(self, config: SystemConfig, label: str = ""):
        self.config = config
        self.label = label
        self.tasks: list[TileTask] = []
        self.mem_events: list[MemEvent] = []
        self.stats = RunStats()
        #: §3.2 volume model hint ``(model, m, n, b)``; see CapturedProgram.
        self.volume_hint: tuple[str, int, int, int] | None = None
        self._ops: list[SimOp] = []
        # dataflow wiring state: per-buffer and per-host-matrix access logs
        self._device_log: dict[int, list[tuple[TileTask, Access]]] = {}
        self._host_log: dict[int, list[tuple[TileTask, HostRegion, bool]]] = {}
        self._last_mem: TileTask | None = None

    # -- protocol ---------------------------------------------------------------

    @property
    def ops(self) -> list[SimOp]:
        """Emission-ordered real ops (the verifier's op stream)."""
        return self._ops

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def n_tasks(self) -> int:
        """All tasks including allocator pseudo-tasks."""
        return len(self.tasks)

    # -- construction ------------------------------------------------------------

    def _link(self, task: TileTask, deps: Iterable[TileTask]) -> None:
        seen = set(map(id, task.deps))
        for dep in deps:
            if dep is task or id(dep) in seen:
                continue
            seen.add(id(dep))
            task.deps.append(dep)
            if task.op is not None and dep.op is not None:
                task.op.deps.add(dep.op)

    def _device_deps(self, task: TileTask, access: Access) -> list[TileTask]:
        log = self._device_log.setdefault(access[0], [])
        deps = [t for t, other in log if _accesses_conflict(access, other)]
        log.append((task, access))
        return deps

    def _host_deps(
        self, task: TileTask, region: HostRegion, write: bool
    ) -> list[TileTask]:
        log = self._host_log.setdefault(id(region.matrix), [])
        deps = [
            t
            for t, other, other_write in log
            if (write or other_write) and _host_conflict(region, other)
        ]
        log.append((task, region, write))
        return deps

    def add_op(
        self,
        op: SimOp,
        *,
        body: Callable[[], None] | None = None,
        cost: float = 0.0,
        accesses: Iterable[Access] = (),
        host_reads: tuple[HostRegion, ...] = (),
        host_writes: tuple[HostRegion, ...] = (),
    ) -> TileTask:
        """Record one real op; dataflow dependencies are derived from its
        device accesses and host regions (see module docstring)."""
        task = TileTask(
            task_id=len(self.tasks),
            op=op,
            body=body,
            cost=cost,
            accesses=tuple(accesses),
            host_reads=host_reads,
            host_writes=host_writes,
        )
        deps: list[TileTask] = []
        for access in task.accesses:
            deps.extend(self._device_deps(task, access))
        for region in host_reads:
            deps.extend(self._host_deps(task, region, False))
        for region in host_writes:
            deps.extend(self._host_deps(task, region, True))
        self._link(task, deps)
        self.tasks.append(task)
        self._ops.append(op)
        return task

    def _add_mem(self, kind: str, buf: DeviceBuffer, nbytes: int) -> TileTask:
        handle = buf.payload["allocation"].handle
        task = TileTask(
            task_id=len(self.tasks), mem=kind, buffer=buf, nbytes=nbytes
        )
        # whole-buffer write: orders the task against every touch of the
        # buffer (first toucher waits for alloc; free waits for the last)
        access: Access = (handle, 0, max(buf.rows, 1), 0, max(buf.cols, 1), True)
        deps = self._device_deps(task, access)
        if self._last_mem is not None:
            deps.append(self._last_mem)  # emission-order allocator chain
        self._link(task, deps)
        self._last_mem = task
        self.tasks.append(task)
        self.mem_events.append(
            MemEvent(kind, handle, buf.name, nbytes, len(self._ops), True)
        )
        return task

    def add_alloc(self, buf: DeviceBuffer, nbytes: int) -> TileTask:
        """Record a device allocation as a schedulable pseudo-task."""
        return self._add_mem("alloc", buf, nbytes)

    def add_free(self, buf: DeviceBuffer) -> TileTask:
        """Record a deferred free: it runs once every task touching the
        buffer has completed (its dataflow deps guarantee exactly that)."""
        return self._add_mem("free", buf, buf.payload["allocation"].nbytes)

    def add_dep(self, task: TileTask, dep: TileTask) -> None:
        """Add an explicit edge ``dep -> task`` (tests, adapters). Unlike
        derived edges this may create a cycle — :meth:`validate` (run by
        every scheduler entry point) turns that into a
        :class:`~repro.errors.DeadlockError` instead of a hang."""
        self._link(task, [dep])

    # -- structure checks ---------------------------------------------------------

    def validate(self) -> None:
        """Kahn's algorithm over the task DAG; cyclic graphs raise
        :class:`~repro.errors.DeadlockError` naming the stuck tasks."""
        indegree: dict[int, int] = {
            t.task_id: len(t.deps) for t in self.tasks
        }
        dependents: dict[int, list[TileTask]] = {}
        for t in self.tasks:
            for dep in t.deps:
                dependents.setdefault(dep.task_id, []).append(t)
        ready = [t for t in self.tasks if not t.deps]
        done = 0
        while ready:
            task = ready.pop()
            done += 1
            for dependent in dependents.get(task.task_id, ()):
                indegree[dependent.task_id] -= 1
                if indegree[dependent.task_id] == 0:
                    ready.append(dependent)
        if done != len(self.tasks):
            stuck = [t for t in self.tasks if indegree[t.task_id] > 0]
            raise DeadlockError(stuck)

    def signature(self) -> list[tuple[str, str, str, tuple[int, ...]]]:
        """Canonical ``(engine, kind, name, dep-indices)`` form of the real
        op stream — comparable against
        :func:`repro.sim.scheduler.happens_before_signature` output."""
        from repro.sim.scheduler import happens_before_signature

        return happens_before_signature(self._ops)


def node_signature(ops: Iterable[SimOp]) -> list[tuple[str, str, str]]:
    """Dependency-free node identity of an op stream: ``(engine, kind,
    name)`` per op in issue order. Legacy executors wire stream-FIFO/event
    edges and the DAG runtime wires dataflow edges, so full happens-before
    signatures differ by design; node-for-node equality plus
    :func:`edges_consistent` is the cross-runtime comparison."""
    return [(op.engine.value, op.kind.value, op.name) for op in ops]


def edges_consistent(graph_ops: list[SimOp], legacy_ops: list[SimOp]) -> bool:
    """Whether the DAG's dependency structure is compatible with the
    legacy program's.

    Both op lists must be node-for-node identical (same engines/kinds/
    names in the same issue order — check :func:`node_signature` first).
    Two directions are proved:

    1. *No contradiction*: every DAG edge points backward in the shared
       issue order, so the DAG never inverts an ordering the legacy
       serial schedule established. (Host-coherence edges may *add*
       ordering the legacy capture leaves to its executor's internal
       host-dependency tracking — that is a refinement, not a conflict.)
    2. *No dropped dataflow*: every direct legacy dependency edge between
       two ops with conflicting device accesses is covered by the DAG's
       happens-before closure.
    """
    if len(graph_ops) != len(legacy_ops):
        return False
    graph_index = {id(op): i for i, op in enumerate(graph_ops)}
    n = len(graph_ops)
    reach = [0] * n  # bitmask of graph ops that happen-before op i (incl. i)
    for i, op in enumerate(graph_ops):
        mask = 1 << i
        for dep in op.deps:
            j = graph_index.get(id(dep))
            if j is None:
                continue
            if j >= i:  # forward edge: contradicts the legacy order
                return False
            mask |= reach[j]
        reach[i] = mask
    legacy_index = {id(op): i for i, op in enumerate(legacy_ops)}
    for i, op in enumerate(legacy_ops):
        for dep in op.deps:
            j = legacy_index.get(id(dep))
            if j is None or not _device_conflict(op, dep):
                continue
            if not reach[i] & (1 << j):
                return False
    return True


def _device_conflict(a: SimOp, b: SimOp) -> bool:
    """Whether two ops touch overlapping device data with a writer."""
    for access_a in a.tags.get("accesses", ()):
        for access_b in b.tags.get("accesses", ()):
            if _accesses_conflict(access_a, access_b):
                return True
    return False


__all__ = [
    "Access",
    "TaskGraph",
    "TileTask",
    "edges_consistent",
    "node_signature",
]
