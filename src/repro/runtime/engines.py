"""Graph adapters: build task graphs from every shipped OOC engine.

These mirror the ``capture_*`` drivers in :mod:`repro.analysis.engines`,
but record a first-class :class:`~repro.runtime.task.TaskGraph` with a
:class:`~repro.runtime.builder.GraphBuilder` instead of a flat captured
op stream. :data:`GRAPH_BUILDERS` is the registry the CLI ``analyze
--what graphs`` sweep and the CI ``runtime-dag`` leg iterate.

Migration status lives in :data:`ENGINE_RUNTIME_STATUS`: engines marked
``"dag"`` also *execute* through ``runtime="dag"`` on the public APIs
(blocking QR, recursive QR, TSQR panels, both OOC GEMM engines); the
rest (LU/Cholesky) stay on the legacy execution path but register graph
adapters here so the verifier sweep covers their DAGs ahead of the
follow-up migration. TSQR's migration is also what anchors the
``repro.dist`` bitwise chain: sharded numeric QR == single-device TSQR
== the dag-executed OOC path.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.analysis.verify import AnalysisReport, verify_program
from repro.config import PAPER_SYSTEM, SystemConfig
from repro.host.tiled import HostMatrix
from repro.qr.options import QrOptions
from repro.runtime.builder import GraphBuilder
from repro.runtime.task import TaskGraph


def _options(b: int, options: QrOptions | None) -> QrOptions:
    if options is None:
        return QrOptions(blocksize=b)
    return replace(options, blocksize=b)


def build_qr_graph(
    config: SystemConfig,
    m: int,
    n: int,
    b: int,
    *,
    method: str = "blocking",
    options: QrOptions | None = None,
    label: str | None = None,
) -> TaskGraph:
    """Record one OOC QR run (blocking or recursive) as a task graph."""
    from repro.qr.blocking import ooc_blocking_qr
    from repro.qr.recursive import ooc_recursive_qr

    eb = config.element_bytes
    ex = GraphBuilder(
        config,
        label=label or f"qr-{method}[dag] {m}x{n} b={b}",
        materialize=False,
    )
    a = HostMatrix.shape_only(m, n, eb, name="A")
    r = HostMatrix.shape_only(n, n, eb, name="R")
    driver = ooc_recursive_qr if method == "recursive" else ooc_blocking_qr
    driver(ex, a, r, _options(b, options))
    ex.allocator.check_balanced()
    graph = ex.graph
    graph.volume_hint = (method, m, n, min(b, n))
    return graph


def build_lu_graph(
    config: SystemConfig,
    n: int,
    b: int,
    *,
    method: str = "blocking",
    options: QrOptions | None = None,
) -> TaskGraph:
    """Record one OOC LU run (square, unpivoted) as a task graph."""
    from repro.factor.lu import ooc_blocking_lu, ooc_recursive_lu

    ex = GraphBuilder(
        config, label=f"lu-{method}[dag] {n}x{n} b={b}", materialize=False
    )
    a = HostMatrix.shape_only(n, n, config.element_bytes, name="A")
    driver = ooc_recursive_lu if method == "recursive" else ooc_blocking_lu
    driver(ex, a, _options(b, options))
    ex.allocator.check_balanced()
    graph = ex.graph
    graph.volume_hint = (method, n, n, min(b, n))
    return graph


def build_cholesky_graph(
    config: SystemConfig,
    n: int,
    b: int,
    *,
    method: str = "blocking",
    options: QrOptions | None = None,
) -> TaskGraph:
    """Record one OOC Cholesky run (square SPD) as a task graph."""
    from repro.factor.cholesky import (
        ooc_blocking_cholesky,
        ooc_recursive_cholesky,
    )

    ex = GraphBuilder(
        config, label=f"chol-{method}[dag] {n}x{n} b={b}", materialize=False
    )
    a = HostMatrix.shape_only(n, n, config.element_bytes, name="A")
    driver = (
        ooc_recursive_cholesky if method == "recursive" else ooc_blocking_cholesky
    )
    driver(ex, a, _options(b, options))
    ex.allocator.check_balanced()
    graph = ex.graph
    graph.volume_hint = (method, n, n, min(b, n))
    return graph


def build_gemm_graph(
    config: SystemConfig,
    m: int,
    n: int,
    k: int,
    b: int,
    *,
    kind: str = "inner",
    pipelined: bool = True,
) -> TaskGraph:
    """Record one OOC GEMM run (k-split inner or row-streaming outer)."""
    from repro.ooc.inner import run_ksplit_inner
    from repro.ooc.outer import run_rowstream_outer
    from repro.ooc.plan import plan_ksplit_inner, plan_rowstream_outer

    eb = config.element_bytes
    ex = GraphBuilder(
        config, label=f"gemm-{kind}[dag] {m}x{n}x{k} b={b}", materialize=False
    )
    budget = ex.allocator.free_bytes // eb
    if kind == "inner":
        a = HostMatrix.shape_only(k, m, eb, name="A")
        bm = HostMatrix.shape_only(k, n, eb, name="B")
        c = HostMatrix.shape_only(m, n, eb, name="C")
        plan = plan_ksplit_inner(k, m, n, min(b, k), budget)
        run_ksplit_inner(
            ex, a.full(), bm.full(), c.full(), plan, pipelined=pipelined
        )
    else:
        a = HostMatrix.shape_only(m, k, eb, name="A")
        bm = HostMatrix.shape_only(k, n, eb, name="B")
        c = HostMatrix.shape_only(m, n, eb, name="C")
        plan = plan_rowstream_outer(m, k, n, min(b, m), budget)
        run_rowstream_outer(
            ex, c.full(), a.full(), bm.full(), plan, pipelined=pipelined
        )
    ex.allocator.check_balanced()
    return ex.graph


#: Graph registry for the sweep: name -> builder(config, m, n, b), with
#: the exact argument conventions of ``ENGINE_CAPTURES`` (GEMM entries
#: fold the reduction dimension into m).
GRAPH_BUILDERS: dict[
    str, Callable[[SystemConfig, int, int, int], TaskGraph]
] = {
    "qr-blocking": lambda cfg, m, n, b: build_qr_graph(
        cfg, m, n, b, method="blocking"
    ),
    "qr-recursive": lambda cfg, m, n, b: build_qr_graph(
        cfg, m, n, b, method="recursive"
    ),
    "qr-tsqr": lambda cfg, m, n, b: build_qr_graph(
        replace(cfg, panel_algorithm="tsqr"), m, n, b, method="recursive",
        label=f"qr-tsqr[dag] {m}x{n} b={b}",
    ),
    "lu-blocking": lambda cfg, m, n, b: build_lu_graph(
        cfg, n, b, method="blocking"
    ),
    "lu-recursive": lambda cfg, m, n, b: build_lu_graph(
        cfg, n, b, method="recursive"
    ),
    "chol-blocking": lambda cfg, m, n, b: build_cholesky_graph(
        cfg, n, b, method="blocking"
    ),
    "chol-recursive": lambda cfg, m, n, b: build_cholesky_graph(
        cfg, n, b, method="recursive"
    ),
    "gemm-inner": lambda cfg, m, n, b: build_gemm_graph(
        cfg, n, n, m, b, kind="inner"
    ),
    "gemm-outer": lambda cfg, m, n, b: build_gemm_graph(
        cfg, m, n, n, b, kind="outer"
    ),
}

#: Per-engine migration status: "dag" = executable via ``runtime="dag"``
#: on the public APIs; "graph-adapter" = DAG built and verified here,
#: execution still on the legacy path (follow-up migration).
ENGINE_RUNTIME_STATUS: dict[str, str] = {
    "qr-blocking": "dag",
    "qr-recursive": "dag",
    "qr-tsqr": "dag",
    "lu-blocking": "graph-adapter",
    "lu-recursive": "graph-adapter",
    "chol-blocking": "graph-adapter",
    "chol-recursive": "graph-adapter",
    "gemm-inner": "dag",
    "gemm-outer": "dag",
}


def verify_engine_graph(
    name: str,
    config: SystemConfig | None = None,
    *,
    m: int = 96,
    n: int = 64,
    b: int = 16,
    tolerance: float | None = None,
    precision=None,
) -> AnalysisReport:
    """Build one registry engine's task graph and verify it directly —
    no capture pass; ``verify_program`` consumes the DAG itself.
    ``tolerance`` / ``precision`` flow through to the precision pass."""
    config = config or PAPER_SYSTEM
    graph = GRAPH_BUILDERS[name](config, m, n, b)
    floor = None
    if name.startswith("qr-"):
        floor = m * n
    return verify_program(
        graph,
        input_floor_words=floor,
        tolerance=tolerance,
        precision=precision,
    )


def verify_all_engine_graphs(
    config: SystemConfig | None = None,
    *,
    m: int = 96,
    n: int = 64,
    b: int = 16,
) -> dict[str, AnalysisReport]:
    """Verify every registry engine's task graph at one (small) shape."""
    return {
        name: verify_engine_graph(name, config, m=m, n=n, b=b)
        for name in GRAPH_BUILDERS
    }


__all__ = [
    "ENGINE_RUNTIME_STATUS",
    "GRAPH_BUILDERS",
    "build_cholesky_graph",
    "build_gemm_graph",
    "build_lu_graph",
    "build_qr_graph",
    "verify_all_engine_graphs",
    "verify_engine_graph",
]
