"""Configuration for the numerical-health sentinel.

``HealthOptions`` is a field of :class:`repro.qr.options.QrOptions`, so it
rides along everywhere options already go: the checkpoint config
fingerprint (``run_fingerprint`` hashes every options field), the serve
cache key, and the CLI. Three modes:

* ``off``      — no probes, zero overhead (the default).
* ``monitor``  — probes run and populate a :class:`~repro.health.report.
  HealthReport`, but never change the computation. Non-finite data still
  raises (silently wrong output is never acceptable).
* ``escalate`` — probes run AND the escalation ladder reacts per panel:
  base panel algorithm -> CGS2 reorthogonalization -> TSQR, plus raising
  the GEMM emulation precision for trailing updates once a panel has
  escalated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

#: Valid sentinel modes.
HEALTH_MODES = ("off", "monitor", "escalate")


@dataclass(frozen=True)
class HealthOptions:
    """Knobs for :class:`repro.health.sentinel.HealthSentinel`."""

    #: One of :data:`HEALTH_MODES`.
    mode: str = "off"
    #: Sample 1-in-``stride`` h2d transfers / GEMM outputs for NaN/Inf
    #: scans. 1 scans everything; larger strides cut probe cost.
    stride: int = 1
    #: Loss-of-orthogonality above this triggers an escalation (escalate
    #: mode) or a drift record (monitor mode). Applied to both the local
    #: panel Gram probe and the cross-panel probe. The default sits an
    #: order of magnitude above the fp16 input-rounding floor (~2^-11),
    #: so healthy reduced-precision runs pass while O(kappa^2 u) CGS
    #: collapse trips it.
    drift_threshold: float = 1e-2
    #: Column-norm collapse factor: a panel column whose norm shrinks by
    #: more than this factor during orthogonalization counts as a
    #: breakdown candidate (CGS cancellation signature).
    breakdown_tol: float = 1e-7

    def __post_init__(self) -> None:
        if self.mode not in HEALTH_MODES:
            raise ValidationError(
                f"health mode must be one of {HEALTH_MODES}, got {self.mode!r}"
            )
        if not isinstance(self.stride, int) or self.stride < 1:
            raise ValidationError(
                f"health stride must be a positive int, got {self.stride!r}"
            )
        if not self.drift_threshold > 0.0:
            raise ValidationError(
                f"drift_threshold must be positive, got {self.drift_threshold!r}"
            )
        if not self.breakdown_tol > 0.0:
            raise ValidationError(
                f"breakdown_tol must be positive, got {self.breakdown_tol!r}"
            )

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def escalating(self) -> bool:
        return self.mode == "escalate"
