"""Health report: what the sentinel saw during one run.

Attached to :class:`repro.qr.blocking.QrRunInfo` /
:class:`repro.factor.common.FactorRunInfo`, carried on raised
:class:`repro.errors.NumericalError` instances, and mirrored into the
serve metrics registry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Escalation:
    """One recorded escalation decision."""

    #: Driver panel index (or -1 when outside a panel context).
    panel: int
    #: What tripped the escalation (``drift``, ``breakdown``,
    #: ``non-finite-gemm``, ...).
    trigger: str
    #: Ladder rung applied (``cgs2-reorth``, ``tsqr-panel``,
    #: ``gemm-fp32``, ...).
    action: str
    #: Measured value that crossed the threshold (drift estimate, norm
    #: ratio, ...); 0.0 when not applicable.
    value: float = 0.0

    def describe(self) -> str:
        return f"panel {self.panel}: {self.trigger} -> {self.action} ({self.value:.3e})"


@dataclass
class HealthReport:
    """Mutable accumulator the sentinel fills in; frozen-in-spirit once a
    run completes (drivers hand out the same instance they populated)."""

    mode: str = "off"
    #: NaN/Inf scans actually executed (post-stride sampling).
    probes_run: int = 0
    #: Per-panel probes (drift + breakdown checks).
    panel_probes: int = 0
    #: Worst per-panel loss-of-orthogonality estimate seen.
    worst_drift: float = 0.0
    #: Panels whose drift exceeded the threshold (monitor mode records
    #: them; escalate mode also reacts).
    drift_events: int = 0
    #: fp16/bf16 quantization overflows (finite value rounded to +/-inf).
    overflow_count: int = 0
    #: fp16/bf16 quantization underflows (nonzero value rounded to zero).
    underflow_count: int = 0
    #: Every escalation taken, in order.
    escalations: list[Escalation] = field(default_factory=list)
    #: GEMM input format forced for trailing updates after an escalation
    #: (None = never raised).
    gemm_format_override: str | None = None

    @property
    def n_escalations(self) -> int:
        return len(self.escalations)

    def record_escalation(
        self, panel: int, trigger: str, action: str, value: float = 0.0
    ) -> Escalation:
        esc = Escalation(panel=panel, trigger=trigger, action=action, value=value)
        self.escalations.append(esc)
        return esc

    def summary(self) -> str:
        """One-line human summary (CLI prints this next to the checkpoint
        summary)."""
        worst = f"{self.worst_drift:.3e}" if self.panel_probes else "n/a"
        line = (
            f"health[{self.mode}]: probes={self.probes_run} "
            f"panel_probes={self.panel_probes} worst_drift={worst} "
            f"escalations={self.n_escalations}"
        )
        if self.overflow_count or self.underflow_count:
            line += (
                f" overflow={self.overflow_count}"
                f" underflow={self.underflow_count}"
            )
        if self.escalations:
            line += f" [{self.escalations[0].describe()}" + (
                f" +{self.n_escalations - 1} more]" if self.n_escalations > 1 else "]"
            )
        return line

    def to_dict(self) -> dict:
        """JSON-friendly form (serve job results, metrics snapshots)."""
        d = asdict(self)
        d["n_escalations"] = self.n_escalations
        return d
