"""Runtime numerical-health sentinel.

One :class:`HealthSentinel` is attached to an executor per run (the api
layer builds it from ``options.health``); the executor's op bodies call
the probe hooks, and the OOC drivers notify panel boundaries so probe
results can be attributed to panels/column ranges.

Concurrency & determinism
-------------------------
The concurrent executor guarantees bitwise-identical results to the
serial one, and the sentinel must not break that. Probe sampling uses
*per-kind* counters: all h2d probes run on the h2d worker in FIFO issue
order, and all gemm/panel probes run on the single compute worker in
FIFO issue order, so each counter sees a deterministic sequence
regardless of thread interleaving. Escalation state (the GEMM format
override) is read and written only inside compute-engine op bodies,
i.e. on one thread, in issue order. The shared :class:`HealthReport`
tallies are guarded by a lock only to avoid lost updates; their final
values are interleaving-independent.

Escalation ladder (``mode="escalate"``)
---------------------------------------
Per panel, in order, until the panel probes pass:

1. the configured base panel algorithm (what already ran);
2. a CGS2-style reorthogonalization pass — factor the computed Q again
   and merge the triangular factors ("twice is enough", Giraud et al.);
3. a TSQR panel (communication-optimal, unconditionally backward stable
   — Demmel et al.).

The ladder above guards the panel *locally*. The classic CGS failure
mode is global: single-projection block CGS loses orthogonality
*between* panels at O(kappa^2 u) even when every panel basis is locally
orthonormal (the in-core panels run CGS2 internally, so a local Gram
probe stays clean while the assembled Q collapses). That is caught by a
second, driver-level probe (:meth:`HealthSentinel.probe_host_panel`):
at each panel boundary the finished panel is tested against a sample of
previously finalized Q columns, and in escalate mode a drifted panel is
*block-reorthogonalized* against all previous columns (block CGS2 on
demand) with the exact triangular bookkeeping folded into host R.

The first time any panel escalates, trailing-update GEMMs are also
raised to fp32 emulation for the rest of the run: a panel that broke
under reduced precision poisons every trailing update it feeds.
If the ladder is exhausted the run refuses with a typed
:class:`~repro.errors.NumericalError` instead of returning garbage.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

import numpy as np

from repro.errors import (
    BreakdownError,
    EscalationExhaustedError,
    NonFiniteError,
)
from repro.health.options import HealthOptions
from repro.health.report import Escalation, HealthReport
from repro.obs.span import NULL_RECORDER
from repro.tc.precision import QuantStats

#: GEMM input formats the escalation policy will raise to fp32.
_LOW_PRECISION_FORMATS = ("fp16", "bf16", "tf32")

#: Previously-finalized Q columns sampled by the cross-panel probe
#: (evenly spaced over [0, col0), deterministic — no RNG).
CROSS_SAMPLE_COLUMNS = 64


class HealthSentinel:
    """Per-run numerical-health monitor and escalation policy."""

    def __init__(
        self, options: HealthOptions, *, base_format: str = "fp32", obs=None
    ):
        self.options = options
        self.base_format = base_format
        #: Span recorder (repro.obs): escalations surface as instant
        #: events on a ``health`` lane of the run timeline.
        self.obs = obs if obs is not None else NULL_RECORDER
        self.report = HealthReport(mode=options.mode)
        self.quant_stats = QuantStats() if options.enabled else None
        self._counts: dict[str, int] = {}
        self._gemm_override: str | None = None
        # Once cross-panel drift is detected the run has proven itself
        # ill-conditioned for single-pass block CGS: from then on every
        # panel is reorthogonalized, not just the ones above threshold
        # (the adaptive-reorthogonalization criterion; residual drift
        # just under the alarm would otherwise cap final orthogonality
        # at ~drift_threshold).
        self._reorth_sticky = False
        # (panel_index, col0, col1) queued by the driver at issue time;
        # consumed by panel probes in the same FIFO order the compute
        # worker executes panel bodies.
        self._panel_queue: deque[tuple[int, int, int]] = deque()
        self._last_panel = -1
        self._lock = threading.Lock()

    # -- cheap state queries (hot path) ---------------------------------------

    @property
    def enabled(self) -> bool:
        return self.options.enabled

    @property
    def escalating(self) -> bool:
        return self.options.escalating

    def gemm_format(self, base: str) -> str:
        """Input format trailing-update GEMMs should use right now."""
        return self._gemm_override or base

    # -- driver notifications --------------------------------------------------

    def note_panel(self, panel: int, col0: int = -1, col1: int = -1) -> None:
        """Driver hook: panel *panel* covering columns [col0, col1) was just
        issued. Call exactly once per ``panel_qr`` issue, in issue order."""
        if self.enabled:
            self._panel_queue.append((panel, col0, col1))

    def _record_escalation(
        self, panel: int, trigger: str, action: str, value: float = 0.0
    ) -> None:
        """Tally one escalation and surface it on the observability
        timeline (zero-duration ``health`` event)."""
        with self._lock:
            self.report.record_escalation(panel, trigger, action, value)
        if self.obs.enabled:
            self.obs.event(
                f"escalate:{action}", cat="health", lane="health",
                attrs={"panel": panel, "trigger": trigger, "value": value},
            )

    # -- probes (called from op bodies) ---------------------------------------

    def _sampled(self, kind: str) -> bool:
        n = self._counts.get(kind, 0)
        self._counts[kind] = n + 1
        return n % self.options.stride == 0

    def check_h2d(self, data: np.ndarray, name: str) -> None:
        """NaN/Inf scan on a host-to-device transfer result. Non-finite
        *input* data is unrecoverable in every mode: refuse at the source."""
        if not self.enabled or not self._sampled("h2d"):
            return
        with self._lock:
            self.report.probes_run += 1
        if not np.isfinite(data).all():
            raise NonFiniteError(
                f"h2d transfer {name!r} carried non-finite values",
                report=self.finalize(),
            )

    def check_d2h(self, data: np.ndarray, name: str) -> None:
        """NaN/Inf scan on a device-to-host writeback — the last probed
        boundary before results land on the host. Refuses in every mode."""
        if not self.enabled or not self._sampled("d2h"):
            return
        with self._lock:
            self.report.probes_run += 1
        if not np.isfinite(data).all():
            raise NonFiniteError(
                f"d2h writeback {name!r} carried non-finite values",
                report=self.finalize(),
            )

    def check_gemm(
        self, out: np.ndarray, name: str, retry_fp32: Callable[[], None] | None
    ) -> None:
        """NaN/Inf scan on a GEMM output.

        In escalate mode a non-finite output is recomputed once at fp32
        emulation (*retry_fp32*), and the run-wide GEMM override is raised
        so later updates don't re-overflow; if the retry still produces
        non-finite values (the inputs were already poisoned) the run
        refuses. Monitor mode refuses immediately.
        """
        if not self.enabled or not self._sampled("gemm"):
            return
        with self._lock:
            self.report.probes_run += 1
        if np.isfinite(out).all():
            return
        if self.escalating and retry_fp32 is not None:
            self._record_escalation(
                self._current_panel(), "non-finite-gemm", "gemm-fp32-retry"
            )
            self._raise_gemm_precision("non-finite-gemm")
            retry_fp32()
            if np.isfinite(out).all():
                return
        raise NonFiniteError(
            f"gemm {name!r} produced non-finite values"
            + (" (fp32 retry did not recover)" if self.escalating else ""),
            report=self.finalize(),
        )

    def check_output(self, data: np.ndarray, name: str) -> None:
        """Generic non-finite refusal for LU/Cholesky/TRSM outputs (no
        QR-style ladder exists for those panels)."""
        if not self.enabled or not self._sampled("panel-out"):
            return
        with self._lock:
            self.report.probes_run += 1
        if not np.isfinite(data).all():
            raise NonFiniteError(
                f"{name!r} produced non-finite values", report=self.finalize()
            )

    # -- panel probe + escalation ladder --------------------------------------

    def _current_panel(self) -> int:
        """Panel context for non-panel probes: the most recently probed
        panel (trailing updates belong to the panel that produced them)."""
        return self._last_panel

    def _probe_panel(
        self, orig: np.ndarray, q: np.ndarray, r: np.ndarray
    ) -> tuple[str | None, float]:
        """Classify the factorization of *orig* into Q*R. Returns
        ``(problem, measure)`` with problem one of None, "non-finite",
        "breakdown", "drift"."""
        if not (np.isfinite(q).all() and np.isfinite(r).all()):
            return "non-finite", float("inf")
        # Column-norm collapse: |r_jj| tiny relative to the original
        # column norm means the column cancelled against earlier ones.
        col_norms = np.linalg.norm(orig.astype(np.float64), axis=0)
        diag = np.abs(np.diag(r).astype(np.float64))
        ref = np.maximum(col_norms, np.finfo(np.float64).tiny)
        ratio = float(np.min(diag / ref))
        if ratio < self.options.breakdown_tol:
            return "breakdown", ratio
        # Loss-of-orthogonality drift of the panel basis.
        q64 = q.astype(np.float64)
        gram = q64.T @ q64
        drift = float(np.linalg.norm(gram - np.eye(gram.shape[0])))
        with self._lock:
            self.report.worst_drift = max(self.report.worst_drift, drift)
        if drift > self.options.drift_threshold:
            return "drift", drift
        return None, drift

    def _raise_gemm_precision(self, trigger: str) -> None:
        """Escalate trailing-update GEMMs to fp32 emulation (once)."""
        if (
            self._gemm_override is None
            and self.base_format in _LOW_PRECISION_FORMATS
        ):
            self._gemm_override = "fp32"
            self._record_escalation(self._current_panel(), trigger, "gemm-fp32")
            with self._lock:
                self.report.gemm_format_override = self._gemm_override

    def after_panel(
        self,
        orig: np.ndarray,
        q: np.ndarray,
        r: np.ndarray,
        refactor: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probe a finished panel factorization and, in escalate mode, walk
        the ladder until it is healthy. *refactor* is the executor's base
        panel algorithm (used for the reorthogonalization rung)."""
        if not self.enabled:
            return q, r
        panel, col0, col1 = (
            self._panel_queue.popleft() if self._panel_queue else (-1, -1, -1)
        )
        self._last_panel = panel
        where = (
            f"panel {panel} (cols {col0}:{col1})" if panel >= 0 else "panel"
        )
        with self._lock:
            self.report.panel_probes += 1
        problem, value = self._probe_panel(orig, q, r)
        if problem is None:
            return q, r
        if problem == "non-finite" and not np.isfinite(orig).all():
            raise NonFiniteError(
                f"{where} input data is non-finite", report=self.finalize()
            )
        if not self.escalating:
            # Monitor mode records the event but never changes results —
            # except non-finite output, which is refused in every mode.
            with self._lock:
                self.report.drift_events += 1
            if problem == "non-finite":
                raise NonFiniteError(
                    f"{where} factorization produced non-finite values",
                    report=self.finalize(),
                )
            return q, r

        # Rung 2: CGS2-style reorthogonalization of the computed basis.
        with self._lock:
            self.report.drift_events += 1
        self._record_escalation(panel, problem, "cgs2-reorth", value)
        self._raise_gemm_precision(problem)
        if problem != "non-finite":
            q2, r2 = refactor(np.ascontiguousarray(q))
            q_new = np.asarray(q2, dtype=np.float32)
            r_new = (
                r2.astype(np.float64) @ r.astype(np.float64)
            ).astype(np.float32)
            problem2, value2 = self._probe_panel(orig, q_new, r_new)
            if problem2 is None:
                return q_new, r_new
        # Rung 3: TSQR from the original panel data.
        from repro.qr.tsqr import tsqr

        self._record_escalation(panel, problem, "tsqr-panel", value)
        q3, r3 = tsqr(orig.astype(np.float64))
        q3 = np.asarray(q3, dtype=np.float32)
        r3 = np.asarray(r3, dtype=np.float32)
        problem3, value3 = self._probe_panel(orig, q3, r3)
        if problem3 is None:
            return q3, r3
        if problem3 == "breakdown":
            raise BreakdownError(
                f"{where} has (numerically) dependent columns: min "
                f"|r_jj|/|a_j| = {value3:.3e} even under a TSQR panel",
                report=self.finalize(),
            )
        raise EscalationExhaustedError(
            f"{where} still unhealthy ({problem3}, {value3:.3e}) after "
            "cgs2-reorth and tsqr-panel escalation",
            report=self.finalize(),
        )

    # -- cross-panel probe (called from drivers at panel boundaries) -----------

    def probe_host_panel(
        self,
        a,
        r,
        panel: int,
        col0: int,
        col1: int,
    ) -> bool:
        """Driver hook: cross-panel orthogonality probe at a panel boundary.

        Called with the executor quiesced, after panel *panel* (host
        columns ``[col0, col1)`` of *a*) has been written back, so host A
        holds finalized Q columns in ``[0, col1)``. Measures the worst
        inner product between the new panel and a deterministic sample of
        previous Q columns — the drift a local panel Gram probe cannot
        see, because block CGS loses orthogonality *between* panels.

        In escalate mode a drifted panel is block-reorthogonalized
        against **all** previous columns and the correction is folded
        into host R exactly: with ``c = Q1ᵀ q`` and ``q − Q1 c = q' ρ``
        (Householder), ``Q1 R1J + q RJ  ==  Q1 (R1J + c RJ) + q' (ρ RJ)``
        for every R row block RJ of the panel, so ``A = QR`` is preserved
        while Q regains orthogonality. Trailing-update GEMMs are raised
        to fp32 at the first event.

        Returns True when host Q/R were modified — the caller must then
        drop any device-resident copy of the panel.
        """
        if not self.enabled or col0 <= 0:
            return False
        with self._lock:
            self.report.panel_probes += 1
        qp = a.data[:, col0:col1].astype(np.float64)
        sample = np.unique(
            np.linspace(
                0, col0 - 1, num=min(col0, CROSS_SAMPLE_COLUMNS)
            ).round().astype(np.intp)
        )
        cross = a.data[:, sample].astype(np.float64).T @ qp
        drift = float(np.max(np.abs(cross))) if cross.size else 0.0
        with self._lock:
            self.report.worst_drift = max(self.report.worst_drift, drift)
        tripped = drift > self.options.drift_threshold
        if tripped:
            with self._lock:
                self.report.drift_events += 1
        if not self.escalating or not (tripped or self._reorth_sticky):
            return False

        self._record_escalation(
            panel,
            "cross-drift" if tripped else "reorth-sticky",
            "block-reorth",
            drift,
        )
        self._reorth_sticky = True
        self._raise_gemm_precision("cross-drift")
        q_prev = a.data[:, :col0].astype(np.float64)
        # Project twice ("twice is enough"): a single projection leaves a
        # residual ~|c| * |I - Q1ᵀQ1| that the normalization can amplify
        # when the panel nearly cancels; the second pass squares it away.
        c = q_prev.T @ qp
        q2 = qp - q_prev @ c
        c2 = q_prev.T @ q2
        c += c2
        q_new, rho = np.linalg.qr(q2 - q_prev @ c2)
        rj = r.data[col0:col1, col0:].astype(np.float64)
        r.data[:col0, col0:] += (c @ rj).astype(np.float32)
        r.data[col0:col1, col0:] = (rho @ rj).astype(np.float32)
        a.data[:, col0:col1] = q_new.astype(np.float32)
        return True

    # -- lifecycle -------------------------------------------------------------

    def finalize(self) -> HealthReport:
        """Fold the live counters into the report and return it."""
        if self.quant_stats is not None:
            self.report.overflow_count = self.quant_stats.overflow
            self.report.underflow_count = self.quant_stats.underflow
        self.report.gemm_format_override = self._gemm_override
        return self.report

    # -- checkpoint integration ------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable escalation/probe state for checkpoint manifests.

        Restoring this on resume is what keeps a resumed run bitwise
        identical: in particular the GEMM format override must carry over
        or trailing updates after the restart would use a different
        precision than the original run."""
        self.finalize()
        return {
            "counts": dict(self._counts),
            "last_panel": self._last_panel,
            "gemm_format_override": self._gemm_override,
            "reorth_sticky": self._reorth_sticky,
            "probes_run": self.report.probes_run,
            "panel_probes": self.report.panel_probes,
            "worst_drift": self.report.worst_drift,
            "drift_events": self.report.drift_events,
            "overflow": self.report.overflow_count,
            "underflow": self.report.underflow_count,
            "escalations": [
                {
                    "panel": e.panel,
                    "trigger": e.trigger,
                    "action": e.action,
                    "value": e.value,
                }
                for e in self.report.escalations
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output on checkpoint resume."""
        self._counts = {k: int(v) for k, v in state.get("counts", {}).items()}
        self._last_panel = int(state.get("last_panel", -1))
        self._gemm_override = state.get("gemm_format_override")
        self._reorth_sticky = bool(state.get("reorth_sticky", False))
        self.report.probes_run = int(state.get("probes_run", 0))
        self.report.panel_probes = int(state.get("panel_probes", 0))
        self.report.worst_drift = float(state.get("worst_drift", 0.0))
        self.report.drift_events = int(state.get("drift_events", 0))
        self.report.gemm_format_override = self._gemm_override
        if self.quant_stats is not None:
            self.quant_stats.overflow = int(state.get("overflow", 0))
            self.quant_stats.underflow = int(state.get("underflow", 0))
        self.report.escalations = [
            Escalation(
                panel=int(e["panel"]), trigger=str(e["trigger"]),
                action=str(e["action"]), value=float(e.get("value", 0.0)),
            )
            for e in state.get("escalations", [])
        ]
        self.finalize()


#: Shared no-op sentinel (mode "off"): every hook early-returns.
NULL_SENTINEL = HealthSentinel(HealthOptions())
