"""Numerical-health sentinel: runtime probes, adaptive panel escalation,
typed refusal. See :mod:`repro.health.sentinel` for the design notes and
``docs/health.md`` for the user guide."""

from repro.health.options import HEALTH_MODES, HealthOptions
from repro.health.report import Escalation, HealthReport
from repro.health.sentinel import NULL_SENTINEL, HealthSentinel

__all__ = [
    "HEALTH_MODES",
    "HealthOptions",
    "Escalation",
    "HealthReport",
    "HealthSentinel",
    "NULL_SENTINEL",
]
