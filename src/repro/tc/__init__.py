"""TensorCore numerics emulation: input-format rounding and TC-GEMM."""

from repro.tc.gemm import tc_gemm
from repro.tc.split import split_fp16, split_gemm
from repro.tc.precision import (
    UNIT_ROUNDOFF,
    round_bf16,
    round_fp16,
    round_tf32,
    round_to,
)

__all__ = [
    "UNIT_ROUNDOFF",
    "round_bf16",
    "round_fp16",
    "round_tf32",
    "round_to",
    "split_fp16",
    "split_gemm",
    "tc_gemm",
]
