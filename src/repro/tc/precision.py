"""Floating-point rounding emulation for matrix-accelerator input formats.

TensorCore MMA instructions consume reduced-precision inputs and accumulate
in fp32. To study the *numerical* behaviour of CGS QR built on TC-GEMMs, we
round GEMM inputs through the target format in numpy:

* ``fp16``  — IEEE half (what the paper's V100 TensorCore consumes),
* ``bf16``  — bfloat16 (emulated by truncating the fp32 mantissa to 7 bits),
* ``tf32``  — Ampere's TensorFloat-32 (10-bit mantissa, fp32 exponent),
* ``fp32``  — identity (CUDA-core SGEMM).

All functions return fp32 arrays: the rounding models the *input* quantizer
of the accelerator; accumulation stays in fp32 as on real hardware.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

#: Unit roundoffs of the supported input formats (for error-bound tests
#: and the static precision verifier, :mod:`repro.analysis.precision`).
#: The split formats are *effective* input roundoffs of the Markidis-style
#: multi-term TC GEMM (:mod:`repro.tc.split`): three fp16 terms recover
#: ~22 bits of the input mantissa, four recover full fp32 (~2^-24).
UNIT_ROUNDOFF = {
    "fp16": 2.0**-11,
    "bf16": 2.0**-8,
    "tf32": 2.0**-11,
    "fp16x3": 2.0**-22,
    "fp16x4": 2.0**-24,
    "fp32": 2.0**-24,
    "fp64": 2.0**-53,
}


class QuantStats:
    """Counts quantization casualties of the input rounding.

    An *overflow* is a finite fp32 value that rounds to +/-inf in the
    target format; an *underflow* is a nonzero value that rounds to zero.
    The health sentinel hangs one of these off every run so the
    :class:`~repro.health.report.HealthReport` can attribute lost accuracy
    to range, not just precision.
    """

    __slots__ = ("overflow", "underflow")

    def __init__(self, overflow: int = 0, underflow: int = 0):
        self.overflow = int(overflow)
        self.underflow = int(underflow)

    def count(self, before: np.ndarray, after: np.ndarray) -> None:
        self.overflow += int(np.count_nonzero(np.isinf(after) & np.isfinite(before)))
        self.underflow += int(np.count_nonzero((after == 0.0) & (before != 0.0)))


def round_fp16(a: np.ndarray, stats: QuantStats | None = None) -> np.ndarray:
    """Round *a* through IEEE fp16 and return it as fp32.

    Values beyond the fp16 range overflow to +/-inf exactly as the hardware
    conversion would — callers that need safety must pre-scale (the paper's
    in-core QR [24] scales columns for the same reason). Pass *stats* to
    count the overflow/underflow casualties.
    """
    a32 = np.asarray(a, dtype=np.float32)
    with np.errstate(over="ignore"):
        out = a32.astype(np.float16).astype(np.float32)
    if stats is not None:
        stats.count(a32, out)
    return out


def _truncate_mantissa(a: np.ndarray, keep_bits: int) -> np.ndarray:
    """Round an fp32 array to *keep_bits* explicit mantissa bits
    (round-to-nearest-even via the integer representation)."""
    a32 = np.ascontiguousarray(a, dtype=np.float32)
    bits = a32.view(np.uint32)
    drop = 23 - keep_bits
    # round-half-to-even on the dropped bits
    lsb = np.uint32(1) << np.uint32(drop)
    bias = (lsb >> np.uint32(1)) - np.uint32(1)
    odd = (bits >> np.uint32(drop)) & np.uint32(1)
    rounded = (bits + bias + odd) & ~np.uint32(lsb - np.uint32(1))
    return rounded.view(np.float32).copy()


def round_bf16(a: np.ndarray, stats: QuantStats | None = None) -> np.ndarray:
    """Round *a* to bfloat16 precision (7 mantissa bits), returned as fp32."""
    a32 = np.asarray(a, dtype=np.float32)
    out = _truncate_mantissa(a32, keep_bits=7)
    if stats is not None:
        stats.count(a32, out)
    return out


def round_tf32(a: np.ndarray, stats: QuantStats | None = None) -> np.ndarray:
    """Round *a* to TF32 precision (10 mantissa bits), returned as fp32."""
    a32 = np.asarray(a, dtype=np.float32)
    out = _truncate_mantissa(a32, keep_bits=10)
    if stats is not None:
        stats.count(a32, out)
    return out


def round_to(a: np.ndarray, fmt: str, stats: QuantStats | None = None) -> np.ndarray:
    """Round *a* through input format *fmt* and return fp32."""
    if fmt == "fp16":
        return round_fp16(a, stats)
    if fmt == "bf16":
        return round_bf16(a, stats)
    if fmt == "tf32":
        return round_tf32(a, stats)
    if fmt == "fp32":
        return np.asarray(a, dtype=np.float32)
    raise ValidationError(f"unknown input format {fmt!r}")
