"""Numerical emulation of TensorCore GEMM (reduced-precision in, fp32 out).

``tc_gemm`` computes ``alpha * op(A) @ op(B) + beta * C`` with the inputs
rounded through the accelerator's input format and the product accumulated
in fp32 — the same contract as cublasGemmEx with CUDA_R_16F inputs and
CUDA_R_32F accumulation that the paper's implementation uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tc.precision import QuantStats, round_to


def tc_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    c: np.ndarray | None = None,
    trans_a: bool = False,
    trans_b: bool = False,
    input_format: str = "fp16",
    out: np.ndarray | None = None,
    quant_stats: QuantStats | None = None,
) -> np.ndarray:
    """Emulated TensorCore GEMM.

    Parameters
    ----------
    a, b
        Input operands (any float dtype; rounded through *input_format*).
    alpha, beta
        ``result = alpha * op(a) @ op(b) + beta * c``.
    c
        Accumulator operand; required when ``beta != 0``.
    trans_a, trans_b
        Apply transposition to ``a`` / ``b`` before multiplying.
    input_format
        One of ``fp16`` (default, V100 TensorCore), ``bf16``, ``tf32``,
        ``fp32``, or ``fp16x3`` / ``fp16x4`` (precision-splitting variants
        that recover near-fp32 accuracy from fp16 hardware — see
        :mod:`repro.tc.split`).
    out
        Optional fp32 output buffer, written in place and returned.
    quant_stats
        Optional :class:`~repro.tc.precision.QuantStats` accumulating the
        input-rounding overflow/underflow counts (health sentinel probes).

    Returns
    -------
    numpy.ndarray
        fp32 result of shape (m, n).
    """
    if input_format in ("fp16x3", "fp16x4"):
        from repro.tc.split import split_gemm

        return split_gemm(
            a,
            b,
            terms=3 if input_format == "fp16x3" else 4,
            alpha=alpha,
            beta=beta,
            c=c,
            trans_a=trans_a,
            trans_b=trans_b,
            out=out,
            quant_stats=quant_stats,
        )
    a_op = np.asarray(a).T if trans_a else np.asarray(a)
    b_op = np.asarray(b).T if trans_b else np.asarray(b)
    if a_op.ndim != 2 or b_op.ndim != 2:
        raise ShapeError(
            f"tc_gemm operands must be 2-D, got {a_op.ndim}-D and {b_op.ndim}-D"
        )
    if a_op.shape[1] != b_op.shape[0]:
        raise ShapeError(
            f"tc_gemm inner dimensions differ: op(A) is {a_op.shape}, "
            f"op(B) is {b_op.shape}"
        )
    m, n = a_op.shape[0], b_op.shape[1]

    a_r = round_to(a_op, input_format, quant_stats)
    b_r = round_to(b_op, input_format, quant_stats)
    # fp32 matmul of the rounded inputs = fp16-in / fp32-accumulate MMA.
    prod = a_r @ b_r
    if alpha != 1.0:
        prod *= np.float32(alpha)

    if beta != 0.0:
        if c is None:
            raise ShapeError("tc_gemm: beta != 0 requires operand c")
        c_arr = np.asarray(c, dtype=np.float32)
        if c_arr.shape != (m, n):
            raise ShapeError(
                f"tc_gemm: c has shape {c_arr.shape}, expected {(m, n)}"
            )
        prod += np.float32(beta) * c_arr

    if out is not None:
        if out.shape != (m, n):
            raise ShapeError(
                f"tc_gemm: out has shape {out.shape}, expected {(m, n)}"
            )
        np.copyto(out, prod.astype(np.float32, copy=False))
        return out
    return prod.astype(np.float32, copy=False)
