"""Precision-splitting GEMM: fp32 accuracy from fp16 TensorCore inputs.

The paper's numerical foundations ([16] Markidis et al., [24] Zhang et
al.) recover single-precision GEMM accuracy on half-precision hardware by
splitting each operand into a high and a low half,

    A = A_hi + A_lo,   A_hi = fp16(A),   A_lo = fp16(A - A_hi)

and accumulating the cross terms in fp32:

    A B  ~=  A_hi B_hi                       (1 TC GEMM, plain fp16)
         ~=  A_hi B_hi + A_lo B_hi + A_hi B_lo   (3 TC GEMMs, "split-3")
         ~=  ... + A_lo B_lo                 (4 TC GEMMs, "split-4")

Split-3 reduces the input-rounding error from ~2^-11 to ~2^-22 at 3x the
TensorCore work — still far faster than CUDA-core SGEMM when the
accelerator ratio is 8x. :func:`split_gemm` implements all three variants
with numpy emulation; the cost side is modelled by
``GemmModel.time(..., Precision.TC_FP16_SPLIT3)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.tc.precision import QuantStats, round_fp16

#: Number of TensorCore GEMMs each variant costs.
SPLIT_TERMS = {1: 1, 3: 3, 4: 4}


def split_fp16(
    a: np.ndarray, stats: QuantStats | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Split fp32 *a* into (hi, lo) fp16-representable parts, returned as
    fp32 with ``hi + lo ~= a`` to ~2^-22 relative accuracy.

    Only the *hi* rounding is counted against *stats*: a hi-part overflow
    really loses the value, while the lo part underflowing to zero is the
    expected tail of an exactly-representable input."""
    a32 = np.asarray(a, dtype=np.float32)
    hi = round_fp16(a32, stats)
    lo = round_fp16(a32 - hi)
    return hi, lo


def split_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    terms: int = 3,
    alpha: float = 1.0,
    beta: float = 0.0,
    c: np.ndarray | None = None,
    trans_a: bool = False,
    trans_b: bool = False,
    out: np.ndarray | None = None,
    quant_stats: QuantStats | None = None,
) -> np.ndarray:
    """Emulated precision-split TensorCore GEMM.

    ``terms`` selects the variant: 1 (plain fp16), 3 (drop the lo*lo
    term), or 4 (full product). Accumulation is fp32 throughout, as on
    the hardware.
    """
    if terms not in SPLIT_TERMS:
        raise ValidationError(f"terms must be one of {sorted(SPLIT_TERMS)}, got {terms}")
    a_op = np.asarray(a, dtype=np.float32).T if trans_a else np.asarray(a, dtype=np.float32)
    b_op = np.asarray(b, dtype=np.float32).T if trans_b else np.asarray(b, dtype=np.float32)
    if a_op.ndim != 2 or b_op.ndim != 2 or a_op.shape[1] != b_op.shape[0]:
        raise ShapeError(
            f"split_gemm: incompatible operands {a_op.shape} x {b_op.shape}"
        )
    m, n = a_op.shape[0], b_op.shape[1]

    a_hi, a_lo = split_fp16(a_op, quant_stats)
    b_hi, b_lo = split_fp16(b_op, quant_stats)
    prod = a_hi @ b_hi
    if terms >= 3:
        prod = prod + a_lo @ b_hi + a_hi @ b_lo
    if terms >= 4:
        prod = prod + a_lo @ b_lo
    if alpha != 1.0:
        prod *= np.float32(alpha)
    if beta != 0.0:
        if c is None:
            raise ShapeError("split_gemm: beta != 0 requires operand c")
        c_arr = np.asarray(c, dtype=np.float32)
        if c_arr.shape != (m, n):
            raise ShapeError(f"split_gemm: c has shape {c_arr.shape}, expected {(m, n)}")
        prod = prod + np.float32(beta) * c_arr

    result = prod.astype(np.float32, copy=False)
    if out is not None:
        if out.shape != (m, n):
            raise ShapeError(f"split_gemm: out has shape {out.shape}, expected {(m, n)}")
        np.copyto(out, result)
        return out
    return result
