"""What the fault plane observed and what recovery did about it."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.inject import FaultEvent


@dataclass(frozen=True)
class FaultReport:
    """Provenance of one run under fault injection.

    Attached to :class:`repro.dist.numeric.DistNumericResult` /
    :class:`repro.dist.sim.DistSimResult` (``faults``) and summarized
    into :class:`repro.serve.job.JobResult` so callers can see exactly
    which faults fired and what it cost to absorb them. ``None`` on a
    result means no injector was active — the fault-free fast path.
    """

    #: Identity of the schedule that ran (``FaultPlan.seed``).
    plan_seed: int | None
    #: Every fault that fired, in firing order.
    events: tuple[FaultEvent, ...] = ()
    #: Backoff re-executions of guarded steps after transient faults.
    retries: int = 0
    #: Device-loss recoveries performed (lineage replays).
    recoveries: int = 0
    #: Devices lost over the run, in loss order.
    devices_lost: tuple[int, ...] = ()
    #: Re-placed per-device programs that passed ``verify_program``
    #: across all recoveries (recovery refuses to resume otherwise).
    replacements_verified: int = 0
    #: Extra metadata (e.g. the final device remap), JSON-able.
    details: dict = field(default_factory=dict)

    @property
    def n_injected(self) -> int:
        return len(self.events)

    @property
    def clean(self) -> bool:
        """True when nothing fired — the run was effectively fault-free."""
        return not self.events

    def summary(self) -> str:
        """One line for CLI tables and the serve-bench metrics snapshot."""
        if self.clean:
            return "no faults"
        kinds = ", ".join(ev.describe() for ev in self.events[:4])
        more = "" if len(self.events) <= 4 else f" (+{len(self.events) - 4})"
        bits = [f"{self.n_injected} injected ({kinds}{more})"]
        if self.retries:
            bits.append(f"{self.retries} retries")
        if self.recoveries:
            lost = ",".join(str(d) for d in self.devices_lost)
            bits.append(
                f"{self.recoveries} recoveries (lost dev {lost}; "
                f"{self.replacements_verified} programs re-verified)"
            )
        return "; ".join(bits)


__all__ = ["FaultReport"]
