"""repro.faults — deterministic seeded fault injection (docs/robustness.md).

The injection plane for fault-tolerant distributed execution: a
:class:`FaultPlan` of :class:`FaultSpec` entries describes *what* fails
(worker crash, device loss, transfer timeout/stall, task error), *where*
(guarded site, device, reduction round, op index) and *how often*; a
:class:`FaultInjector` fires those faults at the guarded sites threaded
through :mod:`repro.dist.numeric`'s spawn pool, :mod:`repro.dist.sim`,
the DAG scheduler and the serve workers. Schedules are keyed by
:func:`~repro.util.rng.stable_seed` and firing is a pure function of the
guarded call sequence, so every schedule replays exactly.

Off by default, bitwise-off: with no plan (or ``enabled=False``) the
guarded paths run through :data:`NULL_INJECTOR`, the same inert-object
guard pattern as :data:`repro.obs.NULL_RECORDER`.

Layering: ``repro.faults`` sits at the bottom, beside ``repro.errors``
and ``repro.obs`` — it must not import the runtime, dist or serve layers
(enforced by the repo lint pack).
"""

from repro.faults.inject import (
    NULL_INJECTOR,
    FaultEvent,
    FaultInjector,
    NullInjector,
    as_injector,
)
from repro.faults.plan import DEFAULT_SITES, FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.report import FaultReport

__all__ = [
    "DEFAULT_SITES",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "NULL_INJECTOR",
    "NullInjector",
    "as_injector",
]
