"""The stateful injector: guarded sites call :meth:`FaultInjector.check`.

Execution layers thread an injector through their hot paths and guard
each fallible step with one ``check(site, ...)`` call *before* the
step's side effects (so an injected fault never half-applies an
operation). A matching unburnt spec records a :class:`FaultEvent` and
raises the fault's error type at exactly the place the real fault would
surface; a non-matching call is a handful of tuple compares, and the
shared :data:`NULL_INJECTOR` (``enabled=False``) short-circuits to a
no-op so un-faulted runs stay bitwise identical.

Determinism: firing depends only on the sequence of guarded calls and
the plan's spec list — no clock, no randomness — so a seeded schedule
replays exactly (the property the chaos-smoke CI matrix relies on).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import DeviceLostError, InjectedFaultError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import clock

#: InjectedFaultError reason tags per transient kind.
_TRANSIENT_REASONS = {
    "worker_crash": "worker-crash",
    "task_error": "task-error",
    "transfer_timeout": "transfer-timeout",
    "transfer_stall": "transfer-stall",
}


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired, with the coordinates it fired at."""

    kind: str
    site: str
    device: int | None
    round_index: int | None
    op_index: int | None
    spec_index: int

    def describe(self) -> str:
        coords = [
            self.site,
            f"dev{self.device}" if self.device is not None else None,
            f"r{self.round_index}" if self.round_index is not None else None,
            f"op{self.op_index}" if self.op_index is not None else None,
        ]
        return f"{self.kind}@{' '.join(c for c in coords if c)}"


class FaultInjector:
    """One run's worth of injection state for a :class:`FaultPlan`.

    Thread-safe: spec burn-down and the event log share one lock (serve
    worker threads and the DAG scheduler's compute workers may guard
    concurrently). Create one injector per logical run — the serve layer
    makes one per *job* so retries and degraded re-runs see the specs
    already burnt and can make progress.
    """

    enabled = True

    def __init__(self, plan: FaultPlan, *, sleep=None):
        self.plan = plan
        self._remaining = [spec.count for spec in plan.specs]
        self._events: list[FaultEvent] = []
        self._lock = threading.Lock()
        self._sleep = sleep

    # -- introspection ----------------------------------------------------------

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        with self._lock:
            return tuple(self._events)

    @property
    def fired(self) -> int:
        """Total faults injected so far."""
        with self._lock:
            return len(self._events)

    @property
    def lost_devices(self) -> tuple[int, ...]:
        """Devices taken by ``device_loss`` events, in firing order."""
        return tuple(
            ev.device if ev.device is not None else 0
            for ev in self.events
            if ev.kind == "device_loss"
        )

    @property
    def exhausted(self) -> bool:
        """Whether every spec has burnt out (nothing left to fire)."""
        with self._lock:
            return all(r == 0 for r in self._remaining)

    # -- the guard --------------------------------------------------------------

    def check(
        self,
        site: str,
        *,
        device: int | None = None,
        round_index: int | None = None,
        op_index: int | None = None,
    ) -> None:
        """Fire the first matching unburnt spec at this site, if any.

        Raises :class:`~repro.errors.DeviceLostError` for ``device_loss``
        and :class:`~repro.errors.InjectedFaultError` for the transient
        kinds; returns silently when nothing matches.
        """
        fired: tuple[FaultSpec, FaultEvent] | None = None
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if self._remaining[i] == 0:
                    continue
                if not spec.matches(site, device, round_index, op_index):
                    continue
                self._remaining[i] -= 1
                event = FaultEvent(
                    kind=spec.kind,
                    site=site,
                    device=device if device is not None else spec.device,
                    round_index=round_index,
                    op_index=op_index,
                    spec_index=i,
                )
                self._events.append(event)
                fired = (spec, event)
                break
        if fired is None:
            return
        spec, event = fired
        if spec.kind == "device_loss":
            raise DeviceLostError(
                event.device if event.device is not None else 0,
                detail=f"injected at {event.describe()} "
                f"(plan seed {self.plan.seed})",
            )
        if spec.kind == "transfer_stall" and spec.delay_s > 0:
            # the link hangs for delay_s before detection kicks in;
            # module-attribute call so one monkeypatch fakes the stall
            (self._sleep or clock.sleep)(spec.delay_s)
        raise InjectedFaultError(
            _TRANSIENT_REASONS[spec.kind],
            detail=f"injected at {event.describe()} "
            f"(plan seed {self.plan.seed})",
            event=event,
        )


class NullInjector:
    """The do-nothing injector: ``check`` is a constant no-op.

    Mirrors :class:`repro.obs.span.NullRecorder`: guarded code tests
    ``injector.enabled`` (or just calls ``check``) and a disabled plan
    costs one attribute read — off is bitwise-off.
    """

    enabled = False
    plan = None
    events: tuple[FaultEvent, ...] = ()
    fired = 0
    lost_devices: tuple[int, ...] = ()
    exhausted = True

    def check(self, site, *, device=None, round_index=None, op_index=None):
        return None


#: Shared inert injector (same pattern as ``repro.obs.NULL_RECORDER``).
NULL_INJECTOR = NullInjector()


def as_injector(faults) -> FaultInjector | None:
    """Normalize a ``faults=`` argument: a plan becomes a fresh injector,
    an injector passes through (shared across serve retries), and
    ``None`` / a disabled plan / the null injector become ``None`` so
    callers can skip guards entirely."""
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults.injector() if faults.enabled else None
    if not getattr(faults, "enabled", False):
        return None
    return faults


__all__ = [
    "FaultEvent",
    "FaultInjector",
    "NULL_INJECTOR",
    "NullInjector",
    "as_injector",
]
