"""Deterministic fault schedules: what fails, where, and how often.

A :class:`FaultSpec` names one injectable fault — its kind, the site(s)
it may fire at, and optional device / reduction-round / op-index
coordinates narrowing the match. A :class:`FaultPlan` bundles specs with
a :func:`~repro.util.rng.stable_seed`-derived identity so every schedule
replays exactly: injection is a pure function of the guarded call
sequence, and the seed names the schedule in reports, benchmarks and CI
matrices. Plans are inert descriptions; :meth:`FaultPlan.injector`
instantiates the stateful :class:`~repro.faults.inject.FaultInjector`
that actually fires.

Matching semantics: a spec field left ``None`` is a wildcard; a set
field must equal the coordinate the guarded site reports. A spec burns
out after firing ``count`` times, which is what lets retry and recovery
make progress past an injected fault (the re-run's guard passes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.util.rng import stable_seed

#: Injectable fault kinds, in the fault-model table's order
#: (docs/robustness.md).
FAULT_KINDS = (
    "worker_crash",
    "device_loss",
    "transfer_timeout",
    "transfer_stall",
    "task_error",
)

#: Sites each kind fires at when the spec names none. Compute sites kill
#: the worker mid-task; transfer sites hang the link at the relay point;
#: ``task`` is the DAG scheduler's per-task guard and ``serve-worker``
#: the service's per-attempt guard.
DEFAULT_SITES: dict[str, tuple[str, ...]] = {
    "worker_crash": ("leaf", "merge", "pushdown", "scale", "serve-worker"),
    "device_loss": (
        "leaf", "merge", "pushdown", "scale", "transfer-up", "transfer-down",
    ),
    "transfer_timeout": ("transfer-up", "transfer-down"),
    "transfer_stall": ("transfer-up", "transfer-down"),
    "task_error": ("task", "serve-worker", "leaf", "merge", "pushdown"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Parameters
    ----------
    kind
        One of :data:`FAULT_KINDS`.
    device
        Only fire at sites reporting this device (``None``: any device).
    round_index
        Only fire during this reduction round (``None``: any round,
        including the leaf phase, which reports no round).
    site
        Only fire at this named site; ``None`` means any of the kind's
        :data:`DEFAULT_SITES`.
    op_index
        Only fire at this op index (the DAG scheduler's per-task guard).
    count
        Times the spec fires before burning out (>= 1).
    delay_s
        For ``transfer_stall``: seconds the link hangs before the stall
        is detected (slept through the injectable
        :func:`repro.obs.clock.sleep`).
    """

    kind: str
    device: int | None = None
    round_index: int | None = None
    site: str | None = None
    op_index: int | None = None
    count: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.count < 1:
            raise ValidationError(f"count must be >= 1, got {self.count}")
        if self.delay_s < 0:
            raise ValidationError(
                f"delay_s must be >= 0, got {self.delay_s}"
            )
        for name in ("device", "round_index", "op_index"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValidationError(
                    f"{name} must be >= 0 or None, got {value}"
                )
        if self.site is not None and not self.site:
            raise ValidationError("site must be a non-empty string or None")

    @property
    def sites(self) -> tuple[str, ...]:
        return (self.site,) if self.site else DEFAULT_SITES[self.kind]

    def matches(
        self,
        site: str,
        device: int | None,
        round_index: int | None,
        op_index: int | None,
    ) -> bool:
        """Whether a guarded call at these coordinates triggers this spec."""
        if site not in self.sites:
            return False
        if self.device is not None and self.device != device:
            return False
        if self.round_index is not None and self.round_index != round_index:
            return False
        if self.op_index is not None and self.op_index != op_index:
            return False
        return True

    def seed_parts(self) -> tuple:
        return (
            self.kind,
            -1 if self.device is None else self.device,
            -1 if self.round_index is None else self.round_index,
            self.site or "*",
            -1 if self.op_index is None else self.op_index,
            self.count,
        )

    def describe(self) -> str:
        coords = [
            f"dev{self.device}" if self.device is not None else None,
            f"r{self.round_index}" if self.round_index is not None else None,
            f"@{self.site}" if self.site else None,
            f"op{self.op_index}" if self.op_index is not None else None,
        ]
        where = " ".join(c for c in coords if c) or "first match"
        times = "" if self.count == 1 else f" x{self.count}"
        return f"{self.kind}[{where}]{times}"


@dataclass(frozen=True)
class FaultPlan:
    """A replayable schedule of faults.

    ``enabled=False`` plans are bitwise-off: :meth:`injector` hands back
    the shared no-op :data:`~repro.faults.inject.NULL_INJECTOR` (the
    same guard pattern as :data:`repro.obs.NULL_RECORDER`), so guarded
    code paths with a disabled plan are identical to code run with no
    plan at all.
    """

    specs: tuple[FaultSpec, ...]
    seed: int | None = field(default=None)
    enabled: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        if not self.specs:
            raise ValidationError("a FaultPlan needs at least one FaultSpec")
        if self.seed is None:
            parts: list = ["faults"]
            for spec in self.specs:
                parts.extend(spec.seed_parts())
            object.__setattr__(self, "seed", stable_seed(*parts))

    @classmethod
    def single(
        cls,
        kind: str,
        *,
        device: int | None = None,
        round_index: int | None = None,
        site: str | None = None,
        op_index: int | None = None,
        count: int = 1,
        delay_s: float = 0.0,
        seed: int | None = None,
        enabled: bool = True,
    ) -> "FaultPlan":
        """The common one-fault schedule in one call."""
        return cls(
            specs=(
                FaultSpec(
                    kind,
                    device=device,
                    round_index=round_index,
                    site=site,
                    op_index=op_index,
                    count=count,
                    delay_s=delay_s,
                ),
            ),
            seed=seed,
            enabled=enabled,
        )

    def injector(self, *, sleep=None):
        """A fresh stateful injector for one run of this plan."""
        from repro.faults.inject import NULL_INJECTOR, FaultInjector

        if not self.enabled:
            return NULL_INJECTOR
        return FaultInjector(self, sleep=sleep)

    def describe(self) -> str:
        body = ", ".join(spec.describe() for spec in self.specs)
        state = "" if self.enabled else " (disabled)"
        return f"FaultPlan(seed={self.seed}: {body}){state}"


__all__ = ["DEFAULT_SITES", "FAULT_KINDS", "FaultPlan", "FaultSpec"]
