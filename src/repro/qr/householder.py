"""In-core Householder QR — the stability gold standard of §3.1.

The paper lists three QR families (Gram-Schmidt, Householder, Givens) and
builds on CGS because it blocks into GEMMs trivially. Householder is the
unconditionally stable reference (orthogonality ~ u regardless of
conditioning) against which the Gram-Schmidt variants' losses are
measured in the S9 numerics study.

:func:`blocked_householder_qr` is the accelerator-friendly compromise:
block Gram-Schmidt *between* panels (two GEMMs per panel, exactly the OOC
drivers' update structure) with Householder *inside* each panel — panel
orthogonality at machine precision, so the block-level CGS loss is the
only loss. It slots directly into the blocking OOC QR's structure, which
is why it is the practical upgrade path the paper's framework admits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.qr.cgs import _check_input
from repro.util.validation import positive_int


def householder_qr(a: np.ndarray, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Classic Householder QR of a tall matrix; returns thin (Q, R).

    R's diagonal is normalized positive so results are directly comparable
    with the Gram-Schmidt variants.
    """
    a = _check_input(a, "a")
    m, n = a.shape
    r = a.astype(dtype, copy=True)
    vs: list[np.ndarray] = []
    for j in range(n):
        x = r[j:, j].copy()
        norm_x = float(np.linalg.norm(x))
        if norm_x == 0.0:
            raise ShapeError(f"column {j} is zero; Householder QR undefined")
        v = x
        v[0] += (np.sign(x[0]) or 1.0) * norm_x
        v = v / np.linalg.norm(v)
        r[j:, j:] -= 2.0 * np.outer(v, v @ r[j:, j:])
        vs.append(v)

    # accumulate thin Q by applying the reflectors to the first n columns
    # of the identity, in reverse order
    q = np.zeros((m, n), dtype=dtype)
    q[np.arange(n), np.arange(n)] = 1.0
    for j in range(n - 1, -1, -1):
        v = vs[j]
        q[j:, :] -= 2.0 * np.outer(v, v @ q[j:, :])

    # sign-normalize so diag(R) > 0
    signs = np.sign(np.diag(r[:n, :n])).astype(dtype)
    signs[signs == 0] = 1.0
    q *= signs[None, :]
    r_out = np.triu(r[:n, :n] * signs[:, None])
    return q, r_out


def blocked_householder_qr(
    a: np.ndarray, block: int = 32, dtype=np.float64
) -> tuple[np.ndarray, np.ndarray]:
    """Block Gram-Schmidt with Householder panels.

    Identical block structure to the paper's blocking QR (panel factorize,
    ``R12 = Q1ᵀ A2``, ``A2 -= Q1 R12``) but each full-height panel is
    factorized by Householder instead of CGS: the per-panel orthogonality
    is ~machine precision, so only the (mild) block-level Gram-Schmidt
    loss remains. Returns thin (Q, R) with positive R diagonal.
    """
    a = _check_input(a, "a")
    block = positive_int(block, "block")
    m, n = a.shape
    work = a.astype(dtype, copy=True)
    q = np.empty((m, n), dtype=dtype)
    r = np.zeros((n, n), dtype=dtype)
    for col0 in range(0, n, block):
        col1 = min(col0 + block, n)
        q_p, r_p = householder_qr(work[:, col0:col1], dtype=dtype)
        q[:, col0:col1] = q_p
        r[col0:col1, col0:col1] = r_p
        if col1 < n:
            r12 = q_p.T @ work[:, col1:]
            r[col0:col1, col1:] = r12
            work[:, col1:] -= q_p @ r12
    return q, r
