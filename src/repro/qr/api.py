"""Public entry point: out-of-core QR factorization.

:func:`ooc_qr` is what a downstream user calls::

    import numpy as np
    from repro.qr import ooc_qr

    a = np.random.default_rng(0).standard_normal((4096, 1024), ).astype(np.float32)
    result = ooc_qr(a, method="recursive", device_memory=64 << 20)
    q, r = result.q, result.r               # a was factorized out of core

At paper scale, pass a *shape* instead of data and get a simulated
performance run::

    result = ooc_qr((131072, 131072), method="recursive", mode="sim")
    print(result.makespan, result.achieved_tflops)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckpt import (
    CheckpointConfig,
    CheckpointManager,
    CheckpointSession,
    CheckpointStats,
    run_fingerprint,
)
from repro.config import PAPER_SYSTEM, SystemConfig
from repro.errors import ValidationError
from repro.execution.base import RunStats
from repro.execution.hybrid import HybridExecutor
from repro.execution.concurrent import ConcurrentNumericExecutor
from repro.execution.numeric import NumericExecutor
from repro.execution.sim import SimExecutor
from repro.health.report import HealthReport
from repro.health.sentinel import HealthSentinel
from repro.host.tiled import HostMatrix
from repro.obs.span import NULL_RECORDER, SpanRecorder
from repro.ooc.accounting import MovementReport, track
from repro.qr.blocking import QrRunInfo, ooc_blocking_qr
from repro.qr.options import QrOptions
from repro.qr.recursive import ooc_recursive_qr
from repro.sim.trace import Trace
from repro.util.validation import one_of

METHODS = ("recursive", "blocking")
MODES = ("numeric", "sim", "hybrid")
RUNTIMES = ("legacy", "dag")


@dataclass
class QrResult:
    """Everything one OOC QR run produced."""

    method: str
    mode: str
    q: np.ndarray | None
    r: np.ndarray | None
    info: QrRunInfo
    stats: RunStats
    movement: MovementReport
    trace: Trace | None
    config: SystemConfig
    options: QrOptions
    ckpt: CheckpointStats | None = None

    @property
    def makespan(self) -> float:
        """Simulated end-to-end seconds, or measured wall-clock seconds
        for numeric runs without a trace (:attr:`RunStats.wall_s`)."""
        if self.trace is not None:
            return self.trace.makespan
        return self.stats.wall_s

    @property
    def achieved_tflops(self) -> float:
        """End-to-end TFLOPS over :attr:`makespan` (simulated or wall)."""
        span = self.makespan
        return self.stats.total_flops / span / 1e12 if span > 0 else 0.0

    def phase_times(self) -> dict[str, float]:
        """Compute time per phase (panel / inner / outer), simulated runs."""
        return self.trace.compute_time_by_tag() if self.trace is not None else {}

    @property
    def health(self) -> HealthReport | None:
        """The run's numerical-health report (None when the sentinel is
        off); see :class:`~repro.health.report.HealthReport`."""
        return self.info.health


def _as_host_matrix(a, element_bytes: int) -> tuple[HostMatrix, bool]:
    """Normalize the ``a`` argument; returns (matrix, is_shape_only)."""
    if isinstance(a, HostMatrix):
        return a, not a.backed
    if isinstance(a, np.ndarray):
        # ndarray inputs are factorized by value: always copy so the
        # caller's array survives the in-place A <- Q overwrite
        return (
            HostMatrix.from_array(
                np.array(a, dtype=np.float32, order="C", copy=True), name="A"
            ),
            False,
        )
    if isinstance(a, tuple) and len(a) == 2:
        return HostMatrix.shape_only(a[0], a[1], element_bytes, name="A"), True
    raise ValidationError(
        "a must be a numpy array, a HostMatrix, or an (m, n) shape tuple; "
        f"got {type(a).__name__}"
    )


def _execute_qr_graph(
    ex, config, method, host_a, options, mode, concurrency, obs=NULL_RECORDER
) -> Trace | None:
    """Schedule the recorded QR task graph (runtime='dag' back half)."""
    from repro.runtime import DagScheduler, NumericGraphBackend, SimGraphBackend

    graph = ex.graph
    graph.volume_hint = (
        method, host_a.rows, host_a.cols, min(options.blocksize, host_a.cols)
    )
    if mode == "sim":
        return SimGraphBackend(config).run(graph)
    backend = NumericGraphBackend(config, obs=obs)
    scheduler = DagScheduler(graph)
    if concurrency == "threads":
        scheduler.run_threaded(backend)
        trace = backend.recorded_trace(graph)
    else:
        scheduler.run_serial(backend)
        trace = None
    backend.allocator.check_balanced()
    return trace


def ooc_qr(
    a,
    *,
    method: str = "recursive",
    mode: str | None = None,
    config: SystemConfig | None = None,
    options: QrOptions | None = None,
    blocksize: int | None = None,
    device_memory: int | None = None,
    concurrency: str = "serial",
    checkpoint: CheckpointConfig | None = None,
    runtime: str = "legacy",
    obs: SpanRecorder | None = None,
) -> QrResult:
    """Out-of-core QR factorization ``A = QR`` (classic Gram-Schmidt).

    Parameters
    ----------
    a
        A tall fp32 matrix (factorized *by value*: the input is copied),
        a :class:`HostMatrix` (factorized in place), or an ``(m, n)``
        shape tuple for a data-free simulated run.
    method
        ``"recursive"`` (the paper's contribution) or ``"blocking"``
        (the conventional baseline).
    mode
        ``"numeric"`` (real computation), ``"sim"`` (event-simulated
        timing, no data), or ``"hybrid"`` (both). Defaults to ``"numeric"``
        for backed inputs and ``"sim"`` for shapes.
    config
        System configuration; defaults to the paper's V100-32GB testbed.
    options
        :class:`QrOptions`; ``blocksize`` is a convenience override.
    device_memory
        Convenience cap on simulated device memory in bytes (the §5.2
        16 GB experiment, or small values to force OOC behaviour on small
        numeric problems).
    concurrency
        ``"serial"`` (default) or ``"threads"`` — numeric mode only. With
        ``"threads"`` the op stream runs on per-engine worker threads
        (H2D/compute/D2H overlap, see docs/concurrency.md), the result is
        bitwise identical to serial, and ``trace`` holds the recorded
        wall-clock schedule.
    checkpoint
        Optional :class:`~repro.ckpt.CheckpointConfig` making the run
        resumable (numeric mode only): progress is persisted at panel /
        recursion-node boundaries per the config's policy, and a rerun
        pointed at the same directory restores state, skips completed
        steps and produces a bitwise-identical result. See
        docs/checkpoint.md.
    runtime
        ``"legacy"`` (default) runs the engine imperatively on the
        selected executor. ``"dag"`` records the run as a tile-task
        graph (:mod:`repro.runtime`) and executes it with the dynamic
        dataflow scheduler — numeric mode (serial, or work-stealing
        workers with ``concurrency="threads"``) or sim mode; results are
        bitwise identical to legacy. Not yet combinable with
        ``mode="hybrid"``, ``checkpoint=`` or health monitoring. See
        docs/runtime.md.
    obs
        Optional :class:`~repro.obs.SpanRecorder`. When given, the run
        records a root span plus per-op spans (engine lanes, tile rects,
        dep edges on the DAG runtime) into it; export the result with
        :mod:`repro.obs.export` or ``repro trace``. With the default
        (no recorder) execution is bitwise identical to an
        un-instrumented run. See docs/observability.md.

    Returns
    -------
    QrResult
        Q/R arrays (numeric modes), the simulated trace (sim modes),
        movement accounting and run counters.
    """
    method = one_of(method, METHODS, "method")
    config = config or PAPER_SYSTEM
    if device_memory is not None:
        config = config.with_gpu(
            config.gpu.with_memory(device_memory, suffix="capped")
        )

    host_a, shape_only = _as_host_matrix(a, config.element_bytes)
    if mode is None:
        mode = "sim" if shape_only else "numeric"
    mode = one_of(mode, MODES, "mode")
    if shape_only and mode != "sim":
        raise ValidationError(
            f"mode={mode!r} needs real data; shape inputs only support 'sim'"
        )

    if options is None:
        options = QrOptions()
    if blocksize is not None:
        from dataclasses import replace

        options = replace(options, blocksize=blocksize)

    n = host_a.cols
    # the host must hold A (overwritten by Q) and the n-by-n R
    config.check_host_capacity(
        host_a.rows * host_a.cols + n * n, what="OOC QR (A + R)"
    )
    if shape_only:
        host_r = HostMatrix.shape_only(n, n, config.element_bytes, name="R")
    else:
        host_r = HostMatrix.zeros(n, n, dtype=np.float32, name="R")

    concurrency = one_of(concurrency, ("serial", "threads"), "concurrency")
    if concurrency == "threads" and mode != "numeric":
        raise ValidationError("concurrency='threads' requires mode='numeric'")
    if checkpoint is not None and mode != "numeric":
        raise ValidationError("checkpoint= requires mode='numeric'")

    if options.health.enabled and mode != "numeric":
        raise ValidationError(
            "health monitoring requires mode='numeric' (probes need real "
            f"numbers), got mode={mode!r}"
        )

    runtime = one_of(runtime, RUNTIMES, "runtime")
    if runtime == "dag":
        if mode == "hybrid":
            raise ValidationError(
                "runtime='dag' supports mode='numeric' or 'sim'; "
                "hybrid runs stay on the legacy path"
            )
        if checkpoint is not None:
            raise ValidationError(
                "runtime='dag' does not support checkpoint= yet; "
                "use the legacy runtime"
            )
        if options.health.enabled:
            raise ValidationError(
                "runtime='dag' does not support health monitoring yet; "
                "use the legacy runtime"
            )

    obs_rec = obs if obs is not None else NULL_RECORDER

    if runtime == "dag":
        from repro.runtime import GraphBuilder

        ex = GraphBuilder(
            config,
            label=f"qr-{method}[dag] {host_a.rows}x{host_a.cols}",
            materialize=(mode == "numeric"),
        )
    elif mode == "numeric":
        ex = (
            ConcurrentNumericExecutor(config)
            if concurrency == "threads"
            else NumericExecutor(config)
        )
        # Op spans come from the executor; the DAG path records them in
        # its backend instead (graph *building* is not execution).
        ex.obs = obs_rec
        if options.health.enabled:
            ex.health = HealthSentinel(
                options.health,
                base_format=config.precision.input_format,
                obs=obs_rec,
            )
    elif mode == "sim":
        ex = SimExecutor(config)
    else:
        ex = HybridExecutor(config)

    session = None
    if checkpoint is not None:
        fp = run_fingerprint(
            "qr", method, host_a.rows, host_a.cols, config, options
        )
        session = CheckpointSession(
            CheckpointManager(checkpoint, fingerprint=fp),
            ex,
            {"a": host_a, "r": host_r},
        )

    driver = ooc_recursive_qr if method == "recursive" else ooc_blocking_qr
    trace: Trace | None = None
    try:
        # The run's root span: op spans issued inside (including ones
        # recorded later on worker threads) parent under it.
        with obs_rec.span(
            f"ooc_qr[{method}]",
            cat="run",
            lane="driver",
            attrs={
                "method": method, "mode": mode, "runtime": runtime,
                "m": host_a.rows, "n": host_a.cols,
                "blocksize": options.blocksize, "concurrency": concurrency,
            },
        ):
            with track(ex) as moved:
                run_info = driver(ex, host_a, host_r, options, checkpoint=session)
            if runtime == "dag":
                trace = _execute_qr_graph(
                    ex, config, method, host_a, options, mode, concurrency,
                    obs=obs_rec,
                )
            elif mode in ("sim", "hybrid"):
                trace = ex.finish()
            else:
                ex.synchronize()
                if isinstance(ex, ConcurrentNumericExecutor):
                    trace = ex.recorded_trace()
                ex.close()
    except BaseException:
        # A typed refusal (NumericalError etc.) must not leak worker
        # threads; close() is idempotent and a no-op on serial executors.
        if mode == "numeric":
            ex.close()
        raise
    ex.allocator.check_balanced()

    return QrResult(
        method=method,
        mode=mode,
        q=host_a.data if host_a.backed else None,
        r=host_r.data if host_r.backed else None,
        info=run_info,
        stats=ex.stats,
        movement=moved.report,
        trace=trace,
        config=config,
        options=options,
        ckpt=session.stats if session is not None else None,
    )
