"""Vector-wise Gram-Schmidt orthogonalization (§3.1.1 of the paper).

These are the textbook column-by-column processes used as the base case of
the blocked/recursive in-core factorizations and as numerical references in
tests:

* :func:`cgs_qr`   — classic Gram-Schmidt: each column is projected against
  the *original* previously-orthogonalized basis in one shot (row-by-row
  evaluation of the paper's Equation (1)). Maximally parallel / blockable,
  loses orthogonality like O(kappa^2 u).
* :func:`mgs_qr`   — modified Gram-Schmidt: projections are subtracted
  factor-by-factor from the running residual (interleaved evaluation).
  More stable (O(kappa u)), less parallel — the paper's reason for building
  on CGS.
* :func:`cgs2_qr`  — CGS with one full reorthogonalization pass ("twice is
  enough"), restoring O(u) orthogonality; offered as the stability
  extension mentioned in DESIGN.md.

All operate on tall matrices (m >= n) of linearly independent columns and
return (Q, R) with Q m-by-n orthonormal and R n-by-n upper triangular.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BreakdownError, NonFiniteError, ShapeError

#: A column whose residual norm shrinks below this multiple of its original
#: norm is treated as numerically dependent on its predecessors.
RANK_TOL = 1e-7


def _check_input(a: np.ndarray, name: str) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got {a.ndim}-D")
    m, n = a.shape
    if m < n:
        raise ShapeError(
            f"{name} must be tall (m >= n), got {m}x{n}; factor the "
            "transpose or use an LQ factorization for wide matrices"
        )
    if n == 0:
        raise ShapeError(f"{name} must have at least one column")
    return a


def _guard_norm(norm: float, ref: float, j: int) -> None:
    if not np.isfinite(norm):
        # A NaN/Inf column must fail here, at the source, instead of
        # propagating NaNs through the rest of the factorization.
        raise NonFiniteError(
            f"column {j} has non-finite residual norm {norm!r}; the input "
            "contains NaN/Inf or overflowed during orthogonalization"
        )
    if norm <= RANK_TOL * max(ref, 1.0):
        # BreakdownError is also a ValidationError, so existing callers
        # treating dependent columns as invalid input still catch it.
        raise BreakdownError(
            f"column {j} is numerically dependent on its predecessors "
            f"(residual norm {norm:.3e}); Gram-Schmidt requires linearly "
            "independent columns"
        )


def cgs_qr(a: np.ndarray, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Classic Gram-Schmidt QR of a tall matrix.

    Column j is orthogonalized against all previous q's using the
    *original* column (single projection pass) — the variant the whole
    paper builds on because it turns directly into GEMMs.
    """
    a = _check_input(a, "a").astype(dtype, copy=True)
    m, n = a.shape
    q = np.empty((m, n), dtype=dtype)
    r = np.zeros((n, n), dtype=dtype)
    col_norms = np.linalg.norm(a, axis=0)
    for j in range(n):
        v = a[:, j]
        if j > 0:
            # one-shot projection coefficients against the existing basis
            coeffs = q[:, :j].T @ v
            r[:j, j] = coeffs
            v = v - q[:, :j] @ coeffs
        norm = float(np.linalg.norm(v))
        _guard_norm(norm, float(col_norms[j]), j)
        r[j, j] = norm
        q[:, j] = v / norm
    return q, r


def mgs_qr(a: np.ndarray, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Modified Gram-Schmidt QR (stability reference)."""
    v = _check_input(a, "a").astype(dtype, copy=True)
    m, n = v.shape
    q = np.empty((m, n), dtype=dtype)
    r = np.zeros((n, n), dtype=dtype)
    col_norms = np.linalg.norm(v, axis=0)
    for j in range(n):
        norm = float(np.linalg.norm(v[:, j]))
        _guard_norm(norm, float(col_norms[j]), j)
        r[j, j] = norm
        q[:, j] = v[:, j] / norm
        if j + 1 < n:
            # subtract this direction from the *running residuals* at once
            proj = q[:, j] @ v[:, j + 1 :]
            r[j, j + 1 :] = proj
            v[:, j + 1 :] -= np.outer(q[:, j], proj)
    return q, r


def cgs2_qr(a: np.ndarray, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Classic Gram-Schmidt with full reorthogonalization (CGS2).

    Each column is CGS-projected twice; the correction coefficients fold
    into R, restoring near-machine orthogonality at ~2x the flops.
    """
    a = _check_input(a, "a").astype(dtype, copy=True)
    m, n = a.shape
    q = np.empty((m, n), dtype=dtype)
    r = np.zeros((n, n), dtype=dtype)
    col_norms = np.linalg.norm(a, axis=0)
    for j in range(n):
        v = a[:, j]
        if j > 0:
            c1 = q[:, :j].T @ v
            v = v - q[:, :j] @ c1
            c2 = q[:, :j].T @ v
            v = v - q[:, :j] @ c2
            r[:j, j] = c1 + c2
        norm = float(np.linalg.norm(v))
        _guard_norm(norm, float(col_norms[j]), j)
        r[j, j] = norm
        q[:, j] = v / norm
    return q, r


def orthogonality_error(q: np.ndarray) -> float:
    """``‖QᵀQ − I‖_F`` — the loss-of-orthogonality measure used in tests."""
    q = np.asarray(q, dtype=np.float64)
    n = q.shape[1]
    return float(np.linalg.norm(q.T @ q - np.eye(n), ord="fro"))


def factorization_error(a: np.ndarray, q: np.ndarray, r: np.ndarray) -> float:
    """Relative residual ``‖A − QR‖_F / ‖A‖_F``."""
    a = np.asarray(a, dtype=np.float64)
    res = a - np.asarray(q, dtype=np.float64) @ np.asarray(r, dtype=np.float64)
    denom = max(float(np.linalg.norm(a, ord="fro")), np.finfo(np.float64).tiny)
    return float(np.linalg.norm(res, ord="fro")) / denom
