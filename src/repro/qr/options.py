"""Options controlling the OOC QR drivers and their optimizations.

Every §4 optimization in the paper is an independent toggle so the
benchmark harness can ablate them:

* ``pipelined``         — async pipelines vs fully synchronous execution
  (the Synchronous/Asynchronous rows of Tables 1-2).
* ``qr_level_overlap``  — §4.2: let panel writebacks, R12 move-outs and the
  next phase's move-ins overlap (no device barriers between phases).
* ``reuse_inner_result``— §4.2: keep R12 on the device between the inner
  and outer product instead of a round trip through host memory.
* ``staging_buffer``    — §4.1.2: device-side staging copy so C move-outs
  stop blocking the next move-in.
* ``gradual_blocksize`` — §4.1.3: ramp the first streamed chunks up from a
  smaller size so the first (never-overlapped) move-in shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ValidationError
from repro.health.options import HealthOptions
from repro.util.validation import positive_int


@dataclass(frozen=True)
class QrOptions:
    """Tuning knobs for :func:`repro.qr.api.ooc_qr` and the drivers."""

    #: QR panel width b (the paper's "QR blocksize": 16384 or 8192 at scale).
    blocksize: int = 16384
    #: Streamed-chunk height of the recursive outer product; defaults to
    #: blocksize / 2 (the paper pairs QR blocksize 16384 with outer
    #: blocksize 8192).
    outer_blocksize: int | None = None
    #: Tile edge of the blocking outer product; defaults to the blocksize.
    tile_blocksize: int | None = None
    #: Double-buffer depth of every streaming pipeline.
    n_buffers: int = 2
    pipelined: bool = True
    qr_level_overlap: bool = True
    reuse_inner_result: bool = True
    staging_buffer: bool = True
    gradual_blocksize: bool = False
    #: Numerical-health sentinel configuration (off by default). Being an
    #: options field, it is hashed into checkpoint fingerprints and serve
    #: cache keys automatically.
    health: HealthOptions = HealthOptions()

    def __post_init__(self) -> None:
        positive_int(self.blocksize, "blocksize")
        if self.outer_blocksize is not None:
            positive_int(self.outer_blocksize, "outer_blocksize")
        if self.tile_blocksize is not None:
            positive_int(self.tile_blocksize, "tile_blocksize")
        if self.n_buffers < 2:
            raise ValidationError("n_buffers must be at least 2 (double buffering)")
        if not isinstance(self.health, HealthOptions):
            raise ValidationError(
                f"health must be a HealthOptions, got {type(self.health).__name__}"
            )

    @property
    def effective_outer_blocksize(self) -> int:
        """Row-block height used by the recursive outer product."""
        return (
            self.outer_blocksize
            if self.outer_blocksize is not None
            else max(1, self.blocksize // 2)
        )

    @property
    def effective_tile_blocksize(self) -> int:
        """Tile edge used by the blocking outer product."""
        return (
            self.tile_blocksize
            if self.tile_blocksize is not None
            else self.blocksize
        )

    def all_optimizations_off(self) -> "QrOptions":
        """The unoptimized baseline used by the §4.2 ablation (~15%)."""
        return replace(
            self,
            qr_level_overlap=False,
            reuse_inner_result=False,
            staging_buffer=False,
            gradual_blocksize=False,
        )
