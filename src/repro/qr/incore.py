"""In-core blocked and recursive CGS QR factorizations ([24]-style).

These run entirely "on device" (no tiling, no transfers): they are the
panel factorization the OOC drivers call through ``Executor.panel_qr`` and
the in-core references the OOC results are checked against. Projections run
through :func:`repro.tc.gemm.tc_gemm`, so the TensorCore input-rounding is
part of the numerics when ``input_format="fp16"``.

The recursive variant is the paper's equation (2):

    [A1 | A2] = [Q1 | Q2] [[R11, R12], [0, R22]]

with the two GEMMs (inner product ``R12 = Q1ᵀ A2`` and outer product
``A2 ← A2 − Q1 R12``) growing geometrically with recursion level — the
source of the TensorCore speedup that the OOC layer inherits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.qr.cgs import _check_input, cgs2_qr, cgs_qr
from repro.tc.gemm import tc_gemm
from repro.util.validation import positive_int

#: Column width below which recursion bottoms out in vector-wise CGS.
DEFAULT_LEAF = 32


def incore_recursive_qr(
    a: np.ndarray,
    *,
    leaf: int = DEFAULT_LEAF,
    input_format: str = "fp16",
    reorthogonalize: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Recursive CGS QR of a tall matrix (fp32 in/out).

    Parameters
    ----------
    a
        Tall (m >= n) matrix; not modified.
    leaf
        Recursion base-case width (vector-wise CGS below this).
    input_format
        GEMM input rounding: ``"fp16"`` emulates TensorCore, ``"fp32"`` is
        exact single precision.
    reorthogonalize
        Use CGS2 in the base case (the practical choice — plain CGS leaves
        the fp16 pipeline noticeably non-orthogonal; set ``False`` to study
        the textbook behaviour).
    """
    a = _check_input(a, "a")
    leaf = positive_int(leaf, "leaf")
    q = np.array(a, dtype=np.float32, copy=True, order="C")
    n = q.shape[1]
    r = np.zeros((n, n), dtype=np.float32)
    _recurse(q, r, 0, n, leaf, input_format, reorthogonalize)
    return q, r


def _recurse(
    q: np.ndarray,
    r: np.ndarray,
    col0: int,
    col1: int,
    leaf: int,
    input_format: str,
    reorthogonalize: bool,
) -> None:
    """Factorize columns [col0, col1) of *q* in place; fill *r*."""
    width = col1 - col0
    if width <= leaf:
        base = cgs2_qr if reorthogonalize else cgs_qr
        qb, rb = base(q[:, col0:col1], dtype=np.float32)
        q[:, col0:col1] = qb
        r[col0:col1, col0:col1] = rb
        return
    mid = col0 + width // 2
    # left half
    _recurse(q, r, col0, mid, leaf, input_format, reorthogonalize)
    q1 = q[:, col0:mid]
    a2 = q[:, mid:col1]
    # inner product: R12 = Q1ᵀ A2
    r12 = tc_gemm(q1, a2, trans_a=True, input_format=input_format)
    r[col0:mid, mid:col1] = r12
    # outer product: A2 ← A2 − Q1 R12
    tc_gemm(
        q1,
        r12,
        alpha=-1.0,
        beta=1.0,
        c=a2,
        input_format=input_format,
        out=a2,
    )
    # right half
    _recurse(q, r, mid, col1, leaf, input_format, reorthogonalize)


def incore_blocked_qr(
    a: np.ndarray,
    *,
    block: int = 128,
    leaf: int = DEFAULT_LEAF,
    input_format: str = "fp16",
    reorthogonalize: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked CGS QR (§3.1.2): fixed-width panels, trailing update GEMMs.

    The in-core baseline the recursive variant is compared against. Panel
    factorization itself uses the recursive algorithm (as the paper's
    blocking OOC QR does), so the *only* difference from
    :func:`incore_recursive_qr` is the fixed blocking of the update GEMMs.
    """
    a = _check_input(a, "a")
    block = positive_int(block, "block")
    q = np.array(a, dtype=np.float32, copy=True, order="C")
    m, n = q.shape
    r = np.zeros((n, n), dtype=np.float32)
    for col0 in range(0, n, block):
        col1 = min(col0 + block, n)
        _recurse(q, r, col0, col1, leaf, input_format, reorthogonalize)
        if col1 < n:
            q1 = q[:, col0:col1]
            rest = q[:, col1:]
            r12 = tc_gemm(q1, rest, trans_a=True, input_format=input_format)
            r[col0:col1, col1:] = r12
            tc_gemm(
                q1,
                r12,
                alpha=-1.0,
                beta=1.0,
                c=rest,
                input_format=input_format,
                out=rest,
            )
    return q, r
