"""TSQR — communication-avoiding QR for tall-skinny panels.

The paper's §3.2 leans on the Ballard-Demmel-Holtz-Schwartz communication
lower bound [3]; TSQR (Demmel et al.) is the factorization that *attains*
it for tall-skinny matrices: split the panel into row blocks, QR each
independently, and reduce the small R factors up a binary tree. Each row
block is touched exactly once — the read-once property our k-split inner
product has, applied to the panel factorization itself.

Included as the natural alternative panel factorizer to the paper's
recursive CGS (LATER [24]): unconditionally stable (Householder-quality
orthogonality, since every leaf/node uses a backward-stable QR) where CGS
panels lose orthogonality with conditioning. The S9 numerics study and
unit tests compare them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.qr.cgs import _check_input
from repro.util.validation import positive_int


def tsqr(
    a: np.ndarray, *, leaf_rows: int | None = None, dtype=np.float64
) -> tuple[np.ndarray, np.ndarray]:
    """Tall-Skinny QR via pairwise tree reduction; returns thin (Q, R).

    Parameters
    ----------
    a
        Tall matrix (m >= n); not modified.
    leaf_rows
        Rows per leaf block (default ``max(4 n, ceil(m / 64))``); each leaf
        must be at least n rows tall.

    R's diagonal is sign-normalized positive, as for the other variants.
    """
    a = _check_input(a, "a")
    m, n = a.shape
    if leaf_rows is None:
        leaf_rows = max(4 * n, -(-m // 64))
    leaf_rows = max(positive_int(leaf_rows, "leaf_rows"), n)

    # split into row blocks of at least n rows
    offsets = list(range(0, m, leaf_rows))
    if offsets and m - offsets[-1] < n and len(offsets) > 1:
        offsets.pop()  # merge a short tail into the previous leaf
    blocks = []
    for i, off in enumerate(offsets):
        end = offsets[i + 1] if i + 1 < len(offsets) else m
        blocks.append(a[off:end].astype(dtype, copy=False))

    q_blocks, r = _tsqr_tree(blocks, dtype)

    q = np.vstack(q_blocks)
    # sign-normalize diag(R) > 0
    signs = np.sign(np.diag(r)).astype(dtype)
    signs[signs == 0] = 1.0
    return q * signs[None, :], np.triu(r * signs[:, None])


def _tsqr_tree(
    blocks: list[np.ndarray], dtype
) -> tuple[list[np.ndarray], np.ndarray]:
    """Pairwise (binomial-tree) reduction; returns (per-leaf thin Q
    pieces, R).

    The leaf Q pieces stay a *flat* list for the whole reduction: each
    round multiplies every leaf piece of a merged group by that group's
    b-by-b tree factor individually, instead of vstacking groups first.
    Every leaf therefore sees exactly the GEMM sequence
    ``q_leaf @ f_1 @ f_2 ...`` regardless of how leaves are grouped —
    which is what lets :mod:`repro.dist.numeric` run one leaf per device
    and still produce bitwise-identical factors (each device applies its
    group's factors to its own slab; no cross-leaf row blocking exists
    whose BLAS decomposition could differ).
    """
    qs = []
    rs = []
    for block in blocks:
        if block.shape[0] < block.shape[1]:
            raise ShapeError(
                f"TSQR leaf of {block.shape[0]} rows is shorter than "
                f"n = {block.shape[1]}"
            )
        q, r = np.linalg.qr(block)
        qs.append(q)
        rs.append(r)

    # sizes[g] = number of consecutive leaves in surviving group g
    sizes = [1] * len(rs)
    while len(rs) > 1:
        n = rs[0].shape[1]
        starts = []
        s = 0
        for size in sizes:
            starts.append(s)
            s += size
        next_rs = []
        next_sizes = []
        for i in range(0, len(rs) - 1, 2):
            stacked = np.vstack([rs[i], rs[i + 1]])
            q_pair, r_pair = np.linalg.qr(stacked)
            top, bot = q_pair[:n], q_pair[n:]
            for leaf in range(starts[i], starts[i] + sizes[i]):
                qs[leaf] = qs[leaf] @ top
            for leaf in range(starts[i + 1], starts[i + 1] + sizes[i + 1]):
                qs[leaf] = qs[leaf] @ bot
            next_rs.append(r_pair)
            next_sizes.append(sizes[i] + sizes[i + 1])
        if len(rs) % 2:
            next_rs.append(rs[-1])
            next_sizes.append(sizes[-1])
        rs = next_rs
        sizes = next_sizes
    return qs, rs[0]
