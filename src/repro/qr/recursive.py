"""Out-of-core *recursive* classic Gram-Schmidt QR — the paper's contribution.

§3.1.3 / equation (2), driven against the executor interface:

    factor(cols):
        if width(cols) <= b:          # leaf = one OOC panel
            move panel in, in-core recursive CGS QR, move Q and R11 out
        else:
            factor(left half)
            R12 = Q1ᵀ A2               # Fig 3: k-split inner product
            A2 ← A2 − Q1 R12           # Fig 5: row-streaming outer product
            factor(right half)

Because the split halves the *column* range, the update GEMMs double in
every dimension up the recursion: most flops run in huge, square-ish GEMMs
that execute near TensorCore peak AND carry enough arithmetic intensity to
hide their own PCIe traffic — while the total data movement drops from the
blocking algorithm's Θ(k·mn) to Θ(log k·mn) (§3.2).

QR-level optimizations (§4.2), all toggleable via
:class:`~repro.qr.options.QrOptions`:

* R12 stays device-resident between inner and outer product
  (``reuse_inner_result``) — no host round trip;
* when the left child is a leaf, its panel Q is still on the device, so
  the inner product switches to the panel-resident engine and skips
  re-reading Q1 entirely ("it can directly use the panel factorization
  results and only read B");
* no device barriers between phases (``qr_level_overlap``): panel
  writebacks, R12 move-outs and next-phase move-ins overlap through the
  shared stream bundle's event graph.
"""

from __future__ import annotations

from repro.ckpt.session import NULL_CHECKPOINT
from repro.errors import PlanError
from repro.execution.base import DeviceView, Executor
from repro.host.tiled import HostMatrix
from repro.ooc.inner import run_ksplit_inner, run_panel_inner
from repro.ooc.outer import run_rowstream_outer, run_tile_outer
from repro.ooc.plan import (
    plan_ksplit_inner,
    plan_panel_inner,
    plan_rowstream_outer,
    plan_tile_outer,
)
from repro.ooc.scope import DeviceScope
from repro.ooc.streams import StreamBundle
from repro.qr.blocking import QrRunInfo
from repro.qr.options import QrOptions
from repro.qr.validate import check_qr_inputs
from repro.util.units import gemm_flops


def ooc_recursive_qr(
    ex: Executor,
    a: HostMatrix,
    r: HostMatrix,
    options: QrOptions = QrOptions(),
    checkpoint=None,
) -> QrRunInfo:
    """Factorize host matrix *a* in place (A ← Q) with recursive OOC CGS QR.

    *r* (n-by-n host matrix, zero-initialized by the caller) receives R.
    *checkpoint* is an optional :class:`~repro.ckpt.CheckpointSession`;
    the recursion's events (leaf factorizations and internal-node
    updates) are the checkpoint boundaries, numbered in execution order.
    """
    m, n = check_qr_inputs(a, r, options)
    b = min(options.blocksize, n)
    info = QrRunInfo(method="recursive")
    ck = checkpoint if checkpoint is not None else NULL_CHECKPOINT
    if ck.start() > 0:
        info.notes.append(f"resumed at recursion event {ck.resume_step}")
    s = StreamBundle.create(ex, "qr-rec")
    ebytes = ex.config.element_bytes

    scope = DeviceScope(ex)
    with scope:
        panel_buf = scope.alloc(m, b, "qr-panel")
        r_tile = scope.alloc(b, b, "qr-rtile")
        _recursive_qr_body(ex, a, r, options, m, n, b, info, s, scope,
                           panel_buf, r_tile, ck)
    ex.synchronize()
    if ex.health.enabled:
        info.health = ex.health.finalize()
    return info


def _recursive_qr_body(ex, a, r, options, m, n, b, info, s, scope,
                       panel_buf, r_tile, ck):
    ebytes = ex.config.element_bytes
    # panel_holds: which host columns the panel buffer currently mirrors.
    # On resume it starts empty, so the §4.2 panel-resident inner product
    # reloads Q1 before trusting the buffer (same bits as the leaf wrote).
    state = {"panel_free": None, "r_free": None, "panel_holds": None,
             "step": 0}

    def next_step() -> int:
        step = state["step"]
        state["step"] = step + 1
        return step

    def leaf(col0: int, width: int) -> tuple[DeviceView, object]:
        """OOC panel factorization of columns [col0, col0+width).

        Returns the device view still holding Q and the writeback event.
        """
        col1 = col0 + width
        step = next_step()
        if ck.should_skip(step):
            state["panel_holds"] = None
            return panel_buf.view(0, m, 0, width), None
        panel_view = panel_buf.view(0, m, 0, width)
        r_view = r_tile.view(0, width, 0, width)
        if state["panel_free"] is not None:
            ex.wait_event(s.h2d, state["panel_free"])
        ex.h2d(panel_view, a.region(0, m, col0, col1), s.h2d)
        loaded = ex.record_event(s.h2d)
        ex.wait_event(s.compute, loaded)
        if state["r_free"] is not None:
            ex.wait_event(s.compute, state["r_free"])
        # the sentinel attributes panel probes to this leaf's column range
        ex.health.note_panel(info.n_panels, col0, col1)
        ex.panel_qr(panel_view, r_view, s.compute, tag="panel")
        factored = ex.record_event(s.compute)
        ex.wait_event(s.d2h, factored)
        ex.d2h(a.region(0, m, col0, col1), panel_view, s.d2h)
        ex.d2h(r.region(col0, col1, col0, col1), r_view, s.d2h)
        written = ex.record_event(s.d2h)
        state["panel_free"] = state["r_free"] = written
        state["panel_holds"] = (col0, width)
        info.n_panels += 1
        if not options.qr_level_overlap:
            ex.synchronize()
        # Cross-panel orthogonality probe (quiesces the pipeline). When it
        # reorthogonalizes the panel on the host, the device copy is stale:
        # drop panel_holds so the §4.2 panel-resident path reloads Q1.
        if ex.health.enabled:
            ex.synchronize()
            if ex.health.probe_host_panel(
                a, r, info.n_panels - 1, col0, col1
            ):
                state["panel_holds"] = None
        ck.step_complete(step, frontier=col1)
        return panel_view, written

    def recurse(col0: int, width: int) -> None:
        if width <= b:
            leaf(col0, width)
            return
        wl = width // 2
        wr = width - wl
        mid = col0 + wl

        recurse(col0, wl)
        left_is_leaf = wl <= b
        step = next_step()
        if ck.should_skip(step):
            recurse(mid, wr)
            return

        budget = ex.allocator.free_bytes // ebytes
        # every prior writeback (Q columns, R blocks) is covered by one
        # event on the FIFO d2h stream
        host_ready = ex.record_event(s.d2h)
        r12_region = r.region(col0, mid, mid, col0 + width)
        a2_region = a.region(0, m, mid, col0 + width)
        q1_region = a.region(0, m, col0, mid)

        r12_dev = None
        panel_resident_outer = False
        if left_is_leaf and options.reuse_inner_result:
            # §4.2 small-GEMM path: Q1 is the panel still on the device
            panel_view = panel_buf.view(0, m, 0, wl)
            if state["panel_holds"] != (col0, wl):
                # resumed past the left leaf: reload Q1 into the panel
                # buffer so this update takes the same engine path (and
                # the same summation order) as an uninterrupted run
                if state["panel_free"] is not None:
                    ex.wait_event(s.h2d, state["panel_free"])
                ex.h2d(panel_view, q1_region, s.h2d)
                reloaded = ex.record_event(s.h2d)
                ex.wait_event(s.compute, reloaded)
                state["panel_holds"] = (col0, wl)
            iplan = plan_panel_inner(
                K=m,
                M=wl,
                N=wr,
                blocksize=b,
                budget_elements=budget,
                n_buffers=options.n_buffers,
                prefer_keep_c=True,
            )
            res = run_panel_inner(
                ex,
                panel_view,
                a2_region,
                r12_region,
                iplan,
                streams=s,
                pipelined=options.pipelined,
                after=host_ready,
                tag="inner",
            )
            r12_dev = scope.adopt(res.c_device)
            panel_resident_outer = r12_dev is not None
        else:
            iplan = plan_ksplit_inner(
                K=m,
                M=wl,
                N=wr,
                blocksize=b,
                budget_elements=budget,
                n_buffers=options.n_buffers,
                gradual=options.gradual_blocksize,
            )
            keep = options.reuse_inner_result and iplan.n_panels == 1
            if keep:
                # the resident R12 must leave room for the outer pipeline
                try:
                    oplan_probe = plan_rowstream_outer(
                        M=m,
                        K=wl,
                        N=wr,
                        blocksize=options.effective_outer_blocksize,
                        budget_elements=budget - wl * wr,
                        n_buffers=options.n_buffers,
                        staging=options.staging_buffer,
                        b_resident=True,
                    )
                    keep = oplan_probe.b_resident
                except PlanError:
                    keep = False
            res = run_ksplit_inner(
                ex,
                q1_region,
                a2_region,
                r12_region,
                iplan,
                streams=s,
                keep_on_device=keep,
                pipelined=options.pipelined,
                after=host_ready,
                tag="inner",
            )
            r12_dev = scope.adopt(res.c_device)
        info.n_inner += 1
        info.inner_flops += gemm_flops(wl, wr, m)

        if not options.qr_level_overlap:
            ex.synchronize()

        outer_budget = ex.allocator.free_bytes // ebytes
        host_ready2 = ex.record_event(s.d2h)
        if panel_resident_outer:
            # both Q1 (panel) and R12 are resident: tile-streaming update
            tplan = plan_tile_outer(
                M=m,
                K=wl,
                N=wr,
                blocksize=options.effective_tile_blocksize,
                budget_elements=outer_budget,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
            )
            run_tile_outer(
                ex,
                a2_region,
                panel_buf.view(0, m, 0, wl),
                r12_dev.view(0, wl, 0, wr),
                tplan,
                streams=s,
                pipelined=options.pipelined,
                after=host_ready2,
                tag="outer",
            )
            scope.free(r12_dev)
            # the panel buffer is consumed by the outer GEMMs (compute FIFO)
            state["panel_free"] = ex.record_event(s.compute)
        elif r12_dev is not None:
            oplan = plan_rowstream_outer(
                M=m,
                K=wl,
                N=wr,
                blocksize=options.effective_outer_blocksize,
                budget_elements=outer_budget,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
                b_resident=True,
            )
            run_rowstream_outer(
                ex,
                a2_region,
                q1_region,
                r12_dev.view(0, wl, 0, wr),
                oplan,
                streams=s,
                pipelined=options.pipelined,
                after=host_ready2,
                tag="outer",
            )
            scope.free(r12_dev)
        else:
            # R12 spilled to host R; make sure it landed before streaming
            ex.synchronize()
            info.notes.append(f"level ({col0},{width}): R12 spilled to host")
            oplan = plan_rowstream_outer(
                M=m,
                K=wl,
                N=wr,
                blocksize=options.effective_outer_blocksize,
                budget_elements=ex.allocator.free_bytes // ebytes,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
                b_resident=False,
            )
            run_rowstream_outer(
                ex,
                a2_region,
                q1_region,
                r12_region,
                oplan,
                streams=s,
                pipelined=options.pipelined,
                tag="outer",
            )
        info.n_outer += 1
        info.outer_flops += gemm_flops(m, wr, wl)

        if not options.qr_level_overlap:
            ex.synchronize()

        ck.step_complete(step, frontier=mid)

        recurse(mid, wr)

    recurse(0, n)
