"""QR factorizations: in-core references (CGS/MGS/CGS2, blocked, recursive)
and the out-of-core drivers that are the paper's subject."""

from repro.qr.api import QrResult, ooc_qr
from repro.qr.blocking import QrRunInfo, ooc_blocking_qr
from repro.qr.cgs import (
    cgs2_qr,
    cgs_qr,
    factorization_error,
    mgs_qr,
    orthogonality_error,
)
from repro.qr.householder import blocked_householder_qr, householder_qr
from repro.qr.incore import incore_blocked_qr, incore_recursive_qr
from repro.qr.options import QrOptions
from repro.qr.recursive import ooc_recursive_qr

__all__ = [
    "QrOptions",
    "QrResult",
    "QrRunInfo",
    "cgs2_qr",
    "cgs_qr",
    "blocked_householder_qr",
    "factorization_error",
    "householder_qr",
    "incore_blocked_qr",
    "incore_recursive_qr",
    "mgs_qr",
    "ooc_blocking_qr",
    "ooc_qr",
    "ooc_recursive_qr",
    "orthogonality_error",
]
