"""Out-of-core *blocking* classic Gram-Schmidt QR — the paper's baseline.

§3.1.2's workflow, driven against the executor interface:

    for each width-b panel (left to right):
        1. move the m-by-b panel to the device
        2. factorize it in core (recursive CGS panel QR)
        3. move Q1 (and R11) back to the host
        4. inner product  R12 = Q1ᵀ A_rest  (Fig 4: panel-resident engine)
        5. outer product  A_rest -= Q1 R12  (Fig 6: tile-streaming engine)

The panel Q stays device-resident between steps 2-5 (it is both the
inner product's resident operand and the outer product's A); R12 stays
resident when it fits (§4.2 reuse), otherwise the outer product falls back
to the row-streaming engine reading R12 back from host R.

Why this loses on TensorCore (the paper's argument, which the calibrated
models reproduce): every GEMM's small dimension is pinned to the panel
width b, so the inner products are reduction-shaped (slow in core) and, on
small-memory GPUs where b must shrink, the tile GEMMs lose the arithmetic
intensity needed to hide their own tile traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ckpt.session import NULL_CHECKPOINT
from repro.execution.base import DeviceBuffer, Executor
from repro.health.report import HealthReport
from repro.host.tiled import HostMatrix
from repro.ooc.gradual import uniform_schedule
from repro.ooc.inner import run_panel_inner
from repro.ooc.outer import run_rowstream_outer, run_tile_outer
from repro.ooc.plan import plan_panel_inner, plan_rowstream_outer, plan_tile_outer
from repro.ooc.scope import DeviceScope
from repro.ooc.streams import StreamBundle
from repro.qr.options import QrOptions
from repro.qr.validate import check_qr_inputs
from repro.util.units import gemm_flops


@dataclass
class QrRunInfo:
    """Counters the drivers report alongside executor stats/traces."""

    method: str
    n_panels: int = 0
    n_inner: int = 0
    n_outer: int = 0
    #: per-phase GEMM flops (panel flops live in executor stats)
    inner_flops: int = 0
    outer_flops: int = 0
    notes: list[str] = field(default_factory=list)
    #: Numerical-health report (None when the sentinel is off).
    health: HealthReport | None = None


def ooc_blocking_qr(
    ex: Executor,
    a: HostMatrix,
    r: HostMatrix,
    options: QrOptions = QrOptions(),
    checkpoint=None,
) -> QrRunInfo:
    """Factorize host matrix *a* in place (A ← Q) with blocking OOC CGS QR.

    *r* (n-by-n host matrix, zero-initialized by the caller) receives R.
    *checkpoint* is an optional :class:`~repro.ckpt.CheckpointSession`;
    each panel step is a checkpoint boundary, and a session holding a
    prior checkpoint restores A/R and skips the completed panels.
    """
    m, n = check_qr_inputs(a, r, options)
    b = min(options.blocksize, n)
    info = QrRunInfo(method="blocking")
    ck = checkpoint if checkpoint is not None else NULL_CHECKPOINT
    if ck.start() > 0:
        info.notes.append(f"resumed at panel step {ck.resume_step}")
    s = StreamBundle.create(ex, "qr-blk")
    ebytes = ex.config.element_bytes

    with DeviceScope(ex) as scope:
        panel_buf = scope.alloc(m, b, "qr-panel")
        r_tile = scope.alloc(b, b, "qr-rtile")
        _blocking_qr_body(ex, a, r, options, m, n, b, info, s, scope,
                          panel_buf, r_tile, ck)
    ex.synchronize()
    if ex.health.enabled:
        info.health = ex.health.finalize()
    return info


def _blocking_qr_body(ex, a, r, options, m, n, b, info, s, scope,
                      panel_buf, r_tile, ck):
    ebytes = ex.config.element_bytes
    panel_free: object | None = None  # last consumer of the panel buffer
    r_free: object | None = None      # last writeback of the R11 tile

    for p, (col0, width) in enumerate(uniform_schedule(n, b)):
        col1 = col0 + width
        trailing = n - col1
        if ck.should_skip(p):
            continue
        panel_view = panel_buf.view(0, m, 0, width)
        r_view = r_tile.view(0, width, 0, width)

        # 1. panel move-in (waits only for the buffer's previous consumers)
        if panel_free is not None:
            ex.wait_event(s.h2d, panel_free)
        ex.h2d(panel_view, a.region(0, m, col0, col1), s.h2d)
        loaded = ex.record_event(s.h2d)
        ex.wait_event(s.compute, loaded)
        if r_free is not None:
            # the previous R11 tile must have left before we overwrite it
            ex.wait_event(s.compute, r_free)

        # 2. in-core panel factorization (the sentinel attributes panel
        # probes to this column range, in issue order)
        ex.health.note_panel(p, col0, col1)
        ex.panel_qr(panel_view, r_view, s.compute, tag="panel")
        factored = ex.record_event(s.compute)

        # 3. write Q1 and R11 back (overlaps the next phase's move-ins)
        ex.wait_event(s.d2h, factored)
        ex.d2h(a.region(0, m, col0, col1), panel_view, s.d2h)
        ex.d2h(r.region(col0, col1, col0, col1), r_view, s.d2h)
        q_written = r_free = ex.record_event(s.d2h)
        info.n_panels += 1

        if not options.qr_level_overlap:
            ex.synchronize()

        if trailing == 0:
            panel_free = q_written
            if ex.health.enabled:
                ex.synchronize()
                ex.health.probe_host_panel(a, r, p, col0, col1)
            ck.step_complete(p, frontier=col1)
            break

        # 4. inner product R12 = Q1ᵀ A_rest (Fig 4)
        inner_plan = plan_panel_inner(
            K=m,
            M=width,
            N=trailing,
            blocksize=b,
            budget_elements=ex.allocator.free_bytes // ebytes,
            n_buffers=options.n_buffers,
            prefer_keep_c=options.reuse_inner_result,
        )
        inner_res = run_panel_inner(
            ex,
            panel_view,
            a.region(0, m, col1, n),
            r.region(col0, col1, col1, n),
            inner_plan,
            streams=s,
            pipelined=options.pipelined,
            after=q_written,
            tag="inner",
        )
        info.n_inner += 1
        info.inner_flops += gemm_flops(width, trailing, m)

        if not options.qr_level_overlap:
            ex.synchronize()

        # 5. outer product A_rest -= Q1 R12 (Fig 6, or spill fallback)
        r12_dev: DeviceBuffer | None = scope.adopt(inner_res.c_device)
        if r12_dev is not None:
            tile_plan = plan_tile_outer(
                M=m,
                K=width,
                N=trailing,
                blocksize=options.effective_tile_blocksize,
                budget_elements=ex.allocator.free_bytes // ebytes,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
            )
            run_tile_outer(
                ex,
                a.region(0, m, col1, n),
                panel_view,
                r12_dev.view(0, width, 0, trailing),
                tile_plan,
                streams=s,
                pipelined=options.pipelined,
                tag="outer",
            )
            scope.free(r12_dev)
        else:
            # R12 could not stay resident: stream it back from host R. The
            # spill forces a sync so the streamed reads happen after the
            # d2h that produced them (numeric order is already safe; this
            # keeps the simulated timeline honest).
            ex.synchronize()
            info.notes.append(
                f"panel {p}: R12 ({width}x{trailing}) spilled to host"
            )
            outer_plan = plan_rowstream_outer(
                M=m,
                K=width,
                N=trailing,
                blocksize=options.effective_outer_blocksize,
                budget_elements=ex.allocator.free_bytes // ebytes,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
                b_resident=False,
            )
            run_rowstream_outer(
                ex,
                a.region(0, m, col1, n),
                a.region(0, m, col0, col1),
                r.region(col0, col1, col1, n),
                outer_plan,
                streams=s,
                pipelined=options.pipelined,
                tag="outer",
            )
        info.n_outer += 1
        info.outer_flops += gemm_flops(m, trailing, width)
        panel_free = ex.record_event(s.compute)

        if not options.qr_level_overlap:
            ex.synchronize()

        # Cross-panel orthogonality probe (see HealthSentinel.probe_host_
        # panel). Needs a quiesced pipeline so host A/R reflect this panel;
        # monitoring therefore serializes panel boundaries. A reorthogonal-
        # ized panel only rewrites host state — the trailing update above
        # already ran, and the probe's exact R bookkeeping keeps A = QR.
        if ex.health.enabled:
            ex.synchronize()
            ex.health.probe_host_panel(a, r, p, col0, col1)

        ck.step_complete(p, frontier=col1)
