"""Shared input validation for the OOC QR drivers."""

from __future__ import annotations

from repro.errors import ShapeError, ValidationError
from repro.host.tiled import HostMatrix
from repro.qr.options import QrOptions


def check_qr_inputs(
    a: HostMatrix, r: HostMatrix, options: QrOptions
) -> tuple[int, int]:
    """Validate the (A, R) pair for an OOC QR run; returns (m, n).

    A must be tall (m >= n). R must be n-by-n. Both must agree on backing:
    either both carry data (numeric/hybrid run) or both are shape-only
    (simulated run) — a mixed pair is almost certainly a caller bug.
    """
    m, n = a.shape
    if m < n:
        raise ShapeError(
            f"OOC QR requires a tall matrix (m >= n), got {m}x{n}"
        )
    if r.shape != (n, n):
        raise ShapeError(f"R must be {n}x{n}, got {r.shape[0]}x{r.shape[1]}")
    if a.backed != r.backed:
        raise ValidationError(
            "A and R must both be backed (numeric) or both shape-only "
            f"(simulated); got A backed={a.backed}, R backed={r.backed}"
        )
    if a.element_bytes != r.element_bytes:
        raise ValidationError(
            "A and R must have the same element size, got "
            f"{a.element_bytes} and {r.element_bytes}"
        )
    if options.blocksize > m:
        raise ValidationError(
            f"blocksize {options.blocksize} exceeds the row count {m}"
        )
    return m, n
