"""Host-resident (out-of-core) matrices and rectangular regions.

A :class:`HostMatrix` is the "big" operand living in host memory (or on
disk via ``numpy.memmap`` — genuinely out of core). OOC engines address it
through :class:`HostRegion` windows, which carry enough information for
both executors:

* the numeric executor reads/writes ``region.array`` (a numpy view — never
  a copy, per the zero-copy discipline of the OOC engines);
* the simulated executor only uses ``region.nbytes``.

A *shape-only* matrix has no backing storage at all, which is what lets the
simulator factorize 131072 x 131072 (68 GB) problems in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.util.validation import check_shape_2d, positive_int


@dataclass(eq=False)
class HostMatrix:
    """A 2-D matrix in host storage, possibly without backing data."""

    rows: int
    cols: int
    element_bytes: int = 4
    data: np.ndarray | None = None
    name: str = "A"

    def __post_init__(self) -> None:
        self.rows, self.cols = check_shape_2d((self.rows, self.cols), self.name)
        self.element_bytes = positive_int(self.element_bytes, "element_bytes")
        if self.data is not None:
            if self.data.shape != (self.rows, self.cols):
                raise ShapeError(
                    f"backing array shape {self.data.shape} does not match "
                    f"declared shape {(self.rows, self.cols)}"
                )
            if self.data.dtype.itemsize != self.element_bytes:
                raise ShapeError(
                    f"backing dtype {self.data.dtype} has itemsize "
                    f"{self.data.dtype.itemsize}, declared {self.element_bytes}"
                )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_array(cls, array: np.ndarray, name: str = "A") -> "HostMatrix":
        """Wrap an existing 2-D numpy array (no copy; memmap subclasses are
        kept as-is so callers can still flush them)."""
        if not isinstance(array, np.ndarray):
            array = np.atleast_2d(np.asarray(array))
        if array.ndim != 2:
            raise ShapeError(f"{name} must be 2-D, got {array.ndim}-D")
        return cls(
            rows=array.shape[0],
            cols=array.shape[1],
            element_bytes=array.dtype.itemsize,
            data=array,
            name=name,
        )

    @classmethod
    def shape_only(
        cls, rows: int, cols: int, element_bytes: int = 4, name: str = "A"
    ) -> "HostMatrix":
        """A matrix that exists only as a shape (simulation mode)."""
        return cls(rows=rows, cols=cols, element_bytes=element_bytes, data=None, name=name)

    @classmethod
    def zeros(
        cls, rows: int, cols: int, dtype=np.float32, name: str = "A"
    ) -> "HostMatrix":
        """An actual zero-initialized host matrix."""
        return cls.from_array(np.zeros((rows, cols), dtype=dtype), name=name)

    @classmethod
    def memmap(
        cls,
        path: str | Path,
        rows: int,
        cols: int,
        dtype=np.float32,
        mode: str = "w+",
        name: str = "A",
    ) -> "HostMatrix":
        """A disk-backed matrix (true out-of-core host storage)."""
        mm = np.memmap(str(path), dtype=dtype, mode=mode, shape=(rows, cols))
        return cls.from_array(mm, name=name)

    # -- properties --------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def nbytes(self) -> int:
        """Total storage footprint in bytes."""
        return self.rows * self.cols * self.element_bytes

    @property
    def backed(self) -> bool:
        """Whether the matrix has real data (numeric mode)."""
        return self.data is not None

    # -- region addressing ---------------------------------------------------------

    def region(
        self, row0: int = 0, row1: int | None = None, col0: int = 0, col1: int | None = None
    ) -> "HostRegion":
        """The window ``[row0:row1, col0:col1]`` as a :class:`HostRegion`."""
        row1 = self.rows if row1 is None else row1
        col1 = self.cols if col1 is None else col1
        return HostRegion(self, row0, row1, col0, col1)

    def full(self) -> "HostRegion":
        """The whole matrix as a region."""
        return self.region()

    def col_block(self, col0: int, width: int) -> "HostRegion":
        """Columns ``[col0, col0 + width)`` over all rows."""
        return self.region(col0=col0, col1=col0 + width)

    def row_block(self, row0: int, height: int) -> "HostRegion":
        """Rows ``[row0, row0 + height)`` over all columns."""
        return self.region(row0=row0, row1=row0 + height)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = "backed" if self.backed else "shape-only"
        return f"HostMatrix({self.name!r}, {self.rows}x{self.cols}, {backing})"


@dataclass(frozen=True)
class HostRegion:
    """A rectangular window into a :class:`HostMatrix`."""

    matrix: HostMatrix
    row0: int
    row1: int
    col0: int
    col1: int

    def __post_init__(self) -> None:
        if not (0 <= self.row0 < self.row1 <= self.matrix.rows):
            raise ShapeError(
                f"row range [{self.row0}, {self.row1}) outside matrix with "
                f"{self.matrix.rows} rows"
            )
        if not (0 <= self.col0 < self.col1 <= self.matrix.cols):
            raise ShapeError(
                f"col range [{self.col0}, {self.col1}) outside matrix with "
                f"{self.matrix.cols} cols"
            )

    @property
    def rows(self) -> int:
        return self.row1 - self.row0

    @property
    def cols(self) -> int:
        return self.col1 - self.col0

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def nbytes(self) -> int:
        """Bytes a transfer of this region moves over PCIe."""
        return self.rows * self.cols * self.matrix.element_bytes

    @property
    def array(self) -> np.ndarray:
        """Numpy view of the region (numeric mode only; never a copy)."""
        if self.matrix.data is None:
            raise ValidationError(
                f"region of shape-only matrix {self.matrix.name!r} has no data"
            )
        return self.matrix.data[self.row0 : self.row1, self.col0 : self.col1]

    def sub(
        self, row0: int = 0, row1: int | None = None, col0: int = 0, col1: int | None = None
    ) -> "HostRegion":
        """A sub-window addressed relative to this region."""
        row1 = self.rows if row1 is None else row1
        col1 = self.cols if col1 is None else col1
        return HostRegion(
            self.matrix,
            self.row0 + row0,
            self.row0 + row1,
            self.col0 + col0,
            self.col0 + col1,
        )

    def label(self) -> str:
        """Compact human-readable address (used in op names / timelines)."""
        return (
            f"{self.matrix.name}[{self.row0}:{self.row1},{self.col0}:{self.col1}]"
        )


def tile_ranges(extent: int, tile: int) -> list[tuple[int, int]]:
    """Split ``[0, extent)`` into consecutive ranges of at most *tile*.

    The partition property (exact cover, no overlap) is hypothesis-tested.
    """
    extent = positive_int(extent, "extent")
    tile = positive_int(tile, "tile")
    return [(lo, min(lo + tile, extent)) for lo in range(0, extent, tile)]
