"""Pinned host-buffer pool.

Real CUDA OOC codes stage transfers through page-locked (pinned) host
buffers: pinned transfers run ~2x faster than pageable ones (the paper
quotes ~12 GB/s pinned vs the 13 GB/s PCIe peak). We model the *pool*
explicitly so that numeric-mode runs reuse staging storage instead of
allocating per tile, and so the pinned-vs-pageable ablation has a real
code path to toggle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError
from repro.util.validation import positive_int


@dataclass
class PinnedPool:
    """A reuse pool of host staging buffers keyed by byte size.

    ``acquire`` returns the smallest free buffer that fits (or allocates a
    new one); ``release`` returns it for reuse. Tracks high-water marks so
    tests can assert staging memory stays bounded.
    """

    #: Largest total bytes the pool may hold; 0 means unlimited.
    capacity: int = 0
    _free: dict[int, list[np.ndarray]] = field(default_factory=dict)
    _live: int = 0
    total_bytes: int = 0
    peak_live: int = 0
    n_hits: int = 0
    n_misses: int = 0

    def acquire(self, nbytes: int) -> np.ndarray:
        """Get a staging buffer of at least *nbytes* (uint8-typed)."""
        nbytes = positive_int(nbytes, "nbytes")
        bucket = self._free.get(self._round(nbytes))
        if bucket:
            buf = bucket.pop()
            self.n_hits += 1
        else:
            size = self._round(nbytes)
            if self.capacity and self.total_bytes + size > self.capacity:
                raise AllocationError(
                    f"pinned pool capacity {self.capacity} exceeded "
                    f"(holding {self.total_bytes}, requested {size})"
                )
            buf = np.empty(size, dtype=np.uint8)
            self.total_bytes += size
            self.n_misses += 1
        self._live += 1
        self.peak_live = max(self.peak_live, self._live)
        return buf

    def release(self, buf: np.ndarray) -> None:
        """Return a buffer to the pool."""
        if self._live <= 0:
            raise AllocationError("release without matching acquire")
        self._live -= 1
        self._free.setdefault(buf.nbytes, []).append(buf)

    @property
    def live(self) -> int:
        """Buffers currently checked out."""
        return self._live

    @staticmethod
    def _round(nbytes: int) -> int:
        """Round sizes to 1 MiB granularity so near-equal tiles share
        buffers."""
        granule = 1 << 20
        return ((nbytes + granule - 1) // granule) * granule
