"""Host-side (out-of-core) storage: tiled matrices, regions, pinned pool."""

from repro.host.pinned import PinnedPool
from repro.host.tiled import HostMatrix, HostRegion, tile_ranges

__all__ = ["HostMatrix", "HostRegion", "PinnedPool", "tile_ranges"]
