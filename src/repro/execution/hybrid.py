"""Hybrid executor: numeric results *and* a simulated timeline in one run.

Every call is forwarded to an inner :class:`NumericExecutor` (which owns
the data) and an inner :class:`SimExecutor` (which owns time). Buffers are
paired: the hybrid hands out the numeric executor's buffers and keeps a
shadow buffer per allocation on the simulated side; views are re-created
with identical coordinates. The two inner executors see byte-identical op
streams, so any divergence between counters is a bug (asserted in
``finish``).
"""

from __future__ import annotations

from typing import Any

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.execution.base import DeviceBuffer, DeviceView, Executor, as_view
from repro.execution.numeric import NumericExecutor
from repro.execution.sim import SimExecutor
from repro.host.tiled import HostMatrix, HostRegion
from repro.sim.trace import Trace


class _HybridStream:
    """Pairs a (dummy) numeric stream with a simulator stream."""

    def __init__(self, numeric: Any, sim: Any, name: str):
        self.numeric = numeric
        self.sim = sim
        self.name = name


class _HybridEvent:
    def __init__(self, numeric: Any, sim: Any):
        self.numeric = numeric
        self.sim = sim


class HybridExecutor(Executor):
    """Run numerically and through the simulator simultaneously."""

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.numeric = NumericExecutor(config)
        self.simulated = SimExecutor(config)
        self.allocator = self.numeric.allocator

    # -- helpers -----------------------------------------------------------------

    def _shadow(self, view: DeviceView) -> DeviceView:
        """The simulated-side view matching a numeric-side view."""
        shadow_buf = view.buffer.payload.get("sim_shadow")
        if shadow_buf is None:
            raise ExecutionError(
                f"buffer {view.buffer.name!r} was not allocated by this "
                "hybrid executor"
            )
        return shadow_buf.view(view.row0, view.row1, view.col0, view.col1)

    @staticmethod
    def _shape_region(src: HostRegion) -> HostRegion:
        """A shape-only twin of a host region for the simulated side (the
        simulator must never touch real data)."""
        twin = HostMatrix.shape_only(
            src.matrix.rows,
            src.matrix.cols,
            element_bytes=src.matrix.element_bytes,
            name=src.matrix.name,
        )
        return HostRegion(twin, src.row0, src.row1, src.col0, src.col1)

    # -- memory -------------------------------------------------------------------

    def alloc(self, rows: int, cols: int, name: str = "buf") -> DeviceBuffer:
        buf = self.numeric.alloc(rows, cols, name)
        buf.payload["sim_shadow"] = self.simulated.alloc(rows, cols, name)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        self.simulated.free(buf.payload["sim_shadow"])
        self.numeric.free(buf)

    # -- streams --------------------------------------------------------------------

    def stream(self, name: str) -> _HybridStream:
        return _HybridStream(self.numeric.stream(name), self.simulated.stream(name), name)

    def record_event(self, stream: _HybridStream) -> _HybridEvent:
        return _HybridEvent(
            self.numeric.record_event(stream.numeric),
            self.simulated.record_event(stream.sim),
        )

    def wait_event(self, stream: _HybridStream, event: _HybridEvent) -> None:
        self.numeric.wait_event(stream.numeric, event.numeric)
        self.simulated.wait_event(stream.sim, event.sim)

    def synchronize(self) -> None:
        self.numeric.synchronize()
        self.simulated.synchronize()

    # -- data movement ----------------------------------------------------------------

    def h2d(self, dst: DeviceBuffer | DeviceView, src: HostRegion, stream: _HybridStream) -> None:
        dst = as_view(dst)
        self.numeric.h2d(dst, src, stream.numeric)
        self.simulated.h2d(self._shadow(dst), self._shape_region(src), stream.sim)

    def d2h(self, dst: HostRegion, src: DeviceBuffer | DeviceView, stream: _HybridStream) -> None:
        src = as_view(src)
        self.numeric.d2h(dst, src, stream.numeric)
        self.simulated.d2h(self._shape_region(dst), self._shadow(src), stream.sim)

    def d2d(
        self,
        dst: DeviceBuffer | DeviceView,
        src: DeviceBuffer | DeviceView,
        stream: _HybridStream,
    ) -> None:
        dst, src = as_view(dst), as_view(src)
        self.numeric.d2d(dst, src, stream.numeric)
        self.simulated.d2d(self._shadow(dst), self._shadow(src), stream.sim)

    # -- compute --------------------------------------------------------------------------

    def gemm(
        self,
        c: DeviceBuffer | DeviceView,
        a: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: _HybridStream,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        trans_a: bool = False,
        trans_b: bool = False,
        tag: str = "gemm",
    ) -> None:
        c, a, b = as_view(c), as_view(a), as_view(b)
        kwargs = dict(
            alpha=alpha, beta=beta, trans_a=trans_a, trans_b=trans_b, tag=tag
        )
        self.numeric.gemm(c, a, b, stream.numeric, **kwargs)
        self.simulated.gemm(
            self._shadow(c), self._shadow(a), self._shadow(b), stream.sim, **kwargs
        )

    def panel_qr(
        self,
        panel: DeviceBuffer | DeviceView,
        r_out: DeviceBuffer | DeviceView,
        stream: _HybridStream,
        *,
        tag: str = "panel",
    ) -> None:
        panel, r_out = as_view(panel), as_view(r_out)
        self.numeric.panel_qr(panel, r_out, stream.numeric, tag=tag)
        self.simulated.panel_qr(
            self._shadow(panel), self._shadow(r_out), stream.sim, tag=tag
        )

    # -- §6 extension ops (LU / Cholesky) -------------------------------------

    def trsm(
        self,
        a_tri: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: _HybridStream,
        *,
        lower: bool = True,
        unit_diag: bool = False,
        trans_a: bool = False,
        tag: str = "trsm",
    ) -> None:
        a_tri, b = as_view(a_tri), as_view(b)
        kwargs = dict(lower=lower, unit_diag=unit_diag, trans_a=trans_a, tag=tag)
        self.numeric.trsm(a_tri, b, stream.numeric, **kwargs)
        self.simulated.trsm(self._shadow(a_tri), self._shadow(b), stream.sim, **kwargs)

    def panel_lu(
        self,
        panel: DeviceBuffer | DeviceView,
        u_out: DeviceBuffer | DeviceView,
        stream: _HybridStream,
        *,
        tag: str = "panel-lu",
    ) -> None:
        panel, u_out = as_view(panel), as_view(u_out)
        self.numeric.panel_lu(panel, u_out, stream.numeric, tag=tag)
        self.simulated.panel_lu(
            self._shadow(panel), self._shadow(u_out), stream.sim, tag=tag
        )

    def panel_cholesky(
        self,
        panel: DeviceBuffer | DeviceView,
        stream: _HybridStream,
        *,
        tag: str = "panel-chol",
    ) -> None:
        panel = as_view(panel)
        self.numeric.panel_cholesky(panel, stream.numeric, tag=tag)
        self.simulated.panel_cholesky(self._shadow(panel), stream.sim, tag=tag)

    # -- results --------------------------------------------------------------------------

    def finish(self) -> Trace:
        """Drain both sides, cross-check counters, return the trace."""
        trace = self.simulated.finish()
        ns, ss = self.numeric.stats, self.simulated.stats
        mismatches = [
            name
            for name in ("h2d_bytes", "d2h_bytes", "d2d_bytes", "gemm_flops", "n_gemms", "n_panels")
            if getattr(ns, name) != getattr(ss, name)
        ]
        if mismatches:
            raise ExecutionError(
                f"hybrid executors diverged on: {', '.join(mismatches)}"
            )
        self.stats = ns
        self.stats.makespan = ss.makespan
        return trace
