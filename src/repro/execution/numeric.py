"""Numeric executor: really computes, with TensorCore numerics emulation.

Work executes eagerly in issue order (a legal serialization of any correct
stream program), so numeric results are exact regardless of how the calling
pipeline arranged its streams — stream correctness itself is validated by
the simulator's causality checks and by the hybrid executor's cross-checks.

Device buffers are numpy fp32 arrays, still accounted against the simulated
device capacity through :class:`~repro.sim.memory.DeviceAllocator`, so
numeric runs exercise the same out-of-memory paths as simulated ones (with
a scaled-down :class:`~repro.hw.specs.GpuSpec` for tests).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.execution.base import DeviceBuffer, DeviceView, Executor, as_view
from repro.host.tiled import HostRegion
from repro.hw.gemm import Precision
from repro.sim.memory import DeviceAllocator
from repro.tc.gemm import tc_gemm
from repro.util.units import gemm_flops


class _NullStream:
    """Streams are ordering hints only for the numeric executor."""

    def __init__(self, name: str):
        self.name = name


class _NullEvent:
    pass


class NumericExecutor(Executor):
    """Eager numpy-backed executor (see module docstring)."""

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.allocator = DeviceAllocator(config.usable_device_bytes)
        self._input_format = config.precision.input_format

    # -- memory -----------------------------------------------------------------

    def alloc(self, rows: int, cols: int, name: str = "buf") -> DeviceBuffer:
        buf = DeviceBuffer(name=name, rows=rows, cols=cols)
        nbytes = rows * cols * self.config.element_bytes
        allocation = self.allocator.alloc(nbytes, name=name)
        # Device data lives in fp32 regardless of element_bytes: storage
        # sizing models the paper's fp32 matrices, math runs in fp32 with
        # fp16 rounding applied inside GEMMs.
        buf.payload["data"] = np.zeros((rows, cols), dtype=np.float32)
        buf.payload["allocation"] = allocation
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        if buf.freed:
            raise ExecutionError(f"double free of device buffer {buf.name!r}")
        self.allocator.free(buf.payload["allocation"])
        buf.payload.pop("data", None)
        buf.freed = True

    # -- streams -----------------------------------------------------------------

    def stream(self, name: str) -> Any:
        return _NullStream(name)

    def record_event(self, stream: Any) -> Any:
        return _NullEvent()

    def wait_event(self, stream: Any, event: Any) -> None:
        pass

    def synchronize(self) -> None:
        pass

    # -- views -------------------------------------------------------------------

    @staticmethod
    def _data(view: DeviceView) -> np.ndarray:
        buf = view.buffer
        if buf.freed:
            raise ExecutionError(f"use of freed device buffer {buf.name!r}")
        data = buf.payload.get("data")
        if data is None:
            raise ExecutionError(
                f"device buffer {buf.name!r} has no numeric payload "
                "(allocated by a different executor?)"
            )
        return data[view.row0 : view.row1, view.col0 : view.col1]

    # -- data movement ------------------------------------------------------------

    def h2d(self, dst: DeviceBuffer | DeviceView, src: HostRegion, stream: Any) -> None:
        dst = as_view(dst)
        self._check_copy_shapes(dst.shape, src.shape)
        np.copyto(self._data(dst), src.array)
        self.stats.h2d_bytes += src.nbytes

    def d2h(self, dst: HostRegion, src: DeviceBuffer | DeviceView, stream: Any) -> None:
        src = as_view(src)
        self._check_copy_shapes(dst.shape, src.shape)
        np.copyto(dst.array, self._data(src))
        self.stats.d2h_bytes += dst.nbytes

    def d2d(
        self, dst: DeviceBuffer | DeviceView, src: DeviceBuffer | DeviceView, stream: Any
    ) -> None:
        dst, src = as_view(dst), as_view(src)
        self._check_copy_shapes(dst.shape, src.shape)
        np.copyto(self._data(dst), self._data(src))
        self.stats.d2d_bytes += (
            dst.rows * dst.cols * self.config.element_bytes
        )

    # -- compute --------------------------------------------------------------------

    def gemm(
        self,
        c: DeviceBuffer | DeviceView,
        a: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        trans_a: bool = False,
        trans_b: bool = False,
        tag: str = "gemm",
    ) -> None:
        c, a, b = as_view(c), as_view(a), as_view(b)
        m, n, k = self._gemm_dims(c, a, b, trans_a, trans_b)
        c_data = self._data(c)
        tc_gemm(
            self._data(a),
            self._data(b),
            alpha=alpha,
            beta=beta,
            c=c_data if beta != 0.0 else None,
            trans_a=trans_a,
            trans_b=trans_b,
            input_format=self._input_format,
            out=c_data,
        )
        self.stats.gemm_flops += gemm_flops(m, n, k)
        self.stats.n_gemms += 1

    def panel_qr(
        self,
        panel: DeviceBuffer | DeviceView,
        r_out: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel",
    ) -> None:
        panel, r_out = as_view(panel), as_view(r_out)
        if r_out.shape != (panel.cols, panel.cols):
            raise ExecutionError(
                f"panel_qr: R is {r_out.shape}, expected "
                f"{(panel.cols, panel.cols)}"
            )
        a_data = self._data(panel)
        q, r = self._factorize_panel(a_data)
        np.copyto(a_data, q)
        np.copyto(self._data(r_out), r)
        self.stats.panel_flops += self.config.panel.flops(panel.rows, panel.cols)
        self.stats.n_panels += 1

    def _factorize_panel(self, a_data: np.ndarray):
        """Dispatch on ``config.panel_algorithm``; imports are lazy because
        repro.qr also hosts the OOC drivers that import this module."""
        algo = self.config.panel_algorithm
        if algo == "tsqr":
            from repro.qr.tsqr import tsqr

            q, r = tsqr(a_data, dtype=np.float32)
            return q.astype(np.float32), r.astype(np.float32)
        if algo == "householder":
            from repro.qr.householder import householder_qr

            q, r = householder_qr(a_data, dtype=np.float32)
            return q.astype(np.float32), r.astype(np.float32)
        from repro.qr.incore import incore_recursive_qr

        return incore_recursive_qr(a_data, input_format=self._input_format)

    # -- §6 extension ops (LU / Cholesky) -------------------------------------

    def trsm(
        self,
        a_tri: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        lower: bool = True,
        unit_diag: bool = False,
        trans_a: bool = False,
        tag: str = "trsm",
    ) -> None:
        import scipy.linalg

        a_tri, b = as_view(a_tri), as_view(b)
        if a_tri.rows != a_tri.cols:
            raise ExecutionError(
                f"trsm: triangle must be square, got {a_tri.shape}"
            )
        if b.rows != a_tri.rows:
            raise ExecutionError(
                f"trsm: B has {b.rows} rows, triangle is {a_tri.rows}"
            )
        b_data = self._data(b)
        solved = scipy.linalg.solve_triangular(
            self._data(a_tri),
            b_data,
            lower=lower,
            unit_diagonal=unit_diag,
            trans="T" if trans_a else "N",
            check_finite=False,
        )
        np.copyto(b_data, solved.astype(np.float32, copy=False))
        self.stats.gemm_flops += a_tri.rows * a_tri.rows * b.cols
        self.stats.n_gemms += 1

    def panel_lu(
        self,
        panel: DeviceBuffer | DeviceView,
        u_out: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel-lu",
    ) -> None:
        from repro.factor.incore import incore_lu_nopivot

        panel, u_out = as_view(panel), as_view(u_out)
        if u_out.shape != (panel.cols, panel.cols):
            raise ExecutionError(
                f"panel_lu: U is {u_out.shape}, expected "
                f"{(panel.cols, panel.cols)}"
            )
        a_data = self._data(panel)
        packed = incore_lu_nopivot(a_data, input_format=self._input_format)
        np.copyto(a_data, packed)
        np.copyto(self._data(u_out), np.triu(packed[: panel.cols]))
        # LU panel work is m b^2 — half of QR's 2 m b^2
        self.stats.panel_flops += self.config.panel.flops(panel.rows, panel.cols) // 2
        self.stats.n_panels += 1

    def panel_cholesky(
        self,
        panel: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel-chol",
    ) -> None:
        import scipy.linalg

        from repro.errors import ValidationError

        panel = as_view(panel)
        b = panel.cols
        if panel.rows < b:
            raise ExecutionError(
                f"panel_cholesky: panel {panel.shape} shorter than its width"
            )
        data = self._data(panel)
        try:
            chol = np.linalg.cholesky(data[:b].astype(np.float64))
        except np.linalg.LinAlgError as exc:
            raise ValidationError(
                "panel_cholesky: diagonal block not positive definite"
            ) from exc
        data[:b] = np.triu(np.zeros((b, b), dtype=np.float32)) + np.tril(
            chol.astype(np.float32)
        )
        if panel.rows > b:
            data[b:] = scipy.linalg.solve_triangular(
                chol, data[b:].astype(np.float64).T, lower=True, check_finite=False
            ).T.astype(np.float32)
        self.stats.panel_flops += b * b * b // 3 + (panel.rows - b) * b * b
        self.stats.n_panels += 1
