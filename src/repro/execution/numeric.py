"""Numeric executor: really computes, with TensorCore numerics emulation.

By default work executes eagerly in issue order (a legal serialization of
any correct stream program), so numeric results are exact regardless of how
the calling pipeline arranged its streams. With ``record=True`` the
executor additionally records the stream program — the same
:class:`~repro.sim.scheduler.StreamProgram` happens-before graph the
simulator builds — stamping every executed op with wall-clock times, which is
what the differential test harness compares across backends and what the
race detector consumes.

:class:`~repro.execution.concurrent.ConcurrentNumericExecutor` subclasses
this executor and overrides :meth:`NumericExecutor._issue` to dispatch op
bodies onto per-engine worker threads instead of running them inline.

Device buffers are numpy fp32 arrays, still accounted against the simulated
device capacity through :class:`~repro.sim.memory.DeviceAllocator`, so
numeric runs exercise the same out-of-memory paths as simulated ones (with
a scaled-down :class:`~repro.hw.specs.GpuSpec` for tests).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.execution.base import DeviceBuffer, DeviceView, Executor, as_view
from repro.health.sentinel import NULL_SENTINEL, HealthSentinel
from repro.host.tiled import HostRegion
from repro.obs.clock import monotonic as _monotonic
from repro.sim.memory import DeviceAllocator
from repro.sim.ops import EngineKind, OpKind, SimOp
from repro.sim.scheduler import (
    StreamProgram,
    copy_name,
    device_access,
    gemm_name,
    panel_name,
)
from repro.sim.trace import Trace
from repro.tc.gemm import tc_gemm
from repro.util.units import gemm_flops


class _NullStream:
    """Streams are ordering hints only for the eager numeric executor."""

    def __init__(self, name: str):
        self.name = name


class _NullEvent:
    pass


class NumericExecutor(Executor):
    """Eager numpy-backed executor (see module docstring).

    Parameters
    ----------
    config
        The system configuration (device capacity, precision, models).
    record
        When true, streams/events are real (the shared
        :class:`~repro.sim.scheduler.StreamProgram` wiring) and every op is
        recorded with its dependency edges, device accesses and wall-clock
        start/end stamps — see :meth:`recorded_trace`.
    """

    def __init__(self, config: SystemConfig, *, record: bool = False):
        super().__init__(config)
        self.allocator = DeviceAllocator(config.usable_device_bytes)
        self._input_format = config.precision.input_format
        self.program: StreamProgram | None = StreamProgram() if record else None
        self._t0: float | None = None
        #: Recorder-timebase instant matching ``_t0`` — lets recorded ops
        #: (stamped relative to ``_t0``) land on the shared span timeline.
        self._obs_t0: float = 0.0
        #: Numerical-health sentinel; the api layer swaps in a live one
        #: when ``options.health`` enables probing. Op bodies consult it,
        #: so it must be attached before any op is issued.
        self.health: HealthSentinel = NULL_SENTINEL

    # -- issue machinery ---------------------------------------------------------

    def _now(self) -> float:
        """Seconds since the first issued op (wall clock)."""
        return _monotonic() - self._t0 if self._t0 is not None else 0.0

    def _issue(
        self,
        stream: Any,
        *,
        name: str,
        engine: EngineKind,
        kind: OpKind,
        body: Callable[[], None],
        nbytes: int = 0,
        flops: int = 0,
        tag: str | None = None,
        accesses: list | None = None,
        host_reads: tuple[HostRegion, ...] = (),
        host_writes: tuple[HostRegion, ...] = (),
    ) -> None:
        """Run (or dispatch) one operation.

        The serial executor executes *body* immediately; when recording it
        also appends a :class:`~repro.sim.ops.SimOp` node to the program
        with the op's stream/event dependency edges and wall-clock stamps.
        Subclasses override this to schedule *body* elsewhere (the
        concurrent executor sends it to the op's engine worker).
        """
        if self._t0 is None:
            self._t0 = _monotonic()
            if self.obs.enabled:
                self._obs_t0 = self.obs.now()
        if self.program is None:
            if self.obs.enabled:
                start = self.obs.now()
                body()
                self._record_op_span(
                    name, engine, kind, start, self.obs.now(),
                    nbytes=nbytes, flops=flops, tag=tag,
                    accesses=accesses, stream=stream,
                )
            else:
                body()
            return
        op = self._make_op(
            name=name, engine=engine, kind=kind, nbytes=nbytes, flops=flops,
            tag=tag, accesses=accesses,
        )
        self.program.append(op, stream)
        op.start = self._now()
        body()
        op.end = self._now()
        op.duration = op.end - op.start
        if self.obs.enabled:
            self._record_op_span(
                name, engine, kind,
                op.start + self._obs_t0, op.end + self._obs_t0,
                nbytes=nbytes, flops=flops, tag=tag,
                accesses=accesses, stream=stream,
            )

    def _record_op_span(
        self,
        name: str,
        engine: EngineKind,
        kind: OpKind,
        start: float,
        end: float,
        *,
        nbytes: int = 0,
        flops: int = 0,
        tag: str | None = None,
        accesses: list | None = None,
        stream: Any = None,
        parent_id: int | None = None,
    ) -> None:
        """Record one executed op as a span on its engine lane.

        The access records (already built for the race detector) become a
        compact ``rects`` attribute — ``("w", 0, 32, 0, 8)`` is a write
        to rows 0-32, cols 0-8 — so a Perfetto timeline shows exactly
        which tile rectangle each op touched (the Chrome exporter formats
        them as ``"w[0:32,0:8]"``; raw tuples keep string formatting off
        the hot path). Allocation handles are left out: they come from a
        process-wide counter, and span attributes must be identical from
        run to run (the golden determinism test).
        """
        attrs: dict[str, Any] = {}
        stream_name = getattr(stream, "name", "")
        if stream_name:
            attrs["stream"] = stream_name
        if nbytes:
            attrs["nbytes"] = nbytes
        if flops:
            attrs["flops"] = flops
        if tag is not None:
            attrs["tag"] = tag
        if accesses:
            attrs["rects"] = [
                ("w" if write else "r", r0, r1, c0, c1)
                for _handle, r0, r1, c0, c1, write in accesses
            ]
        self.obs.record(
            name, start, end,
            cat=kind.value, lane=engine.value,
            parent_id=parent_id, attrs=attrs,
        )

    @staticmethod
    def _make_op(
        *,
        name: str,
        engine: EngineKind,
        kind: OpKind,
        nbytes: int,
        flops: int,
        tag: str | None,
        accesses: list | None,
    ) -> SimOp:
        """Build the recorded node for one numeric op (no duration model —
        real durations are stamped at execution time)."""
        tags: dict[str, Any] = {}
        if tag is not None:
            tags["tag"] = tag
        if accesses is not None:
            tags["accesses"] = accesses
        return SimOp(
            name=name, engine=engine, kind=kind, duration=0.0,
            nbytes=nbytes, flops=flops, tags=tags,
        )

    def recorded_trace(self) -> Trace:
        """The executed ops as a wall-clock :class:`~repro.sim.trace.Trace`.

        Requires ``record=True``. Ops carry their real start/end times and
        the stream/event dependency edges, so the simulator's causality
        checks and the :mod:`repro.sim.race` detector run on it unchanged.
        """
        if self.program is None:
            raise ExecutionError(
                "recorded_trace() requires a recording executor "
                "(NumericExecutor(config, record=True))"
            )
        trace = Trace()
        for op in self.program.ops:
            if op.scheduled:
                trace.add(op)
        return trace

    def close(self) -> None:
        """Release executor resources (worker threads in subclasses)."""

    # -- memory -----------------------------------------------------------------

    def alloc(self, rows: int, cols: int, name: str = "buf") -> DeviceBuffer:
        buf = DeviceBuffer(name=name, rows=rows, cols=cols)
        nbytes = rows * cols * self.config.element_bytes
        allocation = self.allocator.alloc(nbytes, name=name)
        # Device data lives in fp32 regardless of element_bytes: storage
        # sizing models the paper's fp32 matrices, math runs in fp32 with
        # fp16 rounding applied inside GEMMs.
        buf.payload["data"] = np.zeros((rows, cols), dtype=np.float32)
        buf.payload["allocation"] = allocation
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        if buf.freed:
            raise ExecutionError(f"double free of device buffer {buf.name!r}")
        self.allocator.free(buf.payload["allocation"])
        buf.payload.pop("data", None)
        buf.freed = True

    # -- streams -----------------------------------------------------------------

    def stream(self, name: str) -> Any:
        if self.program is not None:
            return self.program.stream(name)
        return _NullStream(name)

    def record_event(self, stream: Any) -> Any:
        if self.program is not None:
            return self.program.record_event(stream)
        return _NullEvent()

    def wait_event(self, stream: Any, event: Any) -> None:
        if self.program is not None:
            self.program.wait_event(stream, event)

    def synchronize(self) -> None:
        # Eager execution has nothing to drain, but a sync is the natural
        # point to refresh the measured wall-clock span of the run.
        if self._t0 is not None:
            self.stats.wall_s = _monotonic() - self._t0

    # -- views -------------------------------------------------------------------

    @staticmethod
    def _data(view: DeviceView) -> np.ndarray:
        buf = view.buffer
        if buf.freed:
            raise ExecutionError(f"use of freed device buffer {buf.name!r}")
        data = buf.payload.get("data")
        if data is None:
            raise ExecutionError(
                f"device buffer {buf.name!r} has no numeric payload "
                "(allocated by a different executor?)"
            )
        return data[view.row0 : view.row1, view.col0 : view.col1]

    def _check_live(self, *views: DeviceView) -> None:
        """Fail fast (on the issuing thread) when an operand is dead."""
        for view in views:
            self._data(view)

    # -- data movement ------------------------------------------------------------

    def h2d(self, dst: DeviceBuffer | DeviceView, src: HostRegion, stream: Any) -> None:
        dst = as_view(dst)
        self._check_copy_shapes(dst.shape, src.shape)
        self._check_live(dst)
        self.stats.h2d_bytes += src.nbytes
        op_name = copy_name("h2d", src, dst)

        def body() -> None:
            data = self._data(dst)
            np.copyto(data, src.array)
            if self.health.enabled:
                self.health.check_h2d(data, op_name)

        self._issue(
            stream,
            name=op_name,
            engine=EngineKind.H2D,
            kind=OpKind.COPY_H2D,
            body=body,
            nbytes=src.nbytes,
            accesses=[device_access(dst, True)],
            host_reads=(src,),
        )

    def d2h(self, dst: HostRegion, src: DeviceBuffer | DeviceView, stream: Any) -> None:
        src = as_view(src)
        self._check_copy_shapes(dst.shape, src.shape)
        self._check_live(src)
        self.stats.d2h_bytes += dst.nbytes
        op_name = copy_name("d2h", src, dst)

        def body() -> None:
            data = self._data(src)
            # writeback scan: the last probed boundary before results reach
            # the host — device-side NaNs must never land silently
            if self.health.enabled:
                self.health.check_d2h(data, op_name)
            np.copyto(dst.array, data)

        self._issue(
            stream,
            name=op_name,
            engine=EngineKind.D2H,
            kind=OpKind.COPY_D2H,
            body=body,
            nbytes=dst.nbytes,
            accesses=[device_access(src, False)],
            host_writes=(dst,),
        )

    def d2d(
        self, dst: DeviceBuffer | DeviceView, src: DeviceBuffer | DeviceView, stream: Any
    ) -> None:
        dst, src = as_view(dst), as_view(src)
        self._check_copy_shapes(dst.shape, src.shape)
        self._check_live(dst, src)
        nbytes = dst.rows * dst.cols * self.config.element_bytes
        self.stats.d2d_bytes += nbytes

        def body() -> None:
            np.copyto(self._data(dst), self._data(src))

        self._issue(
            stream,
            name=copy_name("d2d", src, dst),
            engine=EngineKind.COMPUTE,
            kind=OpKind.COPY_D2D,
            body=body,
            nbytes=nbytes,
            accesses=[device_access(src, False), device_access(dst, True)],
        )

    # -- compute --------------------------------------------------------------------

    def gemm(
        self,
        c: DeviceBuffer | DeviceView,
        a: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        trans_a: bool = False,
        trans_b: bool = False,
        tag: str = "gemm",
    ) -> None:
        c, a, b = as_view(c), as_view(a), as_view(b)
        m, n, k = self._gemm_dims(c, a, b, trans_a, trans_b)
        self._check_live(c, a, b)
        self.stats.gemm_flops += gemm_flops(m, n, k)
        self.stats.n_gemms += 1
        op_name = gemm_name(tag, m, n, k)

        def body() -> None:
            health = self.health
            c_data = self._data(c)
            # The sentinel may have escalated trailing updates to fp32;
            # in escalate mode keep the accumulator so a non-finite
            # output can be recomputed instead of refused.
            fmt = (
                health.gemm_format(self._input_format)
                if health.enabled
                else self._input_format
            )
            c_prev = (
                c_data.copy()
                if health.enabled and health.escalating and beta != 0.0
                else None
            )
            tc_gemm(
                self._data(a),
                self._data(b),
                alpha=alpha,
                beta=beta,
                c=c_data if beta != 0.0 else None,
                trans_a=trans_a,
                trans_b=trans_b,
                input_format=fmt,
                out=c_data,
                quant_stats=health.quant_stats,
            )
            if health.enabled:

                def retry_fp32() -> None:
                    tc_gemm(
                        self._data(a),
                        self._data(b),
                        alpha=alpha,
                        beta=beta,
                        c=c_prev,
                        trans_a=trans_a,
                        trans_b=trans_b,
                        input_format="fp32",
                        out=c_data,
                    )

                health.check_gemm(
                    c_data, op_name,
                    retry_fp32 if (beta == 0.0 or c_prev is not None) else None,
                )

        self._issue(
            stream,
            name=op_name,
            engine=EngineKind.COMPUTE,
            kind=OpKind.GEMM,
            body=body,
            flops=gemm_flops(m, n, k),
            tag=tag,
            accesses=[
                device_access(a, False),
                device_access(b, False),
                device_access(c, True),
            ],
        )

    def panel_qr(
        self,
        panel: DeviceBuffer | DeviceView,
        r_out: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel",
    ) -> None:
        panel, r_out = as_view(panel), as_view(r_out)
        if r_out.shape != (panel.cols, panel.cols):
            raise ExecutionError(
                f"panel_qr: R is {r_out.shape}, expected "
                f"{(panel.cols, panel.cols)}"
            )
        self._check_live(panel, r_out)
        flops = self.config.panel.flops(panel.rows, panel.cols)
        self.stats.panel_flops += flops
        self.stats.n_panels += 1

        def body() -> None:
            a_data = self._data(panel)
            # Keep the pre-factorization panel for the sentinel: breakdown
            # probes compare diag(R) against original column norms, and
            # the TSQR escalation rung refactorizes from it.
            orig = a_data.copy() if self.health.enabled else None
            q, r = self._factorize_panel(a_data)
            if self.health.enabled:
                q, r = self.health.after_panel(orig, q, r, self._factorize_panel)
            np.copyto(a_data, q)
            np.copyto(self._data(r_out), r)

        self._issue(
            stream,
            name=panel_name(tag, panel.rows, panel.cols),
            engine=EngineKind.COMPUTE,
            kind=OpKind.PANEL,
            body=body,
            flops=flops,
            tag=tag,
            accesses=[device_access(panel, True), device_access(r_out, True)],
        )

    def _factorize_panel(self, a_data: np.ndarray):
        """Dispatch on ``config.panel_algorithm``; imports are lazy because
        repro.qr also hosts the OOC drivers that import this module."""
        algo = self.config.panel_algorithm
        if algo == "tsqr":
            from repro.qr.tsqr import tsqr

            q, r = tsqr(a_data, dtype=np.float32)
            return q.astype(np.float32), r.astype(np.float32)
        if algo == "householder":
            from repro.qr.householder import householder_qr

            q, r = householder_qr(a_data, dtype=np.float32)
            return q.astype(np.float32), r.astype(np.float32)
        from repro.qr.incore import incore_recursive_qr

        return incore_recursive_qr(a_data, input_format=self._input_format)

    # -- §6 extension ops (LU / Cholesky) -------------------------------------

    def trsm(
        self,
        a_tri: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        lower: bool = True,
        unit_diag: bool = False,
        trans_a: bool = False,
        tag: str = "trsm",
    ) -> None:
        import scipy.linalg

        a_tri, b = as_view(a_tri), as_view(b)
        if a_tri.rows != a_tri.cols:
            raise ExecutionError(
                f"trsm: triangle must be square, got {a_tri.shape}"
            )
        if b.rows != a_tri.rows:
            raise ExecutionError(
                f"trsm: B has {b.rows} rows, triangle is {a_tri.rows}"
            )
        self._check_live(a_tri, b)
        flops = a_tri.rows * a_tri.rows * b.cols
        self.stats.gemm_flops += flops
        self.stats.n_gemms += 1

        op_name = panel_name(tag, a_tri.rows, b.cols)

        def body() -> None:
            b_data = self._data(b)
            solved = scipy.linalg.solve_triangular(
                self._data(a_tri),
                b_data,
                lower=lower,
                unit_diagonal=unit_diag,
                trans="T" if trans_a else "N",
                check_finite=False,
            )
            np.copyto(b_data, solved.astype(np.float32, copy=False))
            if self.health.enabled:
                self.health.check_output(b_data, op_name)

        self._issue(
            stream,
            name=op_name,
            engine=EngineKind.COMPUTE,
            kind=OpKind.GEMM,
            body=body,
            flops=flops,
            tag=tag,
            accesses=[device_access(a_tri, False), device_access(b, True)],
        )

    def panel_lu(
        self,
        panel: DeviceBuffer | DeviceView,
        u_out: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel-lu",
    ) -> None:
        from repro.factor.incore import incore_lu_nopivot

        panel, u_out = as_view(panel), as_view(u_out)
        if u_out.shape != (panel.cols, panel.cols):
            raise ExecutionError(
                f"panel_lu: U is {u_out.shape}, expected "
                f"{(panel.cols, panel.cols)}"
            )
        self._check_live(panel, u_out)
        # LU panel work is m b^2 — half of QR's 2 m b^2
        flops = self.config.panel.flops(panel.rows, panel.cols) // 2
        self.stats.panel_flops += flops
        self.stats.n_panels += 1

        op_name = panel_name(tag, panel.rows, panel.cols)

        def body() -> None:
            a_data = self._data(panel)
            packed = incore_lu_nopivot(a_data, input_format=self._input_format)
            if self.health.enabled:
                self.health.check_output(packed, op_name)
            np.copyto(a_data, packed)
            np.copyto(self._data(u_out), np.triu(packed[: panel.cols]))

        self._issue(
            stream,
            name=op_name,
            engine=EngineKind.COMPUTE,
            kind=OpKind.PANEL,
            body=body,
            flops=flops,
            tag=tag,
            accesses=[device_access(panel, True), device_access(u_out, True)],
        )

    def panel_cholesky(
        self,
        panel: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel-chol",
    ) -> None:
        import scipy.linalg

        from repro.errors import ValidationError

        panel = as_view(panel)
        b = panel.cols
        if panel.rows < b:
            raise ExecutionError(
                f"panel_cholesky: panel {panel.shape} shorter than its width"
            )
        self._check_live(panel)
        flops = b * b * b // 3 + (panel.rows - b) * b * b
        self.stats.panel_flops += flops
        self.stats.n_panels += 1
        op_name = panel_name(tag, panel.rows, panel.cols)

        def body() -> None:
            data = self._data(panel)
            try:
                chol = np.linalg.cholesky(data[:b].astype(np.float64))
            except np.linalg.LinAlgError as exc:
                raise ValidationError(
                    "panel_cholesky: diagonal block not positive definite"
                ) from exc
            data[:b] = np.triu(np.zeros((b, b), dtype=np.float32)) + np.tril(
                chol.astype(np.float32)
            )
            if panel.rows > b:
                data[b:] = scipy.linalg.solve_triangular(
                    chol, data[b:].astype(np.float64).T, lower=True,
                    check_finite=False,
                ).T.astype(np.float32)
            if self.health.enabled:
                self.health.check_output(data, op_name)

        self._issue(
            stream,
            name=op_name,
            engine=EngineKind.COMPUTE,
            kind=OpKind.PANEL,
            body=body,
            flops=flops,
            tag=tag,
            accesses=[device_access(panel, True)],
        )
