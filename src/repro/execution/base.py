"""Executor interface: the device-programming surface of the library.

OOC algorithms (GEMM engines, QR drivers) are written once against this
interface — alloc/free device buffers, async copies, GEMMs, panel
factorizations, streams and events — and run on any executor:

* :class:`~repro.execution.numeric.NumericExecutor` really computes with
  numpy (+ TensorCore numerics emulation) — used for correctness at small
  scale;
* :class:`~repro.execution.sim.SimExecutor` feeds the same call stream into
  the discrete-event simulator — used for timing at paper scale (131072^2
  and beyond) without touching real data;
* :class:`~repro.execution.hybrid.HybridExecutor` drives both and returns
  numeric results alongside a simulated trace.

The interface is deliberately CUDA-shaped (streams order work, events
synchronize across streams) so the pipeline code reads like the CUDA
implementation the paper describes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.config import SystemConfig
from repro.errors import ShapeError
from repro.host.tiled import HostRegion
from repro.util.validation import check_shape_2d


@dataclass(eq=False)
class DeviceBuffer:
    """An executor-owned device allocation holding a rows-by-cols matrix."""

    name: str
    rows: int
    cols: int
    #: Executor-specific payloads (numpy array for numeric, Allocation for
    #: both, nothing extra for sim).
    payload: dict[str, Any] = field(default_factory=dict)
    freed: bool = False

    def __post_init__(self) -> None:
        self.rows, self.cols = check_shape_2d((self.rows, self.cols), self.name)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    def view(
        self,
        row0: int = 0,
        row1: int | None = None,
        col0: int = 0,
        col1: int | None = None,
    ) -> "DeviceView":
        """A rectangular window of this buffer."""
        row1 = self.rows if row1 is None else row1
        col1 = self.cols if col1 is None else col1
        return DeviceView(self, row0, row1, col0, col1)

    def full(self) -> "DeviceView":
        """The whole buffer as a view."""
        return self.view()


@dataclass(frozen=True)
class DeviceView:
    """A window into a :class:`DeviceBuffer` (GEMM/copy operand)."""

    buffer: DeviceBuffer
    row0: int
    row1: int
    col0: int
    col1: int

    def __post_init__(self) -> None:
        if not (0 <= self.row0 < self.row1 <= self.buffer.rows):
            raise ShapeError(
                f"row range [{self.row0}, {self.row1}) outside device buffer "
                f"{self.buffer.name!r} with {self.buffer.rows} rows"
            )
        if not (0 <= self.col0 < self.col1 <= self.buffer.cols):
            raise ShapeError(
                f"col range [{self.col0}, {self.col1}) outside device buffer "
                f"{self.buffer.name!r} with {self.buffer.cols} cols"
            )

    @property
    def rows(self) -> int:
        return self.row1 - self.row0

    @property
    def cols(self) -> int:
        return self.col1 - self.col0

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    def label(self) -> str:
        """Compact address used in op names."""
        return (
            f"{self.buffer.name}[{self.row0}:{self.row1},{self.col0}:{self.col1}]"
        )


def as_view(operand: "DeviceBuffer | DeviceView") -> DeviceView:
    """Normalize a buffer-or-view operand to a view."""
    if isinstance(operand, DeviceBuffer):
        return operand.full()
    return operand


@dataclass
class RunStats:
    """Aggregate result of an executor run."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    d2d_bytes: int = 0
    gemm_flops: int = 0
    panel_flops: int = 0
    n_gemms: int = 0
    n_panels: int = 0
    #: Simulated makespan in seconds (0 for pure numeric runs).
    makespan: float = 0.0
    #: Measured wall-clock seconds from first issued op to the last
    #: synchronize (0 until an executor that measures time synchronizes).
    wall_s: float = 0.0

    @property
    def total_flops(self) -> int:
        return self.gemm_flops + self.panel_flops

    @property
    def moved_bytes(self) -> int:
        """Total PCIe traffic (both directions)."""
        return self.h2d_bytes + self.d2h_bytes


class Executor(abc.ABC):
    """Abstract device-programming interface (see module docstring)."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.stats = RunStats()
        # Every executor carries a health sentinel so drivers can notify
        # panel boundaries unconditionally; only numeric executors swap in
        # a live one (probes are meaningless without real numbers).
        from repro.health.sentinel import NULL_SENTINEL
        from repro.obs.span import NULL_RECORDER

        self.health = NULL_SENTINEL
        # Span recorder (repro.obs). Same idiom as the sentinel: disabled
        # by default, and every instrumentation site guards on
        # ``self.obs.enabled`` so obs=off leaves execution untouched.
        self.obs = NULL_RECORDER

    # -- memory -----------------------------------------------------------------

    @abc.abstractmethod
    def alloc(self, rows: int, cols: int, name: str = "buf") -> DeviceBuffer:
        """Allocate a rows-by-cols device buffer."""

    @abc.abstractmethod
    def free(self, buf: DeviceBuffer) -> None:
        """Release a device buffer."""

    # -- streams / events ----------------------------------------------------------

    @abc.abstractmethod
    def stream(self, name: str) -> Any:
        """Create an asynchronous work queue."""

    @abc.abstractmethod
    def record_event(self, stream: Any) -> Any:
        """Record an event capturing the stream's work so far."""

    @abc.abstractmethod
    def wait_event(self, stream: Any, event: Any) -> None:
        """Make future work on *stream* wait for *event*."""

    @abc.abstractmethod
    def synchronize(self) -> None:
        """Block until all submitted work completes."""

    def close(self) -> None:  # noqa: B027 - intentional no-op default
        """Release executor resources (worker threads, etc). Idempotent.

        The base implementation is a no-op; executors that own background
        resources override it. Callers that may run a concurrent executor
        should ``try/finally: ex.close()``.
        """

    # -- data movement ----------------------------------------------------------------

    @abc.abstractmethod
    def h2d(self, dst: DeviceBuffer | DeviceView, src: HostRegion, stream: Any) -> None:
        """Copy a host region into a device view (shapes must match)."""

    @abc.abstractmethod
    def d2h(self, dst: HostRegion, src: DeviceBuffer | DeviceView, stream: Any) -> None:
        """Copy a device view back into a host region."""

    @abc.abstractmethod
    def d2d(
        self, dst: DeviceBuffer | DeviceView, src: DeviceBuffer | DeviceView, stream: Any
    ) -> None:
        """On-device copy (the §4.1.2 staging-buffer fast path)."""

    # -- compute -------------------------------------------------------------------------

    @abc.abstractmethod
    def gemm(
        self,
        c: DeviceBuffer | DeviceView,
        a: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        trans_a: bool = False,
        trans_b: bool = False,
        tag: str = "gemm",
    ) -> None:
        """``C = alpha * op(A) op(B) + beta * C`` on device views."""

    @abc.abstractmethod
    def panel_qr(
        self,
        panel: DeviceBuffer | DeviceView,
        r_out: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel",
    ) -> None:
        """In-core QR of a device-resident tall panel.

        On return the panel view holds Q (orthonormal columns) and *r_out*
        (b-by-b) holds R. This is the LATER-style in-core recursive CGS
        factorization both OOC variants share.
        """

    # -- extension ops for the §6 future-work factorizations (LU, Cholesky) --

    @abc.abstractmethod
    def trsm(
        self,
        a_tri: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        lower: bool = True,
        unit_diag: bool = False,
        trans_a: bool = False,
        tag: str = "trsm",
    ) -> None:
        """In-core left triangular solve: ``B <- op(A)^{-1} B`` in place.

        *a_tri* is a k-by-k device triangle (lower when ``lower``), *b* a
        k-by-n device view overwritten with the solution.
        """

    @abc.abstractmethod
    def panel_lu(
        self,
        panel: DeviceBuffer | DeviceView,
        u_out: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel-lu",
    ) -> None:
        """In-core unpivoted LU of a device-resident tall panel.

        On return the panel's strict lower part holds the multipliers L
        (unit diagonal implicit), its upper b-by-b part holds U11, and
        *u_out* (b-by-b) holds a clean copy of U11. No pivoting — as the
        paper notes (§6), no TensorCore in-core partial-pivoted LU exists;
        callers must supply matrices that are stable without pivoting
        (e.g. diagonally dominant).
        """

    @abc.abstractmethod
    def panel_cholesky(
        self,
        panel: DeviceBuffer | DeviceView,
        stream: Any,
        *,
        tag: str = "panel-chol",
    ) -> None:
        """In-core Cholesky panel: factor the top b-by-b block of an m-by-b
        SPD panel and triangular-solve the rows below in place
        (``panel[:b] <- chol(panel[:b])``, ``panel[b:] <- panel[b:] L^{-T}``).
        """

    # -- shared shape checking helpers ----------------------------------------------------

    @staticmethod
    def _gemm_dims(
        c: DeviceView, a: DeviceView, b: DeviceView, trans_a: bool, trans_b: bool
    ) -> tuple[int, int, int]:
        am, ak = (a.cols, a.rows) if trans_a else (a.rows, a.cols)
        bk, bn = (b.cols, b.rows) if trans_b else (b.rows, b.cols)
        if ak != bk:
            raise ShapeError(
                f"gemm inner dims differ: op(A) {am}x{ak}, op(B) {bk}x{bn}"
            )
        if c.shape != (am, bn):
            raise ShapeError(
                f"gemm output is {c.shape}, expected {(am, bn)}"
            )
        return am, bn, ak

    @staticmethod
    def _check_copy_shapes(dst_shape: tuple[int, int], src_shape: tuple[int, int]) -> None:
        if dst_shape != src_shape:
            raise ShapeError(
                f"copy shape mismatch: dst {dst_shape}, src {src_shape}"
            )
