"""Concurrent numeric executor: per-engine worker threads, real overlap.

This is the numeric counterpart of the discrete-event simulator's scheduling
model (see :mod:`repro.sim.simulator` and docs/concurrency.md). Three
worker threads mirror the three hardware engines — H2D DMA, compute, D2H
DMA — and each services its engine's queue in enqueue order, exactly the
per-engine FIFO rule the simulator applies. An op's body runs once all of
its dependencies have completed:

* its stream-FIFO predecessor and awaited events — the semantic
  happens-before edges :class:`~repro.sim.scheduler.StreamProgram` wires
  into ``SimOp.deps`` (identical to what the simulator honours);
* host-coherence edges — execution-only ordering between ops whose host
  regions overlap with at least one writer. CUDA pipelines get these "for
  free" because the host thread blocks on events before touching staging
  memory; here the issuing thread never blocks, so the executor derives
  them from the declared host reads/writes of each copy. They are *not*
  added to ``SimOp.deps``: the recorded program stays comparable
  node-for-node with the simulator's graph.

Because every dependency points at an earlier-issued op, the dependency
relation is a DAG over issue order and the per-engine in-order workers can
always make progress — the executor cannot deadlock on a well-formed
program (a generous timeout converts "impossible" hangs into
:class:`~repro.errors.DeadlockError` rather than a stuck CI job).

numpy GEMMs and copies release the GIL, so a pipelined OOC GEMM or QR run
really does overlap move-in, compute and move-out on a multi-core host —
``repro.bench.concurrency`` measures the resulting wall-clock speedup.

Failure semantics: the first exception raised by any op body is recorded;
subsequent bodies are skipped (their done-flags still set, so the pipeline
drains instead of deadlocking) and the original exception re-raises on the
issuing thread at the next :meth:`ConcurrentNumericExecutor._issue` or
:meth:`ConcurrentNumericExecutor.synchronize`. Failed and skipped ops keep
``start is None`` and are excluded from :meth:`recorded_trace`.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import SystemConfig
from repro.errors import DeadlockError
from repro.execution.base import DeviceBuffer
from repro.execution.numeric import NumericExecutor
from repro.host.tiled import HostRegion
from repro.obs.clock import monotonic as _monotonic
from repro.sim.ops import EngineKind, OpKind, SimOp
from repro.util.regions import rects_overlap

#: Per-dependency wait budget. A correct program never hits this (the
#: dependency graph is acyclic by construction); it exists to fail loudly
#: instead of hanging if an executor bug ever breaks that invariant.
_WAIT_TIMEOUT_S = 600.0


@dataclass(eq=False)
class _Task:
    """One dispatched op: its recorded node, body, and execution deps."""

    op: SimOp
    body: Callable[[], None]
    deps: tuple["_Task", ...]
    done: threading.Event = field(default_factory=threading.Event)
    #: Span id of the issuing thread's open span (the driver root), captured
    #: at issue time so the worker can parent the op span across threads.
    obs_parent: int | None = None
    #: Issue metadata the worker needs to record the op span.
    obs_info: tuple | None = None


def _regions_conflict(a: HostRegion, b: HostRegion) -> bool:
    """Rectangles of the same host matrix overlap."""
    if a.matrix is not b.matrix:
        return False
    return rects_overlap(
        (a.row0, a.row1), (a.col0, a.col1), (b.row0, b.row1), (b.col0, b.col1)
    )


class ConcurrentNumericExecutor(NumericExecutor):
    """Numeric executor with one worker thread per hardware engine.

    Drop-in replacement for :class:`NumericExecutor` (always recording):
    same ops, same numerics, but op bodies run on the engine workers as
    soon as their dependencies allow, overlapping H2D/compute/D2H exactly
    as the simulator's timing model assumes. Call :meth:`synchronize`
    before reading results and :meth:`close` when finished (or rely on the
    daemon workers dying with the process).
    """

    def __init__(self, config: SystemConfig):
        super().__init__(config, record=True)
        self._queues: dict[EngineKind, "queue.SimpleQueue[_Task | None]"] = {
            kind: queue.SimpleQueue() for kind in EngineKind
        }
        self._task_of: dict[SimOp, _Task] = {}
        self._inflight: list[_Task] = []
        #: Host-coherence log: id(HostMatrix) -> [(task, region, is_write)].
        self._host_log: dict[int, list[tuple[_Task, HostRegion, bool]]] = {}
        #: Allocation handle -> tasks touching that device buffer.
        self._buffer_pending: dict[int, list[_Task]] = {}
        self._failure: BaseException | None = None
        self._failure_lock = threading.Lock()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker, args=(kind,), name=f"repro-{kind.value}",
                daemon=True,
            )
            for kind in EngineKind
        ]
        for worker in self._workers:
            worker.start()

    # -- worker loop -------------------------------------------------------------

    def _worker(self, engine: EngineKind) -> None:
        """Service one engine's queue in enqueue order (per-engine FIFO)."""
        q = self._queues[engine]
        while True:
            task = q.get()
            if task is None:
                return
            try:
                for dep in task.deps:
                    if not dep.done.wait(_WAIT_TIMEOUT_S):
                        raise DeadlockError([task.op])
                if self._failure is None:
                    task.op.start = self._now()
                    task.body()
                    task.op.end = self._now()
                    task.op.duration = task.op.end - task.op.start
                    if self.obs.enabled and task.obs_info is not None:
                        nbytes, flops, tag, accesses, stream = task.obs_info
                        self._record_op_span(
                            task.op.name, engine, task.op.kind,
                            task.op.start + self._obs_t0,
                            task.op.end + self._obs_t0,
                            nbytes=nbytes, flops=flops, tag=tag,
                            accesses=accesses, stream=stream,
                            parent_id=task.obs_parent,
                        )
            except BaseException as exc:  # noqa: BLE001 - must never kill worker
                task.op.start = None
                task.op.end = None
                with self._failure_lock:
                    if self._failure is None:
                        self._failure = exc
            finally:
                task.done.set()

    def _raise_failure(self) -> None:
        """Re-raise the first worker-side exception on the issuing thread."""
        if self._failure is not None:
            raise self._failure

    # -- dispatch ----------------------------------------------------------------

    def _host_deps(
        self, regions: tuple[HostRegion, ...], write: bool, deps: list[_Task]
    ) -> None:
        """Collect execution deps on earlier ops touching conflicting host
        regions, then log *regions* for later conflict checks."""
        for region in regions:
            key = id(region.matrix)
            log = self._host_log.setdefault(key, [])
            live = [entry for entry in log if not entry[0].done.is_set()]
            for task, other, other_write in live:
                if (write or other_write) and _regions_conflict(region, other):
                    deps.append(task)
            self._host_log[key] = live

    def _issue(
        self,
        stream: Any,
        *,
        name: str,
        engine: EngineKind,
        kind: OpKind,
        body: Callable[[], None],
        nbytes: int = 0,
        flops: int = 0,
        tag: str | None = None,
        accesses: list | None = None,
        host_reads: tuple[HostRegion, ...] = (),
        host_writes: tuple[HostRegion, ...] = (),
    ) -> None:
        """Record the op and dispatch its body to the engine worker."""
        self._raise_failure()
        if self._t0 is None:
            self._t0 = _monotonic()
            if self.obs.enabled:
                self._obs_t0 = self.obs.now()
        op = self._make_op(
            name=name, engine=engine, kind=kind, nbytes=nbytes, flops=flops,
            tag=tag, accesses=accesses,
        )
        assert self.program is not None
        self.program.append(op, stream)
        deps = [self._task_of[d] for d in op.deps if d in self._task_of]
        self._host_deps(host_reads, False, deps)
        self._host_deps(host_writes, True, deps)
        task = _Task(op=op, body=body, deps=tuple(dict.fromkeys(deps)))
        if self.obs.enabled:
            task.obs_parent = self.obs.current_id()
            task.obs_info = (nbytes, flops, tag, accesses, stream)
        self._task_of[op] = task
        self._inflight.append(task)
        for access in accesses or ():
            self._buffer_pending.setdefault(access[0], []).append(task)
        self._queues[engine].put(task)

    # -- lifecycle ---------------------------------------------------------------

    def free(self, buf: DeviceBuffer) -> None:
        """Free a device buffer once all in-flight ops touching it retire."""
        allocation = buf.payload.get("allocation")
        if allocation is not None:
            for task in self._buffer_pending.pop(allocation.handle, ()):
                if not task.done.wait(_WAIT_TIMEOUT_S):
                    raise DeadlockError([task.op])
        super().free(buf)

    def synchronize(self) -> None:
        """Drain all dispatched work; re-raise any worker-side failure."""
        for task in self._inflight:
            if not task.done.wait(_WAIT_TIMEOUT_S):
                raise DeadlockError([task.op])
        if self._t0 is not None:
            self.stats.wall_s = _monotonic() - self._t0
        # Everything is retired: later ops can no longer depend on these
        # tasks (stream FIFO/event deps resolve through _task_of misses as
        # already-satisfied), so drop the bookkeeping.
        self._inflight.clear()
        self._task_of.clear()
        self._host_log.clear()
        self._buffer_pending.clear()
        self._raise_failure()

    def close(self) -> None:
        """Stop the engine workers (idempotent; queued work drains first)."""
        if self._closed:
            return
        self._closed = True
        for q in self._queues.values():
            q.put(None)
        for worker in self._workers:
            worker.join(_WAIT_TIMEOUT_S)
