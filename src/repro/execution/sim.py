"""Simulated executor: timing without data.

Feeds the executor call stream into the discrete-event simulator. Copies
and kernels become :class:`~repro.sim.ops.SimOp`s with durations from the
calibrated hardware models; ``synchronize``/``finish`` run the event loop.
Paper-scale problems (131072 x 131072 = 68 GB matrices) cost only the op
graph, not the data.
"""

from __future__ import annotations

from typing import Any

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.execution.base import DeviceBuffer, DeviceView, Executor, as_view
from repro.host.tiled import HostRegion
from repro.sim.scheduler import copy_name, device_access, gemm_name, panel_name
from repro.sim.simulator import GpuSimulator
from repro.sim.stream import Event, Stream
from repro.sim.trace import Trace


class SimExecutor(Executor):
    """Executor backed by :class:`~repro.sim.simulator.GpuSimulator`."""

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.sim = GpuSimulator(config)
        self.allocator = self.sim.allocator

    # -- memory -----------------------------------------------------------------

    def alloc(self, rows: int, cols: int, name: str = "buf") -> DeviceBuffer:
        buf = DeviceBuffer(name=name, rows=rows, cols=cols)
        nbytes = rows * cols * self.config.element_bytes
        buf.payload["allocation"] = self.allocator.alloc(nbytes, name=name)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        if buf.freed:
            raise ExecutionError(f"double free of device buffer {buf.name!r}")
        self.allocator.free(buf.payload["allocation"])
        buf.freed = True

    # -- streams ------------------------------------------------------------------

    def stream(self, name: str) -> Stream:
        return self.sim.stream(name)

    def record_event(self, stream: Stream) -> Event:
        return self.sim.record_event(stream)

    def wait_event(self, stream: Stream, event: Event) -> None:
        self.sim.wait_event(stream, event)

    def synchronize(self) -> None:
        # A host-side sync is a barrier: later work cannot start before it.
        self.sim.barrier()
        self.stats.makespan = self.sim.now

    # -- data movement --------------------------------------------------------------

    def _bytes_of(self, view: DeviceView | HostRegion) -> int:
        return view.rows * view.cols * self.config.element_bytes

    def h2d(self, dst: DeviceBuffer | DeviceView, src: HostRegion, stream: Stream) -> None:
        dst = as_view(dst)
        self._check_copy_shapes(dst.shape, src.shape)
        nbytes = src.nbytes
        op = self.sim.op_h2d(nbytes, name=copy_name("h2d", src, dst))
        op.tags["accesses"] = [device_access(dst, True)]
        self.sim.enqueue(op, stream)
        self.stats.h2d_bytes += nbytes

    def d2h(self, dst: HostRegion, src: DeviceBuffer | DeviceView, stream: Stream) -> None:
        src = as_view(src)
        self._check_copy_shapes(dst.shape, src.shape)
        nbytes = dst.nbytes
        op = self.sim.op_d2h(nbytes, name=copy_name("d2h", src, dst))
        op.tags["accesses"] = [device_access(src, False)]
        self.sim.enqueue(op, stream)
        self.stats.d2h_bytes += nbytes

    def d2d(
        self, dst: DeviceBuffer | DeviceView, src: DeviceBuffer | DeviceView, stream: Stream
    ) -> None:
        dst, src = as_view(dst), as_view(src)
        self._check_copy_shapes(dst.shape, src.shape)
        nbytes = self._bytes_of(dst)
        op = self.sim.op_d2d(nbytes, name=copy_name("d2d", src, dst))
        op.tags["accesses"] = [device_access(src, False), device_access(dst, True)]
        self.sim.enqueue(op, stream)
        self.stats.d2d_bytes += nbytes

    # -- compute -----------------------------------------------------------------------

    def gemm(
        self,
        c: DeviceBuffer | DeviceView,
        a: DeviceBuffer | DeviceView,
        b: DeviceBuffer | DeviceView,
        stream: Stream,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        trans_a: bool = False,
        trans_b: bool = False,
        tag: str = "gemm",
    ) -> None:
        c, a, b = as_view(c), as_view(a), as_view(b)
        m, n, k = self._gemm_dims(c, a, b, trans_a, trans_b)
        op = self.sim.op_gemm(m, n, k, name=gemm_name(tag, m, n, k), tag=tag)
        op.tags["accesses"] = [
            device_access(a, False),
            device_access(b, False),
            device_access(c, True),
        ]
        self.sim.enqueue(op, stream)
        self.stats.gemm_flops += op.flops
        self.stats.n_gemms += 1

    def panel_qr(
        self,
        panel: DeviceBuffer | DeviceView,
        r_out: DeviceBuffer | DeviceView,
        stream: Stream,
        *,
        tag: str = "panel",
    ) -> None:
        panel, r_out = as_view(panel), as_view(r_out)
        if r_out.shape != (panel.cols, panel.cols):
            raise ExecutionError(
                f"panel_qr: R is {r_out.shape}, expected "
                f"{(panel.cols, panel.cols)}"
            )
        op = self.sim.op_panel(
            panel.rows, panel.cols, name=panel_name(tag, panel.rows, panel.cols), tag=tag
        )
        op.tags["accesses"] = [device_access(panel, True), device_access(r_out, True)]
        self.sim.enqueue(op, stream)
        self.stats.panel_flops += op.flops
        self.stats.n_panels += 1

    # -- §6 extension ops (LU / Cholesky) -------------------------------------

    #: TRSM runs below GEMM rate on TensorCore (serial dependency chain in
    #: the triangular solve); cuBLAS achieves roughly half.
    TRSM_EFFICIENCY = 0.5

    def trsm(
        self,
        a_tri: "DeviceBuffer | DeviceView",
        b: "DeviceBuffer | DeviceView",
        stream: Stream,
        *,
        lower: bool = True,
        unit_diag: bool = False,
        trans_a: bool = False,
        tag: str = "trsm",
    ) -> None:
        from repro.sim.ops import EngineKind, OpKind, SimOp

        a_tri, b = as_view(a_tri), as_view(b)
        if a_tri.rows != a_tri.cols or b.rows != a_tri.rows:
            raise ExecutionError(
                f"trsm: incompatible shapes {a_tri.shape} / {b.shape}"
            )
        k, n = a_tri.rows, b.cols
        flops = k * k * n
        rate = self.config.gemm.rate(k, n, k, self.config.precision)
        op = SimOp(
            name=panel_name(tag, k, n),
            engine=EngineKind.COMPUTE,
            kind=OpKind.GEMM,
            duration=self.config.gpu.kernel_launch_s
            + flops / (rate * self.TRSM_EFFICIENCY),
            flops=flops,
            tags={
                "tag": tag,
                "accesses": [device_access(a_tri, False), device_access(b, True)],
            },
        )
        self.sim.enqueue(op, stream)
        self.stats.gemm_flops += flops
        self.stats.n_gemms += 1

    def panel_lu(
        self,
        panel: "DeviceBuffer | DeviceView",
        u_out: "DeviceBuffer | DeviceView",
        stream: Stream,
        *,
        tag: str = "panel-lu",
    ) -> None:
        panel, u_out = as_view(panel), as_view(u_out)
        if u_out.shape != (panel.cols, panel.cols):
            raise ExecutionError(
                f"panel_lu: U is {u_out.shape}, expected "
                f"{(panel.cols, panel.cols)}"
            )
        # LU panel work (m b^2 flops) is half of QR's 2 m b^2; charge it at
        # the same calibrated panel rate
        op = self.sim.op_panel(
            panel.rows, panel.cols, name=panel_name(tag, panel.rows, panel.cols), tag=tag
        )
        op.duration /= 2.0
        op.flops //= 2
        op.tags["accesses"] = [device_access(panel, True), device_access(u_out, True)]
        self.sim.enqueue(op, stream)
        self.stats.panel_flops += op.flops
        self.stats.n_panels += 1

    def panel_cholesky(
        self,
        panel: "DeviceBuffer | DeviceView",
        stream: Stream,
        *,
        tag: str = "panel-chol",
    ) -> None:
        panel = as_view(panel)
        if panel.rows < panel.cols:
            raise ExecutionError(
                f"panel_cholesky: panel {panel.shape} shorter than its width"
            )
        # b^3/3 for the diagonal block + m b^2 for the TRSM below, charged
        # at the calibrated panel rate
        op = self.sim.op_panel(
            panel.rows, panel.cols, name=panel_name(tag, panel.rows, panel.cols), tag=tag
        )
        b = panel.cols
        flops = b * b * b // 3 + (panel.rows - b) * b * b
        op.duration *= flops / max(op.flops, 1)
        op.flops = flops
        op.tags["accesses"] = [device_access(panel, True)]
        self.sim.enqueue(op, stream)
        self.stats.panel_flops += flops
        self.stats.n_panels += 1

    # -- results ------------------------------------------------------------------------

    def finish(self) -> Trace:
        """Drain all work and return the completed trace."""
        self.synchronize()
        return self.sim.trace
