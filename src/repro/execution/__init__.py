"""Executor layer: one device-programming interface, three backends
(numeric, simulated, hybrid)."""

from repro.execution.base import DeviceBuffer, DeviceView, Executor, RunStats, as_view
from repro.execution.hybrid import HybridExecutor
from repro.execution.numeric import NumericExecutor
from repro.execution.sim import SimExecutor

__all__ = [
    "DeviceBuffer",
    "DeviceView",
    "Executor",
    "HybridExecutor",
    "NumericExecutor",
    "RunStats",
    "SimExecutor",
    "as_view",
]
