"""Executor layer: one device-programming interface, four backends
(numeric serial, numeric concurrent, simulated, hybrid)."""

from repro.execution.base import DeviceBuffer, DeviceView, Executor, RunStats, as_view
from repro.execution.concurrent import ConcurrentNumericExecutor
from repro.execution.hybrid import HybridExecutor
from repro.execution.numeric import NumericExecutor
from repro.execution.sim import SimExecutor

__all__ = [
    "ConcurrentNumericExecutor",
    "DeviceBuffer",
    "DeviceView",
    "Executor",
    "HybridExecutor",
    "NumericExecutor",
    "RunStats",
    "SimExecutor",
    "as_view",
]
