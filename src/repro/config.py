"""System configuration: one GPU spec plus the derived performance models.

A :class:`SystemConfig` is the single object threaded through executors,
OOC engines and QR drivers. It owns the element size of host/device storage
(the paper stores matrices in fp32 — 4 bytes — and down-converts to fp16
inside the TensorCore GEMM), the pinned-memory flag, and a safety reserve
of device memory that real allocators (cuBLAS workspaces, contexts) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.hw.gemm import GemmModel, Precision
from repro.hw.panel import PanelModel
from repro.hw.specs import GpuSpec, V100_16GB, V100_32GB
from repro.hw.transfer import TransferModel


@dataclass(frozen=True)
class SystemConfig:
    """Everything the library needs to know about the machine being
    simulated (or, at small scale, numerically emulated)."""

    gpu: GpuSpec
    element_bytes: int = 4          # fp32 storage, as in the paper
    pinned: bool = True
    precision: Precision = Precision.TC_FP16
    #: Host (CPU) memory capacity in bytes; ``None`` disables the check.
    #: The paper's testbed has 128 GB, which capped its §5.2 matrix sizes.
    host_mem_bytes: int | None = None
    #: In-core panel factorization algorithm: the paper's recursive CGS
    #: ("recursive-cgs", LATER-style), communication-optimal "tsqr", or
    #: "householder" (both unconditionally stable alternatives; timing in
    #: simulation uses the same calibrated panel model for all three).
    panel_algorithm: str = "recursive-cgs"
    #: Fraction of device memory held back from the allocator (driver,
    #: cuBLAS workspace). The paper's 32 GB card realistically exposes ~31.
    mem_reserve_fraction: float = 0.03

    PANEL_ALGORITHMS = ("recursive-cgs", "tsqr", "householder")

    def __post_init__(self) -> None:
        if self.element_bytes not in (2, 4, 8):
            raise ConfigError(
                f"element_bytes must be 2, 4 or 8, got {self.element_bytes}"
            )
        if not (0.0 <= self.mem_reserve_fraction < 1.0):
            raise ConfigError("mem_reserve_fraction must be in [0, 1)")
        if self.host_mem_bytes is not None and self.host_mem_bytes <= 0:
            raise ConfigError("host_mem_bytes must be positive or None")
        if self.panel_algorithm not in self.PANEL_ALGORITHMS:
            raise ConfigError(
                f"panel_algorithm must be one of {self.PANEL_ALGORITHMS}, "
                f"got {self.panel_algorithm!r}"
            )

    # -- derived models (constructed on demand; frozen dataclass keeps the
    #    config hashable and safe to share across threads) ------------------

    @property
    def transfer(self) -> TransferModel:
        """PCIe transfer-time model for this system."""
        return TransferModel(self.gpu, pinned=self.pinned)

    @property
    def gemm(self) -> GemmModel:
        """In-core GEMM time model for this system."""
        return GemmModel(self.gpu)

    @property
    def panel(self) -> PanelModel:
        """In-core panel-factorization time model for this system."""
        return PanelModel(self.gpu)

    @property
    def usable_device_bytes(self) -> int:
        """Device bytes available to the allocator after the reserve."""
        return int(self.gpu.mem_bytes * (1.0 - self.mem_reserve_fraction))

    def elements_fit(self, n_elements: int) -> bool:
        """Whether *n_elements* matrix elements fit in usable device memory."""
        return n_elements * self.element_bytes <= self.usable_device_bytes

    def bytes_of(self, *dims: int) -> int:
        """Storage bytes of a matrix with the given dimensions."""
        total = self.element_bytes
        for d in dims:
            total *= int(d)
        return total

    def with_gpu(self, gpu: GpuSpec) -> "SystemConfig":
        """This configuration on a different GPU."""
        return replace(self, gpu=gpu)

    def check_host_capacity(self, n_elements: int, what: str = "") -> None:
        """Raise :class:`~repro.errors.OutOfHostMemoryError` if *n_elements*
        matrix elements exceed the configured host memory (no-op when the
        capacity is unset)."""
        from repro.errors import OutOfHostMemoryError

        if self.host_mem_bytes is None:
            return
        required = n_elements * self.element_bytes
        if required > self.host_mem_bytes:
            raise OutOfHostMemoryError(required, self.host_mem_bytes, what)


#: The paper's testbed.
PAPER_SYSTEM = SystemConfig(gpu=V100_32GB)
#: §5.2's memory-capped variant.
PAPER_SYSTEM_16GB = SystemConfig(gpu=V100_16GB)
