"""repro: reproduction of "Recursion Brings Speedup to Out-of-Core
TensorCore-based Linear Algebra Algorithms" (Zhang & Wu, ICPP 2021).

Public API highlights
---------------------
* :func:`repro.qr.api.ooc_qr` — out-of-core QR (blocking or recursive).
* :mod:`repro.config` — system configurations (V100 32/16 GB, A100, ...).
* :mod:`repro.execution` — numeric / simulated / hybrid executors.
* :mod:`repro.bench.experiments` — regenerate every table and figure of
  the paper's evaluation section.
"""

__version__ = "1.0.0"

from repro.config import PAPER_SYSTEM, PAPER_SYSTEM_16GB, SystemConfig

__all__ = ["PAPER_SYSTEM", "PAPER_SYSTEM_16GB", "SystemConfig", "__version__"]
