"""Simulated multi-device TSQR: one global task graph, partitioned,
verified, and timed per device.

The pipeline is the tentpole path end to end:

1. **build** — :func:`build_dist_qr_graph` drives one
   :class:`~repro.runtime.builder.GraphBuilder` (``materialize=False``)
   through the whole distributed TSQR: per-leaf slab load + local QR,
   the reduction tree's merges with R factors staged through host
   regions, per-round tree-factor pushdown GEMMs, and slab writeback.
   Edges are derived from data accesses exactly as for single-device
   graphs. Factor broadcasts are host-staged: a group leader stores its
   b-by-b tree factor to host *once* and every group member loads it
   over its own link — the physical PCIe broadcast, not a per-member
   resend.
2. **place** — :func:`~repro.dist.placement.partition_graph` splits the
   graph by shard ownership (the input matrix plus the R/factor staging
   matrices are all sharded one leaf per device; pushdown factor
   buffers are pinned to their consuming leaf), yielding one
   :class:`~repro.dist.placement.DeviceProgram` per device and the
   explicit inter-device transfers.
3. **verify** — ``verify_program`` proves every device's slice
   race-free, leak-free, and within the per-device memory budget.
4. **time** — the makespan is a global list-schedule of the whole
   graph: tasks run in emission order, each serializing on its
   ``(device, engine)`` resource and waiting for all dependencies
   (including cross-device ones). No separate "transfer time" term is
   added — every inter-device byte moves as a D2H op priced on the
   producer's link plus an H2D op priced on the consumer's link, so the
   staging cost lives inside the schedule itself. Per-device isolated
   timelines (:class:`~repro.sim.simulator.GpuSimulator` runs of each
   device's slice) feed the span lanes and scaling diagnostics.

Per-device communication is reported both ways: the packed-triangle
schedule accounting of :meth:`~repro.dist.tree.ReductionTree.comm_report`
(what the CAQR bound constrains) and the placement pass's raw transfer
bytes (what the graph actually moves, full b-by-b tiles).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.precision import check_precision
from repro.analysis.verify import AnalysisReport, verify_program
from repro.config import SystemConfig
from repro.dist.placement import DeviceProgram, Placement, partition_graph
from repro.dist.recovery import RecoveryPlan, recover_placement
from repro.dist.shard import BlockCyclicLayout, ShardedMatrix, slab_offsets
from repro.dist.topology import DeviceTopology
from repro.dist.tree import ReductionTree, TreeCommReport, build_tree
from repro.errors import DeviceLostError, InjectedFaultError, ValidationError
from repro.faults.inject import as_injector
from repro.faults.report import FaultReport
from repro.host.tiled import HostMatrix
from repro.obs.span import Span
from repro.runtime.builder import GraphBuilder
from repro.runtime.task import TaskGraph
from repro.sim.ops import EngineKind, SimOp
from repro.sim.simulator import GpuSimulator
from repro.sim.trace import Trace
from repro.util.validation import positive_int


@dataclass
class DistSimResult:
    """Outcome of one simulated distributed QR."""

    m: int
    n: int
    n_devices: int
    tree: ReductionTree
    topology: DeviceTopology
    graph: TaskGraph
    placement: Placement
    reports: list[AnalysisReport]
    traces: list[Trace]
    #: Global list-schedule makespan (model seconds): all devices, all
    #: engines, cross-device dependencies included.
    makespan: float
    #: Each device's slice timed in isolation (no cross-device waits) —
    #: the per-lane busy picture, not the end-to-end time.
    local_makespans: tuple[float, ...]
    comm: TreeCommReport
    #: Fault-plane provenance; ``None`` when no injector was active.
    faults: FaultReport | None = None
    #: The verified re-placement over survivors after injected device
    #: losses (``None`` on fault-free runs).
    recovery: RecoveryPlan | None = None
    #: Static precision pass over the *global* graph (the per-device
    #: reports cover only each slice): predicted forward-error bound and
    #: the plan it was walked under. The bound prices the reduction tree
    #: by its depth — ``log2 P`` merge steps for binomial, ``P - 1`` for
    #: flat. See :mod:`repro.analysis.precision` / docs/analysis.md.
    precision_bound: float = 0.0
    precision_plan: str = ""

    @property
    def all_verified(self) -> bool:
        return all(r.ok for r in self.reports)

    @property
    def peak_bytes(self) -> int:
        """Worst per-device live-byte high-water mark."""
        return max(r.peak_bytes for r in self.reports)

    @property
    def transfer_bytes(self) -> int:
        """Raw bytes the placement pass moves between devices."""
        return self.placement.total_transfer_bytes

    def speedup_over(self, single: "DistSimResult") -> float:
        return single.makespan / self.makespan if self.makespan else 0.0


def build_dist_qr_graph(
    config: SystemConfig,
    *,
    m: int,
    n: int,
    tree: ReductionTree,
) -> tuple[TaskGraph, tuple[ShardedMatrix, ...], dict[str, int]]:
    """Emit the global distributed-TSQR task graph, its shard maps, and
    the buffer pin map for :func:`~repro.dist.placement.partition_graph`.

    Leaf *d*'s slab rows come from :func:`~repro.dist.shard.slab_offsets`
    (identical to ``tsqr``'s split). R factors and pushdown tree factors
    are staged through two host matrices of one n-by-n row slab per
    leaf, sharded so region ownership places every op on the right
    device. Each pushdown round allocates a fresh factor buffer per
    participating leaf, pinned to that leaf: its first touch reads the
    *leader's* staged factor region (the broadcast), so ownership alone
    would misplace it — and the fresh allocation keeps each reload
    distinguishable to the redundant-transfer verifier after the writer
    landed on a different device.
    """
    m, n = positive_int(m, "m"), positive_int(n, "n")
    P = tree.n_leaves
    slabs = slab_offsets(m, n, P)
    if len(slabs) != P:
        raise ValidationError(
            f"{m}x{n} splits into {len(slabs)} TSQR leaves of >= {n} rows; "
            f"cannot occupy {P} devices (need ceil(m / P) >= n)"
        )
    host_a = HostMatrix.shape_only(m, n, name="A")
    r_stage = HostMatrix.shape_only(P * n, n, name="Rstage")
    f_stage = HostMatrix.shape_only(P * n, n, name="Tstage")
    leaf_layout = BlockCyclicLayout(
        grid_rows=P, grid_cols=1, tile_rows=n, tile_cols=n
    )
    shards = (
        ShardedMatrix(host_a, BlockCyclicLayout.row_slabs(m, n, P)),
        ShardedMatrix(r_stage, leaf_layout),
        ShardedMatrix(f_stage, leaf_layout),
    )

    # The builder's allocator is a *pool-wide* ledger (it carries every
    # device's buffers in one emission order), so its capacity is P
    # devices' worth; the per-device budget is enforced downstream by
    # placement.verify against each DeviceProgram's exact peak.
    pool_config = replace(
        config,
        gpu=config.gpu.with_memory(
            config.gpu.mem_bytes * P, suffix=f"pool-x{P}"
        ),
    )
    builder = GraphBuilder(
        pool_config,
        label=f"dist-qr-{tree.kind}-x{P} {m}x{n}",
        materialize=False,
    )
    s = builder.stream("s")
    pin: dict[str, int] = {}

    def leaf_rows(matrix: HostMatrix, d: int):
        return matrix.region(d * n, (d + 1) * n, 0, n)

    # local phase: slab load + leaf QR + R staging, one pipeline per leaf
    slab_bufs = []
    for d, (r0, r1) in enumerate(slabs):
        slab = builder.alloc(r1 - r0, n, f"slab{d}")
        r_tile = builder.alloc(n, n, f"R{d}")
        builder.h2d(slab, host_a.region(r0, r1, 0, n), s)
        builder.panel_qr(slab, r_tile, s, tag="tsqr-leaf")
        builder.d2h(leaf_rows(r_stage, d), r_tile, s)
        builder.free(r_tile)
        slab_bufs.append(slab)

    # reduction rounds: merges on the group leaders (factors staged to
    # host once per group), factor pushdown on every participating leaf
    for k, (merges, groups) in enumerate(
        zip(tree.rounds, tree.group_schedule())
    ):
        pulls: list[tuple[int, int]] = []  # (leaf, leader whose factor)
        for dst, src in merges:
            stacked = builder.alloc(2 * n, n, f"pair{dst}-{src}.r{k}")
            r_new = builder.alloc(n, n, f"Rmerge{dst}.r{k}")
            builder.h2d(stacked.view(0, n), leaf_rows(r_stage, dst), s)
            builder.h2d(stacked.view(n, 2 * n), leaf_rows(r_stage, src), s)
            builder.panel_qr(stacked, r_new, s, tag="tsqr-merge")
            builder.d2h(leaf_rows(r_stage, dst), r_new, s)
            builder.d2h(leaf_rows(f_stage, dst), stacked.view(0, n), s)
            builder.d2h(leaf_rows(f_stage, src), stacked.view(n, 2 * n), s)
            builder.free(stacked)
            builder.free(r_new)
            pulls.extend((leaf, dst) for leaf in groups[dst])
            pulls.extend((leaf, src) for leaf in groups[src])
        for leaf, leader in sorted(pulls):
            name = f"T{leaf}.r{k}"
            pin[name] = leaf
            factor = builder.alloc(n, n, name)
            builder.h2d(factor, leaf_rows(f_stage, leader), s)
            builder.gemm(
                slab_bufs[leaf], slab_bufs[leaf].full(), factor.full(), s,
                tag="tsqr-pushdown",
            )
            builder.free(factor)

    # writeback: each leaf's slab now holds its rows of the final Q
    for d, (r0, r1) in enumerate(slabs):
        builder.d2h(host_a.region(r0, r1, 0, n), slab_bufs[d], s)
        builder.free(slab_bufs[d])

    builder.allocator.check_balanced()
    return builder.graph, shards, pin


def _simulate_program(prog: DeviceProgram) -> Trace:
    """Discrete-event simulation of one device's slice (the
    :class:`~repro.runtime.backends.SimGraphBackend` translation, with
    cross-device dependency edges dropped at the clone step)."""
    sim = GpuSimulator(prog.config)
    streams = {
        engine: sim.stream(f"dev{prog.device}-{engine.value}")
        for engine in EngineKind
    }
    clones: dict[int, SimOp] = {}
    allocations: dict[int, object] = {}
    for task in prog.tasks:
        if task.mem == "alloc":
            buf = task.buffer
            allocations[id(buf)] = sim.allocator.alloc(
                task.nbytes, name=buf.name
            )
            continue
        if task.mem == "free":
            sim.allocator.free(allocations.pop(id(task.buffer)))
            continue
        src = task.op
        op = SimOp(
            name=src.name,
            engine=src.engine,
            kind=src.kind,
            duration=task.cost,
            nbytes=src.nbytes,
            flops=src.flops,
            tags=dict(src.tags),
        )
        sim.enqueue(op, streams[src.engine])
        for dep in task.deps:
            mapped = clones.get(dep.task_id)
            if mapped is not None:
                op.deps.add(mapped)
        clones[task.task_id] = op
    return sim.run()


def _simulate_global(placement: Placement) -> float:
    """Global list-schedule makespan: tasks run in emission order (a
    valid topological order), each waiting for every dependency —
    cross-device ones included — and serializing FIFO on its
    ``(device, engine)`` resource, mirroring the stream semantics of the
    single-device simulator. Allocator pseudo-tasks take zero time, and
    the emission-order allocator chain only binds *within* a device:
    each pool member replays its own allocator's sequence, so one
    device's frees must not gate another's allocations."""
    free: dict[tuple[int, str], float] = {}
    done: dict[int, float] = {}
    device_of = placement.device_of
    makespan = 0.0
    for task in placement.graph.tasks:
        dev = device_of[task.task_id]
        ready = max(
            (
                done[dep.task_id]
                for dep in task.deps
                if not (dep.mem and task.mem and device_of[dep.task_id] != dev)
            ),
            default=0.0,
        )
        if task.mem:
            done[task.task_id] = ready
            continue
        res = (dev, task.op.engine.value)
        start = max(ready, free.get(res, 0.0))
        end = start + task.cost
        free[res] = end
        done[task.task_id] = end
        makespan = max(makespan, end)
    return makespan


def _play_plan(injector) -> tuple[FaultReport, tuple[int, ...], int]:
    """The sim's static fault model: fire every spec in the plan at its
    declared coordinates. Device losses become structural (the topology
    loses members and the placement is recovered); transient kinds are
    modeled as absorbed by one backoff retry each — they perturb timing
    in the real backend, never the schedule, so the sim records the
    event and the retry and moves on."""
    lost: list[int] = []
    retries = 0
    for spec in injector.plan.specs:
        for _ in range(spec.count):
            try:
                injector.check(
                    spec.sites[0],
                    device=spec.device,
                    round_index=spec.round_index,
                    op_index=spec.op_index,
                )
            except DeviceLostError as exc:
                if exc.device not in lost:
                    lost.append(exc.device)
            except InjectedFaultError:
                retries += 1
    report = FaultReport(
        plan_seed=injector.plan.seed,
        events=injector.events,
        retries=retries,
        devices_lost=tuple(lost),
    )
    return report, tuple(lost), retries


def simulate_dist_qr(
    config: SystemConfig,
    *,
    m: int,
    n: int,
    n_devices: int,
    tree: str = "binomial",
    shared_host_link: bool = False,
    budget_bytes: int | None = None,
    faults=None,
) -> DistSimResult:
    """Build, place, verify, and time one distributed QR.

    With a ``faults`` plan, injected device losses are applied
    structurally: the surviving topology is re-placed with the binomial
    regraft map (:func:`~repro.dist.recovery.recover_placement`), every
    re-placed program is re-verified, and the reported makespan is the
    recovered schedule's. Transient fault kinds are recorded on the
    :class:`~repro.faults.report.FaultReport` (one retry each) but do
    not change the schedule — that is the numeric backend's territory.
    """
    n_devices = positive_int(n_devices, "n_devices")
    topology = DeviceTopology.symmetric(
        config, n_devices, shared_host_link=shared_host_link
    )
    tree_obj = build_tree(tree, n_devices)
    graph, shards, pin = build_dist_qr_graph(
        topology.device_config(0), m=m, n=n, tree=tree_obj
    )
    injector = as_injector(faults)
    fault_report = None
    recovery = None
    if injector is not None:
        fault_report, lost, _ = _play_plan(injector)
        if lost:
            recovery = recover_placement(
                graph, shards, topology, lost,
                pin=pin, budget_bytes=budget_bytes,
            ).check()
            topology = recovery.topology
            fault_report = FaultReport(
                plan_seed=fault_report.plan_seed,
                events=fault_report.events,
                retries=fault_report.retries,
                recoveries=1,
                devices_lost=recovery.lost,
                replacements_verified=sum(
                    1 for r in recovery.reports if r.ok
                ),
                details={"remap": dict(recovery.remap)},
            )
    if recovery is not None:
        placement = recovery.placement
        reports = recovery.reports
    else:
        placement = partition_graph(graph, shards, topology, pin=pin)
        reports = placement.verify(budget_bytes=budget_bytes)
    traces = [_simulate_program(prog) for prog in placement.programs]
    flow, _ = check_precision(graph)
    return DistSimResult(
        m=m,
        n=n,
        n_devices=n_devices,
        tree=tree_obj,
        topology=topology,
        graph=graph,
        placement=placement,
        reports=reports,
        traces=traces,
        makespan=_simulate_global(placement),
        local_makespans=tuple(t.makespan for t in traces),
        comm=tree_obj.comm_report(n),
        faults=fault_report,
        recovery=recovery,
        precision_bound=flow.bound,
        precision_plan=flow.plan.describe(),
    )


def dist_precision_report(
    config: SystemConfig,
    *,
    m: int,
    n: int,
    n_devices: int,
    tree: str = "binomial",
    tolerance: float | None = None,
    precision=None,
) -> AnalysisReport:
    """Statically verify one distributed-QR plan's precision, without
    placing or timing it.

    Builds the global graph for the requested reduction tree and runs the
    full verifier (:func:`repro.analysis.verify.verify_program`) over it,
    so the report carries the precision bound/findings next to the usual
    hazard/lifetime passes. Lives here, not in :mod:`repro.analysis` —
    the analysis package must stay importable without the dist layer
    (this module already imports it the other way).
    """
    tree_obj = build_tree(tree, positive_int(n_devices, "n_devices"))
    graph, _shards, _pin = build_dist_qr_graph(config, m=m, n=n, tree=tree_obj)
    return verify_program(graph, tolerance=tolerance, precision=precision)


def dist_scaling_sweep(
    config: SystemConfig,
    *,
    m: int,
    n: int,
    device_counts: tuple[int, ...] = (1, 8, 16, 32, 64),
    tree: str = "binomial",
    shared_host_link: bool = False,
    faults=None,
) -> dict[int, DistSimResult]:
    """The same tall-skinny QR at each pool size; returns {P: result}.

    A :class:`~repro.faults.plan.FaultPlan` in *faults* is replayed
    against every sweep point independently (each point gets a fresh
    injector, so the schedule fires identically at each pool size it
    matches)."""
    return {
        p: simulate_dist_qr(
            config, m=m, n=n, n_devices=p, tree=tree,
            shared_host_link=shared_host_link, faults=faults,
        )
        for p in device_counts
    }


def dist_trace_spans(result: DistSimResult) -> list[Span]:
    """Per-device span lanes (``dev0``, ``dev1``, ...) from the isolated
    device timelines, plus one instant per reduction round on a ``tree``
    lane — ready for :func:`repro.obs.export.spans_to_chrome_trace`.
    Timestamps are model seconds."""
    spans: list[Span] = []
    sid = 0
    for d, trace in enumerate(result.traces):
        for op in trace.ops:
            sid += 1
            spans.append(
                Span(
                    span_id=sid,
                    parent_id=None,
                    name=op.name,
                    cat=op.kind.value,
                    lane=f"dev{d}",
                    start_s=op.start,
                    end_s=op.end,
                    attrs={"device": d, "engine": op.engine.value},
                )
            )
    t = max(result.local_makespans, default=0.0)
    for k, merges in enumerate(result.tree.rounds):
        sid += 1
        spans.append(
            Span(
                span_id=sid,
                parent_id=None,
                name=f"tree round {k} ({len(merges)} merges)",
                cat="tree",
                lane="tree",
                start_s=t,
                end_s=t,
                attrs={"round": k, "merges": len(merges)},
            )
        )
    if result.faults is not None:
        for ev in result.faults.events:
            sid += 1
            spans.append(
                Span(
                    span_id=sid,
                    parent_id=None,
                    name=ev.describe(),
                    cat="fault",
                    lane="faults",
                    start_s=t,
                    end_s=t,
                    attrs={
                        "kind": ev.kind,
                        "site": ev.site,
                        "device": ev.device,
                        "plan_seed": result.faults.plan_seed,
                    },
                )
            )
    return spans


__all__ = [
    "DistSimResult",
    "build_dist_qr_graph",
    "dist_scaling_sweep",
    "dist_trace_spans",
    "simulate_dist_qr",
]
