"""CAQR/TSQR reduction trees and the Demmel et al. communication bounds.

TSQR reduces P leaf R factors to one along a tree
(Demmel-Grigori-Hoemmen-Langou, arXiv:0806.2159 / 0809.2407). Two shapes
are provided:

``binomial``
    ceil(log2 P) rounds pairing surviving group leaders in slab order.
    Each device sends or receives at most one packed-triangular R per
    round, so its upward communication is ``ceil(log2 P) * b(b+1)/2``
    words — within a factor ``(b+1)/b`` of the lower bound below. This
    pairing order is exactly :func:`repro.qr.tsqr._tsqr_tree`'s, which is
    what the bitwise differential test relies on.

``flat``
    One round: every leaf sends its R to device 0, which factors the
    P-stacked pile at once. Minimal rounds (one), but the root moves
    ``(P-1) * b(b+1)/2`` words — past the lower bound's log factor for
    P >= 8. Included as the instructive non-optimal baseline.

The per-processor lower bound for the panel reduction is
``W >= (b^2 / 2) * log2 P`` words and ``log2 P`` messages (Demmel et al.
Table 4; b = panel width). :func:`caqr_lower_bound_words` is that
formula; the verifier compares *measured* upward words against it with
the documented :data:`CAQR_SLACK` (packed triangles carry b(b+1)/2, not
b^2/2, words — a ``(b+1)/b`` factor, under 1.25x for b >= 4). The
downward explicit-Q sweep is accounted separately
(:meth:`TreeCommReport.down_words`): the lower bound covers the
factorization proper (R plus implicit Q), and forming the explicit Q is
an optional second pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.util.validation import one_of, positive_int

TREE_KINDS = ("binomial", "flat")

#: Documented slack for measured-vs-bound comparisons: packed-triangular
#: R transfers carry b(b+1)/2 words against the bound's b^2/2 — a factor
#: (b+1)/b, below 1.25 for every panel width b >= 4.
CAQR_SLACK = 1.25


def caqr_lower_bound_words(b: int, n_devices: int) -> float:
    """Per-processor words of the CAQR panel-reduction lower bound:
    ``(b^2 / 2) * log2 P`` (0 for a single device)."""
    b = positive_int(b, "b")
    n_devices = positive_int(n_devices, "n_devices")
    if n_devices == 1:
        return 0.0
    return (b * b / 2.0) * math.log2(n_devices)


def triangle_words(b: int) -> int:
    """Words of one packed upper-triangular b x b R factor."""
    b = positive_int(b, "b")
    return b * (b + 1) // 2


@dataclass(frozen=True)
class ReductionTree:
    """A reduction schedule over *n_leaves* devices.

    ``rounds`` is a tuple of rounds; each round is a tuple of merges
    ``(dst, src)``: the R held by group leader *src* flows to group
    leader *dst*, whose group absorbs *src*'s. Leaders are device ids;
    group membership evolves round by round (:meth:`group_schedule`).
    """

    kind: str
    n_leaves: int
    rounds: tuple[tuple[tuple[int, int], ...], ...]

    @property
    def depth(self) -> int:
        return len(self.rounds)

    @property
    def n_messages(self) -> int:
        """Total upward R messages across the tree."""
        return sum(len(r) for r in self.rounds)

    def group_schedule(self) -> list[dict[int, tuple[int, ...]]]:
        """Group membership *before* each round: one ``{leader: members}``
        map per round (members in slab order)."""
        groups: dict[int, tuple[int, ...]] = {
            g: (g,) for g in range(self.n_leaves)
        }
        out = []
        for merges in self.rounds:
            out.append({k: v for k, v in groups.items()})
            for dst, src in merges:
                if dst not in groups or src not in groups:
                    raise ValidationError(
                        f"merge ({dst}, {src}) names a non-leader group"
                    )
                groups[dst] = groups[dst] + groups.pop(src)
        return out

    def comm_report(self, b: int) -> "TreeCommReport":
        """Per-device word accounting for this tree at panel width *b*."""
        up_sent = [0] * self.n_leaves
        up_recv = [0] * self.n_leaves
        down_recv = [0] * self.n_leaves
        tri = triangle_words(b)
        square = b * b
        for merges, groups in zip(self.rounds, self.group_schedule()):
            for dst, src in merges:
                up_sent[src] += tri
                up_recv[dst] += tri
                if self.kind == "flat":
                    continue
                # explicit-Q pushdown: every member of both merged groups
                # receives its group's b x b tree factor
                for member in groups[dst] + groups[src]:
                    down_recv[member] += square
        if self.kind == "flat" and self.n_leaves > 1:
            # one stacked QR at the root: each device gets exactly one
            # b x b slice of the stacked Q as its tree factor
            down_recv = [square] * self.n_leaves
        return TreeCommReport(
            kind=self.kind,
            n_devices=self.n_leaves,
            b=b,
            up_sent_words=tuple(up_sent),
            up_recv_words=tuple(up_recv),
            down_recv_words=tuple(down_recv),
            lower_bound_words=caqr_lower_bound_words(b, self.n_leaves),
        )


@dataclass(frozen=True)
class TreeCommReport:
    """Measured per-device communication of one panel reduction."""

    kind: str
    n_devices: int
    b: int
    up_sent_words: tuple[int, ...]
    up_recv_words: tuple[int, ...]
    down_recv_words: tuple[int, ...]
    #: Demmel et al. per-processor bound ``(b^2/2) log2 P`` in words.
    lower_bound_words: float

    @property
    def max_up_words(self) -> int:
        """Worst per-device upward traffic (sent + received) — the number
        the CAQR bound constrains."""
        return max(
            s + r for s, r in zip(self.up_sent_words, self.up_recv_words)
        )

    @property
    def down_words(self) -> int:
        """Total downward explicit-Q factor words (all devices)."""
        return sum(self.down_recv_words)

    @property
    def total_up_words(self) -> int:
        return sum(self.up_sent_words)

    @property
    def caqr_ratio(self) -> float:
        """``max_up_words`` over the lower bound (inf-free: 0.0 for one
        device, where the bound is zero and nothing moves)."""
        if self.lower_bound_words == 0.0:
            return 0.0
        return self.max_up_words / self.lower_bound_words

    @property
    def meets_bound(self) -> bool:
        """Within the documented :data:`CAQR_SLACK` of the lower bound."""
        return self.caqr_ratio <= CAQR_SLACK


def build_tree(kind: str, n_devices: int) -> ReductionTree:
    """Construct a reduction tree over *n_devices* leaves."""
    kind = one_of(kind, TREE_KINDS, "tree")
    n_devices = positive_int(n_devices, "n_devices")
    if n_devices == 1:
        return ReductionTree(kind=kind, n_leaves=1, rounds=())
    if kind == "flat":
        return ReductionTree(
            kind="flat",
            n_leaves=n_devices,
            rounds=(tuple((0, src) for src in range(1, n_devices)),),
        )
    rounds: list[tuple[tuple[int, int], ...]] = []
    survivors = list(range(n_devices))
    while len(survivors) > 1:
        merges = []
        nxt = []
        for i in range(0, len(survivors) - 1, 2):
            merges.append((survivors[i], survivors[i + 1]))
            nxt.append(survivors[i])
        if len(survivors) % 2:
            nxt.append(survivors[-1])
        rounds.append(tuple(merges))
        survivors = nxt
    return ReductionTree(
        kind="binomial", n_leaves=n_devices, rounds=tuple(rounds)
    )


__all__ = [
    "CAQR_SLACK",
    "TREE_KINDS",
    "ReductionTree",
    "TreeCommReport",
    "build_tree",
    "caqr_lower_bound_words",
    "triangle_words",
]
