"""Device-loss recovery: regraft the reduction tree over survivors.

Demmel et al.'s CAQR formulation makes this tractable: the binomial
reduction tree is just a dataflow over R-factors, so a lost subtree can
be regrafted onto any survivor without changing the arithmetic — the
lost leaf's slab work simply *runs somewhere else*, in the same order,
on the same float64 values. Recovery therefore has three steps, all
here or in :mod:`repro.dist.numeric`:

1. **remap** — :func:`remap_devices` picks each lost device's regraft
   target: the nearest surviving binomial sibling (XOR of successive
   low bits — the partner it would have merged with), falling back to
   the lowest survivor.
2. **re-place + re-verify** — :func:`plan_recovery` re-derives the lost
   shards' tasks from the same :class:`~repro.runtime.task.TaskGraph`
   the sim backend builds, re-runs
   :func:`~repro.dist.placement.partition_graph` against the surviving
   :class:`~repro.dist.topology.DeviceTopology` with the remap, and runs
   :func:`~repro.analysis.verify.verify_program` over every re-placed
   :class:`~repro.dist.placement.DeviceProgram`. Execution refuses to
   resume unless every program verifies (``FaultError`` with reason
   ``recovery-unverified`` otherwise).
3. **lineage replay** — the numeric backend re-runs the lost slab's
   task lineage (leaf QR plus every tree factor already applied) on the
   scratch memmaps, restoring bit-identical state before resuming.

:func:`injection_matrix` enumerates the single-fault schedules the
acceptance criterion sweeps: worker crash and device loss at every leaf
and every reduction round, and a transfer fault at every round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.verify import AnalysisReport
from repro.config import PAPER_SYSTEM, SystemConfig
from repro.dist.placement import Placement, partition_graph
from repro.dist.topology import DeviceTopology
from repro.dist.tree import ReductionTree, build_tree
from repro.errors import FaultError, ValidationError
from repro.faults.plan import FaultPlan


def remap_devices(n_devices: int, lost) -> dict[int, int]:
    """Regraft map for *lost* devices: ``{lost_id: survivor_id}``.

    Each lost device goes to its nearest surviving binomial partner
    (``d ^ 1``, then ``d ^ 2``, ``d ^ 4``, ... — the merge partners of
    successive reduction rounds), so the regrafted work lands on the
    device that was going to consume the lost leaf's R factor anyway;
    when the whole sibling chain is gone, the lowest survivor takes it.
    """
    lost_set = {int(d) for d in lost}
    for d in lost_set:
        if not 0 <= d < n_devices:
            raise ValidationError(
                f"lost device {d} outside 0..{n_devices - 1}"
            )
    survivors = [d for d in range(n_devices) if d not in lost_set]
    if not survivors:
        raise FaultError(
            "pool-exhausted", f"all {n_devices} devices lost"
        )
    remap: dict[int, int] = {}
    for d in sorted(lost_set):
        target = None
        bit = 1
        while bit < n_devices:
            partner = d ^ bit
            if partner < n_devices and partner not in lost_set:
                target = partner
                break
            bit <<= 1
        remap[d] = survivors[0] if target is None else target
    return remap


@dataclass
class RecoveryPlan:
    """A verified re-placement of the distributed QR over survivors."""

    lost: tuple[int, ...]
    remap: dict[int, int]
    topology: DeviceTopology
    placement: Placement
    reports: list[AnalysisReport] = field(default_factory=list)

    @property
    def surviving(self) -> int:
        return self.topology.n_devices - len(self.topology.lost)

    @property
    def all_verified(self) -> bool:
        return all(r.ok for r in self.reports)

    def check(self) -> "RecoveryPlan":
        """Raise ``FaultError("recovery-unverified")`` unless every
        re-placed per-device program passed the plan verifier."""
        if not self.all_verified:
            bad = next(r for r in self.reports if not r.ok)
            raise FaultError(
                "recovery-unverified",
                f"re-placed program {bad.label}: {bad.findings[0]}",
            )
        return self


def recover_placement(
    graph,
    shards,
    topology: DeviceTopology,
    lost,
    *,
    pin: dict[str, int] | None = None,
    budget_bytes: int | None = None,
) -> RecoveryPlan:
    """Re-place an already-built dist graph over the survivors of *lost*
    and verify every re-placed program (does **not** raise on findings —
    call :meth:`RecoveryPlan.check` before resuming execution)."""
    surviving_topology = topology.without(lost)
    remap = remap_devices(
        topology.n_devices, surviving_topology.lost
    )
    placement = partition_graph(
        graph, shards, surviving_topology, pin=pin, remap=remap
    )
    reports = placement.verify(budget_bytes=budget_bytes)
    return RecoveryPlan(
        lost=tuple(sorted(surviving_topology.lost)),
        remap=remap,
        topology=surviving_topology,
        placement=placement,
        reports=reports,
    )


def plan_recovery(
    *,
    m: int,
    n: int,
    tree: ReductionTree,
    lost,
    config: SystemConfig | None = None,
    budget_bytes: int | None = None,
) -> RecoveryPlan:
    """Build the dist-QR task graph for this shape and recover it.

    The numeric backend's device-loss path: re-derives the lost shards'
    tasks from the :class:`TaskGraph`, re-places over the surviving
    topology, and hands back the verified plan (check before resuming).
    """
    from repro.dist.sim import build_dist_qr_graph

    cfg = config if config is not None else PAPER_SYSTEM
    topology = DeviceTopology.symmetric(cfg, tree.n_leaves)
    graph, shards, pin = build_dist_qr_graph(
        topology.device_config(0), m=m, n=n, tree=tree
    )
    return recover_placement(
        graph, shards, topology, lost, pin=pin, budget_bytes=budget_bytes
    )


def injection_matrix(
    n_devices: int,
    *,
    tree: str = "binomial",
    kinds: tuple[str, ...] = (
        "worker_crash", "device_loss", "transfer_timeout",
    ),
) -> list[FaultPlan]:
    """The acceptance sweep: one single-fault :class:`FaultPlan` per
    (kind, coordinate) — compute kinds at every leaf and every reduction
    round's merge, transfer kinds on every round's upward relay. Every
    plan carries its own stable seed, so the CI chaos matrix replays
    each schedule exactly."""
    tree_obj = build_tree(tree, n_devices)
    plans: list[FaultPlan] = []
    for kind in kinds:
        if kind in ("transfer_timeout", "transfer_stall"):
            for k, merges in enumerate(tree_obj.rounds):
                for _dst, src in merges:
                    plans.append(
                        FaultPlan.single(
                            kind, device=src, round_index=k,
                            site="transfer-up",
                        )
                    )
        else:
            for d in range(n_devices):
                plans.append(FaultPlan.single(kind, device=d, site="leaf"))
            for k, merges in enumerate(tree_obj.rounds):
                for dst, _src in merges:
                    plans.append(
                        FaultPlan.single(
                            kind, device=dst, round_index=k, site="merge",
                        )
                    )
    return plans


__all__ = [
    "RecoveryPlan",
    "injection_matrix",
    "plan_recovery",
    "recover_placement",
    "remap_devices",
]
