"""Device-pool topology: N devices, per-link bandwidth/latency, host staging.

The paper's model treats one GPU's HBM as the cache for host memory; a
:class:`DeviceTopology` lifts the same picture one level up. Each device
is an instance of the single-GPU hardware model (:class:`~repro.config
.SystemConfig` — transfer/GEMM/panel models), and devices exchange data
either through **host staging** (the realistic no-NVLink PCIe path: a
D2H on the source link followed by an H2D on the destination link) or
over an optional direct peer link.

Links are per-device: with ``shared_host_link=False`` (the default)
every device owns its PCIe lanes, which is what makes near-linear
scaling possible; with ``shared_host_link=True`` all devices contend
for one root complex and each link's bandwidth is derated by the device
count, exactly as :func:`repro.multi.gemm._derated` models it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SystemConfig
from repro.errors import DeviceLostError, ValidationError
from repro.hw.transfer import Direction
from repro.util.validation import positive_int

#: Pseudo-device id for the host in transfer endpoints.
HOST = -1


@dataclass(frozen=True)
class LinkSpec:
    """One directed interconnect link: fixed latency + linear bandwidth."""

    bytes_per_s: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes_per_s <= 0:
            raise ValidationError(
                f"link bandwidth must be positive, got {self.bytes_per_s}"
            )
        if self.latency_s < 0:
            raise ValidationError(
                f"link latency must be non-negative, got {self.latency_s}"
            )

    def time(self, nbytes: int) -> float:
        """Seconds to move *nbytes* over this link (0 bytes -> 0 s)."""
        if nbytes < 0:
            raise ValidationError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bytes_per_s


@dataclass(frozen=True)
class DeviceTopology:
    """A pool of identical devices around one host.

    Parameters
    ----------
    config
        Per-device system configuration (one GPU's calibrated models).
        Every device in the pool is an instance of this config; use
        :meth:`device_config` to read the effective (possibly derated)
        per-device config.
    n_devices
        Pool size (>= 1).
    host_links
        One :class:`LinkSpec` per device for the device<->host path
        (symmetric: the same spec prices both directions; the underlying
        per-direction PCIe asymmetry stays inside ``config.transfer``
        for intra-device pipelines).
    peer_link
        Optional direct device<->device link (NVLink-style). ``None``
        (default) means no peer path exists and every inter-device
        transfer stages through the host.
    shared_host_link
        Whether the host links contend for one root complex (recorded
        for reporting; :meth:`symmetric` already folds the derating into
        the link specs and the device config).
    """

    config: SystemConfig
    n_devices: int
    host_links: tuple[LinkSpec, ...]
    peer_link: LinkSpec | None = None
    shared_host_link: bool = False
    #: Devices that dropped out of the pool (device-loss recovery,
    #: docs/robustness.md). Ids stay stable — the pool keeps its
    #: numbering so shard ownership and remaps stay meaningful — but a
    #: lost device prices no transfers and may receive no work.
    lost: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        positive_int(self.n_devices, "n_devices")
        if len(self.host_links) != self.n_devices:
            raise ValidationError(
                f"need one host link per device: {self.n_devices} devices, "
                f"{len(self.host_links)} links"
            )
        if not isinstance(self.lost, frozenset):
            object.__setattr__(self, "lost", frozenset(self.lost))
        for d in self.lost:
            if not 0 <= d < self.n_devices:
                raise ValidationError(
                    f"lost device {d} outside 0..{self.n_devices - 1}"
                )
        if len(self.lost) >= self.n_devices:
            raise ValidationError(
                f"all {self.n_devices} devices lost; no survivors to "
                f"build a topology over"
            )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def symmetric(
        cls,
        config: SystemConfig,
        n_devices: int,
        *,
        shared_host_link: bool = False,
        peer_link: LinkSpec | None = None,
    ) -> "DeviceTopology":
        """*n_devices* copies of *config*'s GPU around one host.

        Each device's host link takes the config's H2D bandwidth and
        PCIe latency. With ``shared_host_link=True`` both the links and
        the per-device config's PCIe bandwidths are divided by the
        device count (one contended root complex).
        """
        n_devices = positive_int(n_devices, "n_devices")
        if shared_host_link and n_devices > 1:
            gpu = config.gpu
            config = config.with_gpu(
                replace(
                    gpu,
                    name=f"{gpu.name}/shared-x{n_devices}",
                    h2d_bytes_per_s=gpu.h2d_bytes_per_s / n_devices,
                    d2h_bytes_per_s=gpu.d2h_bytes_per_s / n_devices,
                )
            )
        bw = config.transfer.bandwidth(Direction.H2D)
        link = LinkSpec(bytes_per_s=bw, latency_s=config.gpu.pcie_latency_s)
        return cls(
            config=config,
            n_devices=n_devices,
            host_links=(link,) * n_devices,
            peer_link=peer_link,
            shared_host_link=shared_host_link,
        )

    def without(self, lost) -> "DeviceTopology":
        """The surviving topology after losing *lost* devices (ids are
        preserved; the lost members are marked, not renumbered)."""
        return replace(self, lost=self.lost | frozenset(lost))

    # -- queries ----------------------------------------------------------------

    @property
    def surviving(self) -> tuple[int, ...]:
        """Device ids still in the pool, ascending."""
        return tuple(
            d for d in range(self.n_devices) if d not in self.lost
        )

    def _check_device(self, device: int, what: str) -> int:
        if device == HOST:
            return device
        if not 0 <= device < self.n_devices:
            raise ValidationError(
                f"{what} must be HOST or 0..{self.n_devices - 1}, got {device}"
            )
        return device

    def device_config(self, device: int) -> SystemConfig:
        """The effective single-device config for *device*."""
        self._check_device(device, "device")
        return self.config

    def host_link(self, device: int) -> LinkSpec:
        """The device<->host link of *device*."""
        self._check_device(device, "device")
        return self.host_links[device]

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Seconds to move *nbytes* from *src* to *dst* (either may be
        :data:`HOST`). Without a peer link, device-to-device transfers
        stage through the host: D2H on the source link plus H2D on the
        destination link."""
        self._check_device(src, "src")
        self._check_device(dst, "dst")
        for end in (src, dst):
            if end in self.lost:
                raise DeviceLostError(
                    end, detail="no link to a device that left the pool"
                )
        if src == dst:
            return 0.0
        if src == HOST:
            return self.host_links[dst].time(nbytes)
        if dst == HOST:
            return self.host_links[src].time(nbytes)
        if self.peer_link is not None:
            return self.peer_link.time(nbytes)
        return self.host_links[src].time(nbytes) + self.host_links[dst].time(
            nbytes
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        link = self.host_links[0]
        kind = "shared" if self.shared_host_link else "independent"
        peer = ", peer" if self.peer_link is not None else ""
        gone = f", {len(self.lost)} lost" if self.lost else ""
        return (
            f"{self.n_devices}x {self.config.gpu.name} "
            f"({kind} host links @ {link.bytes_per_s / 1e9:.1f} GB/s{peer}"
            f"{gone})"
        )


__all__ = ["HOST", "DeviceTopology", "LinkSpec"]
