"""2D block-cyclic sharding of a :class:`~repro.host.tiled.HostMatrix`.

The classic ScaLAPACK distribution: the matrix is cut into tile_rows x
tile_cols tiles and tile (bi, bj) lives on device ``(bi mod Pr) * Pc +
(bj mod Pc)`` of a Pr x Pc device grid. Block-cyclic keeps every device
busy through a factorization's shrinking trailing matrix; the degenerate
``Pr = P, Pc = 1`` layout with one tile row per device is the 1D row
sharding TSQR wants (each device's shard is one reduction leaf).

:class:`ShardedMatrix` binds a layout to a concrete host matrix and
answers the ownership questions the placement pass and the executors
ask: which device owns an element / a region, and which regions of the
matrix make up one device's shard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError, ValidationError
from repro.host.tiled import HostMatrix, HostRegion, tile_ranges
from repro.util.validation import positive_int


@dataclass(frozen=True)
class BlockCyclicLayout:
    """A Pr x Pc device grid with tile_rows x tile_cols tiles."""

    grid_rows: int
    grid_cols: int
    tile_rows: int
    tile_cols: int

    def __post_init__(self) -> None:
        positive_int(self.grid_rows, "grid_rows")
        positive_int(self.grid_cols, "grid_cols")
        positive_int(self.tile_rows, "tile_rows")
        positive_int(self.tile_cols, "tile_cols")

    @property
    def n_devices(self) -> int:
        return self.grid_rows * self.grid_cols

    @classmethod
    def row_slabs(cls, m: int, n: int, n_devices: int) -> "BlockCyclicLayout":
        """The 1D TSQR layout: one contiguous row slab per device.

        Degenerate block-cyclic (``Pr = P, Pc = 1``) with the tile height
        chosen so each device owns exactly one tile row — device g holds
        rows ``[g * ceil(m / P), ...)``.
        """
        m = positive_int(m, "m")
        n = positive_int(n, "n")
        n_devices = positive_int(n_devices, "n_devices")
        if n_devices > m:
            raise ShapeError(
                f"cannot shard {m} rows across {n_devices} devices"
            )
        return cls(
            grid_rows=n_devices,
            grid_cols=1,
            tile_rows=-(-m // n_devices),
            tile_cols=n,
        )

    def owner(self, bi: int, bj: int) -> int:
        """Device owning tile (*bi*, *bj*) of the tile grid."""
        if bi < 0 or bj < 0:
            raise ValidationError(
                f"tile indices must be non-negative, got ({bi}, {bj})"
            )
        return (bi % self.grid_rows) * self.grid_cols + (bj % self.grid_cols)

    def owner_of_element(self, i: int, j: int) -> int:
        """Device owning matrix element (*i*, *j*)."""
        if i < 0 or j < 0:
            raise ValidationError(
                f"element indices must be non-negative, got ({i}, {j})"
            )
        return self.owner(i // self.tile_rows, j // self.tile_cols)

    def owner_map(self, m: int, n: int) -> list[list[int]]:
        """Owner of every tile of an m x n matrix, as a tile-grid matrix."""
        n_bi = -(-positive_int(m, "m") // self.tile_rows)
        n_bj = -(-positive_int(n, "n") // self.tile_cols)
        return [
            [self.owner(bi, bj) for bj in range(n_bj)] for bi in range(n_bi)
        ]


@dataclass(frozen=True)
class ShardedMatrix:
    """A host matrix bound to a block-cyclic layout."""

    matrix: HostMatrix
    layout: BlockCyclicLayout

    def owner_of_region(self, region: HostRegion) -> int:
        """Device owning *region*'s top-left element (regions produced by
        the tiled engines never straddle a shard boundary when the engine
        blocksize divides the tile size; ownership by anchor is the
        placement convention either way)."""
        return self.layout.owner_of_element(region.row0, region.col0)

    def tiles_of(self, device: int) -> list[HostRegion]:
        """Every tile of the matrix owned by *device*, in row-major order."""
        lay = self.layout
        if not 0 <= device < lay.n_devices:
            raise ValidationError(
                f"device must be 0..{lay.n_devices - 1}, got {device}"
            )
        out = []
        rows = list(tile_ranges(self.matrix.rows, lay.tile_rows))
        cols = list(tile_ranges(self.matrix.cols, lay.tile_cols))
        for bi, (r0, r1) in enumerate(rows):
            for bj, (c0, c1) in enumerate(cols):
                if lay.owner(bi, bj) == device:
                    out.append(self.matrix.region(r0, r1, c0, c1))
        return out

    def shard_elements(self, device: int) -> int:
        """Total elements of *device*'s shard (its peak-memory floor)."""
        return sum(
            (t.row1 - t.row0) * (t.col1 - t.col0) for t in self.tiles_of(device)
        )

    def row_slab(self, device: int) -> HostRegion:
        """Device *device*'s single row slab under a :meth:`BlockCyclicLayout
        .row_slabs` layout (raises for genuinely 2D layouts)."""
        lay = self.layout
        if lay.grid_cols != 1 or lay.tile_cols < self.matrix.cols:
            raise ValidationError(
                "row_slab() requires a 1D row-slab layout "
                f"(grid {lay.grid_rows}x{lay.grid_cols}, "
                f"tile_cols {lay.tile_cols} < {self.matrix.cols})"
            )
        tiles = self.tiles_of(device)
        if len(tiles) != 1:
            raise ValidationError(
                f"device {device} owns {len(tiles)} row slabs; the TSQR "
                "layout gives exactly one (fewer devices than tile rows?)"
            )
        return tiles[0]


def slab_offsets(m: int, n: int, n_devices: int) -> list[tuple[int, int]]:
    """Row ranges of the TSQR leaves, one per device.

    Exactly :func:`repro.qr.tsqr.tsqr`'s leaf split for ``leaf_rows =
    ceil(m / n_devices)`` — offsets every ``leaf_rows`` rows, with a tail
    shorter than ``n`` merged into the previous leaf. Keeping the two
    splits identical is what makes the distributed factors bitwise equal
    to the single-device TSQR (see docs/dist.md).
    """
    m = positive_int(m, "m")
    n = positive_int(n, "n")
    n_devices = positive_int(n_devices, "n_devices")
    leaf_rows = max(-(-m // n_devices), n)
    offsets = list(range(0, m, leaf_rows))
    if offsets and m - offsets[-1] < n and len(offsets) > 1:
        offsets.pop()
    return [
        (off, offsets[i + 1] if i + 1 < len(offsets) else m)
        for i, off in enumerate(offsets)
    ]


__all__ = ["BlockCyclicLayout", "ShardedMatrix", "slab_offsets"]
