"""Placement pass: partition a :class:`~repro.runtime.task.TaskGraph`
across a device pool.

The tile-DAG runtime records engine runs as task graphs whose edges are
derived from data accesses (PR 6). Multi-device execution starts from
the same graph: every op task is assigned to the device that *owns* the
host data it touches (block-cyclic ownership, :mod:`repro.dist.shard`),
buffers live where their first toucher runs, allocator pseudo-tasks
follow their buffer, and every dependency edge that crosses a device
boundary while carrying data becomes an explicit :class:`TransferTask`
priced by the topology's links.

The output is one :class:`DeviceProgram` per device — each satisfying
the captured-program protocol (``config`` / ``ops`` / ``mem_events`` /
``stats`` / ``label`` / ``volume_hint``) — so
:func:`repro.analysis.verify.verify_program` proves every device's
slice race-free, leak-free and within its per-device memory budget,
plus the transfer list with per-link byte totals for communication
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.capture import MemEvent
from repro.analysis.verify import AnalysisReport, verify_program
from repro.dist.shard import ShardedMatrix
from repro.dist.topology import DeviceTopology
from repro.errors import ValidationError
from repro.execution.base import RunStats
from repro.host.tiled import HostRegion
from repro.runtime.task import Access, TaskGraph, TileTask
from repro.sim.ops import OpKind
from repro.util.regions import rects_overlap


@dataclass(frozen=True)
class TransferTask:
    """One explicit inter-device transfer inserted by the placement pass.

    Carries the dependency edge it materializes (``producer`` wrote the
    data on *src*; ``consumer`` reads it on *dst*) and the overlap bytes
    that must move. ``cost`` is the topology's link time for that
    volume (host-staged when no peer link exists).
    """

    xfer_id: int
    src: int
    dst: int
    nbytes: int
    producer: TileTask
    consumer: TileTask
    cost: float

    @property
    def name(self) -> str:
        return (
            f"xfer#{self.xfer_id} dev{self.src}->dev{self.dst} "
            f"({self.producer.name} -> {self.consumer.name})"
        )


@dataclass
class DeviceProgram:
    """One device's slice of a partitioned task graph.

    Satisfies the captured-program protocol consumed by
    :func:`repro.analysis.verify.verify_program`: ``ops`` keeps the
    graph's emission order (restricted to this device) with the derived
    dataflow deps, and ``mem_events`` are re-positioned against that
    restricted op list.
    """

    device: int
    config: object
    label: str
    tasks: list[TileTask] = field(default_factory=list)
    mem_events: list[MemEvent] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)
    volume_hint: tuple[str, int, int, int] | None = None

    @property
    def ops(self):
        return [t.op for t in self.tasks if t.op is not None]

    def peak_bytes(self) -> int:
        """Exact live-byte high-water mark from the allocator log."""
        live = peak = 0
        for ev in self.mem_events:
            live += ev.nbytes if ev.kind == "alloc" else -ev.nbytes
            peak = max(peak, live)
        return peak


@dataclass
class Placement:
    """Result of partitioning one task graph across a topology."""

    graph: TaskGraph
    topology: DeviceTopology
    device_of: dict[int, int]
    programs: list[DeviceProgram]
    transfers: list[TransferTask]

    @property
    def total_transfer_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    def link_bytes(self) -> dict[tuple[int, int], int]:
        """Bytes moved per (src, dst) device pair."""
        out: dict[tuple[int, int], int] = {}
        for t in self.transfers:
            key = (t.src, t.dst)
            out[key] = out.get(key, 0) + t.nbytes
        return out

    def device_bytes(self) -> list[tuple[int, int]]:
        """Per-device (sent, received) transfer bytes."""
        sent = [0] * self.topology.n_devices
        recv = [0] * self.topology.n_devices
        for t in self.transfers:
            sent[t.src] += t.nbytes
            recv[t.dst] += t.nbytes
        return list(zip(sent, recv))

    def verify(
        self, *, budget_bytes: int | None = None
    ) -> list[AnalysisReport]:
        """Run the static plan verifier on every device's program
        (races, lifetimes, exact peak memory vs the per-device budget)."""
        budget = (
            budget_bytes
            if budget_bytes is not None
            else self.topology.config.usable_device_bytes
        )
        return [
            verify_program(prog, budget_bytes=budget) for prog in self.programs
        ]


def _access_overlap_bytes(a: Access, b: Access, element_bytes: int) -> int:
    """Bytes of the rectangle where two device accesses overlap."""
    if a[0] != b[0]:
        return 0
    r0, r1 = max(a[1], b[1]), min(a[2], b[2])
    c0, c1 = max(a[3], b[3]), min(a[4], b[4])
    if r0 >= r1 or c0 >= c1:
        return 0
    return (r1 - r0) * (c1 - c0) * element_bytes


def _host_overlap_bytes(
    a: HostRegion, b: HostRegion, element_bytes: int
) -> int:
    if a.matrix is not b.matrix:
        return 0
    r0, r1 = max(a.row0, b.row0), min(a.row1, b.row1)
    c0, c1 = max(a.col0, b.col0), min(a.col1, b.col1)
    if r0 >= r1 or c0 >= c1:
        return 0
    return (r1 - r0) * (c1 - c0) * element_bytes


def _edge_payload_bytes(
    producer: TileTask, consumer: TileTask, element_bytes: int
) -> int:
    """Bytes the consumer actually reads of what the producer wrote.

    Device dataflow: overlap of the producer's write rects with the
    consumer's read/write rects. Host coherence: overlap of the
    producer's host writes with the consumer's host reads.
    """
    nbytes = 0
    for wa in producer.accesses:
        if not wa[5]:
            continue
        for ra in consumer.accesses:
            if rects_overlap(
                (wa[1], wa[2]), (wa[3], wa[4]), (ra[1], ra[2]), (ra[3], ra[4])
            ) and wa[0] == ra[0]:
                nbytes += _access_overlap_bytes(wa, ra, element_bytes)
    for wr in producer.host_writes:
        for rr in consumer.host_reads:
            nbytes += _host_overlap_bytes(wr, rr, element_bytes)
    return nbytes


def _anchor_device(
    task: TileTask, owner_of: Callable[[HostRegion], int | None]
) -> int | None:
    """Ownership anchor of an op task: the owner of the first host region
    it touches on a sharded matrix (reads before writes: a transfer is
    placed where its source data lives)."""
    for region in (*task.host_reads, *task.host_writes):
        dev = owner_of(region)
        if dev is not None:
            return dev
    return None


def partition_graph(
    graph: TaskGraph,
    sharded: ShardedMatrix | tuple[ShardedMatrix, ...],
    topology: DeviceTopology,
    *,
    default_device: int = 0,
    pin: dict[str, int] | None = None,
    remap: dict[int, int] | None = None,
) -> Placement:
    """Partition *graph* across *topology* by tile ownership.

    Assignment rules, in order:

    1. an op touching an already-homed device buffer runs on that
       buffer's home (buffer affinity — a buffer's home is the device of
       its first toucher, or a *pin* entry mapping the buffer's name to
       a device). Affinity wins over data ownership because the task
       graph gives every conflicting access pair a *direct* edge:
       keeping all touches of a buffer on one device means every
       same-device hazard pair keeps its edge, so the per-device race
       proof stays sound without projecting cross-device ordering.
       Pinning covers the broadcast-consumer case — a scratch buffer
       whose first touch *reads another device's staged data* (e.g. a
       TSQR pushdown factor) and must still live with its consumer;
    2. an op touching a host region of a sharded matrix runs on the
       region's owner (:meth:`ShardedMatrix.owner_of_region`);
    3. remaining ops inherit the device of their first assigned
       dependency, else *default_device*;
    4. ``alloc``/``free`` pseudo-tasks follow their buffer's home.

    Every dependency edge between op tasks on different devices that
    carries data (overlapping producer writes / consumer reads) becomes
    one :class:`TransferTask` priced by the topology.

    *remap* redirects logical devices to physical ones — the device-loss
    regraft of :mod:`repro.dist.recovery`: ownership and pins are still
    computed against the logical layout, then every resolved device is
    mapped through ``remap`` before it lands in ``device_of`` /
    ``buffer_home``. Edges between logical devices that collapse onto
    one physical device naturally stop being transfers. Remap targets
    (and every placed task) must be surviving members of *topology*.
    """
    shards = sharded if isinstance(sharded, tuple) else (sharded,)
    if not shards:
        raise ValidationError("partition_graph needs at least one shard map")
    for s in shards:
        if s.layout.n_devices > topology.n_devices:
            raise ValidationError(
                f"layout spans {s.layout.n_devices} devices; topology has "
                f"{topology.n_devices}"
            )
    by_matrix = {id(s.matrix): s for s in shards}

    def owner_of(region: HostRegion) -> int | None:
        shard = by_matrix.get(id(region.matrix))
        if shard is None:
            return None
        return shard.owner_of_region(region)

    if remap:
        for logical, physical in remap.items():
            for dev, what in ((logical, "source"), (physical, "target")):
                if not 0 <= dev < topology.n_devices:
                    raise ValidationError(
                        f"remap {what} device {dev} outside the "
                        f"{topology.n_devices}-device topology"
                    )
            if physical in topology.lost:
                raise ValidationError(
                    f"remap target device {physical} is itself lost"
                )

    def phys(dev: int) -> int:
        return remap.get(dev, dev) if remap else dev

    eb = graph.config.element_bytes
    device_of: dict[int, int] = {}
    buffer_home: dict[int, int] = {}
    if pin:
        for dev in pin.values():
            if not 0 <= dev < topology.n_devices:
                raise ValidationError(
                    f"pin names device {dev}; topology has "
                    f"{topology.n_devices} devices"
                )
        # seed buffer homes from the pin map (alloc tasks carry the name)
        for task in graph.tasks:
            if task.mem == "alloc" and task.buffer.name in pin:
                handle = task.buffer.payload["allocation"].handle
                buffer_home[handle] = phys(pin[task.buffer.name])

    def buffer_handles(task: TileTask) -> list[int]:
        return [acc[0] for acc in task.accesses]

    # pass 1: op tasks, in emission order
    for task in graph.tasks:
        if task.mem:
            continue
        dev = None
        for handle in buffer_handles(task):
            if handle in buffer_home:
                dev = buffer_home[handle]
                break
        if dev is None:
            anchor = _anchor_device(task, owner_of)
            dev = None if anchor is None else phys(anchor)
        if dev is None:
            for dep in task.deps:
                if dep.task_id in device_of:
                    dev = device_of[dep.task_id]
                    break
        if dev is None:
            dev = phys(default_device)
        if dev in topology.lost:
            raise ValidationError(
                f"task {task.name} placed on lost device {dev}; the remap "
                f"must regraft every lost device onto a survivor"
            )
        device_of[task.task_id] = dev
        for handle in buffer_handles(task):
            buffer_home.setdefault(handle, dev)

    # pass 2: allocator pseudo-tasks follow their buffer's home
    for task in graph.tasks:
        if not task.mem:
            continue
        handle = task.buffer.payload["allocation"].handle
        device_of[task.task_id] = buffer_home.get(handle, default_device)

    # per-device programs: emission order restricted to the device, with
    # mem events re-positioned against the restricted op list
    programs = [
        DeviceProgram(
            device=d,
            config=topology.device_config(d),
            label=f"{graph.label or 'graph'}@dev{d}",
        )
        for d in range(topology.n_devices)
    ]
    ops_seen = [0] * topology.n_devices
    for task in graph.tasks:
        d = device_of[task.task_id]
        prog = programs[d]
        if task.mem:
            handle = task.buffer.payload["allocation"].handle
            prog.mem_events.append(
                MemEvent(
                    task.mem, handle, task.buffer.name, task.nbytes,
                    ops_seen[d], True,
                )
            )
            prog.tasks.append(task)
        else:
            prog.tasks.append(task)
            ops_seen[d] += 1
            if task.op is not None:
                if task.op.kind is OpKind.COPY_H2D:
                    prog.stats.h2d_bytes += task.op.nbytes
                elif task.op.kind is OpKind.COPY_D2H:
                    prog.stats.d2h_bytes += task.op.nbytes

    # explicit transfers on cross-device data edges
    transfers: list[TransferTask] = []
    for task in graph.tasks:
        if task.mem:
            continue
        dst = device_of[task.task_id]
        for dep in task.deps:
            if dep.mem:
                continue
            src = device_of[dep.task_id]
            if src == dst:
                continue
            nbytes = _edge_payload_bytes(dep, task, eb)
            if nbytes == 0:
                continue  # pure ordering edge (anti/output dep): no data
            transfers.append(
                TransferTask(
                    xfer_id=len(transfers),
                    src=src,
                    dst=dst,
                    nbytes=nbytes,
                    producer=dep,
                    consumer=task,
                    cost=topology.transfer_time(src, dst, nbytes),
                )
            )

    return Placement(
        graph=graph,
        topology=topology,
        device_of=device_of,
        programs=programs,
        transfers=transfers,
    )


__all__ = [
    "DeviceProgram",
    "Placement",
    "TransferTask",
    "partition_graph",
]
