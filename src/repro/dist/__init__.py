"""repro.dist — communication-optimal multi-device sharding.

Shards a tall-skinny QR across a modeled device pool: block-cyclic
ownership (:mod:`~repro.dist.shard`) over an explicit link topology
(:mod:`~repro.dist.topology`), CAQR reduction trees with measured-vs-
lower-bound accounting (:mod:`~repro.dist.tree`), a placement pass that
partitions the tile-DAG task graph and inserts priced inter-device
transfers (:mod:`~repro.dist.placement`), and two executors: a per-
device simulator sweep (:mod:`~repro.dist.sim`) and a process-pool
numeric backend with memmap shard handoff whose binomial tree bitwise-
matches the single-device TSQR (:mod:`~repro.dist.numeric`). Both
executors accept a :class:`~repro.faults.plan.FaultPlan`; device losses
are absorbed by regraft-and-replay recovery (:mod:`~repro.dist.recovery`,
docs/robustness.md) with every re-placed program re-verified before
execution resumes.

Layering: ``repro.dist`` sits beside the runtime/analysis layers and
below ``repro.serve`` — it must not import the serving layer (enforced
by the repo lint pack).
"""

from repro.dist.api import DIST_MODES, dist_qr
from repro.dist.numeric import DistNumericResult, dist_qr_numeric
from repro.dist.placement import (
    DeviceProgram,
    Placement,
    TransferTask,
    partition_graph,
)
from repro.dist.recovery import (
    RecoveryPlan,
    injection_matrix,
    plan_recovery,
    recover_placement,
    remap_devices,
)
from repro.dist.shard import BlockCyclicLayout, ShardedMatrix, slab_offsets
from repro.dist.sim import (
    DistSimResult,
    build_dist_qr_graph,
    dist_precision_report,
    dist_scaling_sweep,
    dist_trace_spans,
    simulate_dist_qr,
)
from repro.dist.topology import HOST, DeviceTopology, LinkSpec
from repro.dist.tree import (
    CAQR_SLACK,
    TREE_KINDS,
    ReductionTree,
    TreeCommReport,
    build_tree,
    caqr_lower_bound_words,
    triangle_words,
)

__all__ = [
    "BlockCyclicLayout",
    "CAQR_SLACK",
    "DIST_MODES",
    "DeviceProgram",
    "DeviceTopology",
    "DistNumericResult",
    "DistSimResult",
    "HOST",
    "LinkSpec",
    "Placement",
    "RecoveryPlan",
    "ReductionTree",
    "ShardedMatrix",
    "TransferTask",
    "TreeCommReport",
    "TREE_KINDS",
    "build_dist_qr_graph",
    "build_tree",
    "caqr_lower_bound_words",
    "dist_qr",
    "dist_qr_numeric",
    "dist_precision_report",
    "dist_scaling_sweep",
    "dist_trace_spans",
    "injection_matrix",
    "partition_graph",
    "plan_recovery",
    "recover_placement",
    "remap_devices",
    "simulate_dist_qr",
    "slab_offsets",
    "triangle_words",
]
