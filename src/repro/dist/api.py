"""Front door for multi-device QR: one call, two backends.

``mode="numeric"`` runs the process-pool sharded TSQR on a real matrix
(:func:`repro.dist.numeric.dist_qr_numeric`) and returns factors plus
measured communication. ``mode="sim"`` builds the global task graph for
a matrix of the given shape, partitions it across a simulated device
pool, verifies every per-device program, and returns the modeled
timeline (:func:`repro.dist.sim.simulate_dist_qr`). When *mode* is
omitted it is inferred: a concrete matrix means numeric, a bare shape
means sim.
"""

from __future__ import annotations

import numpy as np

from repro.config import PAPER_SYSTEM, SystemConfig
from repro.dist.numeric import DistNumericResult, dist_qr_numeric
from repro.dist.sim import DistSimResult, simulate_dist_qr
from repro.errors import ValidationError
from repro.util.validation import one_of, positive_int

DIST_MODES = ("numeric", "sim")


def dist_qr(
    a: np.ndarray | None = None,
    *,
    m: int | None = None,
    n: int | None = None,
    n_devices: int,
    tree: str = "binomial",
    mode: str | None = None,
    processes: int | None = None,
    config: SystemConfig | None = None,
    shared_host_link: bool = False,
    budget_bytes: int | None = None,
    faults=None,
    recover: bool = True,
) -> DistNumericResult | DistSimResult:
    """Factor a tall matrix across a device pool.

    Exactly one of *a* (numeric) or *m*/*n* (sim) describes the input;
    *mode* may force the choice explicitly. Numeric mode accepts
    *processes* (0 = inline); sim mode accepts *config*,
    *shared_host_link* and *budget_bytes*. Both accept a *faults*
    :class:`~repro.faults.plan.FaultPlan` (docs/robustness.md); numeric
    mode additionally honors *recover* (``False`` surfaces a device
    loss instead of running lineage recovery).
    """
    if mode is None:
        mode = "numeric" if a is not None else "sim"
    mode = one_of(mode, DIST_MODES, "mode")
    if mode == "numeric":
        if a is None:
            raise ValidationError("numeric mode needs a concrete matrix `a`")
        return dist_qr_numeric(
            a, n_devices=n_devices, tree=tree, processes=processes,
            faults=faults, recover=recover, config=config,
        )
    if a is not None:
        raise ValidationError(
            "sim mode takes a shape (m, n), not a concrete matrix"
        )
    if m is None or n is None:
        raise ValidationError("sim mode needs both m and n")
    return simulate_dist_qr(
        config if config is not None else PAPER_SYSTEM,
        m=positive_int(m, "m"),
        n=positive_int(n, "n"),
        n_devices=n_devices,
        tree=tree,
        shared_host_link=shared_host_link,
        budget_bytes=budget_bytes,
        faults=faults,
    )


__all__ = ["DIST_MODES", "dist_qr"]
