"""Process-pool numeric backend: sharded TSQR with memmap shard handoff.

Each device of the pool is realized as one worker process; the shards
move through two memory-mapped files in a scratch directory (``a.dat``
holds the input slabs, ``q.dat`` accumulates the per-slab Q pieces), so
workers exchange zero array bytes with the coordinator beyond the b-by-b
R factors and tree factors — the exact payloads the CAQR bound counts.

Bitwise parity: every worker applies the same operations, in the same
order, on the same float64 values as :func:`repro.qr.tsqr.tsqr` does for
the corresponding leaf — leaf ``np.linalg.qr``, one GEMM per reduction
round against the group's b-by-b tree factor, and the final column sign
scaling. Because :func:`~repro.qr.tsqr._tsqr_tree` keeps per-leaf Q
pieces flat (never vstacking groups before a GEMM), the distributed
result equals ``tsqr(a, leaf_rows=ceil(m / n_devices))`` *bitwise*, not
just to tolerance — the differential tests assert exactly that.

Communication is measured, not assumed: the coordinator counts the words
of every packed-triangular R it relays upward and every b-by-b factor it
broadcasts downward, and reports them as a
:class:`~repro.dist.tree.TreeCommReport` against the Demmel et al.
lower bound.

``processes=0`` runs the same memmap task functions inline (identical
arithmetic, no pool) — the cheap path for serve jobs and small tests.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

from repro.dist.shard import slab_offsets
from repro.dist.tree import (
    ReductionTree,
    TreeCommReport,
    build_tree,
    caqr_lower_bound_words,
)
from repro.errors import ShapeError, ValidationError
from repro.util.validation import positive_int


def _open_maps(scratch: str, m: int, n: int, mode: str = "r+"):
    a = np.memmap(
        os.path.join(scratch, "a.dat"), dtype=np.float64, mode="r",
        shape=(m, n),
    )
    q = np.memmap(
        os.path.join(scratch, "q.dat"), dtype=np.float64, mode=mode,
        shape=(m, n),
    )
    return a, q


def _leaf_qr(scratch: str, m: int, n: int, r0: int, r1: int) -> np.ndarray:
    """Worker: factor one slab; Q piece lands in the shared map, R is the
    only array returned (the upward payload)."""
    a, q = _open_maps(scratch, m, n)
    q_leaf, r = np.linalg.qr(np.asarray(a[r0:r1]))
    q[r0:r1] = q_leaf
    q.flush()
    return r


def _apply_factor(
    scratch: str, m: int, n: int, r0: int, r1: int, factor: np.ndarray
) -> None:
    """Worker: one pushdown GEMM — multiply the slab's Q piece by its
    group's b-by-b tree factor (the downward payload)."""
    _, q = _open_maps(scratch, m, n)
    q[r0:r1] = np.asarray(q[r0:r1]) @ factor
    q.flush()


def _scale_columns(
    scratch: str, m: int, n: int, r0: int, r1: int, signs: np.ndarray
) -> None:
    """Worker: final diag(R) > 0 sign normalization on one slab."""
    _, q = _open_maps(scratch, m, n)
    q[r0:r1] = np.asarray(q[r0:r1]) * signs[None, :]
    q.flush()


class _InlinePool:
    """Same task surface as a multiprocessing pool, run in-process."""

    def starmap(self, fn, argss):
        return [fn(*args) for args in argss]

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


@dataclass
class DistNumericResult:
    """Factors plus the measured communication of one sharded QR."""

    q: np.ndarray
    r: np.ndarray
    n_devices: int
    tree: ReductionTree
    #: Measured words (packed triangles up, b-by-b factors down).
    comm: TreeCommReport
    #: Worker processes used (0 = inline execution).
    processes: int


def dist_qr_numeric(
    a: np.ndarray,
    *,
    n_devices: int,
    tree: str = "binomial",
    processes: int | None = None,
) -> DistNumericResult:
    """Sharded TSQR of *a* across *n_devices* row slabs.

    Parameters
    ----------
    a
        Tall matrix (m >= n); not modified. Computation is float64,
        exactly like :func:`repro.qr.tsqr.tsqr`.
    n_devices
        Pool size; each device owns one row slab
        (:func:`~repro.dist.shard.slab_offsets`), and ``ceil(m / P)``
        must be at least ``n``.
    tree
        ``"binomial"`` (pairwise rounds; bitwise-matches ``tsqr``) or
        ``"flat"`` (all R factors stacked into one QR at the root).
    processes
        Worker process count (capped at *n_devices*); default
        ``min(n_devices, cpu_count)``. 0 runs the same tasks inline.
    """
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] < a.shape[1] or a.shape[1] < 1:
        raise ShapeError(f"dist_qr_numeric needs a tall 2D matrix, got {a.shape}")
    m, n = a.shape
    n_devices = positive_int(n_devices, "n_devices")
    slabs = slab_offsets(m, n, n_devices)
    if len(slabs) != n_devices:
        raise ValidationError(
            f"{m}x{n} splits into {len(slabs)} slabs of >= {n} rows; cannot "
            f"occupy {n_devices} devices (need ceil(m / P) >= n)"
        )
    tree_obj = build_tree(tree, n_devices)
    if processes is None:
        processes = min(n_devices, os.cpu_count() or 1)
    if processes < 0:
        raise ValidationError(f"processes must be >= 0, got {processes}")
    processes = min(processes, n_devices)

    scratch = tempfile.mkdtemp(prefix="repro-dist-")
    try:
        staged = np.memmap(
            os.path.join(scratch, "a.dat"), dtype=np.float64, mode="w+",
            shape=(m, n),
        )
        staged[:] = a.astype(np.float64, copy=False)
        staged.flush()
        del staged
        np.memmap(
            os.path.join(scratch, "q.dat"), dtype=np.float64, mode="w+",
            shape=(m, n),
        ).flush()

        if processes:
            ctx = get_context("spawn")
            pool_cm = ctx.Pool(processes)
        else:
            pool_cm = _InlinePool()
        with pool_cm as pool:
            rs = {
                d: r
                for d, r in enumerate(
                    pool.starmap(
                        _leaf_qr,
                        [(scratch, m, n, r0, r1) for r0, r1 in slabs],
                    )
                )
            }
            up_sent = [0] * n_devices
            up_recv = [0] * n_devices
            down_recv = [0] * n_devices
            tri = np.triu_indices(n)

            if tree_obj.kind == "flat" and n_devices > 1:
                # every leaf sends its packed R to the root, which
                # factors the whole stack at once
                for src in range(1, n_devices):
                    words = int(rs[src][tri].size)
                    up_sent[src] += words
                    up_recv[0] += words
                stacked = np.vstack([rs[d] for d in range(n_devices)])
                q_all, r_final = np.linalg.qr(stacked)
                factors = [(d, q_all[d * n : (d + 1) * n]) for d in range(n_devices)]
                for d, factor in factors:
                    down_recv[d] += int(factor.size)
                pool.starmap(
                    _apply_factor,
                    [
                        (scratch, m, n, slabs[d][0], slabs[d][1],
                         np.ascontiguousarray(factor))
                        for d, factor in factors
                    ],
                )
            else:
                for merges, groups in zip(
                    tree_obj.rounds, tree_obj.group_schedule()
                ):
                    applies = []
                    for dst, src in merges:
                        words = int(rs[src][tri].size)
                        up_sent[src] += words
                        up_recv[dst] += words
                        stacked = np.vstack([rs[dst], rs.pop(src)])
                        q_pair, r_pair = np.linalg.qr(stacked)
                        rs[dst] = r_pair
                        top = np.ascontiguousarray(q_pair[:n])
                        bot = np.ascontiguousarray(q_pair[n:])
                        for member in groups[dst]:
                            down_recv[member] += int(top.size)
                            applies.append((member, top))
                        for member in groups[src]:
                            down_recv[member] += int(bot.size)
                            applies.append((member, bot))
                    # round barrier: factors of round k land before k+1
                    pool.starmap(
                        _apply_factor,
                        [
                            (scratch, m, n, slabs[d][0], slabs[d][1], f)
                            for d, f in applies
                        ],
                    )
                (r_final,) = rs.values()

            signs = np.sign(np.diag(r_final))
            signs[signs == 0] = 1.0
            pool.starmap(
                _scale_columns,
                [(scratch, m, n, r0, r1, signs) for r0, r1 in slabs],
            )
        q = np.array(
            np.memmap(
                os.path.join(scratch, "q.dat"), dtype=np.float64, mode="r",
                shape=(m, n),
            )
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    comm = TreeCommReport(
        kind=tree_obj.kind,
        n_devices=n_devices,
        b=n,
        up_sent_words=tuple(up_sent),
        up_recv_words=tuple(up_recv),
        down_recv_words=tuple(down_recv),
        lower_bound_words=caqr_lower_bound_words(n, n_devices),
    )
    return DistNumericResult(
        q=q,
        r=np.triu(r_final * signs[:, None]),
        n_devices=n_devices,
        tree=tree_obj,
        comm=comm,
        processes=processes,
    )


__all__ = ["DistNumericResult", "dist_qr_numeric"]
