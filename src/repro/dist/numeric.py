"""Process-pool numeric backend: sharded TSQR with memmap shard handoff.

Each device of the pool is realized as one worker process; the shards
move through two memory-mapped files in a scratch directory (``a.dat``
holds the input slabs, ``q.dat`` accumulates the per-slab Q pieces), so
workers exchange zero array bytes with the coordinator beyond the b-by-b
R factors and tree factors — the exact payloads the CAQR bound counts.

Bitwise parity: every worker applies the same operations, in the same
order, on the same float64 values as :func:`repro.qr.tsqr.tsqr` does for
the corresponding leaf — leaf ``np.linalg.qr``, one GEMM per reduction
round against the group's b-by-b tree factor, and the final column sign
scaling. Because :func:`~repro.qr.tsqr._tsqr_tree` keeps per-leaf Q
pieces flat (never vstacking groups before a GEMM), the distributed
result equals ``tsqr(a, leaf_rows=ceil(m / n_devices))`` *bitwise*, not
just to tolerance — the differential tests assert exactly that.

Communication is measured, not assumed: the coordinator counts the words
of every packed-triangular R it relays upward and every b-by-b factor it
broadcasts downward, and reports them as a
:class:`~repro.dist.tree.TreeCommReport` against the Demmel et al.
lower bound. The accounting is *logical* — one count per schedule edge,
never per retransmission — so the CAQR comparison describes the
algorithm, not the luck of a particular faulty run.

Fault tolerance (docs/robustness.md): every fallible step is guarded by
a :class:`~repro.faults.inject.FaultInjector` check at a named site
(``leaf`` / ``transfer-up`` / ``merge`` / ``transfer-down`` /
``pushdown`` / ``scale``). Transient faults (worker crash, task error,
transfer timeout/stall) retry the guarded step with exponential backoff;
worker tasks additionally run under a heartbeat/timeout watchdog. A
``device_loss`` triggers lineage recovery: the surviving pool is
re-planned and re-verified (:func:`repro.dist.recovery.plan_recovery` —
execution refuses to resume unless every re-placed program passes
``verify_program``), and the lost slab's task lineage (leaf QR plus
every tree factor already applied, logged by the coordinator) is
replayed on the scratch maps — identical float64 ops in identical order,
so recovered runs stay bitwise-identical to fault-free ones. With no
``faults`` plan all guards short-circuit; the fault-free path is
bitwise-identical to a build without the fault plane.

``processes=0`` runs the same memmap task functions inline (identical
arithmetic, no pool) — the cheap path for serve jobs and small tests.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

from repro.dist.shard import slab_offsets
from repro.dist.tree import (
    ReductionTree,
    TreeCommReport,
    build_tree,
    caqr_lower_bound_words,
)
from repro.errors import (
    DeviceLostError,
    FaultError,
    InjectedFaultError,
    ShapeError,
    ValidationError,
)
from repro.faults.inject import as_injector
from repro.faults.report import FaultReport
from repro.obs import clock
from repro.util.validation import positive_int


def _open_maps(scratch: str, m: int, n: int, mode: str = "r+"):
    a = np.memmap(
        os.path.join(scratch, "a.dat"), dtype=np.float64, mode="r",
        shape=(m, n),
    )
    q = np.memmap(
        os.path.join(scratch, "q.dat"), dtype=np.float64, mode=mode,
        shape=(m, n),
    )
    return a, q


def _leaf_qr(scratch: str, m: int, n: int, r0: int, r1: int) -> np.ndarray:
    """Worker: factor one slab; Q piece lands in the shared map, R is the
    only array returned (the upward payload)."""
    a, q = _open_maps(scratch, m, n)
    q_leaf, r = np.linalg.qr(np.asarray(a[r0:r1]))
    q[r0:r1] = q_leaf
    q.flush()
    del a, q  # release the maps before the scratch dir is torn down
    return r


def _apply_factor(
    scratch: str, m: int, n: int, r0: int, r1: int, factor: np.ndarray
) -> None:
    """Worker: one pushdown GEMM — multiply the slab's Q piece by its
    group's b-by-b tree factor (the downward payload)."""
    _, q = _open_maps(scratch, m, n)
    q[r0:r1] = np.asarray(q[r0:r1]) @ factor
    q.flush()
    del q


def _scale_columns(
    scratch: str, m: int, n: int, r0: int, r1: int, signs: np.ndarray
) -> None:
    """Worker: final diag(R) > 0 sign normalization on one slab."""
    _, q = _open_maps(scratch, m, n)
    q[r0:r1] = np.asarray(q[r0:r1]) * signs[None, :]
    q.flush()
    del q


class _InlinePool:
    """Same task surface as a multiprocessing pool, run in-process."""

    def starmap(self, fn, argss):
        return [fn(*args) for args in argss]

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class _FaultTolerantRun:
    """Coordinator-side fault plane for one ``dist_qr_numeric`` call.

    Holds the injector, the retry/backoff policy, the per-slab lineage
    log (every tree factor already applied, in order) and the loss
    bookkeeping. With no injector the guards are single attribute reads
    and the dispatch paths match the fault-free build exactly.
    """

    def __init__(
        self,
        pool,
        injector,
        *,
        inline: bool,
        n_devices: int,
        tree: ReductionTree,
        m: int,
        n: int,
        slabs,
        scratch: str,
        recover: bool,
        max_retries: int,
        backoff_base_s: float,
        backoff_max_s: float,
        task_timeout_s: float,
        heartbeat_s: float,
        config,
    ):
        self.pool = pool
        self.injector = injector
        self.inline = inline
        self.n_devices = n_devices
        self.tree = tree
        self.m = m
        self.n = n
        self.slabs = slabs
        self.scratch = scratch
        self.recover = recover
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.task_timeout_s = task_timeout_s
        self.heartbeat_s = heartbeat_s
        self.config = config
        #: Per-slab lineage: tree factors applied so far, in order. A
        #: lost slab replays leaf QR + this log to restore bit-identical
        #: state.
        self.applied: list[list[np.ndarray]] = [[] for _ in range(n_devices)]
        self.lost: list[int] = []
        self.remap: dict[int, int] = {}
        self.retries = 0
        self.recoveries = 0
        self.replacements_verified = 0

    # -- guards -----------------------------------------------------------------

    def _backoff(self, attempt: int) -> None:
        clock.sleep(
            min(self.backoff_max_s, self.backoff_base_s * 2 ** (attempt - 1))
        )

    def guard(
        self, site: str, device: int | None = None,
        round_index: int | None = None,
    ) -> None:
        """One injection point. Transients retry with backoff until the
        spec burns out or the retry budget is spent; a device loss runs
        recovery and re-checks (another spec may still be pending)."""
        if self.injector is None:
            return
        attempt = 0
        while True:
            try:
                self.injector.check(
                    site, device=device, round_index=round_index
                )
                return
            except DeviceLostError as exc:
                self._on_device_loss(exc)
            except InjectedFaultError as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise FaultError(
                        "retries-exhausted",
                        f"{site} on device {device} still failing after "
                        f"{self.max_retries} retries: {exc}",
                    ) from exc
                self.retries += 1
                self._backoff(attempt)

    # -- dispatch ---------------------------------------------------------------

    def run_batch(self, tasks) -> list:
        """Run a batch of worker tasks ``(site, device, round, fn, args)``.

        All guards fire before any dispatch (a fault never half-applies
        a batch); with a real pool every task runs async under the
        heartbeat/timeout watchdog, and a failed task is re-dispatched
        with backoff before the run gives up.
        """
        for site, device, rnd, _fn, _args in tasks:
            self.guard(site, device=device, round_index=rnd)
        if self.inline:
            return [fn(*args) for _s, _d, _r, fn, args in tasks]
        handles = [
            (task, self.pool.apply_async(task[3], task[4])) for task in tasks
        ]
        return [self._collect(task, handle) for task, handle in handles]

    def _collect(self, task, handle):
        site, device, _rnd, fn, args = task
        attempt = 0
        while True:
            try:
                return self._wait(handle, site, device)
            except FaultError as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise FaultError(
                        "retries-exhausted",
                        f"{site} task on device {device}: {exc}",
                    ) from exc
                self.retries += 1
                self._backoff(attempt)
                handle = self.pool.apply_async(fn, args)

    def _wait(self, handle, site: str, device: int | None):
        """Heartbeat-poll one async result against the task deadline."""
        deadline = clock.monotonic() + self.task_timeout_s
        while not handle.ready():
            if clock.monotonic() >= deadline:
                raise FaultError(
                    "task-timeout",
                    f"{site} task on device {device} missed its "
                    f"{self.task_timeout_s:g}s deadline",
                )
            clock.sleep(self.heartbeat_s)
        try:
            return handle.get()
        except FaultError:
            raise
        except Exception as exc:  # noqa: BLE001 - pool relays arbitrary worker errors
            raise FaultError(
                "worker-fault",
                f"{site} worker on device {device} died: {exc!r}",
            ) from exc

    # -- device-loss recovery ---------------------------------------------------

    def _on_device_loss(self, exc: DeviceLostError) -> None:
        device = exc.device
        if not self.recover:
            raise DeviceLostError(
                device,
                detail=f"{exc} — recovery disabled",
                lost=tuple(self.lost) + (device,),
            ) from exc
        if device not in self.lost:
            self.lost.append(device)
        if len(set(self.lost)) >= self.n_devices:
            raise FaultError(
                "pool-exhausted",
                f"all {self.n_devices} devices lost; nothing to regraft "
                f"onto",
            ) from exc
        self._recover(device)

    def _recover(self, device: int) -> None:
        """Regraft + replay: re-plan the survivors (verified) and re-run
        the lost slab's lineage on the scratch maps."""
        # lazy import: spawn workers re-import this module, and the
        # recovery planner pulls in the sim/placement stack
        from repro.dist.recovery import plan_recovery

        plan = plan_recovery(
            m=self.m, n=self.n, tree=self.tree, lost=set(self.lost),
            config=self.config,
        ).check()
        self.remap = dict(plan.remap)
        self.replacements_verified += sum(1 for r in plan.reports if r.ok)

        # lineage replay, coordinator-side: identical float64 ops in
        # identical order restore the slab bitwise. The slab is zeroed
        # first so the test suite can prove the replay (not stale state)
        # produced the bits.
        r0, r1 = self.slabs[device]
        q = np.memmap(
            os.path.join(self.scratch, "q.dat"), dtype=np.float64,
            mode="r+", shape=(self.m, self.n),
        )
        q[r0:r1] = 0.0
        q.flush()
        del q
        _leaf_qr(self.scratch, self.m, self.n, r0, r1)
        for factor in self.applied[device]:
            _apply_factor(self.scratch, self.m, self.n, r0, r1, factor)
        self.recoveries += 1

    # -- reporting --------------------------------------------------------------

    def report(self) -> FaultReport | None:
        if self.injector is None:
            return None
        plan = self.injector.plan
        return FaultReport(
            plan_seed=plan.seed if plan is not None else None,
            events=self.injector.events,
            retries=self.retries,
            recoveries=self.recoveries,
            devices_lost=tuple(dict.fromkeys(self.lost)),
            replacements_verified=self.replacements_verified,
            details={"remap": dict(self.remap)} if self.remap else {},
        )


@dataclass
class DistNumericResult:
    """Factors plus the measured communication of one sharded QR."""

    q: np.ndarray
    r: np.ndarray
    n_devices: int
    tree: ReductionTree
    #: Measured words (packed triangles up, b-by-b factors down).
    comm: TreeCommReport
    #: Worker processes used (0 = inline execution).
    processes: int
    #: Fault-plane provenance; ``None`` when no injector was active.
    faults: FaultReport | None = None


def dist_qr_numeric(
    a: np.ndarray,
    *,
    n_devices: int,
    tree: str = "binomial",
    processes: int | None = None,
    faults=None,
    recover: bool = True,
    max_retries: int = 2,
    backoff_base_s: float = 0.02,
    backoff_max_s: float = 0.25,
    task_timeout_s: float = 60.0,
    heartbeat_s: float = 0.01,
    scratch_dir: str | None = None,
    config=None,
) -> DistNumericResult:
    """Sharded TSQR of *a* across *n_devices* row slabs.

    Parameters
    ----------
    a
        Tall matrix (m >= n); not modified. Computation is float64,
        exactly like :func:`repro.qr.tsqr.tsqr`.
    n_devices
        Pool size; each device owns one row slab
        (:func:`~repro.dist.shard.slab_offsets`), and ``ceil(m / P)``
        must be at least ``n``.
    tree
        ``"binomial"`` (pairwise rounds; bitwise-matches ``tsqr``) or
        ``"flat"`` (all R factors stacked into one QR at the root).
    processes
        Worker process count (capped at *n_devices*); default
        ``min(n_devices, cpu_count)``. 0 runs the same tasks inline.
    faults
        A :class:`~repro.faults.plan.FaultPlan` (or a live
        :class:`~repro.faults.inject.FaultInjector`, as the serve layer
        passes so retries share burnt specs). ``None`` or a disabled
        plan skips every guard — bitwise-identical to the fault-free
        build.
    recover
        Whether ``device_loss`` triggers lineage recovery. ``False``
        surfaces the loss as :class:`~repro.errors.DeviceLostError`
        (the chaos-smoke negative control).
    max_retries
        Transient-fault retry budget per guarded step (exponential
        backoff from *backoff_base_s*, capped at *backoff_max_s*).
    task_timeout_s / heartbeat_s
        Worker watchdog: async task results are polled every
        *heartbeat_s* and declared hung after *task_timeout_s*.
    scratch_dir
        Parent directory for the run's scratch files (default: the
        system temp dir). The scratch subdirectory is always removed —
        loudly, not best-effort — on every exit path.
    config
        :class:`~repro.config.SystemConfig` for recovery re-planning
        and verification (default: the paper system).
    """
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] < a.shape[1] or a.shape[1] < 1:
        raise ShapeError(f"dist_qr_numeric needs a tall 2D matrix, got {a.shape}")
    m, n = a.shape
    n_devices = positive_int(n_devices, "n_devices")
    slabs = slab_offsets(m, n, n_devices)
    if len(slabs) != n_devices:
        raise ValidationError(
            f"{m}x{n} splits into {len(slabs)} slabs of >= {n} rows; cannot "
            f"occupy {n_devices} devices (need ceil(m / P) >= n)"
        )
    tree_obj = build_tree(tree, n_devices)
    if processes is None:
        processes = min(n_devices, os.cpu_count() or 1)
    if processes < 0:
        raise ValidationError(f"processes must be >= 0, got {processes}")
    processes = min(processes, n_devices)
    injector = as_injector(faults)

    if scratch_dir is not None:
        os.makedirs(scratch_dir, exist_ok=True)
    scratch = tempfile.mkdtemp(prefix="repro-dist-", dir=scratch_dir)
    try:
        staged = np.memmap(
            os.path.join(scratch, "a.dat"), dtype=np.float64, mode="w+",
            shape=(m, n),
        )
        staged[:] = a.astype(np.float64, copy=False)
        staged.flush()
        del staged
        np.memmap(
            os.path.join(scratch, "q.dat"), dtype=np.float64, mode="w+",
            shape=(m, n),
        ).flush()

        if processes:
            ctx = get_context("spawn")
            pool_cm = ctx.Pool(processes)
        else:
            pool_cm = _InlinePool()
        with pool_cm as pool:
            run = _FaultTolerantRun(
                pool,
                injector,
                inline=not processes,
                n_devices=n_devices,
                tree=tree_obj,
                m=m,
                n=n,
                slabs=slabs,
                scratch=scratch,
                recover=recover,
                max_retries=max_retries,
                backoff_base_s=backoff_base_s,
                backoff_max_s=backoff_max_s,
                task_timeout_s=task_timeout_s,
                heartbeat_s=heartbeat_s,
                config=config,
            )
            rs = {
                d: r
                for d, r in enumerate(
                    run.run_batch(
                        [
                            ("leaf", d, None, _leaf_qr, (scratch, m, n, r0, r1))
                            for d, (r0, r1) in enumerate(slabs)
                        ]
                    )
                )
            }
            up_sent = [0] * n_devices
            up_recv = [0] * n_devices
            down_recv = [0] * n_devices
            tri = np.triu_indices(n)

            if tree_obj.kind == "flat" and n_devices > 1:
                # every leaf sends its packed R to the root, which
                # factors the whole stack at once
                for src in range(1, n_devices):
                    run.guard("transfer-up", device=src, round_index=0)
                    words = int(rs[src][tri].size)
                    up_sent[src] += words
                    up_recv[0] += words
                run.guard("merge", device=0, round_index=0)
                stacked = np.vstack([rs[d] for d in range(n_devices)])
                q_all, r_final = np.linalg.qr(stacked)
                factors = [
                    (d, np.ascontiguousarray(q_all[d * n : (d + 1) * n]))
                    for d in range(n_devices)
                ]
                for d, factor in factors:
                    run.guard("transfer-down", device=d, round_index=0)
                    down_recv[d] += int(factor.size)
                run.run_batch(
                    [
                        ("pushdown", d, 0, _apply_factor,
                         (scratch, m, n, slabs[d][0], slabs[d][1], factor))
                        for d, factor in factors
                    ]
                )
                for d, factor in factors:
                    run.applied[d].append(factor)
            else:
                for k, (merges, groups) in enumerate(
                    zip(tree_obj.rounds, tree_obj.group_schedule())
                ):
                    applies = []
                    for dst, src in merges:
                        run.guard("transfer-up", device=src, round_index=k)
                        words = int(rs[src][tri].size)
                        up_sent[src] += words
                        up_recv[dst] += words
                        run.guard("merge", device=dst, round_index=k)
                        stacked = np.vstack([rs[dst], rs.pop(src)])
                        q_pair, r_pair = np.linalg.qr(stacked)
                        rs[dst] = r_pair
                        top = np.ascontiguousarray(q_pair[:n])
                        bot = np.ascontiguousarray(q_pair[n:])
                        for member in groups[dst]:
                            run.guard(
                                "transfer-down", device=member, round_index=k
                            )
                            down_recv[member] += int(top.size)
                            applies.append((member, top))
                        for member in groups[src]:
                            run.guard(
                                "transfer-down", device=member, round_index=k
                            )
                            down_recv[member] += int(bot.size)
                            applies.append((member, bot))
                    # round barrier: factors of round k land before k+1
                    run.run_batch(
                        [
                            ("pushdown", d, k, _apply_factor,
                             (scratch, m, n, slabs[d][0], slabs[d][1], f))
                            for d, f in applies
                        ]
                    )
                    for d, f in applies:
                        run.applied[d].append(f)
                (r_final,) = rs.values()

            signs = np.sign(np.diag(r_final))
            signs[signs == 0] = 1.0
            run.run_batch(
                [
                    ("scale", d, None, _scale_columns,
                     (scratch, m, n, r0, r1, signs))
                    for d, (r0, r1) in enumerate(slabs)
                ]
            )
        q = np.array(
            np.memmap(
                os.path.join(scratch, "q.dat"), dtype=np.float64, mode="r",
                shape=(m, n),
            )
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
        if os.path.isdir(scratch):
            # best-effort pass left debris behind: fail loudly rather
            # than leak scratch files across runs (docs/robustness.md)
            shutil.rmtree(scratch)

    comm = TreeCommReport(
        kind=tree_obj.kind,
        n_devices=n_devices,
        b=n,
        up_sent_words=tuple(up_sent),
        up_recv_words=tuple(up_recv),
        down_recv_words=tuple(down_recv),
        lower_bound_words=caqr_lower_bound_words(n, n_devices),
    )
    return DistNumericResult(
        q=q,
        r=np.triu(r_final * signs[:, None]),
        n_devices=n_devices,
        tree=tree_obj,
        comm=comm,
        processes=processes,
        faults=run.report(),
    )


__all__ = ["DistNumericResult", "dist_qr_numeric"]
