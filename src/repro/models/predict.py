"""Coarse analytic end-to-end predictor (roofline-style).

Independent of the event simulator: walks the phase structure of each OOC
QR variant and charges, per phase, ``max(compute_time, transfer_time)``
(perfect overlap within a phase) — plus the panel factorizations, which
overlap nothing in either algorithm. It deliberately ignores pipeline
warm-up/drain and buffer-recycling stalls, so it is a *lower bound* the
simulator should stay within ~25% of (tested), and it is cheap enough to
sweep across hardware specs for the §6 projections (A100, RTX 30-series).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.errors import ValidationError
from repro.hw.transfer import Direction
from repro.util.validation import check_divisible, positive_int


@dataclass(frozen=True)
class PhaseEstimate:
    """Predicted cost of one phase (one GEMM or one panel batch)."""

    name: str
    compute_s: float
    h2d_s: float
    d2h_s: float

    @property
    def span_s(self) -> float:
        """Phase time under perfect intra-phase overlap."""
        return max(self.compute_s, self.h2d_s, self.d2h_s)


@dataclass(frozen=True)
class QrPrediction:
    """Analytic prediction for one OOC QR configuration."""

    method: str
    m: int
    n: int
    b: int
    phases: tuple[PhaseEstimate, ...]

    @property
    def total_s(self) -> float:
        return sum(p.span_s for p in self.phases)

    @property
    def compute_s(self) -> float:
        return sum(p.compute_s for p in self.phases)

    @property
    def transfer_s(self) -> float:
        return sum(p.h2d_s + p.d2h_s for p in self.phases)

    def achieved_tflops(self, total_flops: float) -> float:
        return total_flops / self.total_s / 1e12 if self.total_s else 0.0


def _gemm_time(config: SystemConfig, m: int, n: int, k: int, chunk: int) -> float:
    """Compute time of an OOC GEMM executed as ceil(k / chunk) chunks."""
    gm = config.gemm
    chunk = min(chunk, k)
    n_chunks, rem = divmod(k, chunk)
    t = n_chunks * gm.time(m, n, chunk, config.precision)
    if rem:
        t += gm.time(m, n, rem, config.precision)
    return t


def _move(config: SystemConfig, elements: float, direction: Direction) -> float:
    return config.transfer.time(int(elements * config.element_bytes), direction)


def predict_recursive(
    config: SystemConfig, m: int, n: int, b: int
) -> QrPrediction:
    """Predict the recursive OOC QR (§3.1.3) phase by phase.

    Recursion levels are aggregated: level j (j = 0 is the widest split)
    has 2^j inner+outer updates of half-width n / 2^(j+1); leaves are the
    k = n/b panel factorizations.
    """
    m, n, b = positive_int(m, "m"), positive_int(n, "n"), positive_int(b, "b")
    check_divisible(n, b, "n")
    k = n // b
    phases: list[PhaseEstimate] = []

    panel = config.panel
    phases.append(
        PhaseEstimate(
            name="panels",
            compute_s=k * panel.time(m, b),
            h2d_s=_move(config, m * n, Direction.H2D),
            d2h_s=_move(config, m * n + n * b, Direction.D2H),
        )
    )

    width = n // 2
    level = 0
    while width >= b:
        count = n // (2 * width)  # updates at this level
        # inner: C(width, width) = AᵀB with K = m, streamed in m-chunks
        inner_compute = count * _gemm_time(config, width, width, m, b)
        inner_h2d = count * _move(config, 2 * m * width, Direction.H2D)
        inner_d2h = count * _move(config, width * width, Direction.D2H)
        # outer: C(m, width) -= A(m, width) B(width, width), row-streamed
        outer_compute = count * _gemm_time(config, m, width, width, max(1, b // 2))
        outer_h2d = count * _move(config, 2 * m * width, Direction.H2D)
        outer_d2h = count * _move(config, m * width, Direction.D2H)
        phases.append(
            PhaseEstimate(
                name=f"level-{level}-inner",
                compute_s=inner_compute,
                h2d_s=inner_h2d,
                d2h_s=inner_d2h,
            )
        )
        phases.append(
            PhaseEstimate(
                name=f"level-{level}-outer",
                compute_s=outer_compute,
                h2d_s=outer_h2d,
                d2h_s=outer_d2h,
            )
        )
        width //= 2
        level += 1

    return QrPrediction("recursive", m, n, b, tuple(phases))


def predict_blocking(
    config: SystemConfig, m: int, n: int, b: int
) -> QrPrediction:
    """Predict the blocking OOC QR (§3.1.2) iteration by iteration."""
    m, n, b = positive_int(m, "m"), positive_int(n, "n"), positive_int(b, "b")
    check_divisible(n, b, "n")
    k = n // b
    phases: list[PhaseEstimate] = []

    panel = config.panel
    phases.append(
        PhaseEstimate(
            name="panels",
            compute_s=k * panel.time(m, b),
            h2d_s=_move(config, m * n, Direction.H2D),
            d2h_s=_move(config, m * n + n * b, Direction.D2H),
        )
    )

    for i in range(1, k):
        rest = n - i * b
        # inner: C(b, rest) = Q1ᵀ A_rest, B streamed in b-wide blocks;
        # chunk GEMM is (b, b, m) — the reduction-shaped slow case
        inner_compute = _gemm_time_cols(config, b, rest, m, b)
        inner_h2d = _move(config, m * rest, Direction.H2D)
        inner_d2h = _move(config, b * rest, Direction.D2H)
        # outer: C(m, rest) -= Q1 R12, C tiles streamed (b x b)
        outer_compute = _gemm_time_tiles(config, m, rest, b, b)
        outer_h2d = _move(config, m * rest, Direction.H2D)
        outer_d2h = _move(config, m * rest, Direction.D2H)
        phases.append(
            PhaseEstimate(
                name=f"iter-{i}-inner", compute_s=inner_compute,
                h2d_s=inner_h2d, d2h_s=inner_d2h,
            )
        )
        phases.append(
            PhaseEstimate(
                name=f"iter-{i}-outer", compute_s=outer_compute,
                h2d_s=outer_h2d, d2h_s=outer_d2h,
            )
        )

    return QrPrediction("blocking", m, n, b, tuple(phases))


def _gemm_time_cols(
    config: SystemConfig, m: int, n: int, k: int, chunk: int
) -> float:
    """GEMM executed as column blocks: ceil(n / chunk) calls of (m, chunk, k)."""
    gm = config.gemm
    chunk = min(chunk, n)
    n_chunks, rem = divmod(n, chunk)
    t = n_chunks * gm.time(m, chunk, k, config.precision)
    if rem:
        t += gm.time(m, rem, k, config.precision)
    return t


def _gemm_time_tiles(
    config: SystemConfig, m: int, n: int, k: int, tile: int
) -> float:
    """GEMM executed as (tile x tile x k) output tiles."""
    gm = config.gemm
    t1, t2 = min(tile, m), min(tile, n)
    full = gm.time(t1, t2, k, config.precision)
    rows, rrem = divmod(m, t1)
    cols, crem = divmod(n, t2)
    t = rows * cols * full
    if rrem:
        t += cols * gm.time(rrem, t2, k, config.precision)
    if crem:
        t += rows * gm.time(t1, crem, k, config.precision)
    if rrem and crem:
        t += gm.time(rrem, crem, k, config.precision)
    return t


def predict(
    config: SystemConfig, m: int, n: int, b: int, method: str
) -> QrPrediction:
    """Dispatch on *method* ("recursive" or "blocking")."""
    if method == "recursive":
        return predict_recursive(config, m, n, b)
    if method == "blocking":
        return predict_blocking(config, m, n, b)
    raise ValidationError(f"unknown method {method!r}")


def predicted_speedup(config: SystemConfig, m: int, n: int, b: int) -> float:
    """Predicted blocking / recursive time ratio (> 1: recursion wins)."""
    return (
        predict_blocking(config, m, n, b).total_s
        / predict_recursive(config, m, n, b).total_s
    )
