"""Closed-form data-movement models of §3.2.

The paper derives, for an m-by-n matrix factorized with panel width b
(k = n / b panels), the worst-case (no-reuse) transfer volumes in *words*:

Blocking (summing its per-iteration traffic over k iterations):

    H2D:  sum_i [3mb + (2m + b)(n - ib)] = (k + 2) m n + n^2/2 - n b/2
    D2H:  sum_i [mb + b^2 + (m + b)(n - ib)] = ((k + 1) m n + n^2 + n b) / 2

Recursive (log2 k levels of GEMMs + the leaf factorizations):

    H2D:  2 (log2 k + 1) m n + m n / 2 - n b / 2
    D2H:  (log2 k) m n / 2 + n^2 / 2

(The paper's recursive H2D formula prints "mn/2 − nb/2" where its own
derivation gives the leaf-level term; we implement the formulas exactly as
printed, plus independently-derived reference counts — see
:func:`blocking_h2d_exact` etc. — that agree with the printed closed forms
for the blocking case and are hypothesis-tested against brute-force
summation.)

The headline: blocking traffic grows *linearly* in k, recursive only
*logarithmically* — so the recursive advantage widens as device memory
shrinks (larger k).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.util.validation import check_divisible, positive_int


def _check(m: int, n: int, b: int) -> tuple[int, int, int, int]:
    m = positive_int(m, "m")
    n = positive_int(n, "n")
    b = positive_int(b, "b")
    check_divisible(n, b, "n")
    k = n // b
    return m, n, b, k


# -- the paper's printed closed forms (words) ---------------------------------


def blocking_h2d_words(m: int, n: int, b: int) -> float:
    """Paper §3.2.1 host-to-device volume of blocking OOC QR (words)."""
    m, n, b, k = _check(m, n, b)
    return (k + 2) * m * n + n * n / 2 - n * b / 2


def blocking_d2h_words(m: int, n: int, b: int) -> float:
    """Paper §3.2.1 device-to-host volume of blocking OOC QR (words)."""
    m, n, b, k = _check(m, n, b)
    return ((k + 1) * m * n + n * n + n * b) / 2


def recursive_h2d_words(m: int, n: int, b: int) -> float:
    """Paper §3.2.2 host-to-device volume of recursive OOC QR (words),
    exactly as printed."""
    m, n, b, k = _check(m, n, b)
    return 2 * (math.log2(k) + 1) * m * n + m * n / 2 - n * b / 2


def recursive_d2h_words(m: int, n: int, b: int) -> float:
    """Paper §3.2.2 device-to-host volume of recursive OOC QR (words)."""
    m, n, b, k = _check(m, n, b)
    return math.log2(k) * m * n / 2 + n * n / 2


# -- independently derived exact sums (words) ----------------------------------
#
# These re-derive the per-iteration costs the paper sums, term by term, so
# tests can verify the printed closed forms against brute force and so the
# engines' measured counters have a reference with explicit assumptions.


def blocking_h2d_exact(m: int, n: int, b: int) -> int:
    """Brute-force sum of the paper's §3.2.1 per-iteration H2D terms.

    Iteration i in 1..k moves (words, no reuse):
      mb  (panel in)  +  mb (Q1 for inner)  +  m(n - ib) (A_rest for inner)
      + mb (Q1 for outer) + b(n - ib) (R12 for outer) + m(n - ib) (A_rest
      for outer).
    """
    m, n, b, k = _check(m, n, b)
    total = 0
    for i in range(1, k + 1):
        rest = n - i * b
        total += 3 * m * b + (2 * m + b) * rest
    return total


def blocking_d2h_exact(m: int, n: int, b: int) -> int:
    """Brute-force sum of the paper's §3.2.1 per-iteration D2H terms:
    mb (Q1 out) + b^2 (R11) + b(n - ib) (R12) + m(n - ib) (updated rest)."""
    m, n, b, k = _check(m, n, b)
    total = 0
    for i in range(1, k + 1):
        rest = n - i * b
        total += m * b + b * b + (m + b) * rest
    return total


def recursive_h2d_exact(m: int, n: int, b: int) -> int:
    """Recursion-tree H2D count matching the paper's §3.2.2 accounting.

    The deepest level moves the k leaf panels in (mn words total); each of
    the log2 k GEMM levels moves Q1, A2 and R12 in: at level j (counting
    the widest split as j = log2 k - 1 downward) there are 2^i updates of
    half-width n / 2^(i+1), costing 2mn + (level R12 words) overall —
    the paper writes the level cost as 2mn + 2^(i-1) b^2 summed over
    levels.
    """
    m, n, b, k = _check(m, n, b)
    if k & (k - 1):
        raise ValidationError("recursive model requires k = n/b to be a power of two")
    total = m * n  # leaf panel move-ins
    levels = int(math.log2(k))
    for i in range(1, levels + 1):
        total += 2 * m * n + (2 ** (i - 1)) * b * b
    return total


def recursive_d2h_exact(m: int, n: int, b: int) -> int:
    """Recursion-tree D2H count: every level writes its R12 blocks
    (mn/2 per level in the paper's estimate... exactly: each level's
    updated A2 stays counted on the H2D side; what returns is Q leaves
    (mn), R12 blocks (n^2/2 total over levels) and updated halves."""
    m, n, b, k = _check(m, n, b)
    if k & (k - 1):
        raise ValidationError("recursive model requires k = n/b to be a power of two")
    levels = int(math.log2(k))
    return levels * m * n // 2 + n * n // 2


@dataclass(frozen=True)
class MovementComparison:
    """Blocking-vs-recursive predicted volumes for one problem."""

    m: int
    n: int
    b: int
    blocking_h2d: float
    blocking_d2h: float
    recursive_h2d: float
    recursive_d2h: float

    @property
    def k(self) -> int:
        return self.n // self.b

    @property
    def h2d_ratio(self) -> float:
        """Blocking / recursive H2D volume (> 1 means recursion moves less)."""
        return self.blocking_h2d / self.recursive_h2d

    @property
    def total_ratio(self) -> float:
        return (self.blocking_h2d + self.blocking_d2h) / (
            self.recursive_h2d + self.recursive_d2h
        )


def compare_movement(m: int, n: int, b: int) -> MovementComparison:
    """Evaluate the paper's four §3.2 closed forms for one problem."""
    return MovementComparison(
        m=m,
        n=n,
        b=b,
        blocking_h2d=blocking_h2d_words(m, n, b),
        blocking_d2h=blocking_d2h_words(m, n, b),
        recursive_h2d=recursive_h2d_words(m, n, b),
        recursive_d2h=recursive_d2h_words(m, n, b),
    )
