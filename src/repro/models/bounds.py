"""Communication lower bound (Ballard-Demmel-Holtz-Schwartz).

The paper's introduction frames everything with the result that any
matrix-multiplication-like computation must move

    Omega( #flops / sqrt(M) )

words between fast memory of size M words and slow memory [3]. This module
evaluates that bound so measured OOC traffic can be placed against it.
"""

from __future__ import annotations

import math

from repro.config import SystemConfig
from repro.util.validation import positive_float, positive_int


def communication_lower_bound_words(flops: float, fast_memory_words: int) -> float:
    """Ω(#flops / sqrt(M)) in words (constant factor 1)."""
    flops = positive_float(flops, "flops")
    fast_memory_words = positive_int(fast_memory_words, "fast_memory_words")
    return flops / math.sqrt(fast_memory_words)


def qr_flops_total(m: int, n: int) -> float:
    """Flops of a full QR factorization, ``2 m n^2 - 2 n^3 / 3``."""
    m, n = positive_int(m, "m"), positive_int(n, "n")
    return 2.0 * m * n * n - 2.0 * n**3 / 3.0


def qr_lower_bound_bytes(config: SystemConfig, m: int, n: int) -> float:
    """The [3] lower bound for one OOC QR on *config*'s device, in bytes."""
    words = communication_lower_bound_words(
        qr_flops_total(m, n),
        config.usable_device_bytes // config.element_bytes,
    )
    return words * config.element_bytes


def movement_optimality_ratio(
    config: SystemConfig, m: int, n: int, measured_bytes: int
) -> float:
    """Measured traffic over the lower bound (1.0 = communication-optimal;
    the constant hidden in Omega means a small ratio, not exactly 1, is
    the practical optimum)."""
    return measured_bytes / qr_lower_bound_bytes(config, m, n)
