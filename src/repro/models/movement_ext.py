"""§3.2-style data-movement closed forms for the LU/Cholesky extensions.

The paper derives worst-case (no-reuse) transfer volumes only for QR; the
same accounting applied to the §6 factorizations gives the analogous
linear-vs-logarithmic story. Counting words, for an n-by-n matrix with
panel width b and k = n/b panels:

Blocking LU, iteration i (trailing t = n - ib, panel height h = n-(i-1)b):
    H2D: panel in (h b) + A12 in for TRSM (b t) + L21+U12 in for the
         update would be resident -> only C tiles (h-b) t move in
    D2H: packed panel out (h b) + U12 out (b t) + updated trailing
         ((h - b) t)
Summing i = 1..k gives Θ(k n^2 / 3)-class totals (derived term by term in
:func:`blocking_lu_h2d_exact`).

Recursive LU level j (0 = widest, width w = n/2^(j+1), 2^j updates):
    each update moves the TRSM triangle strips (w^2/2), A12/B once, and
    the trailing rows of L21/C once -> Θ(log k) passes over the matrix.

Cholesky halves everything again (only the lower trapezoid moves).

These are implemented as explicit per-iteration sums (no closed-form
polishing — the point is the growth law), and the S8-adjacent tests check
the engines' measured counters stay at or below them while preserving the
blocking/recursive gap.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.util.validation import check_divisible, positive_int


def _check(n: int, b: int) -> tuple[int, int, int]:
    n = positive_int(n, "n")
    b = positive_int(b, "b")
    check_divisible(n, b, "n")
    return n, b, n // b


def blocking_lu_h2d_exact(n: int, b: int) -> int:
    """Worst-case H2D words of blocking OOC LU on an n-by-n matrix."""
    n, b, k = _check(n, b)
    total = 0
    for i in range(1, k + 1):
        h = n - (i - 1) * b          # panel height
        t = n - i * b                # trailing width
        total += h * b               # panel in
        total += b * t               # A12 in (TRSM rhs)
        total += (n - i * b) * t     # trailing C tiles in
    return total


def blocking_lu_d2h_exact(n: int, b: int) -> int:
    """Worst-case D2H words of blocking OOC LU."""
    n, b, k = _check(n, b)
    total = 0
    for i in range(1, k + 1):
        h = n - (i - 1) * b
        t = n - i * b
        total += h * b               # packed panel out
        total += b * t               # U12 out
        total += (n - i * b) * t     # updated trailing out
    return total


def recursive_lu_h2d_exact(n: int, b: int) -> int:
    """Worst-case H2D words of recursive OOC LU (k a power of two)."""
    n, b, k = _check(n, b)
    if k & (k - 1):
        raise ValidationError("recursive model requires k = n/b to be a power of two")
    total = n * n                    # leaf panel move-ins (packed trapezoids)
    levels = int(math.log2(k))
    for j in range(levels):
        w = n // (2 ** (j + 1))      # half-width at this level
        count = 2 ** j
        # per update: TRSM triangle strips (w^2/2) + A12 (w*w) +
        # L21 rows (rows below mid: <= n*w) + C rows (n*w)
        total += count * (w * w // 2 + w * w + 2 * n * w)
    return total


def recursive_lu_d2h_exact(n: int, b: int) -> int:
    """Worst-case D2H words of recursive OOC LU."""
    n, b, k = _check(n, b)
    if k & (k - 1):
        raise ValidationError("recursive model requires k = n/b to be a power of two")
    total = n * n                    # leaf panels out
    levels = int(math.log2(k))
    for j in range(levels):
        w = n // (2 ** (j + 1))
        count = 2 ** j
        total += count * (w * w + n * w)   # U12 out + updated C rows out
    return total


def blocking_cholesky_h2d_exact(n: int, b: int) -> int:
    """Worst-case H2D words of blocking OOC Cholesky (full-rectangle
    trailing updates, as implemented)."""
    n, b, k = _check(n, b)
    total = 0
    for i in range(1, k + 1):
        h = n - (i - 1) * b
        t = n - i * b
        total += h * b               # panel in (lower trapezoid columns)
        total += t * t               # trailing square in
    return total


def recursive_cholesky_h2d_exact(n: int, b: int) -> int:
    """Worst-case H2D words of recursive OOC Cholesky."""
    n, b, k = _check(n, b)
    if k & (k - 1):
        raise ValidationError("recursive model requires k = n/b to be a power of two")
    total = 0
    # leaves: panel i spans rows col0..n -> sum of trapezoids = ~n^2/2 + nb/2
    for col0 in range(0, n, b):
        total += (n - col0) * b
    levels = int(math.log2(k))
    for j in range(levels):
        w = n // (2 ** (j + 1))
        count = 2 ** j
        # per update: L21 rows (<= n*w) + L21 top rows (w*w) + C (<= n*w)
        total += count * (2 * n * w + w * w)
    return total


def lu_movement_ratio(n: int, b: int) -> float:
    """Blocking / recursive H2D ratio for LU (> 1: recursion moves less)."""
    return blocking_lu_h2d_exact(n, b) / recursive_lu_h2d_exact(n, b)


def cholesky_movement_ratio(n: int, b: int) -> float:
    """Blocking / recursive H2D ratio for Cholesky."""
    return blocking_cholesky_h2d_exact(n, b) / recursive_cholesky_h2d_exact(n, b)
