"""Overlap-ratio analysis of §3.3: when can PCIe traffic hide under GEMMs?

For an OOC GEMM streaming tiles through the PCIe link at R_m bytes/s while
TensorCore computes at R_g flops/s, the transfer of a tile hides under the
computation it feeds iff the tile's arithmetic intensity beats R_g / R_m.
The paper works this out for each tiling:

* recursive inner product (Fig 3):  hidden iff  m > 4 R_g / R_m
  (with 4-byte words; ~30,000 on the V100 — "usually the case for
  problems that require out-of-core computation");
* blocking inner product (Fig 4):   hidden iff  m > 2 R_g / R_m  (~15,000)
  — but m *is the panel width b*, pinned small by device memory;
* recursive outer product (Fig 5):  hidden iff  n > 4 R_g / R_m;
* blocking outer product (Fig 6):   hidden iff  k > 2 R_g / R_m
  — and k is again the panel width.

These inequalities are evaluated here symbolically (so tests can check the
30k / 15k crossovers) and the generic :func:`overlap_threshold` exposes the
machine balance point for any GPU spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import GpuSpec
from repro.util.validation import positive_int


def machine_balance(spec: GpuSpec, element_bytes: int = 4) -> float:
    """R_g / R_m in flops per *element* moved H2D (the paper's unit)."""
    return spec.tc_peak_flops * element_bytes / spec.h2d_bytes_per_s


def overlap_threshold(
    spec: GpuSpec, *, streams_both_operands: bool = True, element_bytes: int = 4
) -> float:
    """The minimum "large dimension" for transfers to hide under compute.

    ``streams_both_operands=True`` is the recursive case (two tiles move
    per chunk → the paper's ``m > 4 R_g / R_m`` with 4-byte words);
    ``False`` is the blocking case (one tile moves → ``m > 2 R_g / R_m``).
    """
    n_tiles = 2 if streams_both_operands else 1
    return _threshold(spec, n_tiles, element_bytes)


@dataclass(frozen=True)
class OverlapCase:
    """One §3.3 tiling analyzed on one GPU."""

    name: str
    #: the dimension that must exceed the threshold, and its value
    dimension: str
    value: int
    threshold: float

    @property
    def overlapped(self) -> bool:
        """Whether transfers hide under compute for this case."""
        return self.value > self.threshold


def _threshold(spec: GpuSpec, n_tiles: int, element_bytes: int) -> float:
    # Moving n_tiles tiles of d*L elements costs
    #   n_tiles * d * L * element_bytes / R_m  seconds
    # while the 2 * d * L * D flops of the chunk GEMM cost 2 d L D / R_g,
    # so transfers hide iff the large dimension D exceeds
    #   n_tiles * element_bytes * R_g / (2 R_m).
    # With 4-byte words this is the paper's 4 R_g / R_m (two tiles) and
    # 2 R_g / R_m (one tile).
    return n_tiles * element_bytes * spec.tc_peak_flops / (
        2.0 * spec.h2d_bytes_per_s
    )


def recursive_inner_overlap(
    spec: GpuSpec, m: int, element_bytes: int = 4
) -> OverlapCase:
    """Fig 3: chunk moves 4(m+n)k' bytes for 2 m n k' flops (m = n);
    hidden iff m > 4 R_g / R_m (paper's inequality)."""
    return OverlapCase(
        name="recursive-inner",
        dimension="m",
        value=positive_int(m, "m"),
        threshold=_threshold(spec, 2, element_bytes),
    )


def blocking_inner_overlap(
    spec: GpuSpec, m: int, element_bytes: int = 4
) -> OverlapCase:
    """Fig 4: only B blocks move; hidden iff m > 2 R_g / R_m — but in
    blocking QR, m is the panel width."""
    return OverlapCase(
        name="blocking-inner",
        dimension="m",
        value=positive_int(m, "m"),
        threshold=_threshold(spec, 1, element_bytes),
    )


def recursive_outer_overlap(
    spec: GpuSpec, n: int, element_bytes: int = 4
) -> OverlapCase:
    """Fig 5: A and C row-blocks move; hidden iff n > 4 R_g / R_m."""
    return OverlapCase(
        name="recursive-outer",
        dimension="n",
        value=positive_int(n, "n"),
        threshold=_threshold(spec, 2, element_bytes),
    )


def blocking_outer_overlap(
    spec: GpuSpec, k: int, element_bytes: int = 4
) -> OverlapCase:
    """Fig 6: C tiles move (in and out); hidden iff k > 2 R_g / R_m —
    and k is the panel width again."""
    return OverlapCase(
        name="blocking-outer",
        dimension="k",
        value=positive_int(k, "k"),
        threshold=_threshold(spec, 1, element_bytes),
    )


def all_cases(
    spec: GpuSpec, *, qr_blocksize: int, matrix_n: int, element_bytes: int = 4
) -> list[OverlapCase]:
    """The four §3.3 cases for one QR configuration: the recursive cases
    use the top-level GEMM dimension (n/2), the blocking ones the panel
    width."""
    half = max(1, matrix_n // 2)
    return [
        recursive_inner_overlap(spec, half, element_bytes),
        blocking_inner_overlap(spec, qr_blocksize, element_bytes),
        recursive_outer_overlap(spec, half, element_bytes),
        blocking_outer_overlap(spec, qr_blocksize, element_bytes),
    ]
