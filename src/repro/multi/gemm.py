"""Multi-GPU out-of-core GEMM (the §2.2 cuBLASXt / BLASX territory).

The paper's related work targets multi-GPU OOC BLAS3: tile the output
across devices, stream operand tiles to each. This module simulates that
for the two GEMM types of the QR pipeline:

* the output C is split into **column panels**, one set per GPU;
* each GPU runs the single-device engine (k-split inner or row-streaming
  outer) independently on its panels — embarrassingly parallel in compute;
* the host side is NOT free: with `shared_link=True`, all GPUs share the
  host's total PCIe/memory bandwidth (the realistic PCIe-switch / host-DRAM
  bottleneck BLASX optimizes around), modelled by derating each device's
  link by the number of active GPUs.

The result is the classic scaling story: compute-bound OOC GEMMs scale
nearly linearly until the aggregate transfer demand saturates the host,
after which extra GPUs only add traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SystemConfig
from repro.errors import ValidationError
from repro.execution.sim import SimExecutor
from repro.host.tiled import HostMatrix
from repro.ooc.inner import run_ksplit_inner
from repro.ooc.outer import run_rowstream_outer
from repro.ooc.plan import plan_ksplit_inner, plan_rowstream_outer, split_even
from repro.util.validation import one_of, positive_int


@dataclass(frozen=True)
class MultiGpuResult:
    """Outcome of one simulated multi-GPU OOC GEMM."""

    n_gpus: int
    makespan: float               # max over devices
    per_gpu_makespans: tuple[float, ...]
    total_h2d_bytes: int
    total_flops: int
    shared_link: bool

    @property
    def achieved_flops_rate(self) -> float:
        return self.total_flops / self.makespan if self.makespan else 0.0

    def speedup_over(self, single: "MultiGpuResult") -> float:
        """Wall-clock speedup vs a single-GPU run of the same problem."""
        return single.makespan / self.makespan if self.makespan else 0.0

    def efficiency_over(self, single: "MultiGpuResult") -> float:
        """Parallel efficiency in [0, 1]: speedup / n_gpus."""
        return self.speedup_over(single) / self.n_gpus


def _derated(config: SystemConfig, n_gpus: int, shared_link: bool) -> SystemConfig:
    if not shared_link or n_gpus == 1:
        return config
    gpu = replace(
        config.gpu,
        name=f"{config.gpu.name}-shared{n_gpus}",
        h2d_bytes_per_s=config.gpu.h2d_bytes_per_s / n_gpus,
        d2h_bytes_per_s=config.gpu.d2h_bytes_per_s / n_gpus,
    )
    return config.with_gpu(gpu)


def multi_gpu_gemm(
    config: SystemConfig,
    *,
    kind: str,
    M: int,
    N: int,
    K: int,
    blocksize: int,
    n_gpus: int,
    shared_link: bool = True,
) -> MultiGpuResult:
    """Simulate one OOC GEMM split across *n_gpus* devices.

    ``kind="inner"`` runs ``C(M,N) = AᵀB`` (k-split engine) and
    ``kind="outer"`` runs ``C(M,N) -= A B`` (row-streaming engine, B
    broadcast to every device). The output's N dimension is split evenly
    across GPUs.
    """
    kind = one_of(kind, ("inner", "outer"), "kind")
    n_gpus = positive_int(n_gpus, "n_gpus")
    if n_gpus > N:
        raise ValidationError(f"cannot split N={N} across {n_gpus} GPUs")
    dev_config = _derated(config, n_gpus, shared_link)

    makespans = []
    total_h2d = 0
    total_flops = 0
    for col0, width in split_even(N, n_gpus):
        ex = SimExecutor(dev_config)
        budget = ex.allocator.free_bytes // dev_config.element_bytes
        if kind == "inner":
            a = HostMatrix.shape_only(K, M, name="A")
            b = HostMatrix.shape_only(K, width, name=f"B{col0}")
            c = HostMatrix.shape_only(M, width, name=f"C{col0}")
            plan = plan_ksplit_inner(K, M, width, blocksize, budget)
            run_ksplit_inner(ex, a.full(), b.full(), c.full(), plan)
        else:
            # B's slice for this device must be resident (broadcast cost is
            # part of the streamed traffic when it does not fit)
            a = HostMatrix.shape_only(M, K, name="A")
            c = HostMatrix.shape_only(M, width, name=f"C{col0}")
            b_host = HostMatrix.shape_only(K, width, name=f"B{col0}")
            plan = plan_rowstream_outer(
                M, K, width, blocksize, budget, b_resident=False
            )
            run_rowstream_outer(ex, c.full(), a.full(), b_host.full(), plan)
        trace = ex.finish()
        makespans.append(trace.makespan)
        total_h2d += ex.stats.h2d_bytes
        total_flops += ex.stats.gemm_flops

    return MultiGpuResult(
        n_gpus=n_gpus,
        makespan=max(makespans),
        per_gpu_makespans=tuple(makespans),
        total_h2d_bytes=total_h2d,
        total_flops=total_flops,
        shared_link=shared_link,
    )


def scaling_sweep(
    config: SystemConfig,
    *,
    kind: str,
    M: int,
    N: int,
    K: int,
    blocksize: int,
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8),
    shared_link: bool = True,
) -> dict[int, MultiGpuResult]:
    """Run the same GEMM on each GPU count; returns {n_gpus: result}."""
    return {
        g: multi_gpu_gemm(
            config, kind=kind, M=M, N=N, K=K, blocksize=blocksize,
            n_gpus=g, shared_link=shared_link,
        )
        for g in gpu_counts
    }
