"""Multi-GPU out-of-core GEMM simulation (§2.2 cuBLASXt/BLASX territory)."""

from repro.multi.gemm import MultiGpuResult, multi_gpu_gemm, scaling_sweep
from repro.multi.panel import (
    MultiGpuPanelResult,
    multi_gpu_panel_qr,
    panel_scaling_sweep,
)

__all__ = [
    "MultiGpuPanelResult",
    "MultiGpuResult",
    "multi_gpu_gemm",
    "multi_gpu_panel_qr",
    "panel_scaling_sweep",
    "scaling_sweep",
]
