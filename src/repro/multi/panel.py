"""Multi-GPU panel factorization via TSQR.

Table 4 shows the panel factorizations are identical (and serial) in both
OOC algorithms — the Amdahl floor neither recursion nor blocking touches.
TSQR decomposes a tall panel across devices naturally:

    1. scatter: GPU g receives an (m / G)-by-b row slab;
    2. local QR: each GPU factors its slab independently (perfect split);
    3. tree reduce: the G small R factors (b-by-b) reduce pairwise —
       log2(G) stacked (2b)-by-b QRs, tiny next to step 2;
    4. broadcast + update: each GPU multiplies its local Q by its b-by-b
       tree factor and writes the slab back.

Steps 1/2/4 are per-device pipelines simulated with the single-GPU
machinery; step 3 runs on one device with R factors bounced through the
host (the realistic no-NVLink PCIe path). ``shared_link=True`` derates
every device's PCIe by the device count, as in :mod:`repro.multi.gemm`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.errors import ValidationError
from repro.execution.sim import SimExecutor
from repro.host.tiled import HostMatrix
from repro.multi.gemm import _derated
from repro.util.validation import positive_int


@dataclass(frozen=True)
class MultiGpuPanelResult:
    """Outcome of one simulated multi-GPU TSQR panel factorization."""

    n_gpus: int
    makespan: float
    local_phase: float      # scatter + local QR + writeback (max over GPUs)
    tree_phase: float       # log2(G) reduction rounds
    shared_link: bool

    def speedup_over(self, single: "MultiGpuPanelResult") -> float:
        return single.makespan / self.makespan if self.makespan else 0.0


def _slab_phase(config: SystemConfig, rows: int, b: int) -> float:
    """One device's pipeline: load slab, factor, apply tree factor, store."""
    ex = SimExecutor(config)
    host = HostMatrix.shape_only(rows, b, name="slab")
    slab = ex.alloc(rows, b, "slab")
    r_tile = ex.alloc(b, b, "R")
    tree = ex.alloc(b, b, "tree")
    s = ex.stream("s")
    ex.h2d(slab, host.full(), s)
    ex.panel_qr(slab, r_tile, s)
    ex.d2h(HostMatrix.shape_only(b, b, name="Rout").full(), r_tile, s)
    # tree factor arrives, local Q is updated and written back
    ex.h2d(tree, HostMatrix.shape_only(b, b, name="Tin").full(), s)
    ex.gemm(slab, slab.full(), tree.full(), s, tag="tsqr-update")
    ex.d2h(host.full(), slab, s)
    trace = ex.finish()
    for buf in (slab, r_tile, tree):
        ex.free(buf)
    return trace.makespan


def _tree_phase(config: SystemConfig, b: int, n_gpus: int) -> float:
    """log2(G) rounds of stacked (2b x b) QRs on one device, R factors
    bounced through host PCIe between rounds."""
    if n_gpus == 1:
        return 0.0
    ex = SimExecutor(config)
    stacked_host = HostMatrix.shape_only(2 * b, b, name="Rpair")
    stacked = ex.alloc(2 * b, b, "Rpair")
    r_out = ex.alloc(b, b, "Rred")
    s = ex.stream("s")
    for _ in range(math.ceil(math.log2(n_gpus))):
        ex.h2d(stacked, stacked_host.full(), s)
        ex.panel_qr(stacked, r_out, s)
        ex.d2h(HostMatrix.shape_only(b, b, name="out").full(), r_out, s)
    trace = ex.finish()
    ex.free(stacked)
    ex.free(r_out)
    return trace.makespan


def multi_gpu_panel_qr(
    config: SystemConfig,
    *,
    m: int,
    b: int,
    n_gpus: int,
    shared_link: bool = True,
) -> MultiGpuPanelResult:
    """Simulate one m-by-b panel factorization across *n_gpus* devices."""
    m, b = positive_int(m, "m"), positive_int(b, "b")
    n_gpus = positive_int(n_gpus, "n_gpus")
    if m // n_gpus < b:
        raise ValidationError(
            f"slabs of {m // n_gpus} rows are shorter than the panel width {b}"
        )
    dev_config = _derated(config, n_gpus, shared_link)
    rows = -(-m // n_gpus)
    local = _slab_phase(dev_config, rows, b)
    tree = _tree_phase(dev_config, b, n_gpus)
    return MultiGpuPanelResult(
        n_gpus=n_gpus,
        makespan=local + tree,
        local_phase=local,
        tree_phase=tree,
        shared_link=shared_link,
    )


def panel_scaling_sweep(
    config: SystemConfig,
    *,
    m: int,
    b: int,
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8),
    shared_link: bool = True,
) -> dict[int, MultiGpuPanelResult]:
    """The same panel on each GPU count; returns {n_gpus: result}."""
    return {
        g: multi_gpu_panel_qr(config, m=m, b=b, n_gpus=g, shared_link=shared_link)
        for g in gpu_counts
    }
