"""Out-of-core outer-product engines: ``C -= A B`` (§3.3.2, §4.1.2).

Two strategies, one per algorithm family:

* :func:`run_rowstream_outer` — the recursive QR's strategy (paper Fig 5):
  B (= R12, possibly still resident from the inner product) stays on the
  device; row blocks of A (= Q1) and C (= A2) stream through double
  buffers. Each GEMM is ``b x N x K`` with huge N — compute-bound shapes.
* :func:`run_tile_outer` — the blocking QR's strategy (paper Fig 6): the
  tall-skinny A (= Q1) and flat B (= R12) are both resident; only C tiles
  move. Each GEMM is ``b1 x b2 x b_qr`` — fine at b_qr = 16384, but
  memory-bound once small GPU memory forces a small b_qr (Fig 11).

Both support the §4.1.2 staging-buffer optimization: the updated C block is
copied device-to-device into a spare buffer so its PCIe move-out no longer
blocks the next move-in (Fig 10); disable with ``staging=False`` plans to
reproduce the unoptimized behaviour.
"""

from __future__ import annotations

from repro.errors import PlanError, ShapeError
from repro.execution.base import DeviceBuffer, DeviceView, Executor, as_view
from repro.host.tiled import HostRegion
from repro.ooc.plan import RowStreamOuterPlan, TileOuterPlan
from repro.ooc.scope import DeviceScope
from repro.ooc.streams import StreamBundle


def run_rowstream_outer(
    ex: Executor,
    c: HostRegion,
    a: HostRegion,
    b_source: DeviceBuffer | DeviceView | HostRegion,
    plan: RowStreamOuterPlan,
    *,
    streams: StreamBundle | None = None,
    pipelined: bool = True,
    after: object | None = None,
    b_transposed: bool = False,
    tag: str = "outer",
) -> None:
    """Execute a Fig-5 (recursive-strategy) trailing update ``C -= A op(B)``.

    Parameters
    ----------
    c
        Host region (M, N), updated in place.
    a
        Host region (M, K) — the already-orthogonalized Q1 (or LU's L21).
    b_source
        Either a device buffer/view (K, N) left over from the inner product
        (requires a ``b_resident`` plan) or the host region to stream.
    b_transposed
        Interpret B as stored transposed — host shape (N, K), multiplied as
        ``C -= A Bᵀ``. This is the SYRK-shaped update of Cholesky's trailing
        matrix (``A22 -= L21 L21ᵀ``), where the resident operand is the same
        host panel as A. Only supported for host-streamed B.
    """
    if c.shape != (plan.M, plan.N):
        raise ShapeError(f"C is {c.shape}, plan expects {(plan.M, plan.N)}")
    if a.shape != (plan.M, plan.K):
        raise ShapeError(f"A is {a.shape}, plan expects {(plan.M, plan.K)}")
    b_is_device = isinstance(b_source, (DeviceBuffer, DeviceView))
    if b_is_device != plan.b_resident:
        raise PlanError(
            "b_source residency does not match the plan "
            f"(plan.b_resident={plan.b_resident})"
        )
    if b_transposed and b_is_device:
        raise PlanError("b_transposed requires a host-streamed B operand")
    expected_b = (plan.N, plan.K) if b_transposed else (plan.K, plan.N)
    if b_source.shape != expected_b:
        raise ShapeError(
            f"B is {b_source.shape}, plan expects {expected_b}"
        )

    s = streams or StreamBundle.create(ex, tag)
    if after is not None:
        ex.wait_event(s.h2d, after)
    nb = plan.n_buffers
    bmax = plan.max_block
    wp = plan.max_panel_width

    with DeviceScope(ex) as scope:
        buf_a = [scope.alloc(bmax, plan.K, f"{tag}-Ablk{i}") for i in range(nb)]
        buf_c = [scope.alloc(bmax, wp, f"{tag}-Cblk{i}") for i in range(nb)]
        stage = scope.alloc(bmax, wp, f"{tag}-stage") if plan.staging else None
        if plan.b_resident:
            b_panel = None
        elif b_transposed:
            b_panel = scope.alloc(wp, plan.K, f"{tag}-Bpanel")
        else:
            b_panel = scope.alloc(plan.K, wp, f"{tag}-Bpanel")
        _rowstream_body(
            ex, c, a, b_source, plan, s, buf_a, buf_c, stage, b_panel,
            pipelined, b_transposed, tag,
        )


def _rowstream_body(
    ex, c, a, b_source, plan, s, buf_a, buf_c, stage, b_panel,
    pipelined, b_transposed, tag,
):
    nb = plan.n_buffers
    slot_busy: list[object | None] = [None] * nb
    stage_free: object | None = None
    b_ready: object | None = None
    for col0, width in plan.panels:
        if not plan.b_resident:
            # all pending GEMMs read the old panel; numeric issue order is
            # already safe, the event keeps simulated timing honest
            if slot_busy[(len(plan.blocks) - 1) % nb] is not None:
                for evt in slot_busy:
                    if evt is not None:
                        ex.wait_event(s.h2d, evt)
            if b_transposed:
                b_view = b_panel.view(0, width, 0, plan.K)
                ex.h2d(b_view, b_source.sub(col0, col0 + width, 0, plan.K), s.h2d)
            else:
                b_view = b_panel.view(0, plan.K, 0, width)
                ex.h2d(b_view, b_source.sub(0, plan.K, col0, col0 + width), s.h2d)
            b_ready = ex.record_event(s.h2d)
        else:
            b_view = as_view(b_source)

        for i, (row0, height) in enumerate(plan.blocks):
            slot = i % nb
            if slot_busy[slot] is not None:
                ex.wait_event(s.h2d, slot_busy[slot])
            ex.h2d(
                buf_a[slot].view(0, height, 0, plan.K),
                a.sub(row0, row0 + height, 0, plan.K),
                s.h2d,
            )
            ex.h2d(
                buf_c[slot].view(0, height, 0, width),
                c.sub(row0, row0 + height, col0, col0 + width),
                s.h2d,
            )
            loaded = ex.record_event(s.h2d)
            ex.wait_event(s.compute, loaded)
            if b_ready is not None:
                ex.wait_event(s.compute, b_ready)
                b_ready = None
            c_view = buf_c[slot].view(0, height, 0, width)
            ex.gemm(
                c_view,
                buf_a[slot].view(0, height, 0, plan.K),
                b_view,
                s.compute,
                alpha=-1.0,
                beta=1.0,
                trans_b=b_transposed,
                tag=tag,
            )
            if stage is not None:
                # §4.1.2: stage the block on-device so the PCIe move-out no
                # longer pins the C buffer
                if stage_free is not None:
                    ex.wait_event(s.compute, stage_free)
                stage_view = stage.view(0, height, 0, width)
                ex.d2d(stage_view, c_view, s.compute)
                staged = ex.record_event(s.compute)
                slot_busy[slot] = staged
                ex.wait_event(s.d2h, staged)
                ex.d2h(
                    c.sub(row0, row0 + height, col0, col0 + width),
                    stage_view,
                    s.d2h,
                )
                stage_free = ex.record_event(s.d2h)
            else:
                done = ex.record_event(s.compute)
                ex.wait_event(s.d2h, done)
                ex.d2h(
                    c.sub(row0, row0 + height, col0, col0 + width),
                    c_view,
                    s.d2h,
                )
                # without staging, the C buffer is pinned until move-out ends
                slot_busy[slot] = ex.record_event(s.d2h)
            if not pipelined:
                ex.synchronize()


def run_tile_outer(
    ex: Executor,
    c: HostRegion,
    a_dev: DeviceBuffer | DeviceView,
    b_dev: DeviceBuffer | DeviceView,
    plan: TileOuterPlan,
    *,
    streams: StreamBundle | None = None,
    pipelined: bool = True,
    after: object | None = None,
    b_transposed: bool = False,
    tag: str = "outer-blk",
) -> None:
    """Execute a Fig-6 (blocking-strategy) trailing update ``C -= A op(B)``.

    *a_dev* (M, K) and *b_dev* (K, N) are device-resident (the blocking
    QR's panel Q and R12); C tiles of the host region stream in and out.
    With ``b_transposed``, *b_dev* is stored as (N, K) and multiplied
    transposed — blocking Cholesky's SYRK update reuses the resident panel
    as both A and Bᵀ.
    """
    a_dev, b_dev = as_view(a_dev), as_view(b_dev)
    if c.shape != (plan.M, plan.N):
        raise ShapeError(f"C is {c.shape}, plan expects {(plan.M, plan.N)}")
    if a_dev.shape != (plan.M, plan.K):
        raise ShapeError(f"A is {a_dev.shape}, plan expects {(plan.M, plan.K)}")
    expected_b = (plan.N, plan.K) if b_transposed else (plan.K, plan.N)
    if b_dev.shape != expected_b:
        raise ShapeError(f"B is {b_dev.shape}, plan expects {expected_b}")

    s = streams or StreamBundle.create(ex, tag)
    if after is not None:
        ex.wait_event(s.h2d, after)
    nb = plan.n_buffers
    with DeviceScope(ex) as scope:
        tiles = [scope.alloc(plan.b1, plan.b2, f"{tag}-tile{i}") for i in range(nb)]
        stage = (
            scope.alloc(plan.b1, plan.b2, f"{tag}-stage") if plan.staging else None
        )
        _tile_outer_body(
            ex, c, a_dev, b_dev, plan, s, tiles, stage, pipelined,
            b_transposed, tag,
        )


def _tile_outer_body(
    ex, c, a_dev, b_dev, plan, s, tiles, stage, pipelined, b_transposed, tag
):
    nb = plan.n_buffers
    slot_busy: list[object | None] = [None] * nb
    stage_free: object | None = None
    t = 0
    for row0, height in plan.row_blocks:
        for col0, width in plan.col_blocks:
            slot = t % nb
            if slot_busy[slot] is not None:
                ex.wait_event(s.h2d, slot_busy[slot])
            tile_view = tiles[slot].view(0, height, 0, width)
            ex.h2d(
                tile_view,
                c.sub(row0, row0 + height, col0, col0 + width),
                s.h2d,
            )
            loaded = ex.record_event(s.h2d)
            ex.wait_event(s.compute, loaded)
            ex.gemm(
                tile_view,
                a_dev.buffer.view(
                    a_dev.row0 + row0,
                    a_dev.row0 + row0 + height,
                    a_dev.col0,
                    a_dev.col1,
                ),
                (
                    b_dev.buffer.view(
                        b_dev.row0 + col0,
                        b_dev.row0 + col0 + width,
                        b_dev.col0,
                        b_dev.col1,
                    )
                    if b_transposed
                    else b_dev.buffer.view(
                        b_dev.row0,
                        b_dev.row1,
                        b_dev.col0 + col0,
                        b_dev.col0 + col0 + width,
                    )
                ),
                s.compute,
                alpha=-1.0,
                beta=1.0,
                trans_b=b_transposed,
                tag=tag,
            )
            if stage is not None:
                if stage_free is not None:
                    ex.wait_event(s.compute, stage_free)
                stage_view = stage.view(0, height, 0, width)
                ex.d2d(stage_view, tile_view, s.compute)
                staged = ex.record_event(s.compute)
                slot_busy[slot] = staged
                ex.wait_event(s.d2h, staged)
                ex.d2h(
                    c.sub(row0, row0 + height, col0, col0 + width),
                    stage_view,
                    s.d2h,
                )
                stage_free = ex.record_event(s.d2h)
            else:
                done = ex.record_event(s.compute)
                ex.wait_event(s.d2h, done)
                ex.d2h(
                    c.sub(row0, row0 + height, col0, col0 + width),
                    tile_view,
                    s.d2h,
                )
                slot_busy[slot] = ex.record_event(s.d2h)
            t += 1
            if not pipelined:
                ex.synchronize()
