"""Out-of-core inner-product engines: ``C = AᵀB`` (§3.3.1, §4.1.1).

Two strategies, one per algorithm family:

* :func:`run_ksplit_inner` — the recursive QR's strategy (paper Fig 3):
  C stays resident on the device while the *reduction* dimension of A and B
  streams through double buffers; each host element is read exactly once
  (per C panel). GEMM chunks are ``M x N x b`` — output-dominated shapes
  that run near TensorCore peak.
* :func:`run_panel_inner` — the blocking QR's strategy (paper Fig 4):
  the panel Q is already device-resident; B streams in column blocks and C
  blocks stream out. GEMM chunks are ``b_qr x b x m`` — reduction-dominated
  shapes that TensorCore executes far below peak (Table 1's 52.6 vs 99.9
  TFLOPS), which is the heart of the paper's argument.

Both engines issue work in a sequentially-correct program order (so the
numeric executor computes exact results) and wire CUDA-style events so the
simulated executor reproduces the move-in / compute / move-out pipelines of
Figures 7 and 8, including buffer-recycling stalls.

Set ``pipelined=False`` to synchronize after every chunk — the
"Synchronous" rows of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError, ShapeError
from repro.execution.base import DeviceBuffer, DeviceView, Executor, as_view
from repro.host.tiled import HostRegion
from repro.ooc.plan import KSplitInnerPlan, PanelInnerPlan
from repro.ooc.scope import DeviceScope
from repro.ooc.streams import StreamBundle


@dataclass
class InnerProductResult:
    """What an inner-product engine hands back to its caller."""

    #: C left resident on the device (caller owns and must free), or None.
    c_device: DeviceBuffer | None
    n_chunks: int
    strategy: str


def run_ksplit_inner(
    ex: Executor,
    a: HostRegion,
    b: HostRegion,
    c_out: HostRegion | None,
    plan: KSplitInnerPlan,
    *,
    streams: StreamBundle | None = None,
    keep_on_device: bool = False,
    pipelined: bool = True,
    after: object | None = None,
    tag: str = "inner",
) -> InnerProductResult:
    """Execute a Fig-3 (recursive-strategy) inner product ``C = AᵀB``.

    Parameters
    ----------
    a, b
        Host operands of shape (K, M) and (K, N).
    c_out
        Host destination (M, N); may be ``None`` only when
        ``keep_on_device`` is set.
    plan
        Tiling from :func:`repro.ooc.plan.plan_ksplit_inner`.
    keep_on_device
        Leave C resident and return its buffer (QR-level reuse, §4.2);
        requires a single-panel plan.
    after
        Optional event the engine's host reads must wait for (e.g. the
        writeback of Q columns this product consumes).
    """
    if a.shape != (plan.K, plan.M):
        raise ShapeError(f"A is {a.shape}, plan expects {(plan.K, plan.M)}")
    if b.shape != (plan.K, plan.N):
        raise ShapeError(f"B is {b.shape}, plan expects {(plan.K, plan.N)}")
    if c_out is not None and c_out.shape != (plan.M, plan.N):
        raise ShapeError(
            f"C is {c_out.shape}, plan expects {(plan.M, plan.N)}"
        )
    if keep_on_device and plan.n_panels != 1:
        raise PlanError(
            "keep_on_device requires a single-panel inner-product plan "
            f"(got {plan.n_panels} panels)"
        )
    if c_out is None and not keep_on_device:
        raise PlanError("inner product must either write c_out or keep C on device")

    s = streams or StreamBundle.create(ex, tag)
    if after is not None:
        ex.wait_event(s.h2d, after)
    nb = plan.n_buffers
    max_chunk = plan.max_chunk
    wp = plan.max_panel_width

    scope = DeviceScope(ex)
    with scope:
        buf_a = [scope.alloc(max_chunk, plan.M, f"{tag}-Achunk{i}") for i in range(nb)]
        buf_b = [scope.alloc(max_chunk, wp, f"{tag}-Bchunk{i}") for i in range(nb)]
        c_dev = scope.alloc(plan.M, wp, f"{tag}-C")
        return _ksplit_body(
            ex, a, b, c_out, plan, s, scope, buf_a, buf_b, c_dev,
            keep_on_device, pipelined, tag,
        )


def _ksplit_body(
    ex, a, b, c_out, plan, s, scope, buf_a, buf_b, c_dev,
    keep_on_device, pipelined, tag,
):
    nb = plan.n_buffers
    n_chunks = 0
    slot_busy: list[object | None] = [None] * nb  # last gemm using each slot
    c_flushed: object | None = None  # d2h event of the previous panel's C
    for col0, width in plan.panels:
        last_gemm: object | None = None
        c_view = c_dev.view(0, plan.M, 0, width)
        for t, (k0, kh) in enumerate(plan.chunks):
            slot = t % nb
            # recycle: the slot's previous occupant must have been consumed
            if slot_busy[slot] is not None:
                ex.wait_event(s.h2d, slot_busy[slot])
            ex.h2d(
                buf_a[slot].view(0, kh, 0, plan.M),
                a.sub(k0, k0 + kh, 0, plan.M),
                s.h2d,
            )
            ex.h2d(
                buf_b[slot].view(0, kh, 0, width),
                b.sub(k0, k0 + kh, col0, col0 + width),
                s.h2d,
            )
            loaded = ex.record_event(s.h2d)
            ex.wait_event(s.compute, loaded)
            if t == 0 and c_flushed is not None:
                # the previous panel's C must have left the device before
                # this panel's first (beta=0) GEMM overwrites the buffer
                ex.wait_event(s.compute, c_flushed)
            ex.gemm(
                c_view,
                buf_a[slot].view(0, kh, 0, plan.M),
                buf_b[slot].view(0, kh, 0, width),
                s.compute,
                trans_a=True,
                beta=0.0 if t == 0 else 1.0,
                tag=tag,
            )
            last_gemm = slot_busy[slot] = ex.record_event(s.compute)
            n_chunks += 1
            if not pipelined:
                ex.synchronize()
        if c_out is not None:
            ex.wait_event(s.d2h, last_gemm)
            ex.d2h(c_out.sub(0, plan.M, col0, col0 + width), c_view, s.d2h)
            c_flushed = ex.record_event(s.d2h)
            if not pipelined:
                ex.synchronize()

    if keep_on_device:
        return InnerProductResult(scope.release(c_dev), n_chunks, "ksplit")
    return InnerProductResult(None, n_chunks, "ksplit")


def run_panel_inner(
    ex: Executor,
    a_panel_dev: "DeviceBuffer | DeviceView",
    b: HostRegion,
    c_out: HostRegion | None,
    plan: PanelInnerPlan,
    *,
    streams: StreamBundle | None = None,
    pipelined: bool = True,
    after: object | None = None,
    tag: str = "inner-blk",
) -> InnerProductResult:
    """Execute a Fig-4 (blocking-strategy) inner product ``C = QᵀB``.

    *a_panel_dev* is the device-resident K-by-M panel (buffer or view — the
    freshly factorized Q); B streams in column blocks of the plan's
    blocksize. When the plan has ``keep_c`` the full C additionally stays
    resident and its buffer is returned (blocking QR reuses it as the outer
    product's B).
    """
    a_panel_dev = as_view(a_panel_dev)
    if a_panel_dev.shape != (plan.K, plan.M):
        raise ShapeError(
            f"panel is {a_panel_dev.shape}, plan expects {(plan.K, plan.M)}"
        )
    if b.shape != (plan.K, plan.N):
        raise ShapeError(f"B is {b.shape}, plan expects {(plan.K, plan.N)}")
    if c_out is not None and c_out.shape != (plan.M, plan.N):
        raise ShapeError(f"C is {c_out.shape}, plan expects {(plan.M, plan.N)}")
    if c_out is None and not plan.keep_c:
        raise PlanError("panel inner product must write c_out or keep C resident")

    s = streams or StreamBundle.create(ex, tag)
    if after is not None:
        ex.wait_event(s.h2d, after)
    nb = plan.n_buffers
    bmax = plan.max_block

    scope = DeviceScope(ex)
    with scope:
        buf_b = [scope.alloc(plan.K, bmax, f"{tag}-Bblk{i}") for i in range(nb)]
        if plan.keep_c:
            c_dev = scope.alloc(plan.M, plan.N, f"{tag}-C")
            c_blocks = None
        else:
            c_dev = None
            c_blocks = [
                scope.alloc(plan.M, bmax, f"{tag}-Cblk{i}") for i in range(nb)
            ]
        return _panel_inner_body(
            ex, a_panel_dev, b, c_out, plan, s, scope, buf_b, c_dev,
            c_blocks, pipelined, tag,
        )


def _panel_inner_body(
    ex, a_panel_dev, b, c_out, plan, s, scope, buf_b, c_dev, c_blocks,
    pipelined, tag,
):
    nb = plan.n_buffers
    consumed: dict[int, object] = {}  # slot recycle events (gemm or d2h)
    for j, (col0, width) in enumerate(plan.blocks):
        slot = j % nb
        if j >= nb:
            ex.wait_event(s.h2d, consumed[j - nb])
        ex.h2d(
            buf_b[slot].view(0, plan.K, 0, width),
            b.sub(0, plan.K, col0, col0 + width),
            s.h2d,
        )
        loaded = ex.record_event(s.h2d)
        ex.wait_event(s.compute, loaded)
        if plan.keep_c:
            c_view = c_dev.view(0, plan.M, col0, col0 + width)
        else:
            c_view = c_blocks[slot].view(0, plan.M, 0, width)
        ex.gemm(
            c_view,
            a_panel_dev,
            buf_b[slot].view(0, plan.K, 0, width),
            s.compute,
            trans_a=True,
            beta=0.0,
            tag=tag,
        )
        done = ex.record_event(s.compute)
        if c_out is not None:
            ex.wait_event(s.d2h, done)
            ex.d2h(c_out.sub(0, plan.M, col0, col0 + width), c_view, s.d2h)
            # a streamed C block is free once its move-out finished
            if not plan.keep_c:
                done = ex.record_event(s.d2h)
        consumed[j] = done
        if not pipelined:
            ex.synchronize()

    if plan.keep_c:
        return InnerProductResult(
            scope.release(c_dev), len(plan.blocks), "panel-resident"
        )
    return InnerProductResult(None, len(plan.blocks), "panel-resident")
