"""Chunk schedules for streamed GEMM dimensions, incl. §4.1.3's trick.

The paper observes that the *first* move-in of a pipeline can never be
overlapped — so it should be small — while steady-state chunks should be
large for GEMM efficiency. Its remedy: "start with a relatively small
blocksize and gradually increase it to the max blocksize", which raised the
big inner product from ~85 to ~87 TFLOPS. :func:`gradual_schedule` builds
exactly that ramp (geometric doubling from ``blocksize / ramp`` up to
``blocksize``); :func:`uniform_schedule` is the plain fixed-size split.
"""

from __future__ import annotations

from repro.util.validation import positive_int

#: First chunk of a gradual ramp is ``blocksize / DEFAULT_RAMP``.
DEFAULT_RAMP = 4


def uniform_schedule(extent: int, blocksize: int) -> list[tuple[int, int]]:
    """Fixed-size chunks ``(offset, size)`` covering ``[0, extent)``.

    The final chunk absorbs the remainder when *blocksize* does not divide
    *extent*.
    """
    extent = positive_int(extent, "extent")
    blocksize = positive_int(blocksize, "blocksize")
    return [
        (lo, min(blocksize, extent - lo)) for lo in range(0, extent, blocksize)
    ]


def gradual_schedule(
    extent: int, blocksize: int, *, ramp: int = DEFAULT_RAMP
) -> list[tuple[int, int]]:
    """Geometrically ramped chunks: b/ramp, then doubling up to b, then b.

    Example: ``extent=131072, blocksize=16384, ramp=4`` gives chunk sizes
    ``[4096, 8192, 16384, 16384, ...]`` — the first (never-overlapped)
    move-in shrinks 4x while steady state keeps full-size GEMMs.

    Falls back to :func:`uniform_schedule` when the extent is too small for
    a ramp to make sense (a single full chunk covers it).
    """
    extent = positive_int(extent, "extent")
    blocksize = min(positive_int(blocksize, "blocksize"), extent)
    ramp = positive_int(ramp, "ramp")
    if ramp == 1 or blocksize < 2 * ramp or extent <= blocksize:
        return uniform_schedule(extent, blocksize)

    sizes: list[int] = []
    size = max(1, blocksize // ramp)
    covered = 0
    while size < blocksize and covered + size < extent:
        sizes.append(size)
        covered += size
        size *= 2
    while covered + blocksize <= extent:
        sizes.append(blocksize)
        covered += blocksize
    if covered < extent:
        sizes.append(extent - covered)

    schedule: list[tuple[int, int]] = []
    offset = 0
    for s in sizes:
        schedule.append((offset, s))
        offset += s
    return schedule
