"""Data-movement and overlap accounting for OOC runs.

The paper's §3.2 argues algorithms by *words moved* and §3.3 by *overlap
ratio*; this module measures both on live executors so the analytic models
(:mod:`repro.models.movement`) can be validated against what the engines
actually did (Table 3, §5.2).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.execution.base import Executor, RunStats
from repro.util.units import fmt_bytes, fmt_rate, fmt_time


@dataclass(frozen=True)
class MovementReport:
    """Byte/flop deltas of one measured region of execution."""

    h2d_bytes: int
    d2h_bytes: int
    d2d_bytes: int
    gemm_flops: int
    panel_flops: int
    n_gemms: int
    n_panels: int

    @property
    def total_bytes(self) -> int:
        """PCIe traffic in both directions."""
        return self.h2d_bytes + self.d2h_bytes

    @property
    def total_flops(self) -> int:
        return self.gemm_flops + self.panel_flops

    def arithmetic_intensity(self) -> float:
        """Flops per PCIe byte — the quantity §3.3's crossovers bound."""
        return self.total_flops / self.total_bytes if self.total_bytes else float("inf")

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return "\n".join(
            [
                f"  H2D      : {fmt_bytes(self.h2d_bytes)}",
                f"  D2H      : {fmt_bytes(self.d2h_bytes)}",
                f"  D2D      : {fmt_bytes(self.d2d_bytes)}",
                f"  GEMM     : {self.n_gemms} calls, {self.gemm_flops:.3e} flops",
                f"  panels   : {self.n_panels} calls, {self.panel_flops:.3e} flops",
                f"  intensity: {self.arithmetic_intensity():.1f} flops/byte",
            ]
        )


class _Tracker:
    """Mutable holder filled in when the ``track`` context exits."""

    def __init__(self) -> None:
        self.report: MovementReport | None = None

    def __getattr__(self, item):
        report = object.__getattribute__(self, "report")
        if report is None:
            # __getattr__ must raise AttributeError for hasattr/getattr
            # protocol correctness.
            raise AttributeError(  # lint: allow[reproerror-raises]
                "movement report not available until the track() block exits"
            )
        return getattr(report, item)


def _snapshot(stats: RunStats) -> tuple[int, ...]:
    return (
        stats.h2d_bytes,
        stats.d2h_bytes,
        stats.d2d_bytes,
        stats.gemm_flops,
        stats.panel_flops,
        stats.n_gemms,
        stats.n_panels,
    )


@contextmanager
def track(executor: Executor) -> Iterator[_Tracker]:
    """Measure the executor-stat deltas produced inside the ``with`` block::

        with track(ex) as moved:
            run_inner_product(ex, ...)
        assert moved.h2d_bytes == plan.h2d_elements() * 4
    """
    before = _snapshot(executor.stats)
    tracker = _Tracker()
    try:
        yield tracker
    finally:
        after = _snapshot(executor.stats)
        tracker.report = MovementReport(*(a - b for a, b in zip(after, before)))
