"""Out-of-core triangular solve: ``X = op(L)^{-1} B`` with a host triangle.

Needed by the recursive OOC LU factorization (§6 future work): at each
recursion level, ``U12 = L11^{-1} A12`` where L11 is the *whole left
half's* unit-lower triangle — far larger than the b-by-b triangles the
blocking algorithm solves on device.

Strategy (mirrors the k-split inner product's residency logic): the
solution X stays device-resident (panel-split over its columns when too
large) while row strips of the triangle stream through double buffers.
Row block i of X needs

    X_i = T_ii^{-1} (B_i - L[i, :i] X[:i])

— one streamed GEMM against all previously solved rows (growing, GEMM-rich,
TensorCore-friendly) plus a b-by-b on-device triangular solve. The
triangle is read once per X panel (K^2/2 words); B and X move once each.

Like the other engines, work is issued in a sequentially correct order
(numeric executors compute exact results) with CUDA-style events carrying
the pipeline structure for the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PlanError, ShapeError
from repro.execution.base import DeviceBuffer, Executor
from repro.host.tiled import HostRegion
from repro.ooc.gradual import uniform_schedule
from repro.ooc.plan import DEFAULT_BUFFERS, split_even
from repro.ooc.scope import DeviceScope
from repro.ooc.streams import StreamBundle
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ooc.inner import InnerProductResult
from repro.util.validation import positive_int


@dataclass(frozen=True)
class TrsmPlan:
    """Layout for one OOC triangular solve."""

    K: int                           # triangle dimension
    N: int                           # right-hand-side columns
    blocksize: int                   # row-block height of X
    n_buffers: int
    panels: list[tuple[int, int]]    # (col offset, width) of X/B panels
    blocks: list[tuple[int, int]]    # (row offset, height) of X row blocks

    @property
    def n_panels(self) -> int:
        return len(self.panels)

    @property
    def max_panel_width(self) -> int:
        return max(w for _, w in self.panels)

    def working_set_elements(self) -> int:
        wp = self.max_panel_width
        return self.K * wp + self.n_buffers * self.blocksize * self.K

    def h2d_elements(self) -> int:
        """Triangle strips once per panel + B once."""
        strip_total = 0
        for row0, height in self.blocks:
            strip_total += height * (row0 + height)
        return self.n_panels * strip_total + self.K * self.N

    def d2h_elements(self) -> int:
        return self.K * self.N


def plan_ooc_trsm(
    K: int,
    N: int,
    blocksize: int,
    budget_elements: int,
    *,
    n_buffers: int = DEFAULT_BUFFERS,
) -> TrsmPlan:
    """Plan an OOC triangular solve within *budget_elements*."""
    K, N = positive_int(K, "K"), positive_int(N, "N")
    blocksize = min(positive_int(blocksize, "blocksize"), K)
    n_buffers = max(2, positive_int(n_buffers, "n_buffers"))
    for n_panels in range(1, N + 1):
        wp = math.ceil(N / n_panels)
        b = blocksize
        while b >= 1:
            need = K * wp + n_buffers * b * K
            if need <= budget_elements:
                return TrsmPlan(
                    K=K,
                    N=N,
                    blocksize=b,
                    n_buffers=n_buffers,
                    panels=split_even(N, n_panels),
                    blocks=uniform_schedule(K, b),
                )
            b //= 2
    raise PlanError(
        f"OOC trsm with K={K}, N={N} cannot fit in {budget_elements} "
        "device elements"
    )


def run_ooc_trsm(
    ex: Executor,
    l_host: HostRegion,
    b_host: HostRegion,
    x_out: HostRegion | None,
    plan: TrsmPlan,
    *,
    streams: StreamBundle | None = None,
    unit_diag: bool = True,
    keep_on_device: bool = False,
    pipelined: bool = True,
    after: object | None = None,
    tag: str = "trsm",
) -> DeviceBuffer | None:
    """Solve ``L X = B`` out of core; writes X to *x_out* (may alias
    *b_host*) and/or leaves it device-resident.

    Parameters
    ----------
    l_host
        (K, K) host region whose lower triangle is L (upper part ignored).
    b_host
        (K, N) host right-hand side.
    x_out
        Host destination; ``None`` only with ``keep_on_device``.
    keep_on_device
        Return the device buffer holding X (single-panel plans only) for
        reuse as the trailing update's resident operand.
    """
    if l_host.shape != (plan.K, plan.K):
        raise ShapeError(f"L is {l_host.shape}, plan expects {(plan.K, plan.K)}")
    if b_host.shape != (plan.K, plan.N):
        raise ShapeError(f"B is {b_host.shape}, plan expects {(plan.K, plan.N)}")
    if x_out is not None and x_out.shape != (plan.K, plan.N):
        raise ShapeError(f"X is {x_out.shape}, plan expects {(plan.K, plan.N)}")
    if keep_on_device and plan.n_panels != 1:
        raise PlanError("keep_on_device requires a single-panel trsm plan")
    if x_out is None and not keep_on_device:
        raise PlanError("ooc trsm must either write x_out or keep X on device")

    s = streams or StreamBundle.create(ex, tag)
    if after is not None:
        ex.wait_event(s.h2d, after)
    nb = plan.n_buffers
    bmax = plan.blocksize
    wp = plan.max_panel_width

    scope = DeviceScope(ex)
    with scope:
        x_dev = scope.alloc(plan.K, wp, f"{tag}-X")
        strips = [scope.alloc(bmax, plan.K, f"{tag}-Lstrip{i}") for i in range(nb)]
        return _ooc_trsm_body(
            ex, l_host, b_host, x_out, plan, s, scope, x_dev, strips,
            unit_diag, keep_on_device, pipelined, tag,
        )


def _ooc_trsm_body(
    ex, l_host, b_host, x_out, plan, s, scope, x_dev, strips,
    unit_diag, keep_on_device, pipelined, tag,
):
    nb = plan.n_buffers
    slot_busy: list[object | None] = [None] * nb
    panel_flushed: object | None = None
    for col0, width in plan.panels:
        last_compute: object | None = None
        for i, (row0, height) in enumerate(plan.blocks):
            slot = i % nb
            if slot_busy[slot] is not None:
                ex.wait_event(s.h2d, slot_busy[slot])
            if i == 0 and panel_flushed is not None:
                # previous panel's X must be flushed before overwriting
                ex.wait_event(s.h2d, panel_flushed)
            strip_view = strips[slot].view(0, height, 0, row0 + height)
            ex.h2d(strip_view, l_host.sub(row0, row0 + height, 0, row0 + height), s.h2d)
            x_i = x_dev.view(row0, row0 + height, 0, width)
            ex.h2d(x_i, b_host.sub(row0, row0 + height, col0, col0 + width), s.h2d)
            loaded = ex.record_event(s.h2d)
            ex.wait_event(s.compute, loaded)
            if row0 > 0:
                # X_i -= L[i, :i] X[:i]
                ex.gemm(
                    x_i,
                    strips[slot].view(0, height, 0, row0),
                    x_dev.view(0, row0, 0, width),
                    s.compute,
                    alpha=-1.0,
                    beta=1.0,
                    tag=tag,
                )
            ex.trsm(
                strips[slot].view(0, height, row0, row0 + height),
                x_i,
                s.compute,
                lower=True,
                unit_diag=unit_diag,
                tag=tag,
            )
            last_compute = slot_busy[slot] = ex.record_event(s.compute)
            if x_out is not None:
                ex.wait_event(s.d2h, last_compute)
                ex.d2h(x_out.sub(row0, row0 + height, col0, col0 + width), x_i, s.d2h)
            if not pipelined:
                ex.synchronize()
        if x_out is not None:
            panel_flushed = ex.record_event(s.d2h)

    if keep_on_device:
        return scope.release(x_dev)
    return None


def run_panel_trsm(
    ex: Executor,
    l_dev,
    b_host: HostRegion,
    x_out: HostRegion | None,
    plan,
    *,
    streams: StreamBundle | None = None,
    unit_diag: bool = True,
    pipelined: bool = True,
    after: object | None = None,
    tag: str = "trsm-blk",
) -> "InnerProductResult":
    """Blocking-LU's U12 solve: the b-by-b triangle is already resident
    (inside the factorized panel); the right-hand side streams in column
    blocks — the TRSM analogue of the Fig-4 panel-resident inner product.

    Parameters mirror :func:`repro.ooc.inner.run_panel_inner`: *plan* is a
    :class:`~repro.ooc.plan.PanelInnerPlan` with ``K == M ==`` the triangle
    size; when ``plan.keep_c`` the solved X stays resident and its buffer
    is returned (for reuse as the trailing update's B operand).
    """
    from repro.execution.base import as_view

    l_dev = as_view(l_dev)
    k = l_dev.rows
    if l_dev.shape != (k, k) or plan.K != k or plan.M != k:
        raise ShapeError(
            f"panel trsm: triangle {l_dev.shape} does not match plan "
            f"K={plan.K}, M={plan.M}"
        )
    if b_host.shape != (k, plan.N):
        raise ShapeError(f"B is {b_host.shape}, plan expects {(k, plan.N)}")
    if x_out is None and not plan.keep_c:
        raise PlanError("panel trsm must write x_out or keep X resident")

    s = streams or StreamBundle.create(ex, tag)
    if after is not None:
        ex.wait_event(s.h2d, after)
    nb = plan.n_buffers
    bmax = plan.max_block

    scope = DeviceScope(ex)
    with scope:
        if plan.keep_c:
            x_dev = scope.alloc(k, plan.N, f"{tag}-X")
            blocks_dev = None
        else:
            x_dev = None
            blocks_dev = [
                scope.alloc(k, bmax, f"{tag}-Xblk{i}") for i in range(nb)
            ]
        return _panel_trsm_body(
            ex, l_dev, b_host, x_out, plan, s, scope, x_dev, blocks_dev,
            unit_diag, pipelined, tag,
        )


def _panel_trsm_body(
    ex, l_dev, b_host, x_out, plan, s, scope, x_dev, blocks_dev,
    unit_diag, pipelined, tag,
):
    from repro.ooc.inner import InnerProductResult

    k = l_dev.rows
    nb = plan.n_buffers
    consumed: dict[int, object] = {}
    for j, (col0, width) in enumerate(plan.blocks):
        slot = j % nb
        if j >= nb:
            ex.wait_event(s.h2d, consumed[j - nb])
        if plan.keep_c:
            x_view = x_dev.view(0, k, col0, col0 + width)
        else:
            x_view = blocks_dev[slot].view(0, k, 0, width)
        ex.h2d(x_view, b_host.sub(0, k, col0, col0 + width), s.h2d)
        loaded = ex.record_event(s.h2d)
        ex.wait_event(s.compute, loaded)
        ex.trsm(l_dev, x_view, s.compute, lower=True, unit_diag=unit_diag, tag=tag)
        done = ex.record_event(s.compute)
        if x_out is not None:
            ex.wait_event(s.d2h, done)
            ex.d2h(x_out.sub(0, k, col0, col0 + width), x_view, s.d2h)
            if not plan.keep_c:
                done = ex.record_event(s.d2h)
        consumed[j] = done
        if not pipelined:
            ex.synchronize()

    if plan.keep_c:
        return InnerProductResult(
            scope.release(x_dev), len(plan.blocks), "panel-trsm"
        )
    return InnerProductResult(None, len(plan.blocks), "panel-trsm")
