"""Tiling plans for the out-of-core GEMM engines (§3.3 of the paper).

A *plan* decides, before any data moves, how an OOC GEMM is decomposed:
which operand stays device-resident, how the streamed operand is chunked,
whether the output needs panel-splitting to fit, and how many staging
buffers the pipeline uses. Plans are pure (shape + byte-budget in, layout
out) so they are cheap to property-test; the engines then execute them.

Four plans mirror the paper's four tiling figures:

* :func:`plan_ksplit_inner`  — Fig 3: recursive QR's inner product
  ``C = AᵀB`` with the reduction (k) dimension streamed and C resident;
  A and B are each read exactly once (when C fits without panel splits).
* :func:`plan_panel_inner`   — Fig 4: blocking QR's inner product with the
  panel Q device-resident and B streamed in column blocks.
* :func:`plan_rowstream_outer` — Fig 5: recursive QR's trailing update
  ``C -= A B`` with B resident and A/C streamed in row blocks.
* :func:`plan_tile_outer`    — Fig 6: blocking QR's trailing update with
  A and B resident and C streamed tile by tile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.ooc.gradual import gradual_schedule, uniform_schedule
from repro.util.validation import positive_int

#: Double-buffer depth used by every pipeline (one tile in flight, one in use).
DEFAULT_BUFFERS = 2


def split_even(extent: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, extent)`` into *parts* near-equal (offset, size) ranges."""
    extent = positive_int(extent, "extent")
    parts = positive_int(parts, "parts")
    if parts > extent:
        raise PlanError(f"cannot split extent {extent} into {parts} parts")
    base, rem = divmod(extent, parts)
    ranges = []
    offset = 0
    for i in range(parts):
        size = base + (1 if i < rem else 0)
        ranges.append((offset, size))
        offset += size
    return ranges


@dataclass(frozen=True)
class KSplitInnerPlan:
    """Layout for the recursive (Fig 3) inner product ``C(M,N) = AᵀB``.

    ``n_panels`` column panels of C/B are processed one after another; each
    panel accumulates over the k-chunks listed in ``chunks``. A is re-read
    once per panel (``n_panels == 1`` gives the paper's read-each-once
    optimum).
    """

    K: int
    M: int
    N: int
    blocksize: int
    n_buffers: int
    panels: list[tuple[int, int]]          # (col offset, width) of C/B panels
    chunks: list[tuple[int, int]]          # (row offset, height) k-chunks
    gradual: bool

    @property
    def n_panels(self) -> int:
        return len(self.panels)

    @property
    def max_chunk(self) -> int:
        return max(h for _, h in self.chunks)

    @property
    def max_panel_width(self) -> int:
        return max(w for _, w in self.panels)

    def working_set_elements(self) -> int:
        """Peak device elements: resident C panel + chunk buffers."""
        wp = self.max_panel_width
        return self.M * wp + self.n_buffers * self.max_chunk * (self.M + wp)

    def h2d_elements(self) -> int:
        """Host-to-device traffic in elements (A re-read per panel)."""
        return self.n_panels * self.K * self.M + self.K * self.N

    def d2h_elements(self) -> int:
        """Device-to-host traffic in elements (C written once)."""
        return self.M * self.N


def plan_ksplit_inner(
    K: int,
    M: int,
    N: int,
    blocksize: int,
    budget_elements: int,
    *,
    n_buffers: int = DEFAULT_BUFFERS,
    gradual: bool = False,
) -> KSplitInnerPlan:
    """Plan a Fig-3 inner product within *budget_elements* device elements."""
    K, M, N = positive_int(K, "K"), positive_int(M, "M"), positive_int(N, "N")
    blocksize = min(positive_int(blocksize, "blocksize"), K)
    n_buffers = max(2, positive_int(n_buffers, "n_buffers"))
    budget_elements = positive_int(budget_elements, "budget_elements")

    for n_panels in range(1, N + 1):
        wp = math.ceil(N / n_panels)
        b = blocksize
        # shrink the k-chunk if even one panel with full chunks won't fit
        while b >= 1:
            need = M * wp + n_buffers * b * (M + wp)
            if need <= budget_elements:
                break
            b //= 2
        if b >= 1:
            chunks = (
                gradual_schedule(K, b) if gradual else uniform_schedule(K, b)
            )
            return KSplitInnerPlan(
                K=K,
                M=M,
                N=N,
                blocksize=b,
                n_buffers=n_buffers,
                panels=split_even(N, n_panels),
                chunks=chunks,
                gradual=gradual,
            )
    raise PlanError(
        f"inner product C({M}x{N}) = AᵀB with K={K} cannot fit in "
        f"{budget_elements} device elements under any panel split"
    )


@dataclass(frozen=True)
class PanelInnerPlan:
    """Layout for the blocking (Fig 4) inner product with resident panel Q.

    The M-by-K panel (Q1ᵀ, stored K-by-M) is device-resident; B streams in
    column blocks; each C block is produced and streamed out. ``keep_c`` is
    whether the full C additionally stays resident for reuse by the outer
    product (the §4.2 QR-level optimization).
    """

    K: int
    M: int            # panel width b_qr (rows of C)
    N: int
    blocksize: int
    n_buffers: int
    blocks: list[tuple[int, int]]   # (col offset, width) of B/C blocks
    keep_c: bool

    @property
    def max_block(self) -> int:
        return max(w for _, w in self.blocks)

    def working_set_elements(self) -> int:
        """Device elements beyond the already-resident panel."""
        keep = self.M * self.N if self.keep_c else self.M * self.max_block
        return keep + self.n_buffers * self.K * self.max_block

    def h2d_elements(self) -> int:
        """B streams in once (the resident panel is accounted by the caller)."""
        return self.K * self.N

    def d2h_elements(self) -> int:
        return self.M * self.N


def plan_panel_inner(
    K: int,
    M: int,
    N: int,
    blocksize: int,
    budget_elements: int,
    *,
    n_buffers: int = DEFAULT_BUFFERS,
    prefer_keep_c: bool = True,
) -> PanelInnerPlan:
    """Plan a Fig-4 inner product. *budget_elements* excludes the panel."""
    K, M, N = positive_int(K, "K"), positive_int(M, "M"), positive_int(N, "N")
    blocksize = min(positive_int(blocksize, "blocksize"), N)
    n_buffers = max(2, positive_int(n_buffers, "n_buffers"))

    # Prefer keeping the whole C resident (the §4.2 reuse that feeds the
    # outer product) even at the cost of a smaller streamed blocksize —
    # that is the paper's small-memory configuration — before giving up
    # and streaming C blocks out.
    passes = ((True, False) if prefer_keep_c else (False,))
    for keep_c in passes:
        b = blocksize
        while b >= 1:
            keep = M * N if keep_c else M * b
            need = keep + n_buffers * K * b
            if need <= budget_elements:
                return PanelInnerPlan(
                    K=K,
                    M=M,
                    N=N,
                    blocksize=b,
                    n_buffers=n_buffers,
                    blocks=uniform_schedule(N, b),
                    keep_c=keep_c,
                )
            b //= 2
    raise PlanError(
        f"panel inner product C({M}x{N}), K={K} cannot fit in "
        f"{budget_elements} device elements"
    )


@dataclass(frozen=True)
class RowStreamOuterPlan:
    """Layout for the recursive (Fig 5) outer product ``C(M,N) -= A B``.

    B (K-by-N) is device-resident (possibly panel-split over N when it is
    too large); row blocks of A and C stream through double buffers; an
    optional staging buffer decouples C move-out from the next move-in
    (§4.1.2 / Fig 10).
    """

    M: int
    K: int
    N: int
    blocksize: int
    n_buffers: int
    panels: list[tuple[int, int]]      # (col offset, width) of B/C panels
    blocks: list[tuple[int, int]]      # (row offset, height) of A/C blocks
    staging: bool
    b_resident: bool                   # B already on device (reuse from inner)

    @property
    def n_panels(self) -> int:
        return len(self.panels)

    @property
    def max_block(self) -> int:
        return max(h for _, h in self.blocks)

    @property
    def max_panel_width(self) -> int:
        return max(w for _, w in self.panels)

    def working_set_elements(self) -> int:
        wp = self.max_panel_width
        bb = self.max_block
        stage = bb * wp if self.staging else 0
        b_cost = 0 if self.b_resident and self.n_panels == 1 else self.K * wp
        return b_cost + self.n_buffers * bb * (self.K + wp) + stage

    def h2d_elements(self) -> int:
        # B panels partition N, so B moves in once total (or not at all when
        # it was left on device by the inner product); A is re-read once per
        # panel; every C row-block is read once.
        b_in = 0 if self.b_resident else self.K * self.N
        return b_in + self.n_panels * self.M * self.K + self.M * self.N

    def d2h_elements(self) -> int:
        return self.M * self.N


def plan_rowstream_outer(
    M: int,
    K: int,
    N: int,
    blocksize: int,
    budget_elements: int,
    *,
    n_buffers: int = DEFAULT_BUFFERS,
    staging: bool = True,
    b_resident: bool = False,
) -> RowStreamOuterPlan:
    """Plan a Fig-5 outer product within *budget_elements* device elements.

    When ``b_resident`` is set the K-by-N B operand is already on the
    device (reused from the inner product) and must survive the whole run;
    a panel split is then impossible, so the plan falls back to streaming B
    (the caller handles the spill) if a single resident panel cannot fit.
    """
    M, K, N = positive_int(M, "M"), positive_int(K, "K"), positive_int(N, "N")
    blocksize = min(positive_int(blocksize, "blocksize"), M)
    n_buffers = max(2, positive_int(n_buffers, "n_buffers"))

    for n_panels in range(1, N + 1):
        if b_resident and n_panels > 1:
            # a reused device-resident B cannot be panel-split; give up on
            # residency and re-plan as if B streamed from host
            return plan_rowstream_outer(
                M,
                K,
                N,
                blocksize,
                budget_elements,
                n_buffers=n_buffers,
                staging=staging,
                b_resident=False,
            )
        wp = math.ceil(N / n_panels)
        b = blocksize
        while b >= 1:
            stage = b * wp if staging else 0
            # a reused resident B was allocated by the caller and is not
            # charged against this budget
            b_cost = 0 if b_resident else K * wp
            need = b_cost + n_buffers * b * (K + wp) + stage
            if need <= budget_elements:
                return RowStreamOuterPlan(
                    M=M,
                    K=K,
                    N=N,
                    blocksize=b,
                    n_buffers=n_buffers,
                    panels=split_even(N, n_panels),
                    blocks=uniform_schedule(M, b),
                    staging=staging,
                    b_resident=b_resident and n_panels == 1,
                )
            b //= 2
    raise PlanError(
        f"outer product C({M}x{N}) -= A B with K={K} cannot fit in "
        f"{budget_elements} device elements under any panel split"
    )


@dataclass(frozen=True)
class TileOuterPlan:
    """Layout for the blocking (Fig 6) outer product with resident A and B.

    Only C moves: tiles of b1-by-b2 stream through double buffers (plus an
    optional staging buffer). A (M-by-K) and B (K-by-N) residency is the
    caller's responsibility (they are the panel Q and R12 of blocking QR).
    """

    M: int
    K: int
    N: int
    b1: int
    b2: int
    n_buffers: int
    row_blocks: list[tuple[int, int]]
    col_blocks: list[tuple[int, int]]
    staging: bool

    @property
    def n_tiles(self) -> int:
        return len(self.row_blocks) * len(self.col_blocks)

    def working_set_elements(self) -> int:
        """Device elements beyond the resident A and B."""
        stage = self.b1 * self.b2 if self.staging else 0
        return self.n_buffers * self.b1 * self.b2 + stage

    def h2d_elements(self) -> int:
        return self.M * self.N

    def d2h_elements(self) -> int:
        return self.M * self.N


def plan_tile_outer(
    M: int,
    K: int,
    N: int,
    blocksize: int,
    budget_elements: int,
    *,
    n_buffers: int = DEFAULT_BUFFERS,
    staging: bool = True,
) -> TileOuterPlan:
    """Plan a Fig-6 outer product; *budget_elements* excludes A and B."""
    M, K, N = positive_int(M, "M"), positive_int(K, "K"), positive_int(N, "N")
    b1 = min(positive_int(blocksize, "blocksize"), M)
    b2 = min(blocksize, N)
    n_buffers = max(2, positive_int(n_buffers, "n_buffers"))

    while b1 >= 1 and b2 >= 1:
        n_stage = 1 if staging else 0
        need = (n_buffers + n_stage) * b1 * b2
        if need <= budget_elements:
            return TileOuterPlan(
                M=M,
                K=K,
                N=N,
                b1=b1,
                b2=b2,
                n_buffers=n_buffers,
                row_blocks=uniform_schedule(M, b1),
                col_blocks=uniform_schedule(N, b2),
                staging=staging,
            )
        # shrink the larger tile dimension first
        if b1 >= b2 and b1 > 1:
            b1 //= 2
        elif b2 > 1:
            b2 //= 2
        else:
            break
    raise PlanError(
        f"tiled outer product C({M}x{N}) cannot fit tiles in "
        f"{budget_elements} device elements"
    )
