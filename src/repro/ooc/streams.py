"""Stream bundle shared by the OOC engines.

One stream per hardware engine — move-in, compute, move-out — is the
paper's §4.1.1 arrangement ("we need at least three streams to make these
three assignments run in parallel"). QR drivers create one bundle and pass
it to every engine call so that *cross-phase* overlap (§4.2: panel
move-outs hiding under GEMM move-ins, etc.) falls out of the event graph
instead of being special-cased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.execution.base import Executor


@dataclass
class StreamBundle:
    """The three pipeline streams used by all OOC engines."""

    h2d: Any
    compute: Any
    d2h: Any

    @classmethod
    def create(cls, ex: Executor, prefix: str = "ooc") -> "StreamBundle":
        """Make a fresh bundle on *ex*."""
        return cls(
            h2d=ex.stream(f"{prefix}-h2d"),
            compute=ex.stream(f"{prefix}-compute"),
            d2h=ex.stream(f"{prefix}-d2h"),
        )
