"""Out-of-core GEMM engines: tiling plans, pipelines, accounting."""

from repro.ooc.accounting import MovementReport, track
from repro.ooc.api import GemmResult, ooc_gemm
from repro.ooc.gradual import gradual_schedule, uniform_schedule
from repro.ooc.inner import InnerProductResult, run_ksplit_inner, run_panel_inner
from repro.ooc.outer import run_rowstream_outer, run_tile_outer
from repro.ooc.plan import (
    KSplitInnerPlan,
    PanelInnerPlan,
    RowStreamOuterPlan,
    TileOuterPlan,
    plan_ksplit_inner,
    plan_panel_inner,
    plan_rowstream_outer,
    plan_tile_outer,
    split_even,
)
from repro.ooc.streams import StreamBundle

__all__ = [
    "GemmResult",
    "InnerProductResult",
    "KSplitInnerPlan",
    "MovementReport",
    "PanelInnerPlan",
    "RowStreamOuterPlan",
    "StreamBundle",
    "TileOuterPlan",
    "gradual_schedule",
    "ooc_gemm",
    "plan_ksplit_inner",
    "plan_panel_inner",
    "plan_rowstream_outer",
    "plan_tile_outer",
    "run_ksplit_inner",
    "run_panel_inner",
    "run_rowstream_outer",
    "run_tile_outer",
    "split_even",
    "track",
    "uniform_schedule",
]
