"""Exception-safe device-buffer scopes.

Engines and drivers allocate several device buffers and run long op
streams between alloc and free; an error mid-stream (out-of-memory while
planning a later phase, a shape bug, an injected fault) must not leak the
allocations — the allocator's leak detector treats every leftover as a
bug. :class:`DeviceScope` is a context manager that tracks engine-owned
buffers and frees whatever is still tracked on exit, success or failure:

    with DeviceScope(ex) as scope:
        bufs = [scope.alloc(r, c, name) for ...]
        c_dev = scope.alloc(...)
        ... issue ops ...
        if keep_on_device:
            return scope.release(c_dev)    # ownership leaves the scope
        # everything still tracked is freed on exit
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.execution.base import DeviceBuffer, Executor


@dataclass
class DeviceScope:
    """Tracks device buffers and guarantees they are freed on scope exit."""

    ex: Executor
    _live: list[DeviceBuffer] = field(default_factory=list)

    def alloc(self, rows: int, cols: int, name: str = "buf") -> DeviceBuffer:
        """Allocate a buffer owned by this scope."""
        buf = self.ex.alloc(rows, cols, name)
        self._live.append(buf)
        return buf

    def adopt(self, buf: DeviceBuffer | None) -> DeviceBuffer | None:
        """Take ownership of an externally allocated buffer (e.g. one an
        engine returned); ``None`` passes through."""
        if buf is not None:
            self._live.append(buf)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Free a tracked buffer now (mid-scope)."""
        self._untrack(buf)
        self.ex.free(buf)

    def release(self, buf: DeviceBuffer) -> DeviceBuffer:
        """Transfer ownership out of the scope (the caller must free it)."""
        self._untrack(buf)
        return buf

    def _untrack(self, buf: DeviceBuffer) -> None:
        try:
            self._live.remove(buf)
        except ValueError:
            raise ExecutionError(
                f"buffer {buf.name!r} is not owned by this scope"
            ) from None

    def __enter__(self) -> "DeviceScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # free in reverse allocation order; surface free() errors only when
        # they would not mask an in-flight exception
        for buf in reversed(self._live):
            try:
                self.ex.free(buf)
            except Exception:
                if exc_type is None:
                    raise
        self._live.clear()
