"""Public out-of-core GEMM — the cuBLASXt-equivalent entry point.

The paper's §2.2 baseline libraries (cuBLASXt, BLASX) exist to provide
exactly this: ``C = alpha op(A) op(B) + beta C`` for host-resident
operands larger than device memory. :func:`ooc_gemm` exposes this
library's streaming engines behind one call, picking the strategy from
the operand shapes:

* ``trans_a=True`` (inner-product form, ``C = Aᵀ B``): the k-split engine
  (Fig 3) — C resident, reduction dimension streamed;
* otherwise (outer-product form): the row-streaming engine (Fig 5) — B
  resident, A and C row blocks streamed.

Like :func:`repro.qr.api.ooc_qr`, it runs numerically on real arrays or
as a data-free simulation on shape tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PAPER_SYSTEM, SystemConfig
from repro.errors import ShapeError, ValidationError
from repro.execution.base import RunStats
from repro.execution.concurrent import ConcurrentNumericExecutor
from repro.execution.numeric import NumericExecutor
from repro.execution.sim import SimExecutor
from repro.host.tiled import HostMatrix
from repro.ooc.accounting import MovementReport, track
from repro.ooc.inner import run_ksplit_inner
from repro.ooc.outer import run_rowstream_outer
from repro.ooc.plan import plan_ksplit_inner, plan_rowstream_outer
from repro.sim.trace import Trace
from repro.util.validation import one_of, positive_int


@dataclass
class GemmResult:
    """Result of one out-of-core GEMM."""

    c: np.ndarray | None          # numeric mode: the output matrix
    strategy: str                 # "ksplit-inner" | "rowstream-outer"
    stats: RunStats
    movement: MovementReport
    trace: Trace | None
    config: SystemConfig

    @property
    def makespan(self) -> float:
        """Simulated makespan, or measured wall-clock seconds in numeric
        mode (from :attr:`RunStats.wall_s`) when no trace was recorded."""
        if self.trace is not None:
            return self.trace.makespan
        return self.stats.wall_s

    @property
    def achieved_tflops(self) -> float:
        span = self.makespan
        return self.stats.total_flops / span / 1e12 if span > 0 else 0.0


def _as_operand(x, element_bytes: int, name: str) -> tuple[HostMatrix, bool]:
    if isinstance(x, HostMatrix):
        return x, not x.backed
    if isinstance(x, np.ndarray):
        return (
            HostMatrix.from_array(
                np.ascontiguousarray(x, dtype=np.float32), name=name
            ),
            False,
        )
    if isinstance(x, tuple) and len(x) == 2:
        return HostMatrix.shape_only(x[0], x[1], element_bytes, name=name), True
    raise ValidationError(
        f"{name} must be an ndarray, HostMatrix or (rows, cols) tuple"
    )


def _execute_gemm_graph(ex, config, mode, concurrency) -> Trace | None:
    """Schedule the recorded GEMM task graph (runtime='dag' back half)."""
    from repro.runtime import DagScheduler, NumericGraphBackend, SimGraphBackend

    graph = ex.graph
    if mode == "sim":
        return SimGraphBackend(config).run(graph)
    backend = NumericGraphBackend(config)
    scheduler = DagScheduler(graph)
    if concurrency == "threads":
        scheduler.run_threaded(backend)
        trace = backend.recorded_trace(graph)
    else:
        scheduler.run_serial(backend)
        trace = None
    backend.allocator.check_balanced()
    return trace


def ooc_gemm(
    a,
    b,
    *,
    trans_a: bool = False,
    alpha: float = 1.0,
    beta: float = 0.0,
    c=None,
    config: SystemConfig | None = None,
    blocksize: int = 16384,
    mode: str | None = None,
    device_memory: int | None = None,
    pipelined: bool = True,
    concurrency: str = "serial",
    runtime: str = "legacy",
) -> GemmResult:
    """Out-of-core ``C = alpha op(A) B + beta C`` for host-resident operands.

    Supported forms (covering both GEMM types of the paper's pipelines):

    * ``trans_a=True, alpha=1, beta=0`` — inner product ``C = Aᵀ B``;
    * ``trans_a=False, alpha=-1, beta=1`` — trailing update ``C -= A B``
      (C required);
    * ``trans_a=False, alpha=1, beta=0`` — plain ``C = A B`` (computed as
      an update of a zero C).

    Operands are ndarrays / :class:`HostMatrix` (numeric) or shape tuples
    (simulated). Returns a :class:`GemmResult`.

    ``concurrency="threads"`` (numeric mode only) runs the op stream on the
    concurrent executor — per-engine worker threads overlapping H2D,
    compute and D2H, see docs/concurrency.md — and attaches the recorded
    wall-clock trace to the result. Results are bitwise identical to
    ``"serial"``.

    ``runtime="dag"`` records the run as a tile-task graph
    (:mod:`repro.runtime`) and executes it with the dynamic dataflow
    scheduler instead of issuing ops imperatively — both GEMM engines are
    fully migrated; results are bitwise identical to the legacy runtime.
    See docs/runtime.md.
    """
    config = config or PAPER_SYSTEM
    if device_memory is not None:
        config = config.with_gpu(
            config.gpu.with_memory(device_memory, suffix="capped")
        )
    blocksize = positive_int(blocksize, "blocksize")

    host_a, a_shape_only = _as_operand(a, config.element_bytes, "A")
    host_b, b_shape_only = _as_operand(b, config.element_bytes, "B")
    shape_only = a_shape_only or b_shape_only
    if a_shape_only != b_shape_only:
        raise ValidationError("A and B must both be data or both be shapes")
    if mode is None:
        mode = "sim" if shape_only else "numeric"
    mode = one_of(mode, ("numeric", "sim"), "mode")
    if shape_only and mode != "sim":
        raise ValidationError("shape operands only support mode='sim'")
    concurrency = one_of(concurrency, ("serial", "threads"), "concurrency")
    if concurrency == "threads" and mode != "numeric":
        raise ValidationError("concurrency='threads' requires mode='numeric'")
    runtime = one_of(runtime, ("legacy", "dag"), "runtime")

    if runtime == "dag":
        from repro.runtime import GraphBuilder

        ex = GraphBuilder(
            config,
            label=f"gemm[dag] {host_a.shape}x{host_b.shape}",
            materialize=(mode == "numeric"),
        )
    elif mode == "sim":
        ex = SimExecutor(config)
    elif concurrency == "threads":
        ex = ConcurrentNumericExecutor(config)
    else:
        ex = NumericExecutor(config)
    budget = ex.allocator.free_bytes // config.element_bytes

    if trans_a:
        # inner product C(M, N) = Aᵀ B with A (K, M), B (K, N)
        if alpha != 1.0 or beta != 0.0:
            raise ValidationError(
                "the inner-product form supports alpha=1, beta=0 only"
            )
        if host_a.rows != host_b.rows:
            raise ShapeError(
                f"inner product needs matching K: A {host_a.shape}, "
                f"B {host_b.shape}"
            )
        K, M, N = host_a.rows, host_a.cols, host_b.cols
        if shape_only:
            host_c = HostMatrix.shape_only(M, N, config.element_bytes, name="C")
        else:
            host_c = HostMatrix.zeros(M, N, name="C")
        plan = plan_ksplit_inner(K, M, N, blocksize, budget)
        with track(ex) as moved:
            run_ksplit_inner(
                ex, host_a.full(), host_b.full(), host_c.full(), plan,
                pipelined=pipelined,
            )
        strategy = "ksplit-inner"
    else:
        # outer-product form C(M, N) (+)= alpha A B with A (M, K), B (K, N)
        if (alpha, beta) not in ((-1.0, 1.0), (1.0, 0.0)):
            raise ValidationError(
                "the outer-product form supports (alpha, beta) in "
                "{(-1, 1), (1, 0)}"
            )
        if host_a.cols != host_b.rows:
            raise ShapeError(
                f"gemm inner dims differ: A {host_a.shape}, B {host_b.shape}"
            )
        M, K, N = host_a.rows, host_a.cols, host_b.cols
        if beta == 1.0:
            if c is None:
                raise ValidationError("beta=1 requires the C operand")
            host_c, c_shape_only = _as_operand(c, config.element_bytes, "C")
            if c_shape_only != shape_only:
                raise ValidationError("C must match A/B backing")
        elif shape_only:
            host_c = HostMatrix.shape_only(M, N, config.element_bytes, name="C")
        else:
            host_c = HostMatrix.zeros(M, N, name="C")
        if host_c.shape != (M, N):
            raise ShapeError(f"C is {host_c.shape}, expected {(M, N)}")
        if alpha == 1.0:
            # C = A B as a subtraction update of zero C with negated A:
            # handled by negating alpha through a plan-level identity —
            # numerically we just run the update with alpha=-1 on -A.
            # Cleaner: run the engine and flip the sign afterwards is not
            # possible for sims, so negate A numerically when backed.
            if host_a.backed:
                host_a = HostMatrix.from_array(-host_a.data, name="A")
        plan = plan_rowstream_outer(M, K, N, blocksize, budget)
        with track(ex) as moved:
            run_rowstream_outer(
                ex, host_c.full(), host_a.full(), host_b.full(), plan,
                pipelined=pipelined,
            )
        strategy = "rowstream-outer"

    if runtime == "dag":
        trace = _execute_gemm_graph(ex, config, mode, concurrency)
    elif mode == "sim":
        trace = ex.finish()
    else:
        ex.synchronize()
        trace = (
            ex.recorded_trace()
            if isinstance(ex, ConcurrentNumericExecutor)
            else None
        )
        ex.close()
    ex.allocator.check_balanced()
    return GemmResult(
        c=host_c.data if host_c.backed else None,
        strategy=strategy,
        stats=ex.stats,
        movement=moved.report,
        trace=trace,
        config=config,
    )
