"""The library's single sanctioned wall-clock access point.

Every timing read in ``src/repro`` goes through this module — the
``wallclock-in-step-logic`` lint rule (:mod:`repro.analysis.lint`) flags
direct ``time.time()`` / ``time.perf_counter()`` / ``datetime.now()``
calls anywhere outside ``obs/``. Centralizing the reads buys three
things:

* checkpointed step logic provably never bakes a clock value into step
  state (bitwise-identical resume, docs/checkpoint.md);
* every span and RunStats figure is measured on the *same* monotonic
  clock, so measured timelines from different layers line up;
* tests can monkeypatch one module to make timing deterministic.
"""

from __future__ import annotations

import time


def monotonic() -> float:
    """Monotonic seconds for interval measurement (spans, RunStats,
    latencies, backoff deadlines). Never goes backwards; zero point is
    arbitrary — only differences are meaningful."""
    return time.perf_counter()


def wall_time() -> float:
    """Seconds since the Unix epoch, for human-facing timestamps only
    (checkpoint manifests, bench reports). Never use for measuring
    durations or in checkpointed step state."""
    return time.time()


def sleep(seconds: float) -> None:
    """The sanctioned pacing/backoff sleep (serve retry ladders, the
    dist pool's fault backoff, load-generator pacing, injected transfer
    stalls). Call it as ``clock.sleep(...)`` — a module-attribute call —
    so one monkeypatch makes every backoff ladder in the repo run in
    microseconds under test."""
    time.sleep(seconds)
