"""Shared metrics core: counters, gauges and histograms.

This is the registry every subsystem records its operational numbers
into — serve's scheduling counters and latency histograms, the load
generator's turnaround distribution, anything a scrape endpoint would
export. It grew up as ``repro.serve.metrics`` and moved here when
observability became a first-class subsystem; :mod:`repro.serve.metrics`
re-exports these names unchanged, and :meth:`MetricsRegistry.snapshot`
keeps the exact JSON shape the serve snapshot API has always produced.

Instruments are thread-safe and cheap: a counter is one locked add; a
histogram keeps exact count/sum/min/max plus a bounded reservoir of recent
observations for percentile estimates, so a long-running service never
accumulates unbounded state.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from typing import Any

from repro.errors import ValidationError


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValidationError(f"counter {self.name} cannot decrease (inc {n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Instantaneous value, with its observed peak (high-water mark)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta
            if self._value > self._max:
                self._max = self._value

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        """Largest value ever held (peak queue depth, peak admitted bytes)."""
        return self._max

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self._value, "max": self._max}


class Histogram:
    """Latency-style distribution: exact aggregates + percentile estimates.

    ``count``/``sum``/``min``/``max`` are exact over all observations; the
    percentiles come from a bounded reservoir of the most recent
    ``reservoir`` observations (exact until the reservoir overflows).
    """

    def __init__(self, name: str, help: str = "", reservoir: int = 4096):
        if reservoir < 1:
            raise ValidationError(f"reservoir must be >= 1, got {reservoir}")
        self.name = name
        self.help = help
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._recent: deque[float] = deque(maxlen=reservoir)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._recent.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0-100) of the reservoir, 0 when empty.

        Nearest-rank on the sorted recent observations — the standard
        p50/p99 reading for service latencies.
        """
        if not (0.0 <= q <= 100.0):
            raise ValidationError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            data = sorted(self._recent)
        if not data:
            return 0.0
        rank = max(0, math.ceil(q / 100.0 * len(data)) - 1)
        return data[rank]

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics and a JSON snapshot."""

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, help, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise ValidationError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", reservoir: int = 4096
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, reservoir=reservoir)

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one plain dict (stable key order)."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in items}

    def to_json(self, indent: int | None = None) -> str:
        """The snapshot serialized to JSON (what a /metrics endpoint serves)."""
        return json.dumps(self.snapshot(), indent=indent)
