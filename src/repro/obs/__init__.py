"""Unified observability: spans, metrics, trace export (docs/observability.md).

Every execution layer — the numeric/concurrent executors, the DAG
runtime, the serve scheduler, checkpointing, the health sentinel —
records into one :class:`SpanRecorder` when a caller opts in (``obs=``),
and the exporters in :mod:`repro.obs.export` turn the result into a
Perfetto timeline or a sim-vs-measured diff. With no recorder attached
(:data:`NULL_RECORDER`), instrumented paths are bitwise identical to
un-instrumented code.
"""

from repro.obs import clock
from repro.obs.derive import RunSummary, lane_intervals, run_summary
from repro.obs.export import (
    render_sim_vs_measured,
    spans_to_chrome_events,
    spans_to_chrome_trace,
    spans_to_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import (
    ENGINE_LANES,
    NULL_RECORDER,
    NullRecorder,
    Span,
    SpanRecorder,
)

__all__ = [
    "ENGINE_LANES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "RunSummary",
    "Span",
    "SpanRecorder",
    "clock",
    "lane_intervals",
    "render_sim_vs_measured",
    "run_summary",
    "spans_to_chrome_events",
    "spans_to_chrome_trace",
    "spans_to_trace",
]
