"""Span exporters: Chrome trace JSON, sim-Trace adapter, sim-vs-measured diff.

Three ways out of a recorded span list:

* :func:`spans_to_chrome_trace` — Chrome ``trace_event`` JSON with one
  timeline row per lane, loadable at https://ui.perfetto.dev (same format
  the simulator's :func:`repro.sim.export.to_chrome_trace` emits, so sim
  and measured traces open side by side in the same viewer).
* :func:`spans_to_trace` — adapt engine-lane op spans into a
  :class:`repro.sim.trace.Trace` so every sim-side analysis (timeline
  rendering, overlap accounting, the race detector's interval math)
  applies unchanged to measured runs.
* :func:`render_sim_vs_measured` — the paper's argument in one table:
  predicted vs measured makespan, per-engine busy time and overlap ratio
  for the same plan.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.derive import run_summary
from repro.obs.span import ENGINE_LANES, Span
from repro.sim.ops import EngineKind, OpKind, SimOp
from repro.sim.trace import Trace
from repro.util.tables import render_table

#: cat values that map onto sim op kinds; anything else on an engine lane
#: becomes ``small`` (the sim's own bucket for untyped minor work).
_CAT_TO_OPKIND = {k.value: k for k in OpKind}


def _format_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    """Render hot-path attr encodings human-readable for export.

    Executors record tile rects as raw tuples (``("w", 0, 32, 0, 8)``) to
    keep string formatting out of the op path; here they become the
    compact ``"w[0:32,0:8]"`` form a trace viewer shows.
    """
    rects = attrs.get("rects")
    if rects:
        attrs = dict(attrs)
        attrs["rects"] = [
            f"{mode}[{r0}:{r1},{c0}:{c1}]" for mode, r0, r1, c0, c1 in rects
        ]
    return attrs


def _lane_order(spans: list[Span]) -> list[str]:
    """Engine lanes first (fixed order), then the rest alphabetically."""
    seen = {s.lane for s in spans if s.lane}
    extra = sorted(seen - set(ENGINE_LANES))
    return [lane for lane in ENGINE_LANES if lane in seen] + extra


def spans_to_chrome_events(spans: list[Span]) -> list[dict[str, Any]]:
    """Chrome ``trace_event`` dicts for *spans* (one tid per lane)."""
    lanes = _lane_order(spans)
    tids = {lane: i for i, lane in enumerate(lanes)}
    events: list[dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": lane},
        }
        for lane, tid in tids.items()
    ]
    for span in spans:
        tid = tids.get(span.lane, len(lanes))
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(_format_attrs(span.attrs))
        if span.is_event:
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "pid": 0,
                    "tid": tid,
                    "ts": span.start_s * 1e6,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": span.start_s * 1e6,  # microseconds
                    "dur": span.duration_s * 1e6,
                    "args": args,
                }
            )
    return events


def spans_to_chrome_trace(spans: list[Span], path: str | Path) -> Path:
    """Write *spans* as Chrome-trace/Perfetto JSON; returns the path."""
    path = Path(path)
    payload = {"traceEvents": spans_to_chrome_events(spans)}
    path.write_text(json.dumps(payload, indent=1))
    return path


def spans_to_trace(spans: list[Span]) -> Trace:
    """Adapt engine-lane op spans into a sim :class:`Trace`.

    Only interval spans on the three engine lanes become ops (driver root
    spans, serve phases and events are timeline furniture, not engine
    work). The span's ``cat`` maps to an :class:`OpKind` when it names
    one; anything else falls back to ``small``. Timestamps are shifted so
    the first engine op starts at t=0 — a Trace models engine work, and
    setup time before the first op (input generation, graph build) would
    otherwise read as leading idle.
    """
    trace = Trace()
    ops = [s for s in spans if s.lane in ENGINE_LANES and not s.is_event]
    t0 = min((s.start_s for s in ops), default=0.0)
    for span in ops:
        op = SimOp(
            name=span.name,
            engine=EngineKind(span.lane),
            kind=_CAT_TO_OPKIND.get(span.cat, OpKind.SMALL),
            duration=span.duration_s,
            nbytes=int(span.attrs.get("nbytes", 0)),
            flops=int(span.attrs.get("flops", 0)),
            tags={"tag": span.attrs["tag"]} if "tag" in span.attrs else {},
        )
        op.start = span.start_s - t0
        op.end = span.end_s - t0
        trace.add(op)
    return trace


def render_sim_vs_measured(
    sim_trace: Trace, spans: list[Span], *, title: str | None = None
) -> str:
    """Side-by-side table of predicted (sim) vs measured (span) figures.

    Measured busy times come from :func:`repro.obs.derive.run_summary`
    (merged intervals per lane) and sim figures from the Trace's own
    accounting — both use the same interval arithmetic, so a row's ratio
    is a genuine model error, not a definition mismatch.
    """
    summary = run_summary(spans)

    def ratio(measured: float, predicted: float) -> str:
        return f"{measured / predicted:.2f}x" if predicted > 0 else "-"

    rows: list[list[object]] = [
        [
            "makespan_s",
            f"{sim_trace.makespan:.6f}",
            f"{summary.makespan_s:.6f}",
            ratio(summary.makespan_s, sim_trace.makespan),
        ]
    ]
    for engine in (EngineKind.H2D, EngineKind.COMPUTE, EngineKind.D2H):
        predicted = sim_trace.busy_time(engine)
        measured = summary.lane_busy_s.get(engine.value, 0.0)
        rows.append(
            [
                f"busy_{engine.value}_s",
                f"{predicted:.6f}",
                f"{measured:.6f}",
                ratio(measured, predicted),
            ]
        )
    rows.append(
        [
            "overlap_ratio",
            f"{sim_trace.overlap_ratio():.3f}",
            f"{summary.overlap_ratio:.3f}",
            "-",
        ]
    )
    return render_table(
        ["figure", "simulated", "measured", "meas/sim"],
        rows,
        title=title or "sim vs measured",
    )
