"""Structured spans: the core record of the observability subsystem.

A :class:`Span` is one timed interval of work — an executor op, a DAG
task, a serve job phase, a checkpoint save — with a lane (the engine,
stream or subsystem whose timeline row it belongs to), a category, a
parent link, and free-form attributes (tile rects, byte counts, dep
edges). Zero-duration spans are *events* (health escalations, cache
puts).

The :class:`SpanRecorder` is built to sit inside executor hot paths:

* **per-thread buffers** — each recording thread appends raw tuples to a
  thread-local list; the only lock is taken once per thread (to register
  its buffer) and once per :meth:`SpanRecorder.spans` drain. Recording an
  op costs one ``next()`` on an id counter plus one list append.
* **single timebase** — every timestamp is seconds since the recorder's
  creation, read from :func:`repro.obs.clock.monotonic` (injectable for
  deterministic tests), so spans from different executors, the serve
  scheduler, and checkpoint sessions all line up on one timeline.
* **off by default** — instrumented code holds :data:`NULL_RECORDER`
  (``enabled`` is False) unless a caller passes a live recorder; the off
  path is a single attribute check and execution stays bitwise identical
  to un-instrumented code.

Exporters (:mod:`repro.obs.export`) and the derived run summary
(:mod:`repro.obs.derive`) consume the materialized span list.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.clock import monotonic as _default_clock

#: Conventional lane names for the three hardware engines (match
#: :class:`~repro.sim.ops.EngineKind` values so exporters can map back).
ENGINE_LANES = ("h2d", "compute", "d2h")


@dataclass(frozen=True)
class Span:
    """One completed timed interval (or instantaneous event)."""

    span_id: int
    parent_id: int | None
    name: str
    #: Category: an op kind (``copy_h2d``/``gemm``/...), ``run``, ``job``,
    #: ``serve``, ``ckpt``, ``health``, ``mem`` — drives export grouping.
    cat: str
    #: Timeline row this span renders on: an engine name, ``driver``,
    #: ``jobs``, ``serve``, ...
    lane: str
    start_s: float
    end_s: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def is_event(self) -> bool:
        """Zero-duration marker (rendered as an instant in Chrome traces)."""
        return self.end_s == self.start_s


class SpanRecorder:
    """Thread-safe span sink with per-thread buffers (see module docstring).

    Parameters
    ----------
    clock
        Monotonic clock callable; defaults to
        :func:`repro.obs.clock.monotonic`. Tests inject a deterministic
        counter to make span timestamps reproducible.
    """

    #: Instrumented code guards its hot path on this.
    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else _default_clock
        self._origin = self._clock()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: One raw-tuple buffer per recording thread, registered on that
        #: thread's first record.
        self._buffers: list[list[tuple]] = []
        self._local = threading.local()

    # -- time / ids --------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the recorder was created (the span timebase)."""
        return self._clock() - self._origin

    def allocate_id(self) -> int:
        """Reserve a span id before its interval completes — used for
        cross-thread spans (a serve job's root span starts on the submit
        thread and is recorded on the worker that resolves it)."""
        return next(self._ids)

    def current_id(self) -> int | None:
        """The innermost open :meth:`span` on the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _buffer(self) -> list[tuple]:
        buf = getattr(self._local, "buffer", None)
        if buf is None:
            buf = []
            self._local.buffer = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        cat: str = "op",
        lane: str = "",
        parent_id: int | None = None,
        span_id: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> int:
        """Append one already-measured interval; returns its span id.

        This is the executor hot path: timestamps were read by the
        caller (around the op body), so recording is just an id bump and
        a thread-local append. ``parent_id`` defaults to the calling
        thread's innermost open :meth:`span`; pass it explicitly when
        recording from a different thread than the one that issued the
        work.
        """
        sid = span_id if span_id is not None else next(self._ids)
        if parent_id is None:
            parent_id = self.current_id()
        self._buffer().append(
            # copy attrs now: the caller may reuse/mutate its dict
            (sid, parent_id, name, cat, lane, start_s, end_s,
             dict(attrs) if attrs else None)
        )
        return sid

    def event(
        self,
        name: str,
        *,
        cat: str = "event",
        lane: str = "",
        parent_id: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> int:
        """Record an instantaneous marker at the current time."""
        t = self.now()
        return self.record(
            name, t, t, cat=cat, lane=lane, parent_id=parent_id, attrs=attrs
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "phase",
        lane: str = "",
        attrs: dict[str, Any] | None = None,
    ) -> Iterator[int]:
        """Context manager recording the enclosed work as one span.

        Nested ``span`` blocks on the same thread parent automatically;
        :meth:`record` calls made inside inherit the innermost open span
        as their parent (including executor ops issued under a driver
        root span).
        """
        sid = next(self._ids)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        parent = stack[-1] if stack else None
        stack.append(sid)
        start = self.now()
        try:
            yield sid
        finally:
            stack.pop()
            self.record(
                name, start, self.now(),
                cat=cat, lane=lane, parent_id=parent, span_id=sid, attrs=attrs,
            )

    # -- draining ----------------------------------------------------------------

    def spans(self) -> list[Span]:
        """All recorded spans, materialized and sorted by (start, id).

        Safe to call while other threads are still recording (it snapshots
        each buffer), though the canonical use is after the measured run
        has quiesced.
        """
        with self._lock:
            raw = [tuple(buf) for buf in self._buffers]
        merged = [item for buf in raw for item in buf]
        spans = [
            Span(
                span_id=sid, parent_id=parent, name=name, cat=cat, lane=lane,
                start_s=start, end_s=end, attrs=dict(attrs) if attrs else {},
            )
            for sid, parent, name, cat, lane, start, end, attrs in merged
        ]
        spans.sort(key=lambda s: (s.start_s, s.span_id))
        return spans

    def __len__(self) -> int:
        with self._lock:
            return sum(len(buf) for buf in self._buffers)


class NullRecorder:
    """Disabled recorder: every operation is a no-op.

    Instrumented code holds this by default so the observability hooks
    cost one attribute check when off — and, critically, change nothing
    about execution (the differential harness proves instrumented paths
    bitwise identical with obs off).
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def allocate_id(self) -> int:
        return 0

    def current_id(self) -> None:
        return None

    def record(self, *args: Any, **kwargs: Any) -> int:
        return 0

    def event(self, *args: Any, **kwargs: Any) -> int:
        return 0

    @contextmanager
    def span(self, *args: Any, **kwargs: Any) -> Iterator[None]:
        yield None

    def spans(self) -> list[Span]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared disabled recorder (the ``NULL_SENTINEL`` idiom from repro.health).
NULL_RECORDER = NullRecorder()
