"""Derived run figures: one place that turns spans into summary numbers.

``RunStats`` used to be the only source of wall-clock figures for real
executions, and each executor computed its own — a double-counting risk
whenever a layer both timed itself and was timed by its caller (the DAG
backend stamps op times *and* the scheduler stamps task times). This
module is now the single derivation point: every makespan / busy-time /
overlap figure reported for a measured run comes from the recorded span
list, via the same interval arithmetic the simulator's
:class:`~repro.sim.trace.Trace` uses for its overlap accounting — so
sim and measured numbers are definitionally comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.span import ENGINE_LANES, Span
from repro.sim.trace import interval_difference, interval_length, merge_intervals


@dataclass(frozen=True)
class RunSummary:
    """Figures derived from one run's span list (see :func:`run_summary`)."""

    #: Latest end minus earliest start over the engine-lane interval spans
    #: (all interval spans when no engine work was recorded) — the
    #: measured analogue of a sim Trace's makespan, excluding driver-lane
    #: setup such as input generation or graph build.
    makespan_s: float
    t_start_s: float
    t_end_s: float
    n_spans: int
    #: Zero-duration markers (health escalations, cache events, ...).
    n_events: int
    #: Busy time per lane (merged intervals, so nested/overlapping spans
    #: on one lane never double-count).
    lane_busy_s: dict[str, float] = field(default_factory=dict)
    #: Timeline length where a DMA lane is busy but compute is idle.
    exposed_transfer_s: float = 0.0
    #: ``1 - exposed / dma_busy`` — same definition as
    #: :meth:`repro.sim.trace.Trace.overlap_ratio`.
    overlap_ratio: float = 1.0


def lane_intervals(spans: list[Span], lane: str) -> list[tuple[float, float]]:
    """Merged busy intervals of *lane* (interval spans only)."""
    return merge_intervals(
        (s.start_s, s.end_s) for s in spans if s.lane == lane and not s.is_event
    )


def run_summary(spans: list[Span]) -> RunSummary:
    """Summarize a run's spans into makespan / busy / overlap figures.

    Busy times and the overlap ratio are computed per *lane* with merged
    intervals: a driver root span on the ``driver`` lane coexisting with
    op spans on engine lanes contributes to its own lane only, and two
    nested spans on the same lane count their union once — this is the
    double-counting fix for the old per-layer RunStats timing.
    """
    timed = [s for s in spans if not s.is_event]
    if not timed:
        return RunSummary(
            makespan_s=0.0, t_start_s=0.0, t_end_s=0.0,
            n_spans=0, n_events=len(spans),
        )
    # makespan over engine work only: the driver root span also covers
    # setup (input staging, graph build), which is not part of the
    # schedule the sim predicts or RunStats.wall_s measures
    engine_ops = [s for s in timed if s.lane in ENGINE_LANES] or timed
    t_start = min(s.start_s for s in engine_ops)
    t_end = max(s.end_s for s in engine_ops)

    lanes = sorted({s.lane for s in timed if s.lane})
    busy = {lane: interval_length(lane_intervals(timed, lane)) for lane in lanes}

    compute_iv = lane_intervals(timed, "compute")
    dma_iv = merge_intervals(
        (s.start_s, s.end_s)
        for s in timed
        if s.lane in ENGINE_LANES and s.lane != "compute"
    )
    exposed = interval_length(interval_difference(dma_iv, compute_iv))
    dma_busy = interval_length(dma_iv)
    overlap = 1.0 if dma_busy == 0 else max(0.0, 1.0 - exposed / dma_busy)

    return RunSummary(
        makespan_s=t_end - t_start,
        t_start_s=t_start,
        t_end_s=t_end,
        n_spans=len(timed),
        n_events=len(spans) - len(timed),
        lane_busy_s=busy,
        exposed_transfer_s=exposed,
        overlap_ratio=overlap,
    )
