"""Execution traces: the simulator's output and the source of every
"figure" (timeline) and accounting number the benchmark harness reports."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import SimulationError
from repro.sim.ops import EngineKind, OpKind, SimOp


@dataclass
class Trace:
    """An ordered collection of completed (scheduled) ops."""

    ops: list[SimOp] = field(default_factory=list)

    def __iter__(self) -> Iterator[SimOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def add(self, op: SimOp) -> None:
        """Append a scheduled op to the trace."""
        if not op.scheduled:
            raise SimulationError(f"cannot trace unscheduled op {op.name!r}")
        self.ops.append(op)

    def extend(self, ops: Iterable[SimOp]) -> None:
        """Append many scheduled ops."""
        for op in ops:
            self.add(op)

    # -- time queries --------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End of the last op (total simulated execution time)."""
        return max((op.end for op in self.ops), default=0.0)

    def by_engine(self, engine: EngineKind) -> list[SimOp]:
        """Ops on *engine*, sorted by start time."""
        return sorted(
            (op for op in self.ops if op.engine == engine),
            key=lambda op: (op.start, op.op_id),
        )

    def busy_time(self, engine: EngineKind) -> float:
        """Total time *engine* spent executing ops."""
        return sum(op.end - op.start for op in self.ops if op.engine == engine)

    def select(self, pred: Callable[[SimOp], bool]) -> list[SimOp]:
        """Ops satisfying *pred*, in schedule order."""
        return sorted(
            (op for op in self.ops if pred(op)), key=lambda op: (op.start, op.op_id)
        )

    # -- volume / rate queries ------------------------------------------------

    def bytes_moved(self, kind: OpKind) -> int:
        """Total bytes moved by ops of copy kind *kind*."""
        return sum(op.nbytes for op in self.ops if op.kind == kind)

    @property
    def h2d_bytes(self) -> int:
        """Total host-to-device traffic in bytes."""
        return self.bytes_moved(OpKind.COPY_H2D)

    @property
    def d2h_bytes(self) -> int:
        """Total device-to-host traffic in bytes."""
        return self.bytes_moved(OpKind.COPY_D2H)

    @property
    def total_flops(self) -> int:
        """Total flops across compute ops."""
        return sum(op.flops for op in self.ops)

    @property
    def achieved_flops_rate(self) -> float:
        """End-to-end flops/s (total flops over makespan)."""
        span = self.makespan
        return self.total_flops / span if span > 0 else 0.0

    def compute_time(self) -> float:
        """Busy time of the compute engine."""
        return self.busy_time(EngineKind.COMPUTE)

    def compute_time_by_tag(self) -> dict[str, float]:
        """Compute-engine busy time grouped by the op's ``tag`` (phase).

        QR drivers tag their ops ``panel`` / ``inner`` / ``outer``, so this
        is the source of the paper's Table 4 GEMMs-vs-panel split.
        """
        times: dict[str, float] = defaultdict(float)
        for op in self.ops:
            if op.engine == EngineKind.COMPUTE:
                tag = op.tags.get("tag", op.kind.value)
                times[tag] += op.end - op.start
        return dict(times)

    def transfer_time(self) -> float:
        """Busy time of both DMA engines combined."""
        return self.busy_time(EngineKind.H2D) + self.busy_time(EngineKind.D2H)

    def overlap_ratio(self) -> float:
        """Fraction of DMA busy time hidden under other engines' work.

        1.0 means every byte moved while something else ran (the paper's
        "perfectly overlapped"); 0.0 means fully serialized. Defined as
        ``1 - exposed_transfer / transfer_busy`` where *exposed* transfer
        time is the part of the timeline where only DMA engines are active.
        """
        transfer = self.transfer_time()
        if transfer == 0:
            return 1.0
        exposed = self._exposed_transfer_time()
        return max(0.0, 1.0 - exposed / transfer)

    def _exposed_transfer_time(self) -> float:
        """Timeline length where a DMA engine is busy but compute is idle."""
        compute_iv = _merge_intervals(
            (op.start, op.end) for op in self.ops if op.engine == EngineKind.COMPUTE
        )
        dma_iv = _merge_intervals(
            (op.start, op.end) for op in self.ops if op.engine != EngineKind.COMPUTE
        )
        return _interval_length(_interval_difference(dma_iv, compute_iv))

    # -- structural checks (used by tests and the simulator itself) ----------

    def check_engine_serial(self) -> None:
        """Raise unless no engine ever runs two ops at once."""
        for engine in EngineKind:
            prev_end = 0.0
            for op in self.by_engine(engine):
                if op.start < prev_end - 1e-12:
                    raise SimulationError(
                        f"engine {engine.value} overlap at op {op.name!r}"
                    )
                prev_end = op.end

    def check_causality(self) -> None:
        """Raise unless every op starts at or after all its dependencies end."""
        for op in self.ops:
            for dep in op.deps:
                if not dep.scheduled or op.start < dep.end - 1e-12:
                    raise SimulationError(
                        f"op {op.name!r} starts before its dependency "
                        f"{dep.name!r} ends"
                    )


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of (start, end) intervals as a sorted, disjoint list.

    Shared by the sim's overlap accounting and the measured-span summary
    in :mod:`repro.obs.derive`, so both layers define "busy time" and
    "exposed transfer" identically.
    """
    ivs = sorted((s, e) for s, e in intervals if e > s)
    merged: list[tuple[float, float]] = []
    for s, e in ivs:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def interval_difference(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Parts of intervals *a* not covered by intervals *b* (both merged)."""
    result: list[tuple[float, float]] = []
    j = 0
    for s, e in a:
        cur = s
        while j < len(b) and b[j][1] <= cur:
            j += 1
        k = j
        while k < len(b) and b[k][0] < e:
            bs, be = b[k]
            if bs > cur:
                result.append((cur, min(bs, e)))
            cur = max(cur, be)
            if cur >= e:
                break
            k += 1
        if cur < e:
            result.append((cur, e))
    return result


def interval_length(intervals: list[tuple[float, float]]) -> float:
    """Total covered length of a disjoint interval list."""
    return sum(e - s for s, e in intervals)


# Historical private names, kept for callers predating the obs subsystem.
_merge_intervals = merge_intervals
_interval_difference = interval_difference
_interval_length = interval_length
