"""Trace export: CSV / JSON / Chrome-trace formats.

ASCII Gantt charts are built in; for real plotting or the Chrome/Perfetto
timeline viewer (`chrome://tracing`), export the raw segments:

    from repro.sim.export import to_chrome_trace
    path = to_chrome_trace(result.trace, "qr.json")   # open in Perfetto
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from repro.sim.ops import EngineKind
from repro.sim.trace import Trace

#: Stable engine ordering for exports.
ENGINE_ORDER = (EngineKind.H2D, EngineKind.COMPUTE, EngineKind.D2H)


def trace_rows(trace: Trace) -> list[dict[str, Any]]:
    """One dict per op, schedule-ordered — the common export payload."""
    rows = []
    for op in sorted(trace.ops, key=lambda o: (o.start, o.op_id)):
        rows.append(
            {
                "name": op.name,
                "engine": op.engine.value,
                "kind": op.kind.value,
                "stream": getattr(op.stream, "name", ""),
                "start_s": op.start,
                "end_s": op.end,
                "duration_s": op.end - op.start,
                "bytes": op.nbytes,
                "flops": op.flops,
                "tag": op.tags.get("tag", ""),
            }
        )
    return rows


def to_csv(trace: Trace, path: str | Path) -> Path:
    """Write the trace as CSV; returns the path."""
    path = Path(path)
    rows = trace_rows(trace)
    fields = [
        "name", "engine", "kind", "stream", "start_s", "end_s",
        "duration_s", "bytes", "flops", "tag",
    ]
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)
    return path


def to_json(trace: Trace, path: str | Path) -> Path:
    """Write the trace (ops + summary) as JSON; returns the path."""
    path = Path(path)
    payload = {
        "makespan_s": trace.makespan,
        "h2d_bytes": trace.h2d_bytes,
        "d2h_bytes": trace.d2h_bytes,
        "total_flops": trace.total_flops,
        "overlap_ratio": trace.overlap_ratio(),
        "busy_s": {e.value: trace.busy_time(e) for e in ENGINE_ORDER},
        "ops": trace_rows(trace),
    }
    path.write_text(json.dumps(payload, indent=1))
    return path


def to_chrome_trace(trace: Trace, path: str | Path) -> Path:
    """Write Chrome-trace/Perfetto JSON (one row per engine); returns the
    path. Open at https://ui.perfetto.dev or chrome://tracing."""
    path = Path(path)
    events = []
    tids = {engine: i for i, engine in enumerate(ENGINE_ORDER)}
    for engine, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": engine.value},
            }
        )
    for op in trace.ops:
        events.append(
            {
                "name": op.name,
                "cat": op.kind.value,
                "ph": "X",
                "pid": 0,
                "tid": tids[op.engine],
                "ts": op.start * 1e6,      # microseconds
                "dur": (op.end - op.start) * 1e6,
                "args": {
                    "bytes": op.nbytes,
                    "flops": op.flops,
                    "stream": getattr(op.stream, "name", ""),
                },
            }
        )
    path.write_text(json.dumps({"traceEvents": events}, indent=1))
    return path
