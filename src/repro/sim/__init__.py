"""Discrete-event CPU-GPU simulator: streams, events, engines, allocator,
traces and ASCII timelines."""

from repro.sim.export import to_chrome_trace, to_csv, to_json, trace_rows
from repro.sim.memory import Allocation, DeviceAllocator
from repro.sim.ops import EngineKind, OpKind, SimOp
from repro.sim.race import Race, assert_race_free, detect_races
from repro.sim.scheduler import StreamProgram, happens_before_signature
from repro.sim.simulator import GpuSimulator
from repro.sim.stream import Event, Stream
from repro.sim.timeline import Segment, render_summary, render_timeline, segments
from repro.sim.trace import Trace

__all__ = [
    "Allocation",
    "DeviceAllocator",
    "EngineKind",
    "Event",
    "GpuSimulator",
    "OpKind",
    "Race",
    "Segment",
    "SimOp",
    "Stream",
    "StreamProgram",
    "Trace",
    "assert_race_free",
    "detect_races",
    "happens_before_signature",
    "render_summary",
    "render_timeline",
    "segments",
    "to_chrome_trace",
    "to_csv",
    "to_json",
    "trace_rows",
]
