"""ASCII timeline (Gantt) rendering of simulator traces.

The paper's Figures 7-15 are NVVP-style timelines with one row per engine
(H2D copies, compute, D2H copies). :func:`render_timeline` reproduces them
as text so the benchmark harness can regenerate each figure; the raw
segment lists are also exposed for programmatic checks and plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.ops import EngineKind, OpKind, SimOp
from repro.sim.trace import Trace
from repro.util.units import fmt_time

#: Glyph used per op kind in the Gantt rows.
GLYPHS = {
    OpKind.COPY_H2D: ">",
    OpKind.COPY_D2H: "<",
    OpKind.COPY_D2D: "=",
    OpKind.GEMM: "#",
    OpKind.PANEL: "P",
    OpKind.SMALL: ".",
}

ENGINE_LABELS = {
    EngineKind.H2D: "H2D copy",
    EngineKind.COMPUTE: "Compute ",
    EngineKind.D2H: "D2H copy",
}


@dataclass(frozen=True)
class Segment:
    """One bar of a timeline row."""

    name: str
    kind: OpKind
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def segments(trace: Trace, engine: EngineKind) -> list[Segment]:
    """The ordered bars of *engine*'s timeline row."""
    return [
        Segment(op.name, op.kind, op.start, op.end)
        for op in trace.by_engine(engine)
    ]


def render_timeline(
    trace: Trace,
    *,
    width: int = 100,
    title: str | None = None,
    t_end: float | None = None,
) -> str:
    """Render the three engine rows of *trace* as an ASCII Gantt chart.

    Each column of the chart is one time bucket of ``makespan / width``; a
    bucket shows the glyph of the op covering most of it, or a space when
    the engine is idle. A scale line and a per-engine utilisation summary
    follow the rows.
    """
    span = t_end if t_end is not None else trace.makespan
    lines: list[str] = []
    if title:
        lines.append(title)
    if span <= 0 or len(trace) == 0:
        lines.append("(empty timeline)")
        return "\n".join(lines)

    dt = span / width
    for engine in (EngineKind.H2D, EngineKind.COMPUTE, EngineKind.D2H):
        row = []
        segs = segments(trace, engine)
        for col in range(width):
            lo, hi = col * dt, (col + 1) * dt
            best_kind, best_cover = None, 0.0
            for seg in segs:
                if seg.end <= lo:
                    continue
                if seg.start >= hi:
                    break
                cover = min(seg.end, hi) - max(seg.start, lo)
                if cover > best_cover:
                    best_cover, best_kind = cover, seg.kind
            row.append(GLYPHS[best_kind] if best_kind is not None else " ")
        busy = trace.busy_time(engine)
        util = 100.0 * busy / span
        lines.append(
            f"{ENGINE_LABELS[engine]} |{''.join(row)}| {util:5.1f}% busy"
        )
    lines.append(
        f"{'':9}0{'':{max(0, width - len(fmt_time(span)) - 1)}}{fmt_time(span)}"
    )
    lines.append(
        "legend: > h2d   < d2h   # gemm   P panel   = d2d stage   . small"
    )
    return "\n".join(lines)


def render_summary(trace: Trace, *, title: str | None = None) -> str:
    """One-paragraph numeric summary of a trace (used under each figure)."""
    from repro.util.units import fmt_bytes, fmt_rate

    lines = [] if title is None else [title]
    lines.append(f"  makespan        : {fmt_time(trace.makespan)}")
    lines.append(f"  compute busy    : {fmt_time(trace.compute_time())}")
    lines.append(
        f"  H2D traffic     : {fmt_bytes(trace.h2d_bytes)} "
        f"({fmt_time(trace.busy_time(EngineKind.H2D))})"
    )
    lines.append(
        f"  D2H traffic     : {fmt_bytes(trace.d2h_bytes)} "
        f"({fmt_time(trace.busy_time(EngineKind.D2H))})"
    )
    lines.append(f"  overlap ratio   : {trace.overlap_ratio():.3f}")
    lines.append(f"  achieved rate   : {fmt_rate(trace.achieved_flops_rate)}")
    return "\n".join(lines)
