"""Data-race detection for simulated stream programs.

CUDA gives no correctness guarantees between ops on different streams
unless an event orders them — a pipeline that "works" may only work
because today's engine timings happened to serialize it. This detector
checks the *dependency graph*, not the clock: two ops conflict if they
touch overlapping device-buffer regions, at least one writes, and neither
happens-before the other through stream-FIFO/event edges.

The OOC engines' buffer-recycling logic (double buffers, staging, resident
C reuse across panels) is exactly the kind of code this catches; the test
suite runs every engine under the detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.ops import SimOp
from repro.sim.trace import Trace
from repro.util.regions import rects_overlap

#: Access record: (buffer_handle, row0, row1, col0, col1, is_write)
Access = tuple[int, int, int, int, int, bool]


@dataclass(frozen=True)
class Race:
    """One detected pair of unordered conflicting accesses."""

    op_a: SimOp
    op_b: SimOp
    buffer_handle: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"race on buffer {self.buffer_handle}: "
            f"{self.op_a.name!r} vs {self.op_b.name!r}"
        )


def _overlap(a: Access, b: Access) -> bool:
    if a[0] != b[0] or not (a[5] or b[5]):
        return False
    return rects_overlap((a[1], a[2]), (a[3], a[4]), (b[1], b[2]), (b[3], b[4]))


def find_hazards(ops: Sequence[SimOp]) -> list[Race]:
    """All unordered conflicting op pairs in an issue-ordered op list.

    The static core shared by the dynamic detector (:func:`detect_races`,
    which feeds it schedule-ordered trace ops) and the plan verifier
    (:mod:`repro.analysis.verify`, which feeds it a captured program that
    was never executed). *ops* must be topologically ordered — every
    dependency precedes its dependent — which both issue order and
    schedule order guarantee.

    Ops carry their device accesses in ``tags["accesses"]``; ops without
    access records are ignored. Happens-before is the transitive closure
    of the recorded dependency edges (stream FIFO + events), computed with
    bitsets over the given order.
    """
    index = {op: i for i, op in enumerate(ops)}
    n = len(ops)
    # reach[i] = bitmask of ops that happen-before op i (including i)
    reach = [0] * n
    for i, op in enumerate(ops):
        mask = 1 << i
        for dep in op.deps:
            j = index.get(dep)
            if j is not None:
                mask |= reach[j]
        reach[i] = mask

    races: list[Race] = []
    by_buffer: dict[int, list[tuple[int, Access]]] = {}
    for i, op in enumerate(ops):
        for acc in op.tags.get("accesses", ()):
            bucket = by_buffer.setdefault(acc[0], [])
            for j, other in bucket:
                if not _overlap(acc, other):
                    continue
                if reach[i] & (1 << j):
                    continue  # ordered
                races.append(Race(ops[j], op, acc[0]))
                break  # one report per access is enough
            bucket.append((i, acc))
    return races


def detect_races(trace: Trace) -> list[Race]:
    """All unordered conflicting op pairs in *trace*.

    Sorts the trace into schedule order (a topological order of the
    dependency DAG, since an op cannot start before its dependencies end)
    and delegates to :func:`find_hazards`.
    """
    return find_hazards(sorted(trace.ops, key=lambda op: (op.start, op.op_id)))


def assert_race_free(trace: Trace) -> None:
    """Raise :class:`AssertionError` listing any detected races."""
    races = detect_races(trace)
    if races:
        listing = "\n  ".join(str(r) for r in races[:10])
        # AssertionError (not a ReproError) is this helper's documented
        # contract: it is a test-suite assertion, not a library failure.
        raise AssertionError(  # lint: allow[reproerror-raises]
            f"{len(races)} data race(s) in stream program:\n  {listing}"
        )
