"""Capacity-checked device-memory allocator.

Models cudaMalloc over a fixed-size device memory. Both executors route
every device buffer through this allocator, so the paper's §5.2 experiment
("limiting the memory usage to be less than 16GB on V100") is enforced, not
assumed: an OOC plan whose working set exceeds the cap raises
:class:`~repro.errors.OutOfDeviceMemoryError` instead of silently fitting.

The allocator is a byte counter with handle bookkeeping, not an address-space
model: fragmentation is out of scope (real implementations use a handful of
large long-lived buffers, as do our OOC engines).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import AllocationError, OutOfDeviceMemoryError
from repro.util.validation import nonnegative_int, positive_int

_handle_counter = itertools.count()


@dataclass(frozen=True)
class Allocation:
    """A live device allocation."""

    handle: int
    name: str
    nbytes: int


@dataclass
class DeviceAllocator:
    """Tracks live device allocations against a fixed capacity."""

    capacity: int
    used: int = 0
    peak: int = 0
    live: dict[int, Allocation] = field(default_factory=dict)
    n_allocs: int = 0
    n_frees: int = 0

    def __post_init__(self) -> None:
        self.capacity = positive_int(self.capacity, "capacity")

    @property
    def free_bytes(self) -> int:
        """Bytes currently available."""
        return self.capacity - self.used

    def alloc(self, nbytes: int, name: str = "") -> Allocation:
        """Allocate *nbytes*; raises :class:`OutOfDeviceMemoryError` on
        exhaustion (zero-byte allocations are legal, as in CUDA)."""
        nbytes = nonnegative_int(nbytes, "nbytes")
        if nbytes > self.free_bytes:
            raise OutOfDeviceMemoryError(
                requested=nbytes,
                free=self.free_bytes,
                capacity=self.capacity,
                what=name,
            )
        allocation = Allocation(next(_handle_counter), name, nbytes)
        self.live[allocation.handle] = allocation
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        self.n_allocs += 1
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release a live allocation; double frees raise."""
        if allocation.handle not in self.live:
            raise AllocationError(
                f"free of unknown or already-freed allocation {allocation.name!r}"
            )
        del self.live[allocation.handle]
        self.used -= allocation.nbytes
        self.n_frees += 1

    def free_all(self) -> None:
        """Release everything (device reset)."""
        self.live.clear()
        self.used = 0

    def check_balanced(self) -> None:
        """Raise unless every allocation has been freed (leak detector for
        tests and for the OOC engines' own teardown paths)."""
        if self.live:
            names = ", ".join(a.name or "<anon>" for a in self.live.values())
            raise AllocationError(
                f"{len(self.live)} device allocations leaked: {names}"
            )
