"""The discrete-event GPU simulator.

Scheduling model
----------------
Each hardware engine (H2D DMA, D2H DMA, compute) consumes its queue in
*enqueue order* — exactly how CUDA hardware queues behave for a single
device: copies on the same DMA engine serialize in issue order even when
issued on different streams, and large GEMMs serialize on the compute
engine. An op starts when (a) its engine has retired everything enqueued
before it and (b) all its dependencies (stream FIFO predecessors and
awaited events) have completed.

This makes simulated time deterministic and reproduces the pipelines of
the paper's Figures 7-15: move-ins, GEMMs and move-outs on different
streams overlap across engines but serialize within one.

Deadlock (e.g. engine-queue head waiting on an event recorded behind it)
is detected and raised — real CUDA would simply hang.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.errors import SimulationError
from repro.errors import DeadlockError
from repro.sim.memory import DeviceAllocator
from repro.sim.ops import EngineKind, OpKind, SimOp
from repro.sim.scheduler import StreamProgram
from repro.sim.stream import Event, Stream
from repro.sim.trace import Trace


@dataclass
class GpuSimulator:
    """Event-driven simulator of one GPU with three concurrent engines."""

    config: SystemConfig
    allocator: DeviceAllocator = field(init=False)
    #: The recorded stream program (shared graph machinery with the
    #: concurrent numeric executor — see :mod:`repro.sim.scheduler`).
    program: StreamProgram = field(init=False)
    _queues: dict[EngineKind, deque[SimOp]] = field(init=False)
    _engine_free: dict[EngineKind, float] = field(init=False)
    _trace: Trace = field(init=False)
    _pending: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.allocator = DeviceAllocator(self.config.usable_device_bytes)
        self.program = StreamProgram()
        self._queues = {kind: deque() for kind in EngineKind}
        self._engine_free = {kind: 0.0 for kind in EngineKind}
        self._trace = Trace()

    # -- stream / event API ---------------------------------------------------

    def stream(self, name: str) -> Stream:
        """Create a new stream."""
        return self.program.stream(name)

    def record_event(self, stream: Stream) -> Event:
        """Record an event on *stream* (captures prior work on the stream)."""
        return self.program.record_event(stream)

    def wait_event(self, stream: Stream, event: Event) -> None:
        """Future work on *stream* waits for *event*."""
        self.program.wait_event(stream, event)

    # -- enqueue ---------------------------------------------------------------

    def enqueue(self, op: SimOp, stream: Stream) -> SimOp:
        """Submit *op* on *stream*; it will execute when the simulator runs."""
        self.program.append(op, stream)
        self._queues[op.engine].append(op)
        self._pending += 1
        return op

    # -- execution --------------------------------------------------------------

    def run(self) -> Trace:
        """Drain all queues, assigning start/end times; returns the trace.

        Incremental: may be called repeatedly as more work is enqueued;
        engine clocks and the trace persist across calls (like repeatedly
        synchronizing a device).
        """
        progressed = True
        while self._pending and progressed:
            progressed = False
            for engine in EngineKind:
                queue = self._queues[engine]
                while queue and all(d.scheduled for d in queue[0].deps):
                    op = queue.popleft()
                    ready = max(
                        (d.end for d in op.deps), default=0.0
                    )
                    op.start = max(self._engine_free[engine], ready)
                    op.end = op.start + op.duration
                    self._engine_free[engine] = op.end
                    self._trace.add(op)
                    self._pending -= 1
                    progressed = True
        if self._pending:
            stuck = [op for q in self._queues.values() for op in q]
            raise DeadlockError(stuck)
        return self._trace

    def barrier(self) -> float:
        """Model a host-side device synchronization.

        Drains all pending work, then advances every engine clock to the
        resulting makespan: work enqueued *after* the barrier cannot start
        before it (the host was blocked until now). Returns the barrier
        time.
        """
        self.run()
        now = self._trace.makespan
        for engine in self._engine_free:
            self._engine_free[engine] = max(self._engine_free[engine], now)
        return now

    @property
    def trace(self) -> Trace:
        """The trace accumulated so far."""
        return self._trace

    @property
    def now(self) -> float:
        """Current simulated time (end of the last retired op)."""
        return self._trace.makespan

    # -- convenience op builders (durations from the config's models) ---------

    def op_h2d(self, nbytes: int, name: str, **tags) -> SimOp:
        """Build (not enqueue) a host-to-device copy op."""
        from repro.hw.transfer import Direction

        return SimOp(
            name=name,
            engine=EngineKind.H2D,
            kind=OpKind.COPY_H2D,
            duration=self.config.transfer.time(nbytes, Direction.H2D),
            nbytes=nbytes,
            tags=tags,
        )

    def op_d2h(self, nbytes: int, name: str, **tags) -> SimOp:
        """Build a device-to-host copy op."""
        from repro.hw.transfer import Direction

        return SimOp(
            name=name,
            engine=EngineKind.D2H,
            kind=OpKind.COPY_D2H,
            duration=self.config.transfer.time(nbytes, Direction.D2H),
            nbytes=nbytes,
            tags=tags,
        )

    def op_d2d(self, nbytes: int, name: str, **tags) -> SimOp:
        """Build an on-device copy op (runs on the compute engine)."""
        from repro.hw.transfer import Direction

        return SimOp(
            name=name,
            engine=EngineKind.COMPUTE,
            kind=OpKind.COPY_D2D,
            duration=self.config.transfer.time(nbytes, Direction.D2D),
            nbytes=nbytes,
            tags=tags,
        )

    def op_gemm(self, m: int, n: int, k: int, name: str, **tags) -> SimOp:
        """Build an in-core GEMM op timed by the shape-efficiency model."""
        from repro.util.units import gemm_flops

        return SimOp(
            name=name,
            engine=EngineKind.COMPUTE,
            kind=OpKind.GEMM,
            duration=self.config.gemm.time(m, n, k, self.config.precision),
            flops=gemm_flops(m, n, k),
            tags={"m": m, "n": n, "k": k, **tags},
        )

    def op_panel(self, m: int, b: int, name: str, **tags) -> SimOp:
        """Build an in-core panel-factorization op."""
        return SimOp(
            name=name,
            engine=EngineKind.COMPUTE,
            kind=OpKind.PANEL,
            duration=self.config.panel.time(m, b),
            flops=self.config.panel.flops(m, b),
            tags={"m": m, "b": b, **tags},
        )
