"""Shared stream/event scheduling core.

The library has two backends that must agree *exactly* on what a stream
program means: the discrete-event simulator (which assigns virtual time to
every op) and the concurrent numeric executor (which dispatches real numpy
work onto per-engine worker threads). Both realize the same happens-before
relation:

* ops enqueued on one stream execute in FIFO order;
* an event recorded on a stream completes when everything enqueued on that
  stream before the record has completed;
* ``wait_event`` makes all later ops on the waiting stream depend on the
  event;
* ops bound to one hardware engine retire in enqueue order.

:class:`StreamProgram` owns the first three rules — it records a program as
an issue-ordered list of :class:`~repro.sim.ops.SimOp` nodes whose ``deps``
sets are exactly the stream-FIFO and event edges. The per-engine FIFO rule
is realized by the consumer: the simulator drains per-engine queues in
order, and the concurrent executor runs one worker per engine that services
its queue in order.

Because both backends build their graphs here (and name ops with the same
helpers), a recorded numeric program can be compared node-for-node against
a simulated trace — the differential test harness does precisely that via
:func:`happens_before_signature`.
"""

from __future__ import annotations

from typing import Any

from repro.sim.ops import SimOp
from repro.sim.stream import Event, Stream

#: Access record consumed by :mod:`repro.sim.race`:
#: ``(buffer_handle, row0, row1, col0, col1, is_write)``.
DeviceAccess = tuple[int, int, int, int, int, bool]


class StreamProgram:
    """Issue-ordered record of a stream program and its dependency DAG.

    Ops are appended in program (issue) order; :meth:`append` wires each
    op's stream-FIFO predecessor and any pending event waits into
    ``op.deps``. The class imposes no timing — consumers (simulator,
    concurrent executor) decide when ops run, constrained by the graph.
    """

    def __init__(self) -> None:
        self.ops: list[SimOp] = []
        self.streams: list[Stream] = []

    def stream(self, name: str) -> Stream:
        """Create a new stream belonging to this program."""
        stream = Stream(name=name)
        self.streams.append(stream)
        return stream

    def record_event(self, stream: Stream) -> Event:
        """Record an event capturing all prior work on *stream*."""
        return stream.record()

    def wait_event(self, stream: Stream, event: Event) -> None:
        """Make all future ops on *stream* depend on *event*."""
        stream.wait(event)

    def append(self, op: SimOp, stream: Stream) -> SimOp:
        """Attach *op* to *stream* (wiring FIFO/event deps) and record it."""
        stream.attach(op)
        self.ops.append(op)
        return op

    def __len__(self) -> int:
        return len(self.ops)


def device_access(view: Any, write: bool) -> DeviceAccess:
    """Race-detector access record for a device view.

    The buffer is identified by its allocation handle (unique per executor
    run), the region by absolute element coordinates.
    """
    handle = view.buffer.payload["allocation"].handle
    return (handle, view.row0, view.row1, view.col0, view.col1, write)


def copy_name(prefix: str, src: Any, dst: Any) -> str:
    """Canonical op name for a copy: ``"h2d A[0:8,0:8]->buf[0:8,0:8]"``.

    *src*/*dst* are device views or host regions — anything with a
    ``label()`` method. Both executors use this, so op names are
    comparable across backends.
    """
    return f"{prefix} {src.label()}->{dst.label()}"


def gemm_name(tag: str, m: int, n: int, k: int) -> str:
    """Canonical op name for a GEMM (shape-suffixed tag)."""
    return f"{tag} {m}x{n}x{k}"


def panel_name(tag: str, m: int, b: int) -> str:
    """Canonical op name for a panel factorization / TRSM-style op."""
    return f"{tag} {m}x{b}"


def happens_before_signature(
    ops: list[SimOp],
) -> list[tuple[str, str, str, tuple[int, ...]]]:
    """Canonical, executor-independent form of a recorded program.

    One tuple per op, in issue order: ``(engine, kind, name, deps)`` where
    *deps* are issue indices of the op's stream-FIFO/event predecessors.
    Two executors replayed the same program with the same happens-before
    semantics iff their signatures are equal — the differential harness's
    cross-backend assertion.
    """
    index = {op: i for i, op in enumerate(ops)}
    return [
        (
            op.engine.value,
            op.kind.value,
            op.name,
            tuple(sorted(index[d] for d in op.deps if d in index)),
        )
        for op in ops
    ]
