"""CUDA-like streams and events for the simulator.

Semantics mirror the CUDA execution model the paper programs against:

* ops enqueued on one stream execute in FIFO order;
* ops on different streams may overlap whenever their engines are free;
* an :class:`Event` recorded on a stream completes when every op enqueued
  on that stream *before* the record has completed;
* ``wait_event`` makes every op enqueued on the waiting stream *after* the
  wait depend on the event.

Streams only build the dependency graph; timing is the simulator's job.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import StreamError
from repro.sim.ops import SimOp

_stream_counter = itertools.count()
_event_counter = itertools.count()


@dataclass(eq=False)
class Event:
    """A marker in a stream; depends on the op that was last when recorded."""

    event_id: int = field(default_factory=lambda: next(_event_counter))
    #: The op whose completion triggers the event; ``None`` = already done
    #: (recorded on an empty stream), matching CUDA's behaviour.
    op: SimOp | None = None
    recorded: bool = False


@dataclass(eq=False)
class Stream:
    """An in-order queue of ops."""

    name: str
    stream_id: int = field(default_factory=lambda: next(_stream_counter))
    last_op: SimOp | None = None
    #: Events subsequent ops on this stream must wait for (cleared into each
    #: op's dependency set as ops are enqueued).
    pending_waits: list[Event] = field(default_factory=list)

    def attach(self, op: SimOp) -> None:
        """Bind *op* to this stream, wiring FIFO and event dependencies."""
        if op.stream is not None:
            raise StreamError(f"op {op.name!r} is already enqueued")
        op.stream = self
        if self.last_op is not None:
            op.deps.add(self.last_op)
        for event in self.pending_waits:
            if not event.recorded:
                raise StreamError(
                    f"stream {self.name!r} waits on an unrecorded event"
                )
            if event.op is not None:
                op.deps.add(event.op)
        self.pending_waits.clear()
        self.last_op = op

    def record(self) -> Event:
        """Record an event capturing all work enqueued on this stream so far."""
        return Event(op=self.last_op, recorded=True)

    def wait(self, event: Event) -> None:
        """Make all *future* ops on this stream wait for *event*."""
        if not event.recorded:
            raise StreamError(
                f"stream {self.name!r}: cannot wait on an unrecorded event"
            )
        self.pending_waits.append(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream({self.name!r})"
