"""Operation descriptors for the discrete-event GPU simulator.

A :class:`SimOp` is one unit of work bound to one hardware *engine*. The
V100 (like every modern discrete GPU) exposes three engines that operate
concurrently — one DMA engine per PCIe direction plus the compute engine —
which is exactly the concurrency the paper's pipelines exploit (§4.1.1:
"we need at least three streams to make these three assignments run in
parallel").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.util.validation import nonnegative_float, nonnegative_int


class EngineKind(str, Enum):
    """The three concurrent hardware engines of the simulated GPU."""

    H2D = "h2d"       # host-to-device DMA
    D2H = "d2h"       # device-to-host DMA
    COMPUTE = "compute"  # SMs: GEMMs, panel factorizations, D2D staging


class OpKind(str, Enum):
    """Semantic label of an op (drives accounting and timeline glyphs)."""

    COPY_H2D = "copy_h2d"
    COPY_D2H = "copy_d2h"
    COPY_D2D = "copy_d2d"
    GEMM = "gemm"
    PANEL = "panel"
    SMALL = "small"   # vector scales, norms, triangular fixes


_op_counter = itertools.count()


@dataclass(eq=False)
class SimOp:
    """One simulated operation.

    Identity semantics (``eq=False``): two ops are the same only if they are
    the same object, which lets dependency sets hold them directly.
    """

    name: str
    engine: EngineKind
    kind: OpKind
    duration: float
    stream: "Any" = None          # repro.sim.stream.Stream, set at enqueue
    nbytes: int = 0
    flops: int = 0
    tags: dict[str, Any] = field(default_factory=dict)
    # -- filled in by the simulator -----------------------------------------
    op_id: int = field(default_factory=lambda: next(_op_counter))
    deps: set["SimOp"] = field(default_factory=set)
    start: float | None = None
    end: float | None = None

    def __post_init__(self) -> None:
        self.duration = nonnegative_float(self.duration, "duration")
        self.nbytes = nonnegative_int(self.nbytes, "nbytes")
        self.flops = nonnegative_int(self.flops, "flops")

    @property
    def scheduled(self) -> bool:
        """Whether the simulator has assigned this op a start/end time."""
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = (
            f"[{self.start:.4f}, {self.end:.4f}]" if self.scheduled else "(pending)"
        )
        return f"SimOp({self.name!r}, {self.engine.value}, {when})"
