"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration (GPU spec, system config)."""


class ShapeError(ReproError, ValueError):
    """Matrix/tile shapes are inconsistent for the requested operation."""


class OutOfDeviceMemoryError(ReproError):
    """A device allocation exceeded the simulated device-memory capacity."""

    def __init__(self, requested: int, free: int, capacity: int, what: str = ""):
        self.requested = int(requested)
        self.free = int(free)
        self.capacity = int(capacity)
        self.what = what
        msg = (
            f"out of device memory allocating {requested} bytes"
            f"{' for ' + what if what else ''}: "
            f"{free} free of {capacity} total"
        )
        super().__init__(msg)


class OutOfHostMemoryError(ReproError):
    """A run's host working set exceeds the configured host capacity.

    The paper hits this wall itself: "limited by our main memory capacity,
    we only tested the matrices with sizes 65536x65536 and 262144x65536"
    (§5.2, 128 GB host).
    """

    def __init__(self, required: int, capacity: int, what: str = ""):
        self.required = int(required)
        self.capacity = int(capacity)
        self.what = what
        super().__init__(
            f"host working set of {required} bytes"
            f"{' for ' + what if what else ''} exceeds host capacity "
            f"{capacity}"
        )


class AllocationError(ReproError):
    """Misuse of the device allocator (double free, unknown handle, ...)."""


class StreamError(ReproError):
    """Misuse of streams or events (waiting on an unrecorded event, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an invalid state."""


class DeadlockError(SimulationError):
    """Cross-stream event dependencies formed a cycle; no op can make progress.

    Real CUDA programs can also hard-hang this way (e.g. a stream waiting on
    an event that is only recorded behind the waiting op in another engine
    queue); the simulator detects it and reports the stuck ops.
    """

    def __init__(self, stuck_ops):
        self.stuck_ops = list(stuck_ops)
        names = ", ".join(op.name for op in self.stuck_ops[:8])
        more = "" if len(self.stuck_ops) <= 8 else f" (+{len(self.stuck_ops) - 8} more)"
        super().__init__(f"simulation deadlock; stuck ops: {names}{more}")


class PlanError(ReproError):
    """An out-of-core tiling plan could not be constructed (e.g. a working
    set that can never fit in device memory)."""


class AdmissionError(ReproError):
    """The factorization service refused a job (queue saturated, footprint
    over budget, service shutting down). ``reason`` is a short machine-
    readable tag; the message carries the details."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(f"{reason}{': ' + detail if detail else ''}")


class ExecutionError(ReproError):
    """An executor was driven through an invalid sequence of operations."""


class AnalysisError(ReproError):
    """Static analysis could not run or a lint/verify rule was violated.

    Raised by the :mod:`repro.analysis` subsystem (plan verifier + repo
    lint pack). Like every :class:`ReproError`, the CLI maps it to a
    one-line ``error:`` message and exit code 2.
    """


class PlanViolation(AnalysisError):
    """The plan verifier proved a captured program unsafe.

    Carries the full :class:`~repro.analysis.verify.AnalysisReport` in
    ``report`` so callers (the serve admission path, tests) can inspect
    which pass failed and which op is at fault; the message lists the
    first few findings.
    """

    def __init__(self, report):
        self.report = report
        findings = getattr(report, "findings", [])
        listing = "; ".join(str(f) for f in findings[:4])
        more = "" if len(findings) <= 4 else f" (+{len(findings) - 4} more)"
        label = getattr(report, "label", "") or "plan"
        super().__init__(
            f"{label}: {len(findings)} static-analysis violation(s): "
            f"{listing}{more}"
        )


class PrecisionError(AnalysisError):
    """The static precision/error-flow pass could not certify a plan.

    Raised by :mod:`repro.analysis.precision` when a mixed-precision plan
    is structurally broken (TensorCore input-format invariant, wasted
    upcast) or its predicted forward-error bound cannot meet the caller's
    tolerance. Like every :class:`ReproError`, the CLI maps it to a
    one-line ``error:`` message and exit code 2.
    """


class PrecisionViolation(PrecisionError):
    """The precision verifier proved a plan numerically unsafe.

    Mirrors :class:`PlanViolation`: carries the full
    :class:`~repro.analysis.verify.AnalysisReport` in ``report`` (its
    ``precision_bound`` / ``precision_tolerance`` fields hold the
    predicted bound and the tolerance it was checked against); the
    message lists the first few findings.
    """

    def __init__(self, report):
        self.report = report
        findings = getattr(report, "findings", [])
        listing = "; ".join(str(f) for f in findings[:4])
        more = "" if len(findings) <= 4 else f" (+{len(findings) - 4} more)"
        label = getattr(report, "label", "") or "plan"
        super().__init__(
            f"{label}: {len(findings)} precision violation(s): "
            f"{listing}{more}"
        )


class CheckpointError(ReproError):
    """A checkpoint could not be trusted or applied (corrupt manifest or
    payload, config fingerprint mismatch, wrong backing storage).
    ``reason`` is a short machine-readable tag; the message carries the
    details. Never raised for a merely *absent* checkpoint — that is a
    normal fresh start."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(f"{reason}{': ' + detail if detail else ''}")


class ValidationError(ReproError, ValueError):
    """Invalid argument value (non-positive dimension, bad enum string...)."""


class NumericalError(ReproError, ArithmeticError):
    """A factorization went numerically bad and no recovery remains.

    Deterministic by construction: re-running the same job on the same
    data reproduces the failure, so the serve layer quarantines instead
    of retrying. ``reason`` is a short machine-readable tag; ``report``
    (when present) is the :class:`repro.health.HealthReport` accumulated
    up to the failure point.
    """

    def __init__(self, reason: str, detail: str = "", report=None):
        self.reason = reason
        self.detail = detail
        self.report = report
        super().__init__(f"{reason}{': ' + detail if detail else ''}")


class NonFiniteError(NumericalError):
    """A NaN/Inf was detected in an operand, transfer, or result."""

    def __init__(self, detail: str = "", report=None):
        super().__init__("non-finite", detail, report)


class BreakdownError(NumericalError, ValidationError):
    """Rank-deficiency / norm collapse: a panel column became (numerically)
    dependent on earlier columns, so no orthonormal basis exists.

    Also a :class:`ValidationError` so pre-existing callers that treated
    dependent columns as invalid input keep catching it."""

    def __init__(self, detail: str = "", report=None):
        super().__init__("breakdown", detail, report)


class EscalationExhaustedError(NumericalError):
    """Every rung of the escalation ladder was tried and the panel is
    still numerically unhealthy."""

    def __init__(self, detail: str = "", report=None):
        super().__init__("escalation-exhausted", detail, report)


class FaultError(ReproError):
    """An execution fault in the distributed pool that recovery could not
    (or was told not to) absorb: retries exhausted on a transient fault,
    every device lost, or a recovered placement that failed
    re-verification. ``reason`` is a short machine-readable tag
    (``retries-exhausted``, ``task-timeout``, ``pool-exhausted``,
    ``recovery-unverified``, ...); the message carries the details.

    Deliberately *not* in the serve layer's ``DETERMINISTIC_ERRORS``:
    a fault is transient by definition, so the service's retry ladder
    applies to it (see docs/robustness.md).
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(f"{reason}{': ' + detail if detail else ''}")


class InjectedFaultError(FaultError):
    """A transient fault fired by the :mod:`repro.faults` injection plane
    (``worker_crash``, ``task_error``, ``transfer_timeout``,
    ``transfer_stall``). Raised at the guarded site exactly where the
    real fault would surface, so detection and recovery exercise the
    production path; ``event`` is the :class:`repro.faults.FaultEvent`
    that fired."""

    def __init__(self, reason: str, detail: str = "", event=None):
        self.event = event
        super().__init__(reason, detail)


class DeviceLostError(FaultError):
    """A device dropped out of the pool mid-run.

    ``device`` is the lost member; ``lost`` accumulates every device lost
    so far in the run (so the serve layer can re-admit at the surviving
    size). Recoverable below the job boundary via lineage replay
    (:mod:`repro.dist.recovery`); when recovery is disabled or the pool
    is exhausted this escapes to the caller.
    """

    def __init__(self, device: int, detail: str = "", lost=()):
        self.device = int(device)
        self.lost = tuple(lost) if lost else (self.device,)
        super().__init__(
            "device-lost",
            detail or f"device {device} dropped out of the pool",
        )
