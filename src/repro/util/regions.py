"""Shared rectangle/interval overlap predicates.

One definition of "two regions overlap" serves every consumer — the
dynamic race detector (:mod:`repro.sim.race`), the concurrent executor's
host-coherence edges (:mod:`repro.execution.concurrent`) and the static
plan verifier (:mod:`repro.analysis.verify`) — so the three can never
disagree about what constitutes a conflict.

The predicates are strict about degenerate regions: a zero-size interval
(``lo == hi``) occupies no elements and therefore overlaps nothing, and
adjacent tiles (``a1 == b0``) share no elements either. The naive
``a0 < b1 and b0 < a1`` test gets the adjacent case right but wrongly
reports an empty interval sitting strictly inside a non-empty one as an
overlap; requiring both intervals to be non-empty fixes that.
"""

from __future__ import annotations


def intervals_overlap(a0: int, a1: int, b0: int, b1: int) -> bool:
    """Whether half-open ``[a0, a1)`` and ``[b0, b1)`` share any point.

    Empty intervals (``a0 >= a1`` or ``b0 >= b1``) never overlap anything;
    adjacent intervals (``a1 == b0``) do not overlap.
    """
    return a0 < a1 and b0 < b1 and a0 < b1 and b0 < a1


def rects_overlap(
    a_rows: tuple[int, int],
    a_cols: tuple[int, int],
    b_rows: tuple[int, int],
    b_cols: tuple[int, int],
) -> bool:
    """Whether two half-open rectangles share any element.

    Each rectangle is ``(row0, row1), (col0, col1)``; a rectangle empty in
    either axis overlaps nothing.
    """
    return intervals_overlap(*a_rows, *b_rows) and intervals_overlap(
        *a_cols, *b_cols
    )
