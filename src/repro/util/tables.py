"""Plain-text table rendering for benchmark reports.

The benchmark harness prints paper-style tables (Tables 1-4 of the paper)
side-by-side with measured values; this module renders them without any
third-party dependency.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ValidationError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    align: Sequence[str] | None = None,
) -> str:
    """Render *rows* under *headers* as a boxed ASCII table.

    ``align`` is a per-column sequence of ``"l"`` or ``"r"``; columns default
    to left for the first column and right for the rest (the common shape of
    a label column followed by numbers).
    """
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValidationError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    if align is None:
        align = ["l"] + ["r"] * (len(headers) - 1)
    if len(align) != len(headers):
        raise ValidationError("align length must match headers length")

    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for cell, w, a in zip(cells, widths, align):
            parts.append(cell.ljust(w) if a == "l" else cell.rjust(w))
        return "| " + " | ".join(parts) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(headers))
    lines.append(sep)
    for row in str_rows:
        lines.append(fmt_row(row))
    lines.append(sep)
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, object]], *, title: str | None = None) -> str:
    """Render key/value pairs as two aligned columns."""
    if not pairs:
        return title or ""
    width = max(len(str(k)) for k, _ in pairs)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"  {str(key).ljust(width)} : {value}")
    return "\n".join(lines)
