"""Shared utilities: validation, units, tables, deterministic RNG."""

from repro.util.rng import default_rng
from repro.util.tables import render_kv, render_table
from repro.util.units import (
    GIB,
    fmt_bandwidth,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    gb,
    gemm_flops,
    gib,
    qr_flops,
    tflops,
)
from repro.util.validation import (
    check_divisible,
    check_gemm_shapes,
    check_shape_2d,
    nonnegative_float,
    nonnegative_int,
    one_of,
    positive_float,
    positive_int,
    require,
)

__all__ = [
    "GIB",
    "check_divisible",
    "check_gemm_shapes",
    "check_shape_2d",
    "default_rng",
    "fmt_bandwidth",
    "fmt_bytes",
    "fmt_rate",
    "fmt_time",
    "gb",
    "gemm_flops",
    "gib",
    "nonnegative_float",
    "nonnegative_int",
    "one_of",
    "positive_float",
    "positive_int",
    "qr_flops",
    "render_kv",
    "render_table",
    "require",
    "tflops",
]
