"""Unit helpers: bytes, FLOP rates, and human-readable formatting.

All internal quantities are SI: bytes, flops, seconds, bytes/second,
flops/second. These helpers exist so that configuration and reports can speak
GiB / TFLOPS / ms without ad-hoc powers of ten scattered around.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024**2
GIB = 1024**3

KILO = 10**3
MEGA = 10**6
GIGA = 10**9
TERA = 10**12


def gib(n: float) -> int:
    """*n* GiB in bytes."""
    return int(n * GIB)


def gb(n: float) -> float:
    """*n* decimal GB in bytes (used for PCIe bandwidths: GB/s)."""
    return n * GIGA


def tflops(n: float) -> float:
    """*n* TFLOP/s in flops/second."""
    return n * TERA


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flop count of ``C(m,n) += A(m,k) B(k,n)`` (multiply-add counted as 2)."""
    return 2 * int(m) * int(n) * int(k)


def qr_flops(m: int, n: int) -> int:
    """Classic flop count of a QR factorization of an m-by-n matrix (m >= n),
    ``2mn^2 - (2/3)n^3``, rounded to an int."""
    m, n = int(m), int(n)
    return int(2 * m * n * n - (2 * n**3) / 3)


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count, e.g. ``17.18 GB``."""
    nbytes = float(nbytes)
    for unit, scale in (("TB", TERA), ("GB", GIGA), ("MB", MEGA), ("kB", KILO)):
        if abs(nbytes) >= scale:
            return f"{nbytes / scale:.2f} {unit}"
    return f"{nbytes:.0f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration, e.g. ``1408 ms`` / ``18.2 s`` / ``3.4 us``."""
    seconds = float(seconds)
    if abs(seconds) >= 10.0:
        return f"{seconds:.1f} s"
    if abs(seconds) >= 1.0:
        return f"{seconds:.2f} s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.0f} ms"
    if abs(seconds) >= 1e-6:
        return f"{seconds * 1e6:.1f} us"
    return f"{seconds * 1e9:.1f} ns"


def fmt_rate(flops_per_s: float) -> str:
    """Format a compute rate, e.g. ``99.9 TFLOPS``."""
    return f"{flops_per_s / TERA:.1f} TFLOPS"


def fmt_bandwidth(bytes_per_s: float) -> str:
    """Format a bandwidth, e.g. ``12.4 GB/s``."""
    return f"{bytes_per_s / GIGA:.1f} GB/s"
