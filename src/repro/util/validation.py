"""Small argument-validation helpers used across the library.

These raise :class:`repro.errors.ValidationError` (a ``ValueError`` subclass)
with uniform messages, so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

from repro.errors import ShapeError, ValidationError

T = TypeVar("T")


def require(cond: bool, msg: str) -> None:
    """Raise :class:`ValidationError` with *msg* unless *cond* holds."""
    if not cond:
        raise ValidationError(msg)


def positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be an integer, got {value!r}") from None
    if ivalue <= 0 or ivalue != value:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def nonnegative_int(value: int, name: str) -> int:
    """Validate that *value* is a non-negative integer and return it."""
    try:
        ivalue = int(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be an integer, got {value!r}") from None
    if ivalue < 0 or ivalue != value:
        raise ValidationError(f"{name} must be a non-negative integer, got {value!r}")
    return ivalue


def positive_float(value: float, name: str) -> float:
    """Validate that *value* is a positive finite float and return it."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a number, got {value!r}") from None
    if not (fvalue > 0.0) or fvalue != fvalue or fvalue == float("inf"):
        raise ValidationError(f"{name} must be a positive finite number, got {value!r}")
    return fvalue


def nonnegative_float(value: float, name: str) -> float:
    """Validate that *value* is a non-negative finite float and return it."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a number, got {value!r}") from None
    if not (fvalue >= 0.0) or fvalue == float("inf"):
        raise ValidationError(f"{name} must be a non-negative finite number, got {value!r}")
    return fvalue


def one_of(value: T, allowed: Sequence[T], name: str) -> T:
    """Validate that *value* is one of *allowed* and return it."""
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {list(allowed)!r}, got {value!r}")
    return value


def check_shape_2d(shape: Iterable[int], name: str) -> tuple[int, int]:
    """Validate a 2-D shape tuple with positive dimensions."""
    shape = tuple(shape)
    if len(shape) != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {shape}")
    rows, cols = shape
    if rows <= 0 or cols <= 0:
        raise ShapeError(f"{name} must have positive dimensions, got {shape}")
    return int(rows), int(cols)


def check_gemm_shapes(
    m: int, n: int, k: int, *, what: str = "gemm"
) -> tuple[int, int, int]:
    """Validate GEMM problem dimensions ``C(m,n) += A(m,k) B(k,n)``."""
    m = positive_int(m, f"{what} m")
    n = positive_int(n, f"{what} n")
    k = positive_int(k, f"{what} k")
    return m, n, k


def check_divisible(value: int, divisor: int, name: str) -> int:
    """Validate that *divisor* divides *value* exactly."""
    value = positive_int(value, name)
    divisor = positive_int(divisor, f"{name} divisor")
    if value % divisor != 0:
        raise ValidationError(f"{name}={value} must be divisible by {divisor}")
    return value
