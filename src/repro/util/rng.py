"""Deterministic random-number helpers.

Every stochastic choice in the library (test matrices, workload generators)
goes through :func:`default_rng` so runs are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

DEFAULT_SEED = 0x5EED


def default_rng(seed: int | None = None) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded deterministically.

    ``seed=None`` uses the library-wide default seed (reproducible), not
    entropy from the OS; pass an explicit seed to vary.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng* (for parallel
    workload generation with stable per-worker streams)."""
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
