"""Deterministic random-number helpers.

Every stochastic choice in the library (test matrices, workload generators)
goes through :func:`default_rng` so runs are reproducible from a single seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ValidationError

DEFAULT_SEED = 0x5EED


def default_rng(seed: int | None = None) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded deterministically.

    ``seed=None`` uses the library-wide default seed (reproducible), not
    entropy from the OS; pass an explicit seed to vary.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def stable_seed(*parts: str | int | float | bool) -> int:
    """A 63-bit seed derived from *parts* by stable hashing.

    Unlike ``hash()`` (salted per process) or anything keyed on pytest
    collection order / test ids, the result depends only on the *values*
    of the parts — so a parametrized test case keeps its seed (and its
    generated inputs) when parametrization axes are added, cases are
    reordered, or the suite runs under a different interpreter. Intended
    use: ``default_rng(stable_seed("suite-name", case_index, ...))``.
    """
    if not parts:
        raise ValidationError("stable_seed needs at least one part")
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        if not isinstance(part, (str, int, float, bool)):
            raise ValidationError(
                "stable_seed parts must be str/int/float/bool (stable "
                f"reprs), got {type(part).__name__}"
            )
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big") & (2**63 - 1)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng* (for parallel
    workload generation with stable per-worker streams)."""
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
