"""Crash-consistent checkpoint storage for out-of-core factorizations.

A checkpoint captures everything a factorization driver needs to resume
after a crash: how many steps completed, the finalized-column *frontier*,
and the mutated host-matrix state. The on-disk layout is

    <directory>/
        manifest.json           # committed last, atomically
        step-000005/            # payload dir named by completed-step count
            a.bin               # raw region bytes, one file per matrix
            r.bin

and the commit protocol makes it crash-consistent: payload files are
written and fsynced first, the manifest is written to a temp file, fsynced
and atomically renamed over ``manifest.json``, and the directory is
fsynced. A crash anywhere mid-save leaves the *previous* manifest intact
and pointing at its own complete payload; a reader never observes a
half-written checkpoint. Stale payload dirs are pruned only after the new
manifest is durable.

Two storage modes per matrix:

* **copy** (default) — the full matrix is copied into the payload. Needed
  for RAM-backed matrices, whose finalized columns exist nowhere else.
* **inplace** (``numpy.memmap``-backed matrices) — the memmap file itself
  is durable storage for the finalized columns ``[0, frontier)``: the
  checkpoint just flushes it and records the step (zero-copy). Only the
  still-mutable tail ``[frontier, cols)`` is copied out, because a crash
  mid-step can corrupt it; the tail shrinks to nothing as the run
  progresses. See docs/checkpoint.md for the frontier argument.

Every payload carries a sha256 content digest and the manifest carries a
fingerprint of the run configuration (shape, method, options, precision,
device budget — everything the step schedule and floating-point summation
order depend on). Corrupt or mismatched checkpoints are refused with a
typed :class:`~repro.errors.CheckpointError` rather than silently
producing wrong numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError, ValidationError
from repro.host.tiled import HostMatrix
from repro.obs.clock import wall_time

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to actually persist at a step boundary.

    A checkpoint is taken when *either* trigger fires: ``every_steps``
    completed steps since the last save, or ``every_seconds`` of wall
    time (None disables the time trigger).
    """

    every_steps: int = 1
    every_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.every_steps < 1:
            raise ValidationError(
                f"every_steps must be >= 1, got {self.every_steps}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValidationError(
                f"every_seconds must be positive or None, got {self.every_seconds}"
            )

    def due(self, steps_since_save: int, seconds_since_save: float) -> bool:
        """Whether a boundary with this much progress should persist."""
        if steps_since_save >= self.every_steps:
            return True
        return (
            self.every_seconds is not None
            and seconds_since_save >= self.every_seconds
        )


@dataclass(frozen=True)
class CheckpointConfig:
    """User-facing checkpoint request: where to store it and how often."""

    directory: str | Path
    policy: CheckpointPolicy = CheckpointPolicy()

    @property
    def path(self) -> Path:
        return Path(self.directory)


@dataclass
class CheckpointStats:
    """Counters one checkpointed run accumulates (mirrored into the serve
    metrics registry as ``checkpoints_written`` / ``checkpoint_bytes`` /
    ``resumes`` / ``steps_skipped_on_resume``)."""

    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    resumes: int = 0
    steps_skipped: int = 0


def run_fingerprint(
    kind: str,
    method: str,
    rows: int,
    cols: int,
    config,
    options,
) -> str:
    """Digest of everything the step schedule and the bitwise result
    depend on: operation, method, shape, every option field, numeric
    precision, panel algorithm, element size and the device budget (tiling
    plans — and therefore summation order — depend on free device bytes).
    """
    h = hashlib.sha256()
    h.update(f"{kind}|{method}|{rows}x{cols}".encode())
    h.update(
        f"|{config.precision.name}|{config.panel_algorithm}"
        f"|{config.element_bytes}|{config.usable_device_bytes}".encode()
    )
    for f in fields(options):
        h.update(f"|{f.name}={getattr(options, f.name)!r}".encode())
    return h.hexdigest()


def _fsync_dir(path: Path) -> None:
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_durable(path: Path, data: bytes) -> None:
    """Write *data* to *path* via temp file + fsync + atomic rename."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class CheckpointManager:
    """Atomic save/restore of factorization progress (module docstring).

    One manager serves one run identity (the *fingerprint*); loading a
    manifest written under a different fingerprint is refused.
    """

    def __init__(self, config: CheckpointConfig, *, fingerprint: str):
        self.config = config
        self.fingerprint = fingerprint
        self.directory = config.path

    # -- reading -----------------------------------------------------------------

    def load_manifest(self) -> dict | None:
        """The committed manifest, or None when no checkpoint exists yet.

        Raises :class:`~repro.errors.CheckpointError` on a corrupt
        manifest or a configuration-fingerprint mismatch.
        """
        path = self.directory / MANIFEST_NAME
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                "corrupt-manifest", f"{path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise CheckpointError(
                "corrupt-manifest", f"{path}: not a JSON object"
            )
        missing = {
            "format", "fingerprint", "step", "payload_dir", "matrices"
        } - manifest.keys()
        if missing:
            raise CheckpointError(
                "corrupt-manifest", f"{path}: missing keys {sorted(missing)}"
            )
        if manifest["format"] != FORMAT_VERSION:
            raise CheckpointError(
                "format-mismatch",
                f"checkpoint format {manifest['format']}, "
                f"this library writes {FORMAT_VERSION}",
            )
        if manifest["fingerprint"] != self.fingerprint:
            raise CheckpointError(
                "config-mismatch",
                "checkpoint was written by a run with different "
                "shape/method/options/config; refusing to resume "
                f"({manifest['fingerprint'][:12]} != {self.fingerprint[:12]})",
            )
        return manifest

    def restore(self, matrices: dict[str, HostMatrix]) -> int:
        """Apply the latest checkpoint to *matrices*; returns the number
        of completed steps (0 when no checkpoint exists — fresh start).

        Copy-mode payloads overwrite the whole matrix; inplace-mode
        payloads overwrite the mutable tail and trust the memmap file for
        the finalized prefix. Digest or size mismatches raise
        :class:`~repro.errors.CheckpointError`.
        """
        manifest = self.load_manifest()
        if manifest is None:
            return 0
        payload_dir = self.directory / manifest["payload_dir"]
        entries = manifest["matrices"]
        if set(entries) != set(matrices):
            raise CheckpointError(
                "matrix-mismatch",
                f"checkpoint holds {sorted(entries)}, "
                f"run expects {sorted(matrices)}",
            )
        for role, entry in entries.items():
            self._restore_matrix(role, entry, matrices[role], payload_dir)
        return int(manifest["step"])

    def _restore_matrix(
        self, role: str, entry: dict, matrix: HostMatrix, payload_dir: Path
    ) -> None:
        if not matrix.backed:
            raise CheckpointError(
                "matrix-mismatch", f"matrix {role!r} has no backing data"
            )
        if [matrix.rows, matrix.cols] != list(entry["shape"]):
            raise CheckpointError(
                "matrix-mismatch",
                f"matrix {role!r} is {matrix.rows}x{matrix.cols}, "
                f"checkpoint holds {entry['shape']}",
            )
        if str(matrix.data.dtype) != entry["dtype"]:
            raise CheckpointError(
                "matrix-mismatch",
                f"matrix {role!r} dtype {matrix.data.dtype} != "
                f"checkpoint {entry['dtype']}",
            )
        if entry["mode"] == "inplace" and not isinstance(
            matrix.data, np.memmap
        ):
            raise CheckpointError(
                "matrix-mismatch",
                f"matrix {role!r} was checkpointed in place from a memmap; "
                "resume must reopen the same memmap file",
            )
        if entry["region"] is None:
            return  # fully finalized in the memmap; nothing to copy back
        path = payload_dir / entry["file"]
        if not path.exists():
            raise CheckpointError("missing-payload", str(path))
        data = path.read_bytes()
        if len(data) != entry["nbytes"]:
            raise CheckpointError(
                "corrupt-payload",
                f"{path}: {len(data)} bytes, manifest records {entry['nbytes']}",
            )
        digest = hashlib.sha256(data).hexdigest()
        if digest != entry["sha256"]:
            raise CheckpointError(
                "corrupt-payload", f"{path}: content digest mismatch"
            )
        r0, r1, c0, c1 = entry["region"]
        region = np.frombuffer(data, dtype=matrix.data.dtype).reshape(
            r1 - r0, c1 - c0
        )
        matrix.data[r0:r1, c0:c1] = region

    # -- writing -----------------------------------------------------------------

    def save(
        self,
        step: int,
        frontier: int,
        matrices: dict[str, HostMatrix],
        frontiers: dict[str, int] | None = None,
        extra: dict | None = None,
    ) -> int:
        """Persist a checkpoint after *step* completed steps; returns the
        payload bytes written.

        *frontiers* maps matrix roles to their finalized-column frontier;
        a memmap-backed matrix with a frontier is saved in place (flush +
        tail copy), everything else is copied whole. The caller must have
        quiesced the executor first (no in-flight host writes). *extra* is
        an optional JSON-serializable side-state dict stored verbatim in
        the manifest (e.g. the health sentinel's escalation state, which
        must survive a restart for bitwise-identical resume).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        frontiers = frontiers or {}
        payload_name = f"step-{step:06d}"
        payload_dir = self.directory / payload_name
        if payload_dir.exists():  # leftover from a crashed save at this step
            shutil.rmtree(payload_dir)
        payload_dir.mkdir()

        total_bytes = 0
        entries: dict[str, dict] = {}
        for role, matrix in matrices.items():
            entry, nbytes = self._save_matrix(
                role, matrix, frontiers.get(role), payload_dir
            )
            entries[role] = entry
            total_bytes += nbytes
        _fsync_dir(payload_dir)
        _fsync_dir(self.directory)

        manifest = {
            "format": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "step": int(step),
            "frontier": int(frontier),
            "payload_dir": payload_name,
            # Manifest metadata only — never read back into step state, so
            # it cannot perturb bitwise-identical resume.
            "written_at": wall_time(),
            "matrices": entries,
        }
        if extra:
            manifest["extra"] = extra
        _write_durable(
            self.directory / MANIFEST_NAME,
            json.dumps(manifest, indent=1).encode(),
        )
        self._prune(keep=payload_name)
        return total_bytes

    def _save_matrix(
        self,
        role: str,
        matrix: HostMatrix,
        frontier: int | None,
        payload_dir: Path,
    ) -> tuple[dict, int]:
        if not matrix.backed:
            raise CheckpointError(
                "matrix-mismatch",
                f"cannot checkpoint shape-only matrix {role!r}",
            )
        inplace = isinstance(matrix.data, np.memmap) and frontier is not None
        if inplace:
            matrix.data.flush()  # finalized columns become durable in place
            region = (
                (0, matrix.rows, frontier, matrix.cols)
                if frontier < matrix.cols
                else None
            )
        else:
            region = (0, matrix.rows, 0, matrix.cols)

        entry = {
            "mode": "inplace" if inplace else "copy",
            "shape": [matrix.rows, matrix.cols],
            "dtype": str(matrix.data.dtype),
            "region": list(region) if region else None,
            "file": None,
            "nbytes": 0,
            "sha256": None,
        }
        if region is None:
            return entry, 0
        r0, r1, c0, c1 = region
        data = np.ascontiguousarray(matrix.data[r0:r1, c0:c1]).tobytes()
        path = payload_dir / f"{role}.bin"
        with open(path, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        entry["file"] = path.name
        entry["nbytes"] = len(data)
        entry["sha256"] = hashlib.sha256(data).hexdigest()
        return entry, len(data)

    def _prune(self, keep: str) -> None:
        """Delete payload dirs other than *keep* (now-stale checkpoints)."""
        for child in self.directory.iterdir():
            if (
                child.is_dir()
                and child.name.startswith("step-")
                and child.name != keep
            ):
                shutil.rmtree(child, ignore_errors=True)
