"""Driver-facing checkpoint protocol.

The factorization drivers see checkpointing as three calls at their
natural boundaries (one per blocking panel step / recursive node):

    ck.start()                      # restore host state, learn resume point
    if ck.should_skip(step): ...    # completed in a previous session
    ck.step_complete(step, frontier)  # maybe persist (policy-driven)

:class:`CheckpointSession` implements them against a
:class:`~repro.ckpt.manager.CheckpointManager`; :data:`NULL_CHECKPOINT`
is the no-op used when checkpointing is off, so drivers never branch on
None. ``step_complete`` quiesces the executor (``synchronize``) before
persisting, which is what makes the saved host state a consistent cut:
every op of steps ``<= step`` has retired, no op of a later step has been
issued.
"""

from __future__ import annotations

from repro.ckpt.manager import CheckpointManager, CheckpointStats
from repro.errors import CheckpointError
from repro.host.tiled import HostMatrix
from repro.obs.clock import monotonic as _monotonic


class CheckpointSession:
    """Binds a manager to one run: its executor and host matrices.

    Parameters
    ----------
    manager
        Storage and policy (the manager's config carries both).
    ex
        The executor driving the run; synchronized before every save.
    matrices
        Role-keyed host matrices (``{"a": ..., "r": ...}`` for QR,
        ``{"a": ...}`` for LU/Cholesky). The frontier-based tail save
        applies to role ``"a"``; other matrices are always copied whole.
    clock
        Injectable monotonic clock (tests drive the time trigger).
    """

    #: Role whose finalized-column frontier enables the in-place tail save.
    FRONTIER_ROLE = "a"

    def __init__(
        self,
        manager: CheckpointManager,
        ex,
        matrices: dict[str, HostMatrix],
        *,
        clock=_monotonic,
    ):
        self.manager = manager
        self.ex = ex
        self.matrices = matrices
        self.stats = CheckpointStats()
        self._clock = clock
        self._policy = manager.config.policy
        self.resume_step = 0
        self._last_saved_step = 0
        self._last_saved_time = clock()
        self._started = False

    # -- driver protocol ---------------------------------------------------------

    def start(self) -> int:
        """Restore the latest checkpoint (if any); returns the index of
        the first step that still needs to run. Idempotent."""
        if self._started:
            return self.resume_step
        self._started = True
        obs = self.ex.obs
        restore_t0 = obs.now() if obs.enabled else 0.0
        self.resume_step = self.manager.restore(self.matrices)
        if obs.enabled:
            obs.record(
                "ckpt.restore", restore_t0, obs.now(), cat="ckpt", lane="ckpt",
                attrs={"resume_step": self.resume_step},
            )
        if self.resume_step > 0:
            self.stats.resumes += 1
            # Restore the health sentinel's escalation state: a resumed
            # run must make the same escalation decisions (e.g. keep the
            # fp32 GEMM override) or it would not be bitwise identical.
            manifest = self.manager.load_manifest() or {}
            health_state = (manifest.get("extra") or {}).get("health")
            if health_state is not None and self.ex.health.enabled:
                self.ex.health.load_state(health_state)
        self._last_saved_step = self.resume_step
        self._last_saved_time = self._clock()
        return self.resume_step

    def should_skip(self, step: int) -> bool:
        """Whether *step* already completed in a previous session."""
        if not self._started:
            raise CheckpointError(
                "protocol", "should_skip() before start()"
            )
        if step < self.resume_step:
            self.stats.steps_skipped += 1
            return True
        return False

    def step_complete(self, step: int, frontier: int) -> None:
        """Record that 0-indexed *step* finished with the finalized-column
        *frontier*; persists a checkpoint when the policy says so."""
        completed = step + 1
        if not self._policy.due(
            completed - self._last_saved_step,
            self._clock() - self._last_saved_time,
        ):
            return
        # quiesce: every issued op retires, the host matrices are a
        # consistent cut of the factorization at this boundary — and the
        # sentinel's probe/escalation state is settled enough to persist
        self.ex.synchronize()
        obs = self.ex.obs
        save_t0 = obs.now() if obs.enabled else 0.0
        extra = (
            {"health": self.ex.health.state_dict()}
            if self.ex.health.enabled
            else None
        )
        written = self.manager.save(
            completed,
            frontier,
            self.matrices,
            frontiers={self.FRONTIER_ROLE: frontier},
            extra=extra,
        )
        if obs.enabled:
            obs.record(
                "ckpt.save", save_t0, obs.now(), cat="ckpt", lane="ckpt",
                attrs={"step": completed, "frontier": frontier,
                       "nbytes": written},
            )
        self.stats.checkpoints_written += 1
        self.stats.checkpoint_bytes += written
        self._last_saved_step = completed
        self._last_saved_time = self._clock()


class _NullCheckpoint:
    """No-op stand-in when checkpointing is disabled."""

    resume_step = 0
    stats = CheckpointStats()

    def start(self) -> int:
        return 0

    def should_skip(self, step: int) -> bool:
        return False

    def step_complete(self, step: int, frontier: int) -> None:
        pass


#: Shared no-op session (stateless; its stats stay zero by construction).
NULL_CHECKPOINT = _NullCheckpoint()
