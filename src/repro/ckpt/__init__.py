"""repro.ckpt — crash-consistent checkpoint/restart for OOC factorizations.

Public surface:

* :class:`CheckpointConfig` / :class:`CheckpointPolicy` — what users pass
  as ``checkpoint=`` to :func:`repro.qr.api.ooc_qr`,
  :func:`repro.factor.api.ooc_lu` and :func:`repro.factor.api.ooc_cholesky`;
* :class:`CheckpointManager` — atomic save/load/restore of progress;
* :class:`CheckpointSession` — the driver-facing protocol binding a
  manager to one run (executor + host matrices);
* :func:`run_fingerprint` — the run-identity digest a manifest is bound to;
* :class:`CheckpointStats` — counters a checkpointed run reports.

See docs/checkpoint.md for format, atomicity and resume semantics.
"""

from repro.ckpt.manager import (
    CheckpointConfig,
    CheckpointManager,
    CheckpointPolicy,
    CheckpointStats,
    run_fingerprint,
)
from repro.ckpt.session import NULL_CHECKPOINT, CheckpointSession

__all__ = [
    "CheckpointConfig",
    "CheckpointManager",
    "CheckpointPolicy",
    "CheckpointSession",
    "CheckpointStats",
    "NULL_CHECKPOINT",
    "run_fingerprint",
]
