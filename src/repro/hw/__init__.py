"""Hardware performance models: GPU specs, PCIe transfers, GEMM and panel
cost models calibrated against the paper's V100 measurements."""

from repro.hw.gemm import GemmModel, Precision
from repro.hw.panel import PanelModel
from repro.hw.specs import (
    A100_40GB,
    KNOWN_GPUS,
    RTX2080TI,
    RTX3090,
    V100_16GB,
    V100_32GB,
    GpuSpec,
    get_gpu,
)
from repro.hw.transfer import Direction, TransferModel

__all__ = [
    "A100_40GB",
    "Direction",
    "GemmModel",
    "GpuSpec",
    "KNOWN_GPUS",
    "PanelModel",
    "Precision",
    "RTX2080TI",
    "RTX3090",
    "TransferModel",
    "V100_16GB",
    "V100_32GB",
    "get_gpu",
]
