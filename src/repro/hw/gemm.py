"""TensorCore GEMM execution-time model with shape-dependent efficiency.

The paper's central empirical observation (§5.1, Tables 1-2) is that
TensorCore GEMM throughput depends strongly on shape, not just size:

* a 16384^3 cube runs at ~98.8 TFLOPS,
* a fat 8192 x 65536 x 65536 outer-product block runs at ~107.6 TFLOPS,
* but the blocking algorithm's reduction-heavy 16384 x 16384 x 131072
  inner-product block runs at only ~52.6 TFLOPS ("tall and skinny GEMMs
  are very hard to run at peak speed on TensorCore", quoting [24]).

We model the effective rate as

    R(m, n, k) = R_peak * e_size(m, n, k) * e_aspect(m, n, k)

with

    e_size   = g / (g + g0),        g = (m n k)^(1/3)   (tile/tail overheads
                                    vanish as the problem grows; g0 = 1536)
    e_aspect = 1 / (1 + c * max(0, k / max(m, n) - 1))  (deep reductions over
                                    a small output tile under-utilise the SMs;
                                    c = 0.16)

calibrated to reproduce the three measurements above within ~5%:

    (16384, 16384, 16384)  -> 102.4 TFLOPS model vs 98.8 paper
    ( 8192, 65536, 65536)  -> 107.0 TFLOPS model vs 107.6 paper
    (16384, 16384, 131072) ->  50.5 TFLOPS model vs 52.6 paper

CUDA-core SGEMM uses the same functional form with the fp32 peak and a
gentler aspect penalty (CUDA-core GEMMs tolerate deep k better because the
reduction is not funnelled through the small TensorCore MMA tiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.hw.specs import GpuSpec
from repro.util.units import gemm_flops
from repro.util.validation import check_gemm_shapes


class Precision(str, Enum):
    """GEMM execution engine / precision mode."""

    TC_FP16 = "tc-fp16"             # TensorCore: fp16 inputs, fp32 accumulate
    TC_FP16_SPLIT3 = "tc-fp16x3"    # precision-split: 3 TC GEMMs, ~fp32 accuracy
    TC_FP16_SPLIT4 = "tc-fp16x4"    # precision-split: 4 TC GEMMs, full fp32 inputs
    FP32 = "fp32"                   # CUDA-core SGEMM

    @property
    def work_factor(self) -> int:
        """TensorCore GEMM invocations per logical GEMM."""
        if self is Precision.TC_FP16_SPLIT3:
            return 3
        if self is Precision.TC_FP16_SPLIT4:
            return 4
        return 1

    @property
    def input_format(self) -> str:
        """The :func:`repro.tc.gemm.tc_gemm` input-format string."""
        if self is Precision.TC_FP16:
            return "fp16"
        if self is Precision.TC_FP16_SPLIT3:
            return "fp16x3"
        if self is Precision.TC_FP16_SPLIT4:
            return "fp16x4"
        return "fp32"


#: Size at which shape-independent efficiency reaches 50% (geometric mean).
SIZE_HALF_POINT = 1536.0
#: Aspect-ratio penalty slope for TensorCore GEMMs.
TC_ASPECT_PENALTY = 0.16
#: Aspect-ratio penalty slope for CUDA-core GEMMs.
CUDA_ASPECT_PENALTY = 0.04


@dataclass(frozen=True)
class GemmModel:
    """Execution-time model for in-core GEMMs on one :class:`GpuSpec`."""

    spec: GpuSpec

    def peak(self, precision: Precision = Precision.TC_FP16) -> float:
        """Peak rate (flops/s) of the engine selected by *precision*."""
        if precision == Precision.FP32:
            return self.spec.cuda_peak_flops
        return self.spec.tc_peak_flops

    @staticmethod
    def size_efficiency(m: int, n: int, k: int) -> float:
        """Shape-independent efficiency from problem size (0, 1)."""
        geo = (float(m) * float(n) * float(k)) ** (1.0 / 3.0)
        return geo / (geo + SIZE_HALF_POINT)

    @staticmethod
    def aspect_efficiency(
        m: int, n: int, k: int, precision: Precision = Precision.TC_FP16
    ) -> float:
        """Reduction-aspect efficiency in (0, 1]: penalises k >> max(m, n)."""
        c = (
            CUDA_ASPECT_PENALTY
            if precision == Precision.FP32
            else TC_ASPECT_PENALTY
        )
        aspect = k / max(m, n)
        return 1.0 / (1.0 + c * max(0.0, aspect - 1.0))

    def efficiency(
        self, m: int, n: int, k: int, precision: Precision = Precision.TC_FP16
    ) -> float:
        """Combined efficiency factor in (0, 1)."""
        m, n, k = check_gemm_shapes(m, n, k)
        return self.size_efficiency(m, n, k) * self.aspect_efficiency(
            m, n, k, precision
        )

    def rate(
        self, m: int, n: int, k: int, precision: Precision = Precision.TC_FP16
    ) -> float:
        """Effective *logical* rate (flops/s) for ``C(m,n) += A(m,k) B(k,n)``
        — a precision-split GEMM delivers 1/work_factor of the hardware
        rate per logical flop."""
        return (
            self.peak(precision)
            * self.efficiency(m, n, k, precision)
            / precision.work_factor
        )

    def time(
        self, m: int, n: int, k: int, precision: Precision = Precision.TC_FP16
    ) -> float:
        """Execution time in seconds, including kernel-launch latency."""
        m, n, k = check_gemm_shapes(m, n, k)
        return (
            precision.work_factor * self.spec.kernel_launch_s
            + gemm_flops(m, n, k) / self.rate(m, n, k, precision)
        )
