"""In-core panel-factorization cost model.

Both OOC variants use the *same* in-core recursive CGS panel factorization
(the paper builds on LATER [24]); Table 4 confirms identical panel time for
blocking and recursive OOC QR. From Table 4 we can extract the effective
panel rate:

* 65536 x 65536, b = 8192: 8 panels, 2 m b^2 flops each = 7.04e13 total
  in 2.7 s  -> ~26.1 TFLOPS
* 262144 x 65536, b = 8192: 2.82e14 flops in 9.0 s -> ~31.3 TFLOPS

Taller panels are *more* efficient (the inner GEMMs of the recursive panel
factorization get larger), so we model the effective panel rate as a
saturating function of the panel height:

    R_panel(m) = R0 * m / (m + m_half)

with R0 = 33 TFLOPS and m_half = 16384 on the V100, which hits both
measurements within ~1%:

    m =  65536 -> 26.4 TFLOPS (paper 26.1)
    m = 262144 -> 31.1 TFLOPS (paper 31.3)

For other GPUs, R0 scales with the TensorCore peak (panel work is GEMM-rich
recursive CGS, so its throughput tracks the TC engine).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import GpuSpec, V100_32GB
from repro.util.validation import check_shape_2d

#: Effective asymptotic panel rate on the V100 (flops/s); other GPUs scale
#: by their TensorCore peak relative to the V100's.
V100_PANEL_R0 = 33.0e12
#: Panel height at which the rate reaches half of R0.
PANEL_M_HALF = 16384.0


@dataclass(frozen=True)
class PanelModel:
    """Execution-time model for the in-core recursive-CGS panel QR."""

    spec: GpuSpec

    def r0(self) -> float:
        """Asymptotic panel rate for this GPU (flops/s)."""
        return V100_PANEL_R0 * self.spec.tc_peak_flops / V100_32GB.tc_peak_flops

    def rate(self, m: int, b: int) -> float:
        """Effective rate (flops/s) to QR-factorize an m-by-b panel."""
        m, b = check_shape_2d((m, b), "panel")
        return self.r0() * m / (m + PANEL_M_HALF)

    @staticmethod
    def flops(m: int, b: int) -> int:
        """Flop count charged to one m-by-b panel factorization.

        We charge ``2 m b^2``: the cost of orthogonalizing b columns of
        height m via blocked CGS (projection GEMMs dominate; the n^3/3
        correction is negligible for the tall panels the OOC algorithms
        produce and is folded into the calibrated rate).
        """
        m, b = check_shape_2d((m, b), "panel")
        return 2 * m * b * b

    def time(self, m: int, b: int) -> float:
        """Seconds to factorize an m-by-b device-resident panel."""
        return self.spec.kernel_launch_s + self.flops(m, b) / self.rate(m, b)
