"""PCIe transfer-time model.

Transfers are modelled as ``latency + bytes / bandwidth`` with separate H2D
and D2H bandwidths (the paper's measurements differ slightly by direction)
and a pageable-memory derating factor. D2D copies (the staging-buffer trick
of §4.1.2) use on-device bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ValidationError
from repro.hw.specs import GpuSpec


class Direction(str, Enum):
    """Transfer direction over the PCIe link (or on-device for D2D)."""

    H2D = "h2d"
    D2H = "d2h"
    D2D = "d2d"


@dataclass(frozen=True)
class TransferModel:
    """Time model for copies between host and device memory."""

    spec: GpuSpec
    pinned: bool = True

    def bandwidth(self, direction: Direction) -> float:
        """Effective bandwidth in bytes/s for *direction*."""
        if direction == Direction.H2D:
            bw = self.spec.h2d_bytes_per_s
        elif direction == Direction.D2H:
            bw = self.spec.d2h_bytes_per_s
        elif direction == Direction.D2D:
            return self.spec.d2d_bytes_per_s
        else:  # pragma: no cover - Enum exhausts the cases
            raise ValidationError(f"unknown direction {direction!r}")
        return bw if self.pinned else bw * self.spec.pageable_factor

    def time(self, nbytes: int, direction: Direction) -> float:
        """Seconds to move *nbytes* in *direction* (zero bytes → zero time)."""
        if nbytes < 0:
            raise ValidationError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        latency = 0.0 if direction == Direction.D2D else self.spec.pcie_latency_s
        return latency + nbytes / self.bandwidth(direction)
