"""GPU hardware specifications used by the performance models.

The paper's testbed is an NVIDIA V100 PCIe 32 GB; its §5.2 "small memory"
experiment caps the same card at 16 GB, and §6 projects to A100 and RTX
30-series. Each is captured here as a :class:`GpuSpec`.

Rates are calibrated against the paper's own measurements:

* PCIe pinned H2D ~11.8 GB/s (Table 1: 8.59 GB block in 728/693 ms),
  D2H ~13.2 GB/s (Table 2: 1.07 GB block out in 81 ms).
* TensorCore GEMM peak 112 TFLOPS fp16 on V100, with shape-dependent
  efficiency modelled in :mod:`repro.hw.gemm`.
* CUDA-core SGEMM ~14 TFLOPS (paper §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.util.units import gb, gib, tflops


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU + host link.

    All rates are SI (bytes/s, flops/s); capacities in bytes.
    """

    name: str
    mem_bytes: int
    tc_peak_flops: float          # TensorCore (fp16 in / fp32 acc) peak
    cuda_peak_flops: float        # fp32 CUDA-core SGEMM peak
    h2d_bytes_per_s: float        # pinned host-to-device bandwidth
    d2h_bytes_per_s: float        # pinned device-to-host bandwidth
    d2d_bytes_per_s: float        # on-device copy bandwidth
    pcie_latency_s: float = 10e-6  # per-transfer fixed latency
    pageable_factor: float = 0.5   # pageable transfers run at this fraction
    kernel_launch_s: float = 15e-6  # per-kernel fixed launch latency

    def __post_init__(self) -> None:
        if self.mem_bytes <= 0:
            raise ConfigError(f"{self.name}: mem_bytes must be positive")
        for attr in (
            "tc_peak_flops",
            "cuda_peak_flops",
            "h2d_bytes_per_s",
            "d2h_bytes_per_s",
            "d2d_bytes_per_s",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{self.name}: {attr} must be positive")
        if not (0 < self.pageable_factor <= 1):
            raise ConfigError(f"{self.name}: pageable_factor must be in (0, 1]")
        if self.pcie_latency_s < 0 or self.kernel_launch_s < 0:
            raise ConfigError(f"{self.name}: latencies must be non-negative")

    @property
    def compute_to_bandwidth_ratio(self) -> float:
        """R_g / R_m in the paper's notation (flops per byte moved H2D);
        drives the overlap crossovers of §3.3."""
        return self.tc_peak_flops / self.h2d_bytes_per_s

    def with_memory(self, mem_bytes: int, suffix: str | None = None) -> "GpuSpec":
        """The same card with a different (e.g. capped) memory capacity,
        as in the paper's §5.2 16 GB experiment on a 32 GB V100."""
        if mem_bytes <= 0:
            raise ConfigError("mem_bytes must be positive")
        name = self.name if suffix is None else f"{self.name}-{suffix}"
        return replace(self, name=name, mem_bytes=int(mem_bytes))


# -- Paper testbed ----------------------------------------------------------

V100_32GB = GpuSpec(
    name="V100-PCIe-32GB",
    mem_bytes=gib(32),
    tc_peak_flops=tflops(112.0),
    cuda_peak_flops=tflops(14.0),
    h2d_bytes_per_s=gb(11.8),
    d2h_bytes_per_s=gb(13.2),
    d2d_bytes_per_s=gb(750.0),
)

#: §5.2: "We simulate the factorization by limiting the memory usage to be
#: less than 16GB on V100"
V100_16GB = V100_32GB.with_memory(gib(16), suffix="capped16")

# -- §6 future-work projections ---------------------------------------------

A100_40GB = GpuSpec(
    name="A100-PCIe-40GB",
    mem_bytes=gib(40),
    tc_peak_flops=tflops(312.0),
    cuda_peak_flops=tflops(19.5),
    h2d_bytes_per_s=gb(22.0),   # PCIe gen4
    d2h_bytes_per_s=gb(24.0),
    d2d_bytes_per_s=gb(1555.0),
)

RTX3090 = GpuSpec(
    name="RTX3090-24GB",
    mem_bytes=gib(24),
    tc_peak_flops=tflops(71.0),
    cuda_peak_flops=tflops(35.6),
    h2d_bytes_per_s=gb(22.0),
    d2h_bytes_per_s=gb(24.0),
    d2d_bytes_per_s=gb(936.0),
)

RTX2080TI = GpuSpec(
    name="RTX2080Ti-11GB",
    mem_bytes=gib(11),
    tc_peak_flops=tflops(53.8),
    cuda_peak_flops=tflops(13.4),
    h2d_bytes_per_s=gb(11.8),
    d2h_bytes_per_s=gb(13.2),
    d2d_bytes_per_s=gb(616.0),
)

KNOWN_GPUS: dict[str, GpuSpec] = {
    spec.name: spec
    for spec in (V100_32GB, V100_16GB, A100_40GB, RTX3090, RTX2080TI)
}


def get_gpu(name: str) -> GpuSpec:
    """Look up a built-in :class:`GpuSpec` by name."""
    try:
        return KNOWN_GPUS[name]
    except KeyError:
        known = ", ".join(sorted(KNOWN_GPUS))
        raise ConfigError(f"unknown GPU {name!r}; known: {known}") from None
