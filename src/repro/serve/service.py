"""`FactorService`: a multi-tenant out-of-core factorization service.

One service owns one (simulated) device and serves a stream of QR / GEMM /
LU / Cholesky jobs under a device-memory budget:

* :meth:`FactorService.submit` validates a :class:`~repro.serve.job.JobSpec`,
  prices its device footprint (:mod:`repro.serve.admission`), consults the
  content-addressed result cache, and either resolves the returned
  :class:`~repro.serve.job.JobHandle` immediately (cache hit), enqueues it,
  or rejects it with a reasoned :class:`~repro.errors.AdmissionError`
  (backpressure: bounded queue, footprint over budget);
* a scheduler thread dispatches the highest-priority queued job whose
  footprint fits the remaining budget onto a pool of worker threads —
  smaller jobs may overtake a too-large queue head (first-fit packing);
* each job runs on its own executor (serial or per-engine-threaded
  :class:`~repro.execution.numeric.NumericExecutor`, or a
  :class:`~repro.execution.sim.SimExecutor` for data-free capacity
  planning) whose allocator capacity *is* the admitted footprint, so the
  budget is enforced by construction;
* worker faults retry with exponential backoff (the concurrent executor's
  fault-drain semantics guarantee a failed pipeline unwinds cleanly
  first); deterministic input errors fail fast;
* everything observable lands in a :class:`~repro.serve.metrics.MetricsRegistry`
  (queue depth, admitted bytes, wait/run latencies, cache hit rate,
  rejections, retries) exposable as a JSON snapshot.

See docs/serve.md for the architecture discussion.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.config import PAPER_SYSTEM, SystemConfig
from repro.errors import (
    AdmissionError,
    AnalysisError,
    CheckpointError,
    ConfigError,
    DeviceLostError,
    NumericalError,
    OutOfDeviceMemoryError,
    OutOfHostMemoryError,
    PlanError,
    PlanViolation,
    PrecisionViolation,
    ShapeError,
    ValidationError,
)
from repro.faults.inject import as_injector
from repro.faults.report import FaultReport
from repro.obs import clock as _clock
from repro.obs.clock import monotonic as _monotonic
from repro.obs.span import NULL_RECORDER, SpanRecorder
from repro.serve.admission import AdmissionController, estimate_footprint_bytes
from repro.serve.cache import ResultCache, job_cache_key
from repro.serve.job import JobHandle, JobResult, JobSpec, JobState
from repro.serve.metrics import MetricsRegistry
from repro.util.validation import one_of

#: Exception types never worth retrying: the same inputs will fail again.
#: NumericalError is here because the executors are deterministic — a job
#: whose data NaN'd or whose escalation ladder was exhausted will do so
#: identically on every retry; the service quarantines it instead (one
#: attempt, failure report attached, ``jobs_quarantined`` incremented).
#: :class:`~repro.errors.FaultError` is deliberately *not* here: faults
#: are transient by definition, so a faulted attempt retries (and its
#: injected spec has burnt, so the retry makes progress). Its
#: ``DeviceLostError`` subclass is handled separately — the degradation
#: path, not the retry ladder.
DETERMINISTIC_ERRORS = (
    ValidationError,
    ShapeError,
    PlanError,
    ConfigError,
    AdmissionError,
    AnalysisError,
    CheckpointError,
    NumericalError,
    OutOfDeviceMemoryError,
    OutOfHostMemoryError,
)


def run_job(
    spec: JobSpec,
    config: SystemConfig,
    concurrency: str,
    *,
    faults=None,
    dist_recover: bool = True,
) -> JobResult:
    """Execute one job on *config* and package its outputs.

    This is the default runner; the service accepts a replacement (the
    positional three-argument signature suffices — the keyword-only
    fault-plane arguments are passed to the default runner only) for
    fault injection and capacity experiments. *faults* is a
    :class:`~repro.faults.plan.FaultPlan` or a live per-job injector;
    *dist_recover* controls whether multi-device jobs absorb device
    losses via lineage recovery or surface them to the service's
    degradation path.
    """
    opts = spec.options
    if spec.kind == "gemm":
        from repro.ooc.api import ooc_gemm

        a, b = spec.operands
        res = ooc_gemm(
            a, b, trans_a=spec.trans_a, mode=spec.mode, config=config,
            blocksize=opts.blocksize, pipelined=opts.pipelined,
            concurrency=concurrency if spec.mode == "numeric" else "serial",
        )
        arrays = {} if res.c is None else {"c": res.c}
        return JobResult(
            kind=spec.kind, arrays=arrays, makespan=res.makespan,
            moved_bytes=res.stats.moved_bytes,
        )

    if spec.devices > 1:
        return _run_dist_job(spec, config, faults=faults, recover=dist_recover)

    kwargs: dict[str, Any] = dict(
        method=spec.method, mode=spec.mode, config=config, options=opts,
    )
    if spec.mode == "numeric":
        kwargs["concurrency"] = concurrency
    if spec.checkpoint_dir is not None:
        from repro.ckpt import CheckpointConfig, CheckpointPolicy

        kwargs["checkpoint"] = CheckpointConfig(
            spec.checkpoint_dir,
            policy=CheckpointPolicy(every_steps=spec.checkpoint_every),
        )
    if spec.kind == "qr":
        from repro.qr.api import ooc_qr

        res = ooc_qr(spec.operands[0], **kwargs)
        arrays = {} if res.q is None else {"q": res.q, "r": res.r}
    else:
        from repro.factor.api import ooc_cholesky, ooc_lu

        run = ooc_lu if spec.kind == "lu" else ooc_cholesky
        res = run(spec.operands[0], **kwargs)
        arrays = {} if res.packed is None else {"packed": res.packed}
    return JobResult(
        kind=spec.kind, arrays=arrays, makespan=res.makespan,
        moved_bytes=res.stats.moved_bytes, ckpt=res.ckpt, health=res.health,
    )


def _run_dist_job(
    spec: JobSpec, config: SystemConfig, *, faults=None, recover: bool = True
) -> JobResult:
    """Place one QR job across a device pool via :mod:`repro.dist`.

    Numeric jobs run the sharded TSQR backend inline (the service's
    worker threads are the concurrency layer; no per-job process pool).
    Sim jobs partition the global task graph across a symmetric pool
    built from the job's capped per-device config and *verify every
    per-device program* — this is where the plan verification that
    submit skips for multi-device jobs actually happens; an unsafe
    placement fails the job deterministically with the report attached.
    With ``recover=True`` (the default) injected device losses are
    absorbed inside the backend — lineage recovery, results bitwise
    identical to fault-free; ``recover=False`` lets the loss escape as
    :class:`~repro.errors.DeviceLostError` for the service's graceful
    degradation path.
    """
    if spec.tolerance is not None:
        # Multi-device jobs skip the single-device submit-time capture, so
        # the precision gate runs here against the global dist graph (the
        # bound prices the reduction tree by depth; docs/analysis.md).
        from repro.analysis import PRECISION_RULES
        from repro.dist.sim import dist_precision_report

        dm, dn = spec.shapes()[0]
        report = dist_precision_report(
            config, m=dm, n=dn, n_devices=spec.devices,
            tolerance=spec.tolerance,
        )
        if (
            any(f.rule in PRECISION_RULES for f in report.findings)
            and not spec.options.health.escalating
        ):
            raise PrecisionViolation(report)
    if spec.mode == "numeric":
        from repro.dist.numeric import dist_qr_numeric

        res = dist_qr_numeric(
            spec.operands[0], n_devices=spec.devices, processes=0,
            faults=faults, recover=recover,
        )
        comm = res.comm
        return JobResult(
            kind=spec.kind,
            arrays={"q": res.q, "r": res.r},
            moved_bytes=(comm.total_up_words + comm.down_words) * 8,
            faults=res.faults,
        )
    from repro.dist.sim import simulate_dist_qr

    m, n = spec.shapes()[0]
    sim = simulate_dist_qr(
        config, m=m, n=n, n_devices=spec.devices, faults=faults
    )
    if not sim.all_verified:
        bad = next(r for r in sim.reports if not r.ok)
        raise PlanViolation(bad)
    return JobResult(
        kind=spec.kind,
        arrays={},
        makespan=sim.makespan,
        moved_bytes=sim.transfer_bytes,
        faults=sim.faults,
    )


@dataclass(order=True)
class _QueueEntry:
    """Heap entry: priority first, then submission order."""

    priority: int
    seq: int
    job: "_Job" = field(compare=False, default=None)  # type: ignore[assignment]


@dataclass(eq=False)
class _Job:
    spec: JobSpec
    handle: JobHandle
    cache_key: str | None
    submitted_at: float
    #: Pre-allocated root span id (admission -> verify -> wait -> execute
    #: -> cache); the span itself is recorded when the job retires.
    obs_root: int | None = None
    #: Recorder-timebase submit instant (the root span's start).
    obs_t0: float = 0.0


class FactorService:
    """Multi-tenant factorization service (see module docstring).

    Parameters
    ----------
    config
        The device being served; defaults to the paper's V100 testbed.
        Tests pass memory-starved configs so tiny jobs exercise real
        queueing and packing.
    device_budget
        Total device bytes concurrently admitted jobs may hold; defaults
        to the config's usable device bytes (one whole device).
    n_workers
        Worker threads (= maximum concurrently running jobs).
    queue_limit
        Bound on *queued* (admitted but not yet running) jobs; submissions
        beyond it are rejected with reason ``queue-saturated``.
    cache
        A :class:`~repro.serve.cache.ResultCache` to share, True for a
        fresh private 128-entry cache (the default), or None/False to
        disable result caching.
    max_retries / backoff_base_s / backoff_max_s
        Per-job retry policy for transient worker faults: attempt N sleeps
        ``min(backoff_max_s, backoff_base_s * 2**N)`` before re-running.
    job_concurrency
        Executor flavour for numeric jobs: ``"serial"`` or ``"threads"``
        (per-engine worker threads inside each job, docs/concurrency.md).
    metrics
        A shared :class:`~repro.serve.metrics.MetricsRegistry`; defaults
        to a private one.
    runner
        Replacement for :func:`run_job` (fault injection, test doubles).
    verify_plans
        Run the static plan verifier (:mod:`repro.analysis`) at submit
        time: the job's op stream is captured symbolically under its
        exact grant, proved race-free / leak-free / within budget, and
        the verifier's *exact* peak-memory result — not the plan
        heuristic — is what admission charges. Plans with findings are
        quarantined with ``AdmissionError("plan-rejected")`` before they
        ever touch the queue. On by default; see docs/analysis.md.
    obs
        A shared :class:`~repro.obs.SpanRecorder`. Every job then records
        one root span (submit to retire) on a ``jobs`` lane plus
        verify/wait/attempt child spans on a ``serve`` lane; off by
        default. See docs/observability.md.
    faults
        A :class:`~repro.faults.plan.FaultPlan` injected into every job:
        each execution gets its *own* injector (specs burn down per job,
        so retries and degraded re-runs make progress past an injected
        fault), guarding the worker attempt (site ``serve-worker``) and,
        for multi-device jobs, every dist-backend site. Off by default;
        a disabled plan is bitwise-off. See docs/robustness.md.
    on_device_loss
        Policy for a ``devices=P`` job whose pool loses members:
        ``"recover"`` (default) absorbs the loss inside the dist backend
        — lineage recovery, results bitwise identical to fault-free at
        the full pool size; ``"degrade"`` re-admits the job at the
        surviving pool size (re-priced through the admission charger,
        ``jobs_degraded`` incremented, result carries ``degraded_to``);
        ``"fail"`` fails the job deterministically (the chaos-smoke
        negative control).
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        device_budget: int | None = None,
        n_workers: int = 2,
        queue_limit: int = 64,
        cache: ResultCache | None | bool = True,
        max_retries: int = 2,
        backoff_base_s: float = 0.02,
        backoff_max_s: float = 1.0,
        job_concurrency: str = "serial",
        metrics: MetricsRegistry | None = None,
        runner: Callable[[JobSpec, SystemConfig, str], JobResult] | None = None,
        verify_plans: bool = True,
        obs: SpanRecorder | None = None,
        faults=None,
        on_device_loss: str = "recover",
    ):
        self.config = config or PAPER_SYSTEM
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        self.job_concurrency = one_of(
            job_concurrency, ("serial", "threads"), "job_concurrency"
        )
        self.n_workers = n_workers
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        if cache is True:
            cache = ResultCache()
        elif cache is False:
            cache = None
        self.cache = cache
        self.verify_plans = verify_plans
        self.faults = faults
        self.on_device_loss = one_of(
            on_device_loss, ("recover", "degrade", "fail"), "on_device_loss"
        )
        self.metrics = metrics or MetricsRegistry()
        # Span recorder (repro.obs): one root span per job spanning
        # admission -> verify -> wait -> execute -> cache, with phase
        # child spans; disabled by default (docs/observability.md).
        self.obs = obs if obs is not None else NULL_RECORDER
        self.admission = AdmissionController(
            budget_bytes=(
                device_budget
                if device_budget is not None
                else self.config.usable_device_bytes
            ),
            max_pending=queue_limit,
        )
        self._runner = runner or run_job

        m = self.metrics
        self._submitted_c = m.counter("jobs_submitted", "jobs accepted by submit()")
        self._completed_c = m.counter("jobs_completed", "jobs finished successfully")
        self._failed_c = m.counter("jobs_failed", "jobs that exhausted retries")
        self._rejected_c = m.counter("jobs_rejected", "submissions refused by admission")
        self._retries_c = m.counter("job_retries", "re-executions after worker faults")
        self._cache_hits_c = m.counter("cache_hits", "submissions served from cache")
        self._cache_misses_c = m.counter("cache_misses", "submissions that had to run")
        self._queue_depth_g = m.gauge("queue_depth", "jobs waiting to be dispatched")
        self._running_g = m.gauge("jobs_running", "jobs currently executing")
        self._admitted_g = m.gauge("admitted_bytes", "device bytes charged to running jobs")
        self._wait_h = m.histogram("queue_wait_s", "submit-to-dispatch latency")
        self._run_h = m.histogram("run_s", "execution time of the final attempt")
        self._turnaround_h = m.histogram("turnaround_s", "submit-to-done latency")
        self._ckpt_written_c = m.counter(
            "checkpoints_written", "checkpoints persisted by jobs"
        )
        self._ckpt_bytes_c = m.counter(
            "checkpoint_bytes", "payload bytes written to checkpoints"
        )
        self._resumes_c = m.counter(
            "resumes", "job executions that resumed from a checkpoint"
        )
        self._steps_skipped_c = m.counter(
            "steps_skipped_on_resume", "steps skipped by resumed jobs"
        )
        self._quarantined_c = m.counter(
            "jobs_quarantined",
            "jobs refused by the numerical-health sentinel (poison jobs: "
            "deterministic failures, one attempt, never retried)",
        )
        self._escalations_c = m.counter(
            "escalations_total", "panel escalations recorded across all jobs"
        )
        self._plans_verified_c = m.counter(
            "plans_verified", "submissions whose plan the verifier proved clean"
        )
        self._plans_rejected_c = m.counter(
            "plans_rejected",
            "submissions quarantined because the static plan verifier "
            "found violations (race, leak, over-budget peak, ...)",
        )
        self._plans_precision_waived_c = m.counter(
            "plans_precision_waived",
            "submissions admitted despite precision findings because the "
            "job's health=escalate runtime fallback can recover per-panel "
            "(static bound over tolerance, waived; see docs/analysis.md)",
        )
        self._distributed_c = m.counter(
            "jobs_distributed",
            "jobs placed across a multi-device pool via repro.dist",
        )
        self._faults_injected_c = m.counter(
            "faults_injected",
            "faults fired by the injection plane across all jobs",
        )
        self._recoveries_c = m.counter(
            "recoveries_total",
            "device-loss recoveries (lineage replays) performed by jobs",
        )
        self._degraded_c = m.counter(
            "jobs_degraded",
            "devices=P jobs re-admitted at a smaller surviving pool size "
            "after device loss (graceful degradation, never cached)",
        )

        self._cv = threading.Condition()
        self._pending: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._free_workers = n_workers
        self._active = 0
        self._closed = False
        self._run_queue: "queue.SimpleQueue[_Job | None]" = queue.SimpleQueue()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for w in self._workers:
            w.start()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="serve-scheduler", daemon=True
        )
        self._scheduler.start()

    # -- public API ---------------------------------------------------------------

    def job_config(self, spec: JobSpec) -> SystemConfig:
        """The exact capped config a job runs under (admitted footprint as
        allocator capacity) — submit-independent, so a direct
        ``ooc_qr``/``ooc_gemm``/``ooc_lu`` call on this config reproduces
        the service's result bit for bit."""
        return self._capped_config(estimate_footprint_bytes(spec, self.config))

    def verify_job(self, spec: JobSpec):
        """Statically verify the plan *spec* would run under its grant.

        Captures the job's op stream symbolically (no data, no clock)
        under the same capped config :meth:`job_config` returns and runs
        every verifier pass against the grant as the budget. Returns the
        :class:`~repro.analysis.verify.AnalysisReport`; raises
        :class:`~repro.errors.AdmissionError` (``job-unplannable``) when
        the engines cannot even plan inside the grant.
        """
        return self._verify_plan(spec, estimate_footprint_bytes(spec, self.config))

    def _verify_plan(self, spec: JobSpec, footprint: int):
        from repro.analysis import capture_job, verify_program

        try:
            program = capture_job(spec, self._capped_config(footprint))
        except PlanError as exc:
            raise AdmissionError(
                "job-unplannable",
                f"{spec.label()} cannot be planned inside its "
                f"{footprint}-byte grant: {exc}",
            ) from exc
        return verify_program(
            program, budget_bytes=footprint, tolerance=spec.tolerance
        )

    def _gate_plan(self, spec: JobSpec, footprint: int, rid, t_submit):
        """Verify *spec*'s plan and apply the admission gate; returns the
        report, or raises ``AdmissionError`` (counting and recording the
        rejection). Precision-only findings are waived — with the
        ``plans_precision_waived`` counter on the books — when the job's
        health options provide the ``escalate`` runtime fallback."""
        try:
            report = self._verify_plan(spec, footprint)
        except AdmissionError:
            self._rejected_c.inc()
            self._record_job_root(spec, rid, t_submit, "rejected")
            raise
        if report.findings:
            from repro.analysis import PRECISION_RULES

            precision_only = all(
                f.rule in PRECISION_RULES for f in report.findings
            )
            if precision_only and spec.options.health.escalating:
                # The runtime escalation ladder (docs/health.md) can
                # re-run unhealthy panels at higher precision, so a
                # statically-over-tolerance plan is admissible — with
                # a waiver on the books, not silently.
                self._plans_precision_waived_c.inc()
            else:
                self._plans_rejected_c.inc()
                self._rejected_c.inc()
                self._record_job_root(spec, rid, t_submit, "plan-rejected")
                violation = (
                    PrecisionViolation(report)
                    if precision_only
                    else PlanViolation(report)
                )
                raise AdmissionError(
                    "plan-rejected", str(violation)
                ) from violation
        else:
            self._plans_verified_c.inc()
        return report

    def submit(self, spec: JobSpec) -> JobHandle:
        """Admit one job; returns its future-like handle.

        Raises :class:`~repro.errors.AdmissionError` (with a ``reason``
        tag) when the job can never fit the budget, the queue is
        saturated, the service is closed, or (``verify_plans``) the
        static plan verifier proves the job's op stream unsafe
        (``plan-rejected``) — including the precision pass when the spec
        carries a ``tolerance`` (waived if the job's ``health=escalate``
        runtime fallback can recover per-panel; see docs/analysis.md).
        """
        obs = self.obs
        # Root span id + start are fixed at submit; the span itself is
        # recorded whenever the job retires (any thread, any outcome).
        t_submit = obs.now() if obs.enabled else 0.0
        rid = obs.allocate_id() if obs.enabled else None
        footprint = estimate_footprint_bytes(spec, self.config)
        key = None
        if self.cache is not None and spec.mode == "numeric":
            key = job_cache_key(spec, self.config, footprint)
            cached = self.cache.get(key)
            if cached is not None:
                if (
                    spec.tolerance is not None
                    and self.verify_plans
                    and spec.devices == 1
                ):
                    # A cached result must not bypass the precision gate:
                    # the tolerance is an admission predicate, not part of
                    # the result's identity (the plan computes the same
                    # bits either way, so it is absent from the cache key).
                    self._gate_plan(spec, footprint, rid, t_submit)
                self._cache_hits_c.inc()
                handle = JobHandle(next(self._seq), spec, footprint)
                handle._resolve(
                    JobResult(
                        kind=cached.kind, arrays=cached.arrays,
                        makespan=cached.makespan,
                        moved_bytes=cached.moved_bytes, cache_hit=True,
                        health=cached.health,
                    )
                )
                self._record_job_root(spec, rid, t_submit, "cache-hit")
                return handle
            self._cache_misses_c.inc()

        # Static plan verification happens outside the scheduler lock: the
        # capture is pure (no data, no clock, no shared state).
        # Multi-device jobs skip the single-device capture: their
        # placement is verified per-device by the dist runner instead
        # (every DeviceProgram through verify_program; see _run_dist_job).
        charge = footprint
        if self.verify_plans and spec.devices == 1:
            verify_t0 = obs.now() if obs.enabled else 0.0
            report = self._gate_plan(spec, footprint, rid, t_submit)
            if obs.enabled:
                obs.record(
                    "verify", verify_t0, obs.now(), cat="serve", lane="serve",
                    parent_id=rid, attrs={"job": spec.label()},
                )
            # Charge the verifier's exact peak, not the plan heuristic.
            # The grant (allocator capacity the job runs under) stays at
            # the heuristic footprint so the engines plan identically; a
            # clean report proves the run never exceeds ``peak_bytes`` of
            # that grant, so that is all the budget it needs to hold. An
            # explicit ``spec.device_memory`` is a deliberate reservation
            # (headroom the caller asked to hold) and is charged as-is.
            if spec.device_memory is None:
                charge = max(report.peak_bytes, 1)

        with self._cv:
            if self._closed:
                self._rejected_c.inc()
                self._record_job_root(spec, rid, t_submit, "rejected")
                raise AdmissionError("service-closed", "submit after close()")
            try:
                self.admission.check_submittable(charge, spec.label())
            except AdmissionError:
                self._rejected_c.inc()
                self._record_job_root(spec, rid, t_submit, "rejected")
                raise
            handle = JobHandle(next(self._seq), spec, footprint, charged_bytes=charge)
            job = _Job(
                spec=spec, handle=handle, cache_key=key,
                submitted_at=_monotonic(),
                obs_root=rid, obs_t0=t_submit,
            )
            heapq.heappush(
                self._pending,
                _QueueEntry(priority=spec.priority, seq=handle.job_id, job=job),
            )
            self.admission.enqueue()
            self._submitted_c.inc()
            if spec.devices > 1:
                self._distributed_c.inc()
            self._queue_depth_g.set(len(self._pending))
            self._cv.notify_all()
        return handle

    def _record_job_root(
        self,
        spec: JobSpec,
        rid: int | None,
        t_start: float,
        outcome: str,
        attempts: int | None = None,
    ) -> None:
        """Record a job's root span (pre-allocated id) at retirement."""
        if not self.obs.enabled or rid is None:
            return
        attrs: dict[str, Any] = {"kind": spec.kind, "outcome": outcome}
        if attempts is not None:
            attrs["attempts"] = attempts
        self.obs.record(
            f"job:{spec.label()}", t_start, self.obs.now(),
            cat="job", lane="jobs", span_id=rid, parent_id=None, attrs=attrs,
        )

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every accepted job has retired; False on timeout."""
        deadline = None if timeout is None else _monotonic() + timeout
        with self._cv:
            while self._pending or self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - _monotonic()
                    if remaining <= 0:
                        return False
                self._cv.wait(remaining)
        return True

    def snapshot_metrics(self) -> dict[str, Any]:
        """JSON-able view of every counter/gauge/histogram."""
        return self.metrics.snapshot()

    def close(self, wait: bool = True) -> None:
        """Stop the service. Still-queued jobs are rejected (their handles
        fail with ``service-closed``); running jobs finish. Idempotent."""
        with self._cv:
            if self._closed:
                if wait:
                    self._join(self._scheduler)
                    for w in self._workers:
                        self._join(w)
                return
            self._closed = True
            self._cv.notify_all()
        if wait:
            self._join(self._scheduler)
            for w in self._workers:
                self._join(w)

    @staticmethod
    def _join(thread: threading.Thread, timeout: float = 60.0) -> None:
        thread.join(timeout)

    def __enter__(self) -> "FactorService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(wait=True)

    # -- scheduling ---------------------------------------------------------------

    def _capped_config(self, footprint: int) -> SystemConfig:
        """The service config with the allocator capacity set to exactly
        *footprint* bytes (zero reserve: the reserve was already taken out
        of the service-level usable bytes)."""
        return replace(
            self.config,
            gpu=self.config.gpu.with_memory(footprint, suffix="job"),
            mem_reserve_fraction=0.0,
        )

    def _pick_locked(self) -> _Job | None:
        """Highest-priority queued job whose footprint fits right now.

        Skipped entries (too big for the current remaining budget) are
        pushed back — smaller, later jobs may overtake them, which is what
        keeps the device packed.
        """
        skipped: list[_QueueEntry] = []
        picked: _Job | None = None
        while self._pending:
            entry = heapq.heappop(self._pending)
            if self.admission.fits(entry.job.handle.charged_bytes):
                picked = entry.job
                break
            skipped.append(entry)
        for entry in skipped:
            heapq.heappush(self._pending, entry)
        return picked

    def _scheduler_loop(self) -> None:
        while True:
            with self._cv:
                job: _Job | None = None
                while not self._closed:
                    if self._free_workers > 0:
                        job = self._pick_locked()
                        if job is not None:
                            break
                    self._cv.wait()
                if job is None and self._closed:
                    # reject whatever is still queued, then stop the pool
                    while self._pending:
                        entry = heapq.heappop(self._pending)
                        self.admission.drop_pending()
                        self._rejected_c.inc()
                        self._record_job_root(
                            entry.job.spec, entry.job.obs_root,
                            entry.job.obs_t0, "rejected",
                        )
                        entry.job.handle._fail(
                            AdmissionError(
                                "service-closed",
                                f"{entry.job.spec.label()} still queued at close",
                            )
                        )
                    self._queue_depth_g.set(0)
                    self._cv.notify_all()
                    for _ in self._workers:
                        self._run_queue.put(None)
                    return
                assert job is not None
                self.admission.acquire(
                    job.handle.job_id, job.handle.charged_bytes
                )
                self._free_workers -= 1
                self._active += 1
                self._queue_depth_g.set(len(self._pending))
                self._admitted_g.set(self.admission.in_use_bytes)
                self._running_g.set(self._active)
            self._run_queue.put(job)

    # -- execution ----------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._run_queue.get()
            if job is None:
                return
            try:
                self._execute(job)
            finally:
                with self._cv:
                    self.admission.release(job.handle.job_id)
                    self._free_workers += 1
                    self._active -= 1
                    self._admitted_g.set(self.admission.in_use_bytes)
                    self._running_g.set(self._active)
                    self._cv.notify_all()

    def _call_runner(self, spec: JobSpec, config: SystemConfig, injector):
        """Dispatch one attempt. The default runner receives the fault
        plane; replacement runners keep the plain three-argument call."""
        if self._runner is run_job:
            return run_job(
                spec, config, self.job_concurrency,
                faults=injector,
                dist_recover=self.on_device_loss == "recover",
            )
        return self._runner(spec, config, self.job_concurrency)

    def _retire_faults(self, job: _Job, injector, result) -> None:
        """Fault-plane bookkeeping at retirement: counters plus one obs
        instant per injected fault on the job's span stream."""
        if injector is None:
            return
        self._faults_injected_c.inc(injector.fired)
        if result is not None and result.faults is not None:
            self._recoveries_c.inc(result.faults.recoveries)
        if self.obs.enabled and job.obs_root is not None:
            for ev in injector.events:
                self.obs.event(
                    f"fault:{ev.describe()}", cat="fault", lane="serve",
                    parent_id=job.obs_root,
                    attrs={"job": job.spec.label(), "kind": ev.kind},
                )

    def _execute(self, job: _Job) -> None:
        handle = job.handle
        spec = job.spec
        obs = self.obs
        handle.state = JobState.RUNNING
        handle.wait_s = _monotonic() - job.submitted_at
        self._wait_h.observe(handle.wait_s)
        if obs.enabled and job.obs_root is not None:
            obs.record(
                "wait", job.obs_t0, obs.now(), cat="serve", lane="serve",
                parent_id=job.obs_root, attrs={"job": spec.label()},
            )
        job_config = self._capped_config(handle.footprint_bytes)
        # One injector per job: its specs burn down across attempts, so
        # a retry (or a degraded re-run) makes progress past a fault
        # instead of re-hitting it forever.
        injector = as_injector(self.faults)
        spec_now = spec
        degraded_to: int | None = None
        retries = 0  # transient retries; degradation does not consume them

        while True:
            handle.attempts += 1
            t0 = _monotonic()
            attempt_t0 = obs.now() if obs.enabled else 0.0

            def record_attempt(outcome: str) -> None:
                if obs.enabled and job.obs_root is not None:
                    obs.record(
                        f"attempt {handle.attempts}", attempt_t0, obs.now(),
                        cat="serve", lane="serve", parent_id=job.obs_root,
                        attrs={"job": spec.label(), "outcome": outcome},
                    )

            try:
                if injector is not None:
                    injector.check("serve-worker")
                result = self._call_runner(spec_now, job_config, injector)
            except DeviceLostError as exc:
                handle.run_s = _monotonic() - t0
                record_attempt(type(exc).__name__)
                survivors = spec_now.devices - len(set(exc.lost))
                if (
                    spec_now.devices > 1
                    and survivors >= 1
                    and self.on_device_loss != "fail"
                ):
                    try:
                        spec_now, job_config = self._degrade(
                            job, spec_now, survivors, exc
                        )
                    except AdmissionError as adm:
                        self._fail_job(job, injector, adm)
                        return
                    degraded_to = survivors
                    continue
                self._fail_job(job, injector, exc)
                return
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                handle.run_s = _monotonic() - t0
                record_attempt(type(exc).__name__)
                retryable = not isinstance(exc, DETERMINISTIC_ERRORS)
                if retryable and retries < self.max_retries:
                    self._retries_c.inc()
                    retries += 1
                    # module-attribute call: one clock.sleep monkeypatch
                    # fakes every backoff ladder (docs/robustness.md)
                    _clock.sleep(
                        min(
                            self.backoff_max_s,
                            self.backoff_base_s * 2 ** (retries - 1),
                        )
                    )
                    continue
                if isinstance(exc, NumericalError):
                    # poison-job quarantine: the failure is a deterministic
                    # property of the job's data, so it burned exactly one
                    # attempt; the sentinel's report rides on the exception
                    self._quarantined_c.inc()
                    report = getattr(exc, "report", None)
                    if report is not None:
                        self._escalations_c.inc(report.n_escalations)
                self._fail_job(job, injector, exc)
                return
            handle.run_s = _monotonic() - t0
            record_attempt("ok")
            self._run_h.observe(handle.run_s)
            self._turnaround_h.observe(_monotonic() - job.submitted_at)
            if result.ckpt is not None:
                self._ckpt_written_c.inc(result.ckpt.checkpoints_written)
                self._ckpt_bytes_c.inc(result.ckpt.checkpoint_bytes)
                self._resumes_c.inc(result.ckpt.resumes)
                self._steps_skipped_c.inc(result.ckpt.steps_skipped)
            if result.health is not None:
                self._escalations_c.inc(result.health.n_escalations)
            if result.makespan == 0.0:
                result.makespan = handle.run_s
            result.attempts = handle.attempts
            result.degraded_to = degraded_to
            if injector is not None and injector.fired:
                if result.faults is None:
                    # single-device (or test-runner) job faulted at the
                    # serve-worker guard: synthesize the provenance report
                    result.faults = FaultReport(
                        plan_seed=injector.plan.seed,
                        events=injector.events,
                        retries=retries,
                    )
                elif retries:
                    # the dist backend reported its own run; fold the
                    # serve-level retries (and any serve-worker events)
                    # into the job's provenance
                    result.faults = replace(
                        result.faults,
                        events=injector.events,
                        retries=result.faults.retries + retries,
                    )
            if degraded_to is not None:
                self._degraded_c.inc()
            if (
                self.cache is not None
                and job.cache_key is not None
                and degraded_to is None
            ):
                # degraded results ran at a different pool size than the
                # key was computed for — never cache them
                self.cache.put(job.cache_key, result)
                if obs.enabled and job.obs_root is not None:
                    obs.event(
                        "cache.put", cat="serve", lane="serve",
                        parent_id=job.obs_root, attrs={"job": spec.label()},
                    )
            self._completed_c.inc()
            self._retire_faults(job, injector, result)
            self._record_job_root(
                spec, job.obs_root, job.obs_t0, "completed",
                attempts=handle.attempts,
            )
            handle._resolve(result)
            return

    def _degrade(
        self,
        job: _Job,
        spec_now: JobSpec,
        survivors: int,
        exc: DeviceLostError,
    ) -> tuple[JobSpec, SystemConfig]:
        """Re-admit a shrunken-pool job at its surviving size.

        Re-prices the job's footprint for the smaller pool through the
        admission charger (the swap must still fit the budget — raises
        ``AdmissionError("degraded-over-budget")`` otherwise) and hands
        back the degraded spec plus its re-capped config.
        """
        new_spec = replace(spec_now, devices=survivors)
        new_footprint = estimate_footprint_bytes(new_spec, self.config)
        with self._cv:
            self.admission.recharge(job.handle.job_id, new_footprint)
            self._admitted_g.set(self.admission.in_use_bytes)
        job.handle.footprint_bytes = new_footprint
        job.handle.charged_bytes = new_footprint
        if self.obs.enabled and job.obs_root is not None:
            self.obs.event(
                f"degrade:{spec_now.devices}->{survivors}",
                cat="fault", lane="serve", parent_id=job.obs_root,
                attrs={
                    "job": job.spec.label(),
                    "lost": list(exc.lost),
                    "devices": survivors,
                },
            )
        return new_spec, self._capped_config(new_footprint)

    def _fail_job(self, job: _Job, injector, exc: BaseException) -> None:
        self._failed_c.inc()
        self._retire_faults(job, injector, None)
        self._record_job_root(
            job.spec, job.obs_root, job.obs_t0, "failed",
            attempts=job.handle.attempts,
        )
        job.handle._fail(exc)
