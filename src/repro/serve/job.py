"""Job descriptions and future-like handles for the factorization service.

A :class:`JobSpec` is an immutable description of one factorization or
GEMM — the operation kind, its operands (real arrays for numeric jobs,
shape tuples for simulated capacity-planning jobs), the algorithm options
and a scheduling priority. Submitting a spec to
:class:`~repro.serve.service.FactorService` returns a :class:`JobHandle`,
the future the caller blocks on; the service resolves it with a
:class:`JobResult` (or the job's exception) once the job retires.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.qr.options import QrOptions
from repro.util.validation import one_of

#: Operation kinds the service knows how to run.
JOB_KINDS = ("qr", "gemm", "lu", "cholesky")


@dataclass(frozen=True, eq=False)
class JobSpec:
    """One unit of work for the service.

    Parameters
    ----------
    kind
        ``"qr"``, ``"gemm"``, ``"lu"`` or ``"cholesky"``.
    operands
        For ``qr``/``lu``/``cholesky``: one matrix (ndarray, or an
        ``(m, n)`` shape tuple for ``mode="sim"``). For ``gemm``: the two
        input matrices A and B (the service runs the inner-product form
        ``C = AᵀB`` when ``trans_a`` is set, else ``C = A B``).
    method
        ``"recursive"`` or ``"blocking"`` (ignored for GEMM).
    options
        :class:`~repro.qr.options.QrOptions` — blocksize, buffering and
        the §4.2 optimization toggles, shared by all job kinds.
    mode
        ``"numeric"`` (really compute) or ``"sim"`` (data-free
        capacity-planning run through the event simulator).
    priority
        Smaller runs earlier; ties dispatch in submission order.
    device_memory
        Optional explicit device-footprint request in bytes; when unset
        the admission controller estimates one from the tiling plans.
    name
        Optional label carried into metrics and handle reprs.
    checkpoint_dir
        Optional directory making the job resumable (numeric
        factorizations only): progress is persisted there, and a retry
        after a worker fault — or a resubmission pointed at the same
        directory — restores state and skips completed steps. See
        docs/checkpoint.md.
    checkpoint_every
        Persist every N completed steps (default 1: every boundary).
    devices
        Place the job across a pool of this many devices (QR only).
        ``devices > 1`` routes through :mod:`repro.dist`: numeric jobs
        run the sharded TSQR backend, sim jobs the partitioned-graph
        device-pool simulation. Admission then charges the *per-device*
        slab footprint, and the per-device programs are verified by the
        dist runner instead of the single-device submit-time plan
        verifier. See docs/dist.md.
    tolerance
        Optional forward-error tolerance for the static precision pass
        (:mod:`repro.analysis.precision`). When set, admission judges the
        plan's predicted error bound against it: a violating plan is
        rejected (``plan-rejected`` quarantine) unless the job's health
        options provide the ``escalate`` runtime fallback, in which case
        it is admitted with a waiver (the ``plans_precision_waived``
        counter). ``None`` (default) runs only the structural precision
        rules. See docs/analysis.md.
    """

    kind: str
    operands: tuple[Any, ...]
    method: str = "recursive"
    options: QrOptions = QrOptions()
    trans_a: bool = True
    mode: str = "numeric"
    priority: int = 0
    device_memory: int | None = None
    name: str = ""
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    devices: int = 1
    tolerance: float | None = None

    def __post_init__(self) -> None:
        one_of(self.kind, JOB_KINDS, "kind")
        one_of(self.mode, ("numeric", "sim"), "mode")
        one_of(self.method, ("recursive", "blocking"), "method")
        if self.devices < 1:
            raise ValidationError(
                f"devices must be >= 1, got {self.devices}"
            )
        if self.devices > 1:
            if self.kind != "qr":
                raise ValidationError(
                    f"multi-device placement supports kind='qr' only, "
                    f"got {self.kind!r}"
                )
            if self.checkpoint_dir is not None:
                raise ValidationError(
                    "multi-device jobs do not support checkpointing"
                )
        if self.checkpoint_every < 1:
            raise ValidationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.checkpoint_dir is not None:
            if self.kind == "gemm":
                raise ValidationError("gemm jobs do not support checkpointing")
            if self.mode != "numeric":
                raise ValidationError("checkpoint_dir requires mode='numeric'")
        expected = 2 if self.kind == "gemm" else 1
        if len(self.operands) != expected:
            raise ValidationError(
                f"{self.kind} jobs take {expected} operand(s), "
                f"got {len(self.operands)}"
            )
        for op in self.operands:
            if isinstance(op, np.ndarray):
                if self.mode == "sim":
                    raise ValidationError(
                        "sim jobs take (rows, cols) shape operands, not arrays"
                    )
            elif isinstance(op, tuple) and len(op) == 2:
                if self.mode == "numeric":
                    raise ValidationError(
                        "numeric jobs take ndarray operands, not shapes"
                    )
            else:
                raise ValidationError(
                    f"operands must be ndarrays or (rows, cols) tuples, "
                    f"got {type(op).__name__}"
                )
        if self.device_memory is not None and self.device_memory <= 0:
            raise ValidationError("device_memory must be positive or None")
        if self.tolerance is not None and self.tolerance <= 0:
            raise ValidationError("tolerance must be positive or None")

    def shapes(self) -> tuple[tuple[int, int], ...]:
        """The (rows, cols) of every operand, data or shape-only."""
        out = []
        for op in self.operands:
            if isinstance(op, np.ndarray):
                if op.ndim != 2:
                    raise ValidationError(
                        f"operands must be 2-D, got ndim={op.ndim}"
                    )
                out.append((int(op.shape[0]), int(op.shape[1])))
            else:
                out.append((int(op[0]), int(op[1])))
        return tuple(out)

    def label(self) -> str:
        """Short human-readable identity for logs and metrics."""
        dims = "x".join(str(d) for d in self.shapes()[0])
        return self.name or f"{self.kind}-{self.method}-{dims}"


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"      # admitted, waiting in the priority queue
    RUNNING = "running"      # dispatched to a worker
    DONE = "done"            # completed (possibly served from cache)
    FAILED = "failed"        # all retries exhausted; exception() is set


@dataclass
class JobResult:
    """What one completed job produced.

    ``arrays`` maps output names to (read-only) ndarrays: ``q``/``r`` for
    QR, ``c`` for GEMM, ``packed`` for LU and Cholesky. Simulated jobs
    carry no arrays but a simulated ``makespan``.
    """

    kind: str
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    #: Simulated seconds (sim jobs) or measured wall seconds (numeric).
    makespan: float = 0.0
    #: PCIe traffic of the run, both directions, in bytes.
    moved_bytes: int = 0
    #: True when this result was served from the content-addressed cache.
    cache_hit: bool = False
    #: :class:`~repro.ckpt.CheckpointStats` when the job ran with a
    #: checkpoint directory; None otherwise (including cache hits).
    ckpt: Any | None = None
    #: :class:`~repro.health.report.HealthReport` when the job ran with
    #: the numerical-health sentinel enabled (see docs/health.md); None
    #: otherwise.
    health: Any | None = None
    #: :class:`~repro.faults.report.FaultReport` when the job ran under
    #: fault injection (docs/robustness.md); None otherwise, including
    #: cache hits.
    faults: Any | None = None
    #: Execution attempts the service spent on this job (0 for cache
    #: hits — the job never ran).
    attempts: int = 0
    #: Surviving pool size a ``devices=P`` job was re-admitted at after
    #: losing devices (graceful degradation); None when the job ran at
    #: its requested size.
    degraded_to: int | None = None

    def freeze(self) -> "JobResult":
        """Mark all result arrays read-only (shared safely via the cache)."""
        for arr in self.arrays.values():
            arr.setflags(write=False)
        return self


class JobHandle:
    """Future-like handle returned by :meth:`FactorService.submit`.

    Thread-safe: the service resolves it exactly once; any number of
    threads may block in :meth:`result` / :meth:`wait`.
    """

    def __init__(
        self,
        job_id: int,
        spec: JobSpec,
        footprint_bytes: int,
        charged_bytes: int | None = None,
    ):
        self.job_id = job_id
        self.spec = spec
        #: Device bytes granted to the job — its executor's allocator
        #: capacity, and what the engines plan their tilings against.
        self.footprint_bytes = footprint_bytes
        #: Device bytes the admission controller actually charged to the
        #: budget: the plan verifier's exact peak when verification ran
        #: (never above the grant), else the grant itself.
        self.charged_bytes = (
            footprint_bytes if charged_bytes is None else charged_bytes
        )
        self.state = JobState.PENDING
        self.attempts = 0
        #: Seconds spent queued before the first dispatch.
        self.wait_s = 0.0
        #: Seconds of the final (successful or last) execution attempt.
        self.run_s = 0.0
        self._done = threading.Event()
        self._result: JobResult | None = None
        self._exception: BaseException | None = None

    # -- resolution (service side) ------------------------------------------------

    def _resolve(self, result: JobResult) -> None:
        self._result = result
        self.state = JobState.DONE
        self._done.set()

    def _fail(self, exc: BaseException) -> None:
        self._exception = exc
        self.state = JobState.FAILED
        self._done.set()

    # -- caller side ---------------------------------------------------------------

    def done(self) -> bool:
        """Whether the job has retired (completed or failed)."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job retires; returns False on timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> JobResult:
        """The job's :class:`JobResult`; re-raises the job's exception on
        failure, :class:`TimeoutError` if it does not retire in time."""
        if not self._done.wait(timeout):
            # Deliberately the builtin, matching concurrent.futures
            # semantics callers already handle.
            raise TimeoutError(  # lint: allow[reproerror-raises]
                f"job {self.job_id} ({self.spec.label()}) not done after "
                f"{timeout} s"
            )
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The job's exception (None on success)."""
        if not self._done.wait(timeout):
            raise TimeoutError(  # lint: allow[reproerror-raises]
                f"job {self.job_id} not done after {timeout} s"
            )
        return self._exception

    @property
    def cache_hit(self) -> bool:
        """Whether the job was served from the result cache."""
        return self._result is not None and self._result.cache_hit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobHandle(#{self.job_id} {self.spec.label()} "
            f"{self.state.value}, {self.footprint_bytes >> 10} KiB)"
        )
