"""Multi-tenant factorization service (docs/serve.md).

Public surface: build a :class:`FactorService` over a
:class:`~repro.config.SystemConfig`, submit :class:`JobSpec`\\ s, block on
the returned :class:`JobHandle`\\ s. Admission control, result caching and
metrics are owned by the service; their building blocks are exported for
standalone use and testing.
"""

from repro.errors import AdmissionError
from repro.serve.admission import AdmissionController, estimate_footprint_bytes
from repro.serve.cache import ResultCache, job_cache_key
from repro.serve.job import JOB_KINDS, JobHandle, JobResult, JobSpec, JobState
from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.service import DETERMINISTIC_ERRORS, FactorService, run_job

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Counter",
    "DETERMINISTIC_ERRORS",
    "FactorService",
    "Gauge",
    "Histogram",
    "JOB_KINDS",
    "JobHandle",
    "JobResult",
    "JobSpec",
    "JobState",
    "MetricsRegistry",
    "ResultCache",
    "estimate_footprint_bytes",
    "job_cache_key",
    "run_job",
]
