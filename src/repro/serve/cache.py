"""Content-addressed result cache for the factorization service.

Two submissions of byte-identical operands with identical options, method,
mode and device footprint are the same computation — the numeric executors
are deterministic — so the service hashes the full job identity and serves
repeats from memory. The key covers everything the result depends on:

* operand *content* (dtype, shape, raw bytes) — not object identity, so
  regenerating a matrix from the same RNG seed still hits, while any
  change to the data (a different seed, a flipped element) misses;
* every :class:`~repro.qr.options.QrOptions` field, the method and kind;
* the numeric environment: precision, element size, panel algorithm and
  the device-memory footprint the job runs under (tiling — and therefore
  floating-point summation order — depends on it).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import fields

import numpy as np

from repro.config import SystemConfig
from repro.errors import ValidationError
from repro.qr.options import QrOptions
from repro.serve.job import JobResult, JobSpec


def _update_with_array(h, arr: np.ndarray) -> None:
    """Feed an operand's full identity (dtype, shape, bytes) to the hash."""
    h.update(str(arr.dtype).encode())
    h.update(repr(arr.shape).encode())
    h.update(np.ascontiguousarray(arr).tobytes())


def _update_with_options(h, options: QrOptions) -> None:
    for f in fields(options):
        h.update(f.name.encode())
        h.update(repr(getattr(options, f.name)).encode())


def job_cache_key(
    spec: JobSpec, config: SystemConfig, footprint_bytes: int
) -> str:
    """Hex digest addressing the result of running *spec* on *config*
    under a *footprint_bytes* device cap."""
    h = hashlib.sha256()
    h.update(
        f"{spec.kind}|{spec.method}|{spec.mode}|{spec.trans_a}"
        # device count changes the reduction tree and therefore the
        # floating-point result — distinct pool sizes must miss
        f"|{spec.devices}".encode()
    )
    h.update(
        f"|{config.precision.name}|{config.element_bytes}"
        f"|{config.panel_algorithm}|{footprint_bytes}".encode()
    )
    _update_with_options(h, spec.options)
    for op in spec.operands:
        if isinstance(op, np.ndarray):
            _update_with_array(h, op)
        else:
            h.update(f"shape{op!r}".encode())
    return h.hexdigest()


class ResultCache:
    """Bounded LRU map from job cache keys to frozen :class:`JobResult`s.

    Thread-safe. Entries are evicted least-recently-used once
    ``max_entries`` is exceeded; stored results are read-only (the service
    freezes arrays before insertion) so hits can be shared across callers
    without copying.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, JobResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> JobResult | None:
        """The cached result for *key*, bumping its recency; None on miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: str, result: JobResult) -> None:
        """Insert (or refresh) *key*; evicts the LRU entry when full."""
        with self._lock:
            self._entries[key] = result.freeze()
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
