"""Admission control: bound concurrent jobs by device-memory footprint.

Every job admitted to the service is charged a device-byte footprint
*before* it runs; the sum of charged footprints never exceeds the
service's device budget. The charge is also the cap the job actually runs
under — its executor's allocator capacity *is* the admitted footprint —
so the accounting is enforced, not advisory: a job cannot allocate past
what admission granted it.

Footprints come from the same tiling plans the engines execute
(:mod:`repro.ooc.plan`): for a GEMM job, the planned working set; for the
factorizations, the persistent panel buffers plus the top recursion
level's inner/outer pipelines. A floor term guarantees the granted cap is
always enough for the engines' minimal (fully shrunk) plans, so an
admitted job never fails for lack of its own grant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.errors import AdmissionError, PlanError
from repro.ooc.plan import plan_ksplit_inner, plan_rowstream_outer
from repro.serve.job import JobSpec

#: Elements added to every factorization floor: covers the fully shrunk
#: (blocksize 1, single-column panels) inner/outer/TRSM pipelines, whose
#: working sets are a few times m + n elements each.
_FLOOR_SLACK_ELEMENTS = 1024


def _factor_floor_elements(m: int, n: int, b: int) -> int:
    """Minimal device elements an OOC QR/LU/Cholesky can run in: the
    persistent panel (m-by-b) and b-by-b tile, plus fully shrunk streaming
    pipelines (a few times m + n elements)."""
    return m * b + b * b + 6 * (m + n) + _FLOOR_SLACK_ELEMENTS


def estimate_footprint_bytes(spec: JobSpec, config: SystemConfig) -> int:
    """Device bytes to charge (and grant) for *spec* on *config*.

    An explicit ``spec.device_memory`` wins, clamped to the device but
    raised to the kind's floor (a grant below it would be guaranteed to
    OOM at run time); GEMM explicit requests are plan-checked and raise
    ``job-unplannable`` when nothing fits. The estimate is otherwise
    plan-derived and clamped to the device's usable bytes — a job is
    never granted more than one device — but never below the floor, so
    the grant always suffices to run.
    """
    usable = config.usable_device_bytes
    eb = config.element_bytes
    explicit = (
        None if spec.device_memory is None else min(spec.device_memory, usable)
    )

    opts = spec.options
    nb = opts.n_buffers
    shapes = spec.shapes()

    if spec.kind == "gemm":
        (r_a, c_a), (r_b, c_b) = shapes
        cap_elements = (explicit if explicit is not None else usable) // eb
        try:
            if spec.trans_a:
                # inner product: A (K, M), B (K, N)
                plan = plan_ksplit_inner(
                    r_a, c_a, c_b, min(opts.blocksize, r_a), cap_elements,
                    n_buffers=nb,
                )
            else:
                # update form: A (M, K), B (K, N)
                plan = plan_rowstream_outer(
                    r_a, c_a, c_b, min(opts.blocksize, r_a), cap_elements,
                    n_buffers=nb, staging=opts.staging_buffer,
                )
            elements = plan.working_set_elements()
        except PlanError as exc:
            raise AdmissionError(
                "job-unplannable",
                f"{spec.label()} cannot fit in "
                f"{cap_elements * eb} device bytes: {exc}",
            ) from exc
        if explicit is not None:
            return explicit
        # small headroom over the exact plan (engines allocate per plan)
        elements = elements + elements // 8 + _FLOOR_SLACK_ELEMENTS
        return min(elements * eb, usable)

    if spec.devices > 1:
        # multi-device QR (repro.dist): each device of the pool holds one
        # row slab of ceil(m / devices) rows plus the small tree-merge
        # scratch (a 2b-by-b stack, its R, and one b-by-b factor) — the
        # charge is the *per-device* peak, matching what the dist
        # verifier proves against each device's budget
        m, n = shapes[0]
        slab_rows = -(-m // spec.devices)
        elements = slab_rows * n + 4 * n * n + _FLOOR_SLACK_ELEMENTS
        if explicit is not None:
            return max(explicit, min(elements * eb, usable))
        return min(elements * eb, usable)

    # qr / lu / cholesky: persistent panel + the top-level GEMM pipelines
    m, n = shapes[0]
    b = min(opts.blocksize, n)
    floor = _factor_floor_elements(m, n, b)
    if explicit is not None:
        # an explicit grant below the floor would be guaranteed to OOM at
        # run time — raise it to the minimum the drivers can run in
        return max(explicit, floor * eb)
    # desired working set: stream buffers over the widest (top) recursion
    # level — chunk buffers against both operands plus a resident R12/C
    wl = max(n // 2, 1)
    desired = (
        m * b + b * b                    # persistent panel + tile
        + wl * (n - wl if n > wl else 1)  # resident R12 / C panel
        + nb * b * (m + n)                # double-buffered streamed chunks
    )
    elements = max(floor, desired)
    return max(min(elements * eb, usable), floor * eb)


@dataclass
class AdmissionController:
    """Byte-budget and queue-bound bookkeeping for the service.

    Not internally locked: the service calls it under its own scheduler
    lock. ``peak_in_use`` records the high-water mark of concurrently
    charged footprints — the number the acceptance test compares against
    the budget.
    """

    budget_bytes: int
    max_pending: int = 64
    in_use_bytes: int = 0
    peak_in_use: int = 0
    pending: int = 0
    _charged: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.budget_bytes <= 0:
            raise AdmissionError(
                "bad-budget", f"budget must be positive, got {self.budget_bytes}"
            )
        if self.max_pending < 1:
            raise AdmissionError(
                "bad-queue-limit",
                f"max_pending must be >= 1, got {self.max_pending}",
            )

    # -- submission-time checks ---------------------------------------------------

    def check_submittable(self, footprint: int, label: str = "") -> None:
        """Reject-with-reason before the job ever enters the queue."""
        if footprint > self.budget_bytes:
            raise AdmissionError(
                "footprint-over-budget",
                f"{label or 'job'} needs {footprint} device bytes; "
                f"budget is {self.budget_bytes}",
            )
        if self.pending >= self.max_pending:
            raise AdmissionError(
                "queue-saturated",
                f"{self.pending} jobs already queued (limit "
                f"{self.max_pending}); retry after the queue drains",
            )

    def enqueue(self) -> None:
        self.pending += 1

    # -- dispatch-time budget ------------------------------------------------------

    def fits(self, footprint: int) -> bool:
        """Whether *footprint* fits in the budget right now."""
        return self.in_use_bytes + footprint <= self.budget_bytes

    def acquire(self, job_id: int, footprint: int) -> None:
        """Charge *footprint* to the running set (caller checked fits())."""
        if not self.fits(footprint):
            raise AdmissionError(
                "over-admission",
                f"job {job_id}: {footprint} bytes over remaining budget",
            )
        self.pending -= 1
        self._charged[job_id] = footprint
        self.in_use_bytes += footprint
        if self.in_use_bytes > self.peak_in_use:
            self.peak_in_use = self.in_use_bytes

    def recharge(self, job_id: int, new_bytes: int) -> None:
        """Re-price a *running* job in place.

        The device-loss degradation path: a ``devices=P`` job whose pool
        shrank re-admits at the surviving size, which changes its
        per-device footprint (docs/robustness.md). The swap must still
        fit the budget — a degraded job that would now exceed it fails
        with ``degraded-over-budget`` instead of silently overcommitting.
        """
        old = self._charged.get(job_id)
        if old is None:
            raise AdmissionError(
                "unknown-job", f"recharge of uncharged job {job_id}"
            )
        if self.in_use_bytes - old + new_bytes > self.budget_bytes:
            raise AdmissionError(
                "degraded-over-budget",
                f"job {job_id}: re-pricing {old} -> {new_bytes} bytes "
                f"exceeds the {self.budget_bytes}-byte budget",
            )
        self._charged[job_id] = new_bytes
        self.in_use_bytes += new_bytes - old
        if self.in_use_bytes > self.peak_in_use:
            self.peak_in_use = self.in_use_bytes

    def release(self, job_id: int) -> None:
        """Return a retired job's footprint to the budget."""
        footprint = self._charged.pop(job_id, None)
        if footprint is None:
            raise AdmissionError(
                "unknown-job", f"release of uncharged job {job_id}"
            )
        self.in_use_bytes -= footprint

    def drop_pending(self) -> None:
        """Forget one still-queued job (rejected at shutdown)."""
        self.pending -= 1
