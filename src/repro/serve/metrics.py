"""Serve metrics: re-export of the shared :mod:`repro.obs.metrics` core.

The registry was born here as serve's private JSON counter registry and
was promoted to :mod:`repro.obs` when observability became a first-class
subsystem (docs/observability.md). This module keeps the historical
import path — ``from repro.serve.metrics import MetricsRegistry`` — and
the snapshot JSON shape unchanged; the classes *are* the obs ones.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
