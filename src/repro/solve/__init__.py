"""Mixed-precision solvers on out-of-core factors (the [10-12] recipe)."""

from repro.solve.refine import (
    RefineResult,
    lstsq_ooc,
    solve_lu_ooc,
    solve_spd_ooc,
)

__all__ = ["RefineResult", "lstsq_ooc", "solve_lu_ooc", "solve_spd_ooc"]
