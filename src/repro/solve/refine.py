"""Mixed-precision solvers with iterative refinement on OOC factors.

The paper's lineage ([10], [11], [12] — Haidar, Wu et al.) builds linear
solvers that factorize in low precision on TensorCore and recover high
accuracy with cheap refinement iterations. The same recipe applies on top
of this repository's out-of-core factorizations:

* :func:`lstsq_ooc`   — least squares via OOC QR: ``x = R^{-1} Qᵀ b``,
  refined with residual corrections through the stored factors;
* :func:`solve_spd_ooc` — SPD systems via OOC Cholesky + refinement;
* :func:`solve_lu_ooc`  — general (pivot-free-stable) systems via OOC LU.

Refinement iterations cost O(m n) matrix-vector work per step (done in
fp64 on the host — the standard setup: residuals in high precision, the
expensive O(m n^2) factorization in low precision), so a handful of steps
recovers fp32-level solutions from fp16 factors whenever the conditioning
allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.config import SystemConfig
from repro.errors import ValidationError
from repro.qr.api import ooc_qr
from repro.qr.options import QrOptions
from repro.util.validation import nonnegative_int

#: Stop refining when the relative residual improves by less than this.
STAGNATION = 0.5


@dataclass
class RefineResult:
    """Solution plus the refinement trajectory."""

    x: np.ndarray
    iterations: int
    residual_history: list[float] = field(default_factory=list)
    converged: bool = False
    #: True when a residual went non-finite: the factors (or the system)
    #: are too ill-conditioned for the factor precision, and iterating
    #: further would only amplify garbage. ``x`` is the last iterate and
    #: must not be trusted; the history shows where it blew up.
    diverged: bool = False
    factor_result: object | None = None

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("inf")


def _as_vector(b, m: int) -> np.ndarray:
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if b.shape[0] != m:
        raise ValidationError(f"b has length {b.shape[0]}, expected {m}")
    return b


def _refine(
    a64: np.ndarray,
    b64: np.ndarray,
    solve_correction,
    *,
    max_iters: int,
    tol: float,
) -> RefineResult:
    """Generic refinement driver: x_{k+1} = x_k + correct(b - A x_k)."""
    norm_b = float(np.linalg.norm(b64)) or 1.0
    x = solve_correction(b64)
    history = []
    converged = False
    diverged = False
    for it in range(max_iters + 1):
        r = b64 - a64 @ x
        rel = float(np.linalg.norm(r)) / norm_b
        history.append(rel)
        if not np.isfinite(rel):
            diverged = True  # non-finite residual: stop, don't iterate on it
            break
        if rel <= tol:
            converged = True
            break
        if it == max_iters:
            break
        if len(history) >= 2 and history[-1] > STAGNATION * history[-2]:
            break  # stagnated (conditioning limit reached)
        x = x + solve_correction(r)
    return RefineResult(
        x=x, iterations=len(history) - 1, residual_history=history,
        converged=converged, diverged=diverged,
    )


def lstsq_ooc(
    a: np.ndarray,
    b: np.ndarray,
    *,
    method: str = "recursive",
    config: SystemConfig | None = None,
    options: QrOptions | None = None,
    blocksize: int | None = None,
    device_memory: int | None = None,
    max_iters: int = 5,
    tol: float = 0.0,
) -> RefineResult:
    """Least squares ``min ||A x - b||`` via OOC QR with refinement.

    ``tol`` is the target relative residual (0.0 = refine until
    stagnation, i.e. the best the factor's precision supports); the
    returned history shows the trajectory. Note that for inconsistent
    systems the residual converges to the *least-squares* residual, not 0 —
    pass a meaningful ``tol`` or read the history accordingly.
    """
    max_iters = nonnegative_int(max_iters, "max_iters")
    qr = ooc_qr(
        a, method=method, config=config, options=options,
        blocksize=blocksize, device_memory=device_memory,
    )
    q64 = qr.q.astype(np.float64)
    r64 = qr.r.astype(np.float64)
    a64 = np.asarray(a, dtype=np.float64)
    b64 = _as_vector(b, a64.shape[0])

    def correction(residual: np.ndarray) -> np.ndarray:
        return scipy.linalg.solve_triangular(
            r64, q64.T @ residual, lower=False, check_finite=False
        )

    # For an inconsistent system ||b - A x|| bottoms out at the projection
    # residual no matter how good x is; optimality is ||Aᵀ (b - A x)|| = 0,
    # so refinement iterates on the *normal-equations* residual.
    norm_atb = float(np.linalg.norm(a64.T @ b64)) or 1.0
    x = correction(b64)
    history: list[float] = []
    converged = False
    diverged = False
    iterations = 0
    for it in range(max_iters + 1):
        r = b64 - a64 @ x
        rel = float(np.linalg.norm(a64.T @ r)) / norm_atb
        history.append(rel)
        if not np.isfinite(rel):
            diverged = True  # non-finite residual: stop, don't iterate on it
            break
        if rel <= max(tol, 1e-14):
            converged = True
            break
        if it == max_iters:
            break
        if len(history) >= 2 and history[-1] > STAGNATION * history[-2]:
            break
        x = x + correction(r)
        iterations = it + 1
    result = RefineResult(
        x=x, iterations=iterations, residual_history=history, converged=converged,
        diverged=diverged,
    )
    result.factor_result = qr
    return result


def solve_spd_ooc(
    a: np.ndarray,
    b: np.ndarray,
    *,
    method: str = "recursive",
    config: SystemConfig | None = None,
    options: QrOptions | None = None,
    blocksize: int | None = None,
    device_memory: int | None = None,
    max_iters: int = 10,
    tol: float = 1e-10,
) -> RefineResult:
    """Solve ``A x = b`` for SPD A via OOC Cholesky with refinement."""
    from repro.factor.api import ooc_cholesky

    max_iters = nonnegative_int(max_iters, "max_iters")
    ch = ooc_cholesky(
        a, method=method, config=config, options=options,
        blocksize=blocksize, device_memory=device_memory,
    )
    l64 = ch.lower().astype(np.float64)
    a64 = np.asarray(a, dtype=np.float64)
    b64 = _as_vector(b, a64.shape[0])

    def correction(residual: np.ndarray) -> np.ndarray:
        y = scipy.linalg.solve_triangular(l64, residual, lower=True, check_finite=False)
        return scipy.linalg.solve_triangular(l64.T, y, lower=False, check_finite=False)

    result = _refine(a64, b64, correction, max_iters=max_iters, tol=tol)
    result.factor_result = ch
    return result


def solve_lu_ooc(
    a: np.ndarray,
    b: np.ndarray,
    *,
    method: str = "recursive",
    config: SystemConfig | None = None,
    options: QrOptions | None = None,
    blocksize: int | None = None,
    device_memory: int | None = None,
    max_iters: int = 10,
    tol: float = 1e-10,
) -> RefineResult:
    """Solve square ``A x = b`` via OOC unpivoted LU with refinement
    (A must be stable without pivoting, e.g. diagonally dominant)."""
    from repro.factor.api import ooc_lu
    from repro.factor.incore import lu_unpack

    max_iters = nonnegative_int(max_iters, "max_iters")
    a_np = np.asarray(a)
    if a_np.shape[0] != a_np.shape[1]:
        raise ValidationError(
            f"solve_lu_ooc needs a square system, got {a_np.shape}"
        )
    lu = ooc_lu(
        a, method=method, config=config, options=options,
        blocksize=blocksize, device_memory=device_memory,
    )
    l_packed, u_packed = lu_unpack(lu.packed)
    l64 = l_packed.astype(np.float64)
    u64 = u_packed.astype(np.float64)
    a64 = a_np.astype(np.float64)
    b64 = _as_vector(b, a64.shape[0])

    def correction(residual: np.ndarray) -> np.ndarray:
        y = scipy.linalg.solve_triangular(
            l64, residual, lower=True, unit_diagonal=True, check_finite=False
        )
        return scipy.linalg.solve_triangular(u64, y, lower=False, check_finite=False)

    result = _refine(a64, b64, correction, max_iters=max_iters, tol=tol)
    result.factor_result = lu
    return result
