"""Shared pieces of the §6 extension factorizations (LU, Cholesky)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ShapeError, ValidationError
from repro.health.report import HealthReport
from repro.host.tiled import HostMatrix
from repro.qr.options import QrOptions


@dataclass
class FactorRunInfo:
    """Counters reported by the OOC LU/Cholesky drivers."""

    method: str
    n_panels: int = 0
    n_trsm: int = 0
    n_outer: int = 0
    outer_flops: int = 0
    trsm_flops: int = 0
    notes: list[str] = field(default_factory=list)
    #: Numerical-health report (None when the sentinel is off).
    health: HealthReport | None = None


def check_lu_inputs(a: HostMatrix, options: QrOptions) -> tuple[int, int]:
    """Validate the input of an OOC LU run; returns (m, n)."""
    m, n = a.shape
    if m < n:
        raise ShapeError(f"OOC LU requires a tall matrix (m >= n), got {m}x{n}")
    if options.blocksize > m:
        raise ValidationError(
            f"blocksize {options.blocksize} exceeds the row count {m}"
        )
    return m, n


def check_cholesky_inputs(a: HostMatrix, options: QrOptions) -> int:
    """Validate the input of an OOC Cholesky run; returns n."""
    m, n = a.shape
    if m != n:
        raise ShapeError(f"Cholesky requires a square matrix, got {m}x{n}")
    if options.blocksize > n:
        raise ValidationError(
            f"blocksize {options.blocksize} exceeds the matrix order {n}"
        )
    return n
