"""In-core LU (unpivoted) and Cholesky factorizations, [24]-style.

These mirror :mod:`repro.qr.incore`: recursive formulations whose update
GEMMs run through the TensorCore emulation, used (a) as the panel
factorizations of the OOC drivers and (b) as numeric references in tests.

The paper's §6 observes that OOC LU and Cholesky interleave panel
factorizations with *outer-product-form* trailing updates exactly like QR,
so the recursive treatment transfers — and that no TensorCore in-core
partial-pivoted LU exists. Accordingly the LU here is **unpivoted**:
callers must supply matrices that are stable without pivoting
(diagonally dominant, SPD-shifted, ...). The workload generators in
:mod:`repro.bench.workloads` provide such matrices.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.errors import ShapeError, ValidationError
from repro.tc.gemm import tc_gemm
from repro.util.validation import positive_int

#: Column width below which recursion bottoms out in scalar loops.
DEFAULT_LEAF = 32

#: Diagonal entries smaller than this (relative to the matrix scale) make
#: the unpivoted factorization numerically meaningless.
PIVOT_TOL = 1e-10


def _check_tall(a: np.ndarray, name: str) -> np.ndarray:
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got {a.ndim}-D")
    if a.shape[0] < a.shape[1]:
        raise ShapeError(f"{name} must be tall (m >= n), got {a.shape}")
    if a.shape[1] == 0:
        raise ShapeError(f"{name} must have at least one column")
    return a


def _lu_leaf(a: np.ndarray, scale: float) -> None:
    """Unpivoted right-looking LU of a tall block, in place (fp32)."""
    m, n = a.shape
    for j in range(min(m, n)):
        piv = a[j, j]
        if not np.isfinite(piv) or abs(piv) <= PIVOT_TOL * scale:
            raise ValidationError(
                f"zero pivot at column {j}: unpivoted LU requires a matrix "
                "that is stable without pivoting (e.g. diagonally dominant)"
            )
        a[j + 1 :, j] /= piv
        if j + 1 < n:
            a[j + 1 :, j + 1 :] -= np.outer(a[j + 1 :, j], a[j, j + 1 :])


def incore_lu_nopivot(
    a: np.ndarray,
    *,
    leaf: int = DEFAULT_LEAF,
    input_format: str = "fp16",
) -> np.ndarray:
    """Recursive unpivoted LU of a tall matrix, returned packed.

    The result holds U on and above the diagonal and the L multipliers
    strictly below it (L's unit diagonal implicit) — LAPACK ``getrf``
    layout. Update GEMMs run through the TensorCore emulation with
    *input_format* rounding.
    """
    a = _check_tall(a, "a")
    leaf = positive_int(leaf, "leaf")
    packed = np.array(a, dtype=np.float32, copy=True, order="C")
    scale = float(np.abs(packed).max()) or 1.0
    _lu_recurse(packed, 0, packed.shape[1], leaf, input_format, scale)
    return packed


def _lu_recurse(
    a: np.ndarray, col0: int, col1: int, leaf: int, input_format: str, scale: float
) -> None:
    """Factor columns [col0, col1) of the trailing block rows [col0:]."""
    width = col1 - col0
    if width <= leaf:
        _lu_leaf(a[col0:, col0:col1], scale)
        return
    mid = col0 + width // 2
    # left half (full height below col0)
    _lu_recurse(a, col0, mid, leaf, input_format, scale)
    l11 = a[col0:mid, col0:mid]           # unit lower (packed)
    a12 = a[col0:mid, mid:col1]
    # U12 = L11^{-1} A12 (small triangular solve, exact fp32)
    a12[:] = scipy.linalg.solve_triangular(
        l11, a12, lower=True, unit_diagonal=True, check_finite=False
    ).astype(np.float32)
    # trailing update: A22 -= L21 U12 (the outer-product-form GEMM of §6)
    l21 = a[mid:, col0:mid]
    a22 = a[mid:, mid:col1]
    tc_gemm(
        l21, a12, alpha=-1.0, beta=1.0, c=a22, input_format=input_format, out=a22
    )
    # right half
    _lu_recurse(a, mid, col1, leaf, input_format, scale)


def lu_unpack(packed: np.ndarray, n: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Split a packed LU result into (L, U): L m-by-n unit-lower-trapezoid,
    U n-by-n upper."""
    packed = np.asarray(packed)
    m = packed.shape[0]
    n = packed.shape[1] if n is None else n
    lower = np.tril(packed[:, :n], k=-1)
    lower[np.arange(n), np.arange(n)] = 1.0
    upper = np.triu(packed[:n, :n])
    return lower.astype(np.float32), upper.astype(np.float32)


def incore_cholesky(
    a: np.ndarray,
    *,
    leaf: int = DEFAULT_LEAF,
    input_format: str = "fp16",
) -> np.ndarray:
    """Recursive Cholesky of an SPD matrix; returns the lower factor L.

    Trailing (SYRK-form) updates run through the TensorCore emulation.
    Raises :class:`ValidationError` if a diagonal block is not positive
    definite.
    """
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"Cholesky needs a square matrix, got {a.shape}")
    leaf = positive_int(leaf, "leaf")
    work = np.array(a, dtype=np.float32, copy=True, order="C")
    _chol_recurse(work, 0, work.shape[0], leaf, input_format)
    return np.tril(work)


def _chol_recurse(
    a: np.ndarray, col0: int, col1: int, leaf: int, input_format: str
) -> None:
    """Factor the trailing principal block's columns [col0, col1)."""
    width = col1 - col0
    n = a.shape[0]
    if width <= leaf:
        block = a[col0:col1, col0:col1]
        try:
            block[:] = np.linalg.cholesky(block.astype(np.float64)).astype(np.float32)
        except np.linalg.LinAlgError as exc:
            raise ValidationError(
                f"diagonal block at column {col0} is not positive definite"
            ) from exc
        if col1 < n:
            a[col1:, col0:col1] = scipy.linalg.solve_triangular(
                block, a[col1:, col0:col1].T, lower=True, check_finite=False
            ).T.astype(np.float32)
        return
    mid = col0 + width // 2
    _chol_recurse(a, col0, mid, leaf, input_format)
    # SYRK-form trailing update restricted to this node's columns:
    # A[mid:, mid:col1] -= L21 (rows mid:) @ L21 (rows mid:col1)ᵀ.
    # Columns beyond col1 are an ancestor's responsibility (same column
    # ownership discipline as the recursive QR driver). The rectangle
    # includes entries above the diagonal of the trailing block; they are
    # written with symmetric values and never referenced.
    l21 = a[mid:, col0:mid]
    l21_top = a[mid:col1, col0:mid]
    a22 = a[mid:, mid:col1]
    tc_gemm(
        l21, l21_top, alpha=-1.0, beta=1.0, c=a22,
        trans_b=True, input_format=input_format, out=a22,
    )
    _chol_recurse(a, mid, col1, leaf, input_format)


def spd_matrix(n: int, *, shift: float | None = None, seed: int | None = None) -> np.ndarray:
    """A well-conditioned SPD test matrix: G Gᵀ / n + shift I (fp32)."""
    from repro.util.rng import default_rng

    n = positive_int(n, "n")
    rng = default_rng(seed)
    g = rng.standard_normal((n, n)).astype(np.float32)
    a = (g @ g.T) / n
    a += (1.0 if shift is None else shift) * np.eye(n, dtype=np.float32)
    return (a + a.T) / 2


def diagonally_dominant(
    m: int, n: int | None = None, *, seed: int | None = None
) -> np.ndarray:
    """A random tall matrix made row/column diagonally dominant (stable for
    unpivoted LU)."""
    from repro.util.rng import default_rng

    m = positive_int(m, "m")
    n = m if n is None else positive_int(n, "n")
    if m < n:
        raise ShapeError(f"need m >= n, got {m}x{n}")
    rng = default_rng(seed)
    a = rng.standard_normal((m, n)).astype(np.float32)
    k = min(m, n)
    a[np.arange(k), np.arange(k)] += np.sign(a[np.arange(k), np.arange(k)]) * (
        np.abs(a).sum(axis=0)[:k]
    )
    return a
