"""Public entry points for the §6 extension factorizations."""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.ckpt import (
    CheckpointConfig,
    CheckpointManager,
    CheckpointSession,
    CheckpointStats,
    run_fingerprint,
)
from repro.config import PAPER_SYSTEM, SystemConfig
from repro.errors import ValidationError
from repro.execution.base import RunStats
from repro.execution.concurrent import ConcurrentNumericExecutor
from repro.execution.numeric import NumericExecutor
from repro.execution.sim import SimExecutor
from repro.factor.cholesky import ooc_blocking_cholesky, ooc_recursive_cholesky
from repro.factor.common import FactorRunInfo
from repro.factor.lu import ooc_blocking_lu, ooc_recursive_lu
from repro.host.tiled import HostMatrix
from repro.ooc.accounting import MovementReport, track
from repro.qr.api import _as_host_matrix
from repro.qr.options import QrOptions
from repro.sim.trace import Trace
from repro.util.validation import one_of


@dataclass
class FactorResult:
    """Result of an OOC LU or Cholesky run."""

    kind: str                       # "lu" | "cholesky"
    method: str
    mode: str
    packed: np.ndarray | None       # LU: packed L\\U; Cholesky: L in lower
    info: FactorRunInfo
    stats: RunStats
    movement: MovementReport
    trace: Trace | None
    config: SystemConfig
    options: QrOptions
    ckpt: CheckpointStats | None = None

    @property
    def makespan(self) -> float:
        """Simulated (or recorded wall-clock) schedule length; falls back
        to the executor's measured wall seconds for serial numeric runs."""
        if self.trace is not None:
            return self.trace.makespan
        return self.stats.wall_s

    @property
    def achieved_tflops(self) -> float:
        span = self.makespan
        return self.stats.total_flops / span / 1e12 if span > 0 else 0.0

    @property
    def health(self):
        """The run's numerical-health report (None when the sentinel is
        off); see :class:`~repro.health.report.HealthReport`."""
        return self.info.health

    def lower(self) -> np.ndarray:
        """L with unit diagonal (LU) or the Cholesky factor."""
        if self.packed is None:
            raise ValidationError("simulated runs carry no factors")
        if self.kind == "lu":
            from repro.factor.incore import lu_unpack

            return lu_unpack(self.packed)[0]
        return np.tril(self.packed)

    def upper(self) -> np.ndarray:
        """U (LU only)."""
        if self.kind != "lu":
            raise ValidationError("upper() is only defined for LU results")
        if self.packed is None:
            raise ValidationError("simulated runs carry no factors")
        from repro.factor.incore import lu_unpack

        return lu_unpack(self.packed)[1]


def _run(
    kind: str,
    drivers,
    a,
    *,
    method: str,
    mode: str | None,
    config: SystemConfig | None,
    options: QrOptions | None,
    blocksize: int | None,
    device_memory: int | None,
    concurrency: str,
    checkpoint: CheckpointConfig | None = None,
) -> FactorResult:
    method = one_of(method, ("recursive", "blocking"), "method")
    config = config or PAPER_SYSTEM
    if device_memory is not None:
        config = config.with_gpu(
            config.gpu.with_memory(device_memory, suffix="capped")
        )
    host_a, shape_only = _as_host_matrix(a, config.element_bytes)
    if mode is None:
        mode = "sim" if shape_only else "numeric"
    mode = one_of(mode, ("numeric", "sim"), "mode")
    if shape_only and mode != "sim":
        raise ValidationError("shape inputs only support mode='sim'")

    options = options or QrOptions()
    if blocksize is not None:
        options = replace(options, blocksize=blocksize)
    config.check_host_capacity(
        host_a.rows * host_a.cols, what=f"OOC {kind} (A, factored in place)"
    )

    concurrency = one_of(concurrency, ("serial", "threads"), "concurrency")
    if concurrency == "threads" and mode != "numeric":
        raise ValidationError("concurrency='threads' requires mode='numeric'")
    if checkpoint is not None and mode != "numeric":
        raise ValidationError("checkpoint= requires mode='numeric'")

    if options.health.enabled and mode != "numeric":
        raise ValidationError(
            "health monitoring requires mode='numeric' (probes need real "
            f"numbers), got mode={mode!r}"
        )

    if mode == "numeric":
        ex = (
            ConcurrentNumericExecutor(config)
            if concurrency == "threads"
            else NumericExecutor(config)
        )
        if options.health.enabled:
            from repro.health.sentinel import HealthSentinel

            ex.health = HealthSentinel(
                options.health, base_format=config.precision.input_format
            )
    else:
        ex = SimExecutor(config)

    session = None
    if checkpoint is not None:
        fp = run_fingerprint(
            kind, method, host_a.rows, host_a.cols, config, options
        )
        session = CheckpointSession(
            CheckpointManager(checkpoint, fingerprint=fp),
            ex,
            {"a": host_a},
        )
    try:
        with track(ex) as moved:
            run_info = drivers[method](ex, host_a, options, checkpoint=session)
    except BaseException:
        if mode == "numeric":
            ex.close()
        raise
    trace: Trace | None
    if mode == "sim":
        trace = ex.finish()
    else:
        ex.synchronize()
        trace = (
            ex.recorded_trace()
            if isinstance(ex, ConcurrentNumericExecutor)
            else None
        )
        if ex.health.enabled:
            run_info.health = ex.health.finalize()
        ex.close()
    ex.allocator.check_balanced()
    return FactorResult(
        kind=kind,
        method=method,
        mode=mode,
        packed=host_a.data if host_a.backed else None,
        info=run_info,
        stats=ex.stats,
        movement=moved.report,
        trace=trace,
        config=config,
        options=options,
        ckpt=session.stats if session is not None else None,
    )


def ooc_lu(
    a,
    *,
    method: str = "recursive",
    mode: str | None = None,
    config: SystemConfig | None = None,
    options: QrOptions | None = None,
    blocksize: int | None = None,
    device_memory: int | None = None,
    concurrency: str = "serial",
    checkpoint: CheckpointConfig | None = None,
) -> FactorResult:
    """Out-of-core unpivoted LU: ``A = L U`` packed in place.

    Same calling convention as :func:`repro.qr.api.ooc_qr` — including
    ``concurrency="threads"`` for per-engine worker threads in numeric
    mode (bitwise identical to serial, see docs/concurrency.md) and
    ``checkpoint=`` for resumable runs (see docs/checkpoint.md); the
    input must be stable without pivoting (e.g. diagonally dominant).
    """
    return _run(
        "lu",
        {"recursive": ooc_recursive_lu, "blocking": ooc_blocking_lu},
        a,
        method=method,
        mode=mode,
        config=config,
        options=options,
        blocksize=blocksize,
        device_memory=device_memory,
        concurrency=concurrency,
        checkpoint=checkpoint,
    )


def ooc_cholesky(
    a,
    *,
    method: str = "recursive",
    mode: str | None = None,
    config: SystemConfig | None = None,
    options: QrOptions | None = None,
    blocksize: int | None = None,
    device_memory: int | None = None,
    concurrency: str = "serial",
    checkpoint: CheckpointConfig | None = None,
) -> FactorResult:
    """Out-of-core Cholesky: lower factor L of a symmetric positive
    definite matrix, written into the lower triangle in place.

    ``concurrency="threads"`` overlaps H2D/compute/D2H on worker threads
    in numeric mode; results stay bitwise identical to serial.
    ``checkpoint=`` makes the run resumable (see docs/checkpoint.md)."""
    return _run(
        "cholesky",
        {"recursive": ooc_recursive_cholesky, "blocking": ooc_blocking_cholesky},
        a,
        method=method,
        mode=mode,
        config=config,
        options=options,
        blocksize=blocksize,
        device_memory=device_memory,
        concurrency=concurrency,
        checkpoint=checkpoint,
    )
