"""§6 extension factorizations: out-of-core unpivoted LU and Cholesky,
blocking and recursive, plus their in-core references."""

from repro.factor.api import FactorResult, ooc_cholesky, ooc_lu
from repro.factor.cholesky import ooc_blocking_cholesky, ooc_recursive_cholesky
from repro.factor.common import FactorRunInfo
from repro.factor.incore import (
    diagonally_dominant,
    incore_cholesky,
    incore_lu_nopivot,
    lu_unpack,
    spd_matrix,
)
from repro.factor.lu import ooc_blocking_lu, ooc_recursive_lu

__all__ = [
    "FactorResult",
    "FactorRunInfo",
    "diagonally_dominant",
    "incore_cholesky",
    "incore_lu_nopivot",
    "lu_unpack",
    "ooc_blocking_cholesky",
    "ooc_blocking_lu",
    "ooc_cholesky",
    "ooc_lu",
    "ooc_recursive_cholesky",
    "ooc_recursive_lu",
    "spd_matrix",
]
