"""Out-of-core Cholesky factorization — the paper's §6 extension, built.

The paper closes by observing that OOC LU and Cholesky share QR's
structure ("interleaving panel factorization and trailing matrix update
... the trailing matrix update is also of outer product form, and the
recursive algorithm can definitely help this kind of GEMMs") but leaves
them as future work. This module builds both variants on the same engines:

* **blocking** — fixed-width diagonal panels; each panel (full height
  below the diagonal) is factorized in core (``panel_cholesky``), then the
  trailing square is updated with SYRK-form tile streaming, the resident
  operands being the panel itself used as both A and Bᵀ (Fig-6 pattern).
* **recursive** — halve the column range; the left half's L21 drives one
  *large* row-streamed SYRK update of the right half's columns (Fig-5
  pattern with ``b_transposed``), then recurse right. Update GEMMs double
  in size up the recursion exactly as in QR.

Storage: the host matrix must hold the full symmetric A; on return its
lower triangle is L (take ``numpy.tril``). Trailing updates write the full
rectangle (symmetric values land above the diagonal), which costs 2x the
minimal SYRK flops — the standard simplicity/optimality trade, recorded in
``FactorRunInfo.notes``.
"""

from __future__ import annotations

from repro.ckpt.session import NULL_CHECKPOINT
from repro.execution.base import Executor
from repro.factor.common import FactorRunInfo, check_cholesky_inputs
from repro.host.tiled import HostMatrix
from repro.ooc.gradual import uniform_schedule
from repro.ooc.outer import run_rowstream_outer, run_tile_outer
from repro.ooc.plan import plan_rowstream_outer, plan_tile_outer
from repro.ooc.scope import DeviceScope
from repro.ooc.streams import StreamBundle
from repro.qr.options import QrOptions
from repro.util.units import gemm_flops


def ooc_blocking_cholesky(
    ex: Executor,
    a: HostMatrix,
    options: QrOptions = QrOptions(),
    checkpoint=None,
) -> FactorRunInfo:
    """Blocking OOC Cholesky of the symmetric host matrix *a* (in place)."""
    n = check_cholesky_inputs(a, options)
    b = min(options.blocksize, n)
    info = FactorRunInfo(method="blocking")
    info.notes.append("full-rectangle trailing updates (2x SYRK flops)")
    ck = checkpoint if checkpoint is not None else NULL_CHECKPOINT
    if ck.start() > 0:
        info.notes.append(f"resumed at panel step {ck.resume_step}")
    s = StreamBundle.create(ex, "chol-blk")
    ebytes = ex.config.element_bytes

    with DeviceScope(ex) as scope:
        panel_buf = scope.alloc(n, b, "chol-panel")
        _blocking_cholesky_body(ex, a, options, n, b, info, s, panel_buf, ck)
    ex.synchronize()
    return info


def _blocking_cholesky_body(ex, a, options, n, b, info, s, panel_buf, ck):
    ebytes = ex.config.element_bytes
    panel_free: object | None = None

    for p, (col0, width) in enumerate(uniform_schedule(n, b)):
        col1 = col0 + width
        height = n - col0
        if ck.should_skip(p):
            continue
        panel_view = panel_buf.view(0, height, 0, width)

        if panel_free is not None:
            ex.wait_event(s.h2d, panel_free)
        ex.h2d(panel_view, a.region(col0, n, col0, col1), s.h2d)
        loaded = ex.record_event(s.h2d)
        ex.wait_event(s.compute, loaded)
        ex.panel_cholesky(panel_view, s.compute, tag="panel")
        factored = ex.record_event(s.compute)
        ex.wait_event(s.d2h, factored)
        ex.d2h(a.region(col0, n, col0, col1), panel_view, s.d2h)
        written = ex.record_event(s.d2h)
        info.n_panels += 1

        if not options.qr_level_overlap:
            ex.synchronize()

        trailing = n - col1
        if trailing == 0:
            panel_free = written
            ck.step_complete(p, frontier=col1)
            break

        # trailing SYRK: A22 -= L21 L21ᵀ with L21 resident in the panel
        l21_view = panel_buf.view(width, height, 0, width)
        plan = plan_tile_outer(
            M=trailing,
            K=width,
            N=trailing,
            blocksize=options.effective_tile_blocksize,
            budget_elements=ex.allocator.free_bytes // ebytes,
            n_buffers=options.n_buffers,
            staging=options.staging_buffer,
        )
        run_tile_outer(
            ex,
            a.region(col1, n, col1, n),
            l21_view,
            l21_view,           # (N, K) storage, multiplied transposed
            plan,
            streams=s,
            pipelined=options.pipelined,
            # orders this phase's H2D stream (and, by FIFO, the next panel
            # load) after the panel writeback
            after=written,
            b_transposed=True,
            tag="outer",
        )
        info.n_outer += 1
        info.outer_flops += gemm_flops(trailing, trailing, width)
        panel_free = ex.record_event(s.compute)

        if not options.qr_level_overlap:
            ex.synchronize()

        ck.step_complete(p, frontier=col1)


def ooc_recursive_cholesky(
    ex: Executor,
    a: HostMatrix,
    options: QrOptions = QrOptions(),
    checkpoint=None,
) -> FactorRunInfo:
    """Recursive OOC Cholesky of the symmetric host matrix *a* (in place)."""
    n = check_cholesky_inputs(a, options)
    b = min(options.blocksize, n)
    info = FactorRunInfo(method="recursive")
    info.notes.append("full-rectangle trailing updates (2x SYRK flops)")
    ck = checkpoint if checkpoint is not None else NULL_CHECKPOINT
    if ck.start() > 0:
        info.notes.append(f"resumed at recursion event {ck.resume_step}")
    s = StreamBundle.create(ex, "chol-rec")
    ebytes = ex.config.element_bytes

    with DeviceScope(ex) as scope:
        panel_buf = scope.alloc(n, b, "chol-panel")
        _recursive_cholesky_body(ex, a, options, n, b, info, s, panel_buf, ck)
    ex.synchronize()
    return info


def _recursive_cholesky_body(ex, a, options, n, b, info, s, panel_buf, ck):
    ebytes = ex.config.element_bytes
    state = {"panel_free": None, "step": 0}

    def next_step() -> int:
        step = state["step"]
        state["step"] = step + 1
        return step

    def leaf(col0: int, width: int) -> None:
        col1 = col0 + width
        step = next_step()
        if ck.should_skip(step):
            return
        height = n - col0
        panel_view = panel_buf.view(0, height, 0, width)
        if state["panel_free"] is not None:
            ex.wait_event(s.h2d, state["panel_free"])
        ex.h2d(panel_view, a.region(col0, n, col0, col1), s.h2d)
        loaded = ex.record_event(s.h2d)
        ex.wait_event(s.compute, loaded)
        ex.panel_cholesky(panel_view, s.compute, tag="panel")
        factored = ex.record_event(s.compute)
        ex.wait_event(s.d2h, factored)
        ex.d2h(a.region(col0, n, col0, col1), panel_view, s.d2h)
        state["panel_free"] = ex.record_event(s.d2h)
        info.n_panels += 1
        if not options.qr_level_overlap:
            ex.synchronize()
        ck.step_complete(step, frontier=col1)

    def recurse(col0: int, width: int) -> None:
        if width <= b:
            leaf(col0, width)
            return
        wl = width // 2
        wr = width - wl
        mid = col0 + wl
        col1 = col0 + width

        recurse(col0, wl)
        step = next_step()
        if ck.should_skip(step):
            recurse(mid, wr)
            return

        # this node's trailing SYRK: A[mid:, mid:col1] -= L21 L21(top)ᵀ
        host_ready = ex.record_event(s.d2h)
        plan = plan_rowstream_outer(
            M=n - mid,
            K=wl,
            N=wr,
            blocksize=options.effective_outer_blocksize,
            budget_elements=ex.allocator.free_bytes // ebytes,
            n_buffers=options.n_buffers,
            staging=options.staging_buffer,
            b_resident=False,
        )
        run_rowstream_outer(
            ex,
            a.region(mid, n, mid, col1),
            a.region(mid, n, col0, mid),
            a.region(mid, col1, col0, mid),   # (N, K): L21's top rows
            plan,
            streams=s,
            pipelined=options.pipelined,
            after=host_ready,
            b_transposed=True,
            tag="outer",
        )
        info.n_outer += 1
        info.outer_flops += gemm_flops(n - mid, wr, wl)
        if not options.qr_level_overlap:
            ex.synchronize()

        ck.step_complete(step, frontier=mid)

        recurse(mid, wr)

    recurse(0, n)
