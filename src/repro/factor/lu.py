"""Out-of-core unpivoted LU factorization — the paper's §6 extension, built.

Workflows (host matrix overwritten with the packed L\\U factors, LAPACK
``getrf`` layout: U on/above the diagonal, unit-lower L multipliers below):

* **blocking** — per width-b panel: in-core panel LU (``panel_lu``), then
  ``U12 = L11^{-1} A12`` with the b-by-b triangle resident and A12
  streamed in column blocks (the TRSM analogue of Fig 4), then the
  trailing update ``A22 -= L21 U12`` with both operands resident (Fig 6).
* **recursive** — halve the column range; after the left half, U12 solves
  against the *whole left triangle* via the out-of-core TRSM engine
  (X resident, triangle strips streamed), stays device-resident when it
  fits, and feeds one large row-streamed trailing update (Fig 5) — the
  same R12-reuse discipline as the recursive QR driver. The trailing GEMMs
  double in size up the recursion, which is precisely why §6 expects
  recursion to "definitely help this kind of GEMMs".

No pivoting (the paper: "there is no in-core TensorCore based partial
pivoted LU"); inputs must be stable without pivoting — see
:func:`repro.factor.incore.diagonally_dominant`.
"""

from __future__ import annotations

from repro.ckpt.session import NULL_CHECKPOINT
from repro.errors import PlanError
from repro.execution.base import Executor
from repro.factor.common import FactorRunInfo, check_lu_inputs
from repro.host.tiled import HostMatrix
from repro.ooc.gradual import uniform_schedule
from repro.ooc.outer import run_rowstream_outer, run_tile_outer
from repro.ooc.plan import (
    plan_panel_inner,
    plan_rowstream_outer,
    plan_tile_outer,
)
from repro.ooc.scope import DeviceScope
from repro.ooc.streams import StreamBundle
from repro.ooc.trsm import plan_ooc_trsm, run_ooc_trsm, run_panel_trsm
from repro.qr.options import QrOptions
from repro.util.units import gemm_flops


def ooc_blocking_lu(
    ex: Executor,
    a: HostMatrix,
    options: QrOptions = QrOptions(),
    checkpoint=None,
) -> FactorRunInfo:
    """Blocking OOC unpivoted LU of host matrix *a*, packed in place."""
    m, n = check_lu_inputs(a, options)
    b = min(options.blocksize, n)
    info = FactorRunInfo(method="blocking")
    ck = checkpoint if checkpoint is not None else NULL_CHECKPOINT
    if ck.start() > 0:
        info.notes.append(f"resumed at panel step {ck.resume_step}")
    s = StreamBundle.create(ex, "lu-blk")
    ebytes = ex.config.element_bytes

    with DeviceScope(ex) as scope:
        panel_buf = scope.alloc(m, b, "lu-panel")
        u_tile = scope.alloc(b, b, "lu-utile")
        _blocking_lu_body(ex, a, options, m, n, b, info, s, scope,
                          panel_buf, u_tile, ck)
    ex.synchronize()
    return info


def _blocking_lu_body(ex, a, options, m, n, b, info, s, scope,
                      panel_buf, u_tile, ck):
    ebytes = ex.config.element_bytes
    panel_free: object | None = None
    u_free: object | None = None

    for p, (col0, width) in enumerate(uniform_schedule(n, b)):
        col1 = col0 + width
        height = m - col0
        trailing = n - col1
        if ck.should_skip(p):
            continue
        panel_view = panel_buf.view(0, height, 0, width)
        u_view = u_tile.view(0, width, 0, width)

        # 1. panel move-in + in-core LU + writeback (packed)
        if panel_free is not None:
            ex.wait_event(s.h2d, panel_free)
        ex.h2d(panel_view, a.region(col0, m, col0, col1), s.h2d)
        loaded = ex.record_event(s.h2d)
        ex.wait_event(s.compute, loaded)
        if u_free is not None:
            ex.wait_event(s.compute, u_free)
        ex.panel_lu(panel_view, u_view, s.compute, tag="panel")
        factored = ex.record_event(s.compute)
        ex.wait_event(s.d2h, factored)
        ex.d2h(a.region(col0, m, col0, col1), panel_view, s.d2h)
        written = u_free = ex.record_event(s.d2h)
        info.n_panels += 1

        if not options.qr_level_overlap:
            ex.synchronize()

        if trailing == 0:
            panel_free = written
            ck.step_complete(p, frontier=col1)
            break

        # 2. U12 = L11^{-1} A12: triangle resident (top of the panel),
        #    A12 streamed in column blocks
        tri_view = panel_buf.view(0, width, 0, width)
        trsm_plan = plan_panel_inner(
            K=width,
            M=width,
            N=trailing,
            blocksize=b,
            budget_elements=ex.allocator.free_bytes // ebytes,
            n_buffers=options.n_buffers,
            prefer_keep_c=options.reuse_inner_result,
        )
        trsm_res = run_panel_trsm(
            ex,
            tri_view,
            a.region(col0, col1, col1, n),
            a.region(col0, col1, col1, n),
            trsm_plan,
            streams=s,
            unit_diag=True,
            pipelined=options.pipelined,
            after=written,
            tag="trsm",
        )
        info.n_trsm += 1
        info.trsm_flops += width * width * trailing

        if not options.qr_level_overlap:
            ex.synchronize()

        # 3. trailing update A22 -= L21 U12
        l21_view = panel_buf.view(width, height, 0, width)
        u12_dev = scope.adopt(trsm_res.c_device)
        if u12_dev is not None:
            tile_plan = plan_tile_outer(
                M=m - col1,
                K=width,
                N=trailing,
                blocksize=options.effective_tile_blocksize,
                budget_elements=ex.allocator.free_bytes // ebytes,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
            )
            run_tile_outer(
                ex,
                a.region(col1, m, col1, n),
                l21_view,
                u12_dev.view(0, width, 0, trailing),
                tile_plan,
                streams=s,
                pipelined=options.pipelined,
                tag="outer",
            )
            scope.free(u12_dev)
        else:
            ex.synchronize()
            info.notes.append(f"panel {p}: U12 ({width}x{trailing}) spilled")
            outer_plan = plan_rowstream_outer(
                M=m - col1,
                K=width,
                N=trailing,
                blocksize=options.effective_outer_blocksize,
                budget_elements=ex.allocator.free_bytes // ebytes,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
                b_resident=False,
            )
            run_rowstream_outer(
                ex,
                a.region(col1, m, col1, n),
                a.region(col1, m, col0, col1),
                a.region(col0, col1, col1, n),
                outer_plan,
                streams=s,
                pipelined=options.pipelined,
                tag="outer",
            )
        info.n_outer += 1
        info.outer_flops += gemm_flops(m - col1, trailing, width)
        panel_free = ex.record_event(s.compute)

        if not options.qr_level_overlap:
            ex.synchronize()

        ck.step_complete(p, frontier=col1)


def ooc_recursive_lu(
    ex: Executor,
    a: HostMatrix,
    options: QrOptions = QrOptions(),
    checkpoint=None,
) -> FactorRunInfo:
    """Recursive OOC unpivoted LU of host matrix *a*, packed in place."""
    m, n = check_lu_inputs(a, options)
    b = min(options.blocksize, n)
    info = FactorRunInfo(method="recursive")
    ck = checkpoint if checkpoint is not None else NULL_CHECKPOINT
    if ck.start() > 0:
        info.notes.append(f"resumed at recursion event {ck.resume_step}")
    s = StreamBundle.create(ex, "lu-rec")
    ebytes = ex.config.element_bytes

    scope = DeviceScope(ex)
    with scope:
        panel_buf = scope.alloc(m, b, "lu-panel")
        u_tile = scope.alloc(b, b, "lu-utile")
        _recursive_lu_body(ex, a, options, m, n, b, info, s, scope,
                           panel_buf, u_tile, ck)
    ex.synchronize()
    return info


def _recursive_lu_body(ex, a, options, m, n, b, info, s, scope,
                       panel_buf, u_tile, ck):
    ebytes = ex.config.element_bytes
    state = {"panel_free": None, "u_free": None, "step": 0}

    def next_step() -> int:
        step = state["step"]
        state["step"] = step + 1
        return step

    def leaf(col0: int, width: int) -> None:
        col1 = col0 + width
        step = next_step()
        if ck.should_skip(step):
            return
        height = m - col0
        panel_view = panel_buf.view(0, height, 0, width)
        u_view = u_tile.view(0, width, 0, width)
        if state["panel_free"] is not None:
            ex.wait_event(s.h2d, state["panel_free"])
        ex.h2d(panel_view, a.region(col0, m, col0, col1), s.h2d)
        loaded = ex.record_event(s.h2d)
        ex.wait_event(s.compute, loaded)
        if state["u_free"] is not None:
            ex.wait_event(s.compute, state["u_free"])
        ex.panel_lu(panel_view, u_view, s.compute, tag="panel")
        factored = ex.record_event(s.compute)
        ex.wait_event(s.d2h, factored)
        ex.d2h(a.region(col0, m, col0, col1), panel_view, s.d2h)
        state["panel_free"] = state["u_free"] = ex.record_event(s.d2h)
        info.n_panels += 1
        if not options.qr_level_overlap:
            ex.synchronize()
        ck.step_complete(step, frontier=col1)

    def recurse(col0: int, width: int) -> None:
        if width <= b:
            leaf(col0, width)
            return
        wl = width // 2
        wr = width - wl
        mid = col0 + wl
        col1 = col0 + width

        recurse(col0, wl)
        step = next_step()
        if ck.should_skip(step):
            recurse(mid, wr)
            return

        budget = ex.allocator.free_bytes // ebytes
        host_ready = ex.record_event(s.d2h)

        # U12 = L11^{-1} A12 via the OOC TRSM engine; keep X resident for
        # the trailing update when it fits alongside the outer pipeline
        trsm_plan = plan_ooc_trsm(
            K=wl,
            N=wr,
            blocksize=b,
            budget_elements=budget,
            n_buffers=options.n_buffers,
        )
        keep = options.reuse_inner_result and trsm_plan.n_panels == 1
        if keep:
            try:
                probe = plan_rowstream_outer(
                    M=m - mid,
                    K=wl,
                    N=wr,
                    blocksize=options.effective_outer_blocksize,
                    budget_elements=budget - wl * wr,
                    n_buffers=options.n_buffers,
                    staging=options.staging_buffer,
                    b_resident=True,
                )
                keep = probe.b_resident
            except PlanError:
                keep = False
        u12_dev = scope.adopt(run_ooc_trsm(
            ex,
            a.region(col0, mid, col0, mid),
            a.region(col0, mid, mid, col1),
            a.region(col0, mid, mid, col1),
            trsm_plan,
            streams=s,
            unit_diag=True,
            keep_on_device=keep,
            pipelined=options.pipelined,
            after=host_ready,
            tag="trsm",
        ))
        info.n_trsm += 1
        info.trsm_flops += wl * wl * wr

        if not options.qr_level_overlap:
            ex.synchronize()

        host_ready2 = ex.record_event(s.d2h)
        if u12_dev is not None:
            oplan = plan_rowstream_outer(
                M=m - mid,
                K=wl,
                N=wr,
                blocksize=options.effective_outer_blocksize,
                budget_elements=ex.allocator.free_bytes // ebytes,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
                b_resident=True,
            )
            run_rowstream_outer(
                ex,
                a.region(mid, m, mid, col1),
                a.region(mid, m, col0, mid),
                u12_dev.view(0, wl, 0, wr),
                oplan,
                streams=s,
                pipelined=options.pipelined,
                after=host_ready2,
                tag="outer",
            )
            scope.free(u12_dev)
        else:
            ex.synchronize()
            info.notes.append(f"level ({col0},{width}): U12 spilled to host")
            oplan = plan_rowstream_outer(
                M=m - mid,
                K=wl,
                N=wr,
                blocksize=options.effective_outer_blocksize,
                budget_elements=ex.allocator.free_bytes // ebytes,
                n_buffers=options.n_buffers,
                staging=options.staging_buffer,
                b_resident=False,
            )
            run_rowstream_outer(
                ex,
                a.region(mid, m, mid, col1),
                a.region(mid, m, col0, mid),
                a.region(col0, mid, mid, col1),
                oplan,
                streams=s,
                pipelined=options.pipelined,
                tag="outer",
            )
        info.n_outer += 1
        info.outer_flops += gemm_flops(m - mid, wr, wl)

        if not options.qr_level_overlap:
            ex.synchronize()

        ck.step_complete(step, frontier=mid)

        recurse(mid, wr)

    recurse(0, n)
