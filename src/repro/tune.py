"""Blocksize/method autotuning via the event simulator.

The paper shows the blocksize decides everything for the blocking
algorithm (§5.2) and that the best value depends on the GPU's memory and
compute/bandwidth balance (§6). Since this library can simulate a full
factorization in milliseconds, the right configuration can simply be
*searched*: simulate every candidate, pick the fastest, then run the real
(numeric) factorization with it.

    from repro.tune import tune
    best = tune((131072, 131072), kind="qr")
    best.best_method, best.best_blocksize   # e.g. ("recursive", 16384)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PAPER_SYSTEM, SystemConfig
from repro.errors import OutOfDeviceMemoryError, PlanError, ReproError, ValidationError
from repro.qr.options import QrOptions
from repro.util.tables import render_table
from repro.util.validation import one_of

KINDS = ("qr", "lu", "cholesky")


@dataclass(frozen=True)
class Candidate:
    """One simulated configuration."""

    method: str
    blocksize: int
    makespan: float          # seconds; inf = infeasible
    achieved_tflops: float
    h2d_bytes: int
    note: str = ""

    @property
    def feasible(self) -> bool:
        return self.makespan != float("inf")


@dataclass
class TuneResult:
    """Outcome of a tuning sweep."""

    shape: tuple[int, int]
    kind: str
    config: SystemConfig
    candidates: list[Candidate] = field(default_factory=list)

    @property
    def best(self) -> Candidate:
        feasible = [c for c in self.candidates if c.feasible]
        if not feasible:
            raise PlanError(
                f"no feasible configuration for {self.shape} on "
                f"{self.config.gpu.name}"
            )
        return min(feasible, key=lambda c: c.makespan)

    @property
    def best_method(self) -> str:
        return self.best.method

    @property
    def best_blocksize(self) -> int:
        return self.best.blocksize

    def options(self) -> QrOptions:
        """QrOptions configured with the winning blocksize."""
        return QrOptions(blocksize=self.best_blocksize)

    def render(self) -> str:
        """The sweep as a table, best row marked."""
        best = self.best
        rows = []
        for c in sorted(self.candidates, key=lambda c: (c.method, c.blocksize)):
            rows.append([
                "->" if c is best else "",
                c.method,
                c.blocksize,
                "infeasible" if not c.feasible else f"{c.makespan:.1f} s",
                "" if not c.feasible else f"{c.achieved_tflops:.1f} TF",
                c.note,
            ])
        return render_table(
            ["", "method", "blocksize", "simulated", "rate", "note"],
            rows,
            title=f"tuning {self.kind} {self.shape[0]}x{self.shape[1]} "
                  f"on {self.config.gpu.name}",
        )


def default_candidates(config: SystemConfig, m: int, n: int) -> list[int]:
    """Power-of-two blocksizes from 1024 up to what the panel budget allows
    (the m-by-b panel must fit in roughly a third of device memory to
    leave room for the streaming pipelines)."""
    limit_elems = config.usable_device_bytes // config.element_bytes // 3
    out = []
    b = 1024
    while b <= n and m * b <= limit_elems:
        out.append(b)
        b *= 2
    return out or [min(n, max(1, limit_elems // m))]


def tune(
    shape: tuple[int, int],
    *,
    kind: str = "qr",
    config: SystemConfig = PAPER_SYSTEM,
    methods: tuple[str, ...] = ("recursive", "blocking"),
    candidates: list[int] | None = None,
) -> TuneResult:
    """Sweep method x blocksize through the simulator; returns the table
    and the winner. Infeasible configurations (working set cannot fit) are
    kept in the table, marked, and never win."""
    kind = one_of(kind, KINDS, "kind")
    m, n = int(shape[0]), int(shape[1])
    if kind == "cholesky" and m != n:
        raise ValidationError("cholesky tuning needs a square shape")
    candidates = candidates or default_candidates(config, m, n)

    if kind == "qr":
        from repro.qr.api import ooc_qr as runner
    elif kind == "lu":
        from repro.factor.api import ooc_lu as runner
    else:
        from repro.factor.api import ooc_cholesky as runner

    result = TuneResult(shape=(m, n), kind=kind, config=config)
    for method in methods:
        for b in candidates:
            if b > n or b > m:
                continue
            try:
                run = runner(
                    (m, n), method=method, mode="sim", config=config,
                    options=QrOptions(blocksize=b),
                )
                result.candidates.append(
                    Candidate(
                        method=method,
                        blocksize=b,
                        makespan=run.makespan,
                        achieved_tflops=run.achieved_tflops,
                        h2d_bytes=run.movement.h2d_bytes,
                        note="; ".join(run.info.notes[:1]),
                    )
                )
            except (OutOfDeviceMemoryError, PlanError) as exc:
                result.candidates.append(
                    Candidate(
                        method=method,
                        blocksize=b,
                        makespan=float("inf"),
                        achieved_tflops=0.0,
                        h2d_bytes=0,
                        note=type(exc).__name__,
                    )
                )
    if not result.candidates:
        raise PlanError(f"no candidate blocksizes for shape {shape}")
    return result
