"""The paper's evaluation, experiment by experiment.

One function per table/figure of §5 (plus the §5.3 headline), each
returning an :class:`~repro.bench.report.ExperimentResult` that pairs the
paper's published numbers with our simulated measurements and asserts the
*shape* of the result — who wins, by roughly what factor, where crossovers
fall. Absolute milliseconds are not expected to match a physical V100.

Ablations and projections (§4.1.3, §4.2, §6) live in
:mod:`repro.bench.studies`.
"""

from __future__ import annotations

from repro.bench import runners
from repro.bench.report import ExperimentResult, fmt_ratio, fmt_s, fmt_tf
from repro.bench.workloads import (
    PAPER_INNER_BLOCKING,
    PAPER_INNER_RECURSIVE,
    PAPER_MAIN_SHAPE,
    PAPER_OUTER_BLOCKING,
    PAPER_OUTER_RECURSIVE,
    PAPER_SQUARE_SHAPE,
    PAPER_TALL_SHAPE,
)
from repro.errors import ValidationError
from repro.config import PAPER_SYSTEM, PAPER_SYSTEM_16GB, SystemConfig
from repro.qr.api import QrResult, ooc_qr
from repro.qr.options import QrOptions
from repro.sim.timeline import render_summary, render_timeline

#: Published numbers transcribed from the paper (seconds / TFLOPS).
PAPER = {
    "t1_rec": dict(h2d=0.693, gemm=1.408, d2h=1.306, incore_tf=99.9,
                   sync=18.183, sync_tf=62.0, async_=12.932, async_tf=87.1),
    "t1_blk": dict(h2d=0.728, gemm=1.337, d2h=0.081, incore_tf=52.6,
                   sync=14.920, sync_tf=33.0, async_=11.286, async_tf=43.6),
    "t2_rec": dict(h2d=0.347, gemm=0.654, d2h=0.163, incore_tf=107.6,
                   sync=14.129, sync_tf=60.3, async_=11.517, async_tf=97.7),
    # Table 2's blocking "Asynchronous 11286ms" is inconsistent with its own
    # 96.2 TFLOPS row (4.93e14 flops / 96.2 TF = 5.12 s); we take the rate
    # row as authoritative — see EXPERIMENTS.md.
    "t2_blk": dict(h2d=0.086, gemm=0.089, d2h=0.081, incore_tf=98.8,
                   sync=5.119, sync_tf=34.7, async_=5.121, async_tf=96.2),
    "t3": dict(rec_h2d=37.9, rec_d2h=19.3, blk_h2d=47.2, blk_d2h=22.3),
    "t4_square": dict(rec_gemms=10.5, blk_gemms=18.9, panel=2.7),
    "t4_tall": dict(rec_gemms=38.5, blk_gemms=77.0, panel=9.0),
    "headline": dict(speedup_32gb=1.25, speedup_16gb=2.0, peak_fraction=0.45),
}


def _close(measured: float, paper: float, rel: float) -> bool:
    return abs(measured - paper) <= rel * abs(paper)


# -- Table 1 ------------------------------------------------------------------


def exp_table1(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """Table 1: inner-product behaviours, recursive vs blocking."""
    res = ExperimentResult("T1", "Inner product behaviours (Table 1)")
    rec = runners.sim_inner_recursive(config, **PAPER_INNER_RECURSIVE)
    rec_sync = runners.sim_inner_recursive(
        config, pipelined=False, **PAPER_INNER_RECURSIVE
    )
    blk = runners.sim_inner_blocking(config, **PAPER_INNER_BLOCKING)
    blk_sync = runners.sim_inner_blocking(
        config, pipelined=False, **PAPER_INNER_BLOCKING
    )
    p_rec, p_blk = PAPER["t1_rec"], PAPER["t1_blk"]

    res.add_row("rec  in-core rate", fmt_tf(p_rec["incore_tf"] * 1e12), fmt_tf(rec.incore_rate))
    res.add_row("rec  sync time", fmt_s(p_rec["sync"]), fmt_s(rec_sync.makespan))
    res.add_row("rec  async time", fmt_s(p_rec["async_"]), fmt_s(rec.makespan))
    res.add_row("rec  async rate", fmt_tf(p_rec["async_tf"] * 1e12), fmt_tf(rec.overall_rate))
    res.add_row("blk  per-block H2D", fmt_s(p_blk["h2d"]), fmt_s(blk.median_h2d))
    res.add_row("blk  per-block GEMM", fmt_s(p_blk["gemm"]), fmt_s(blk.median_gemm))
    res.add_row("blk  per-block D2H", fmt_s(p_blk["d2h"]), fmt_s(blk.median_d2h))
    res.add_row("blk  in-core rate", fmt_tf(p_blk["incore_tf"] * 1e12), fmt_tf(blk.incore_rate))
    res.add_row("blk  sync time", fmt_s(p_blk["sync"]), fmt_s(blk_sync.makespan))
    res.add_row("blk  async time", fmt_s(p_blk["async_"]), fmt_s(blk.makespan))
    res.add_row("blk  async rate", fmt_tf(p_blk["async_tf"] * 1e12), fmt_tf(blk.overall_rate))

    res.add_check(
        "recursive in-core GEMMs much faster than blocking's "
        "reduction-shaped GEMMs (paper 1.9x)",
        rec.incore_rate > 1.5 * blk.incore_rate,
    )
    res.add_check(
        "recursive async rate ~2x blocking async rate (paper 87.1 vs 43.6)",
        1.5 <= rec.overall_rate / blk.overall_rate <= 2.6,
    )
    res.add_check(
        "async beats sync for both variants",
        rec.makespan < rec_sync.makespan and blk.makespan < blk_sync.makespan,
    )
    res.add_check(
        "blocking per-block times within 15% of paper",
        _close(blk.median_h2d, p_blk["h2d"], 0.15)
        and _close(blk.median_gemm, p_blk["gemm"], 0.15)
        and _close(blk.median_d2h, p_blk["d2h"], 0.15),
    )
    res.add_check(
        "recursive async time within 25% of paper",
        _close(rec.makespan, p_rec["async_"], 0.25),
    )
    return res


# -- Table 2 ------------------------------------------------------------------


def exp_table2(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """Table 2: outer-product behaviours, recursive vs blocking."""
    res = ExperimentResult("T2", "Outer product behaviours (Table 2)")
    rec = runners.sim_outer_recursive(config, **PAPER_OUTER_RECURSIVE)
    rec_sync = runners.sim_outer_recursive(
        config, pipelined=False, **PAPER_OUTER_RECURSIVE
    )
    blk = runners.sim_outer_blocking(config, **PAPER_OUTER_BLOCKING)
    blk_sync = runners.sim_outer_blocking(
        config, pipelined=False, **PAPER_OUTER_BLOCKING
    )
    p_rec, p_blk = PAPER["t2_rec"], PAPER["t2_blk"]

    res.add_row("rec  per-block H2D", fmt_s(p_rec["h2d"]), fmt_s(rec.median_h2d), "A+C block pair")
    res.add_row("rec  per-block GEMM", fmt_s(p_rec["gemm"]), fmt_s(rec.median_gemm))
    res.add_row("rec  per-block D2H", fmt_s(p_rec["d2h"]), fmt_s(rec.median_d2h))
    res.add_row("rec  in-core rate", fmt_tf(p_rec["incore_tf"] * 1e12), fmt_tf(rec.incore_rate))
    res.add_row("rec  sync time", fmt_s(p_rec["sync"]), fmt_s(rec_sync.makespan))
    res.add_row("rec  async time", fmt_s(p_rec["async_"]), fmt_s(rec.makespan))
    res.add_row("rec  async rate", fmt_tf(p_rec["async_tf"] * 1e12), fmt_tf(rec.overall_rate))
    res.add_row("blk  per-block H2D", fmt_s(p_blk["h2d"]), fmt_s(blk.median_h2d))
    res.add_row("blk  per-block GEMM", fmt_s(p_blk["gemm"]), fmt_s(blk.median_gemm))
    res.add_row("blk  per-block D2H", fmt_s(p_blk["d2h"]), fmt_s(blk.median_d2h))
    res.add_row("blk  in-core rate", fmt_tf(p_blk["incore_tf"] * 1e12), fmt_tf(blk.incore_rate))
    res.add_row("blk  async time", fmt_s(p_blk["async_"]), fmt_s(blk.makespan),
                "paper async row corrected (see note)")
    res.add_row("blk  async rate", fmt_tf(p_blk["async_tf"] * 1e12), fmt_tf(blk.overall_rate))

    res.add_check(
        "both outer products run near TensorCore peak in core "
        "(paper 107.6 and 98.8)",
        rec.incore_rate > 0.85 * config.gpu.tc_peak_flops
        and blk.incore_rate > 0.85 * config.gpu.tc_peak_flops,
    )
    res.add_check(
        "at QR blocksize 16384 the blocking outer product overlaps fine "
        "(no big rec advantage — paper: 97.7 vs 96.2 TFLOPS)",
        0.8 <= rec.overall_rate / blk.overall_rate <= 1.25,
    )
    res.add_check(
        "recursive async within 20% of paper's 11.5 s",
        _close(rec.makespan, p_rec["async_"], 0.20),
    )
    res.add_check(
        "blocking per-block times within 20% of paper",
        _close(blk.median_gemm, p_blk["gemm"], 0.20)
        and _close(blk.median_d2h, p_blk["d2h"], 0.20),
    )
    res.add_check(
        "pipelining roughly triples blocking outer throughput "
        "(paper 34.7 -> 96.2 TFLOPS)",
        blk_sync.makespan / blk.makespan > 2.0,
    )
    return res


# -- Table 3 ------------------------------------------------------------------


def exp_table3(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """Table 3: end-to-end QR data-movement time, blocksize 16384."""
    res = ExperimentResult("T3", "QR data movement, b = 16384 (Table 3)")
    m, n = PAPER_MAIN_SHAPE
    opts = QrOptions(blocksize=16384)
    rec = ooc_qr((m, n), method="recursive", mode="sim", config=config, options=opts)
    blk = ooc_qr((m, n), method="blocking", mode="sim", config=config, options=opts)
    p = PAPER["t3"]

    rec_h2d = rec.movement.h2d_bytes / config.gpu.h2d_bytes_per_s
    rec_d2h = rec.movement.d2h_bytes / config.gpu.d2h_bytes_per_s
    blk_h2d = blk.movement.h2d_bytes / config.gpu.h2d_bytes_per_s
    blk_d2h = blk.movement.d2h_bytes / config.gpu.d2h_bytes_per_s

    res.add_row("recursive H2D time", fmt_s(p["rec_h2d"]), fmt_s(rec_h2d),
                f"{rec.movement.h2d_bytes / 1e9:.0f} GB")
    res.add_row("recursive D2H time", fmt_s(p["rec_d2h"]), fmt_s(rec_d2h),
                f"{rec.movement.d2h_bytes / 1e9:.0f} GB")
    res.add_row("blocking  H2D time", fmt_s(p["blk_h2d"]), fmt_s(blk_h2d),
                f"{blk.movement.h2d_bytes / 1e9:.0f} GB")
    res.add_row("blocking  D2H time", fmt_s(p["blk_d2h"]), fmt_s(blk_d2h),
                f"{blk.movement.d2h_bytes / 1e9:.0f} GB")

    res.add_check(
        "recursive moves less data than blocking in both directions",
        rec.movement.h2d_bytes < blk.movement.h2d_bytes
        and rec.movement.d2h_bytes < blk.movement.d2h_bytes,
    )
    res.add_check(
        "H2D ratio blocking/recursive in the paper's band (1.25 +- 0.25)",
        1.0 < blk.movement.h2d_bytes / rec.movement.h2d_bytes < 1.6,
    )
    res.add_check(
        "recursive H2D time within 25% of paper's 37.9 s",
        _close(rec_h2d, p["rec_h2d"], 0.25),
    )
    return res


# -- Table 4 ------------------------------------------------------------------


def _qr_phase_split(result: QrResult) -> tuple[float, float]:
    """(gemm_seconds, panel_seconds) on the compute engine."""
    phases = result.phase_times()
    gemms = phases.get("inner", 0.0) + phases.get("outer", 0.0)
    return gemms, phases.get("panel", 0.0)


def exp_table4(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """Table 4: GEMMs-vs-panel split for 65536^2 and 262144x65536, b=8192."""
    res = ExperimentResult("T4", "GEMM/panel time by matrix shape (Table 4)")
    opts = QrOptions(blocksize=8192)
    for shape, key in ((PAPER_SQUARE_SHAPE, "t4_square"), (PAPER_TALL_SHAPE, "t4_tall")):
        p = PAPER[key]
        label = f"{shape[0]}x{shape[1]}"
        rec = ooc_qr(shape, method="recursive", mode="sim", config=config, options=opts)
        blk = ooc_qr(shape, method="blocking", mode="sim", config=config, options=opts)
        rec_gemms, rec_panel = _qr_phase_split(rec)
        blk_gemms, blk_panel = _qr_phase_split(blk)

        res.add_row(f"{label} rec GEMMs", fmt_s(p["rec_gemms"]), fmt_s(rec_gemms))
        res.add_row(f"{label} blk GEMMs", fmt_s(p["blk_gemms"]), fmt_s(blk_gemms))
        res.add_row(f"{label} panel (both)", fmt_s(p["panel"]),
                    f"{fmt_s(rec_panel)} / {fmt_s(blk_panel)}")
        res.add_row(f"{label} overall speedup",
                    fmt_ratio(1.5 if key == "t4_square" else 1.7),
                    fmt_ratio(blk.makespan / rec.makespan))

        res.add_check(
            f"{label}: blocking spends ~2x recursive's GEMM time "
            f"(paper {p['blk_gemms'] / p['rec_gemms']:.1f}x)",
            1.4 <= blk_gemms / rec_gemms <= 2.6,
        )
        res.add_check(
            f"{label}: panel time identical across methods",
            abs(rec_panel - blk_panel) < 0.02 * max(rec_panel, blk_panel) + 1e-9,
        )
        res.add_check(
            f"{label}: panel time within 25% of paper's {p['panel']} s",
            _close(rec_panel, p["panel"], 0.25),
        )
        res.add_check(
            f"{label}: recursive wins overall (paper "
            f"{1.5 if key == 't4_square' else 1.7}x)",
            1.15 <= blk.makespan / rec.makespan <= 2.4,
        )
    return res


# -- §5.3 headline ---------------------------------------------------------------


def exp_headline(
    config32: SystemConfig = PAPER_SYSTEM,
    config16: SystemConfig = PAPER_SYSTEM_16GB,
) -> ExperimentResult:
    """§5.3: ~1.25x at 32 GB / b=16384, ~2x at 16 GB / b=8192, ~45% of peak."""
    res = ExperimentResult("S1", "Headline speedups (§5.3) on 131072^2")
    shape = PAPER_MAIN_SHAPE
    p = PAPER["headline"]

    runs = {}
    for label, cfg, b in (("32GB", config32, 16384), ("16GB", config16, 8192)):
        rec = ooc_qr(shape, method="recursive", mode="sim", config=cfg,
                     options=QrOptions(blocksize=b))
        blk = ooc_qr(shape, method="blocking", mode="sim", config=cfg,
                     options=QrOptions(blocksize=b))
        runs[label] = (rec, blk)
        res.add_row(
            f"{label} b={b} speedup",
            fmt_ratio(p["speedup_32gb"] if label == "32GB" else p["speedup_16gb"]),
            fmt_ratio(blk.makespan / rec.makespan),
            f"rec {fmt_s(rec.makespan)} vs blk {fmt_s(blk.makespan)}",
        )

    rec32, blk32 = runs["32GB"]
    rec16, blk16 = runs["16GB"]
    peak = config32.gpu.tc_peak_flops
    res.add_row("rec fraction of TC peak", f"{p['peak_fraction']:.0%}",
                f"{rec32.achieved_tflops * 1e12 / peak:.0%}")

    s32 = blk32.makespan / rec32.makespan
    s16 = blk16.makespan / rec16.makespan
    res.add_check("recursive wins at 32 GB (paper ~1.25x)", 1.10 <= s32 <= 1.45)
    res.add_check("recursive wins big at 16 GB (paper ~2x)", 1.5 <= s16 <= 2.5)
    res.add_check(
        "the advantage grows as memory shrinks (paper's central claim)",
        s16 > s32,
    )
    res.add_check(
        "recursive time barely changes with the memory cap "
        "(paper: 'the performance of recursive QR doesn't change much')",
        rec16.makespan / rec32.makespan < 1.25,
    )
    res.add_check(
        "recursive achieves ~45% of TensorCore peak end to end",
        0.35 <= rec32.achieved_tflops * 1e12 / peak <= 0.60,
    )
    return res


# -- Figures 7-11: OOC GEMM timelines ----------------------------------------------


def exp_gemm_timeline(fig: int, config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """Figures 7-11: pipeline timelines of the standalone OOC GEMMs."""
    specs = {
        7: ("blocking inner product, 16384x131072x114688, b=16384",
            lambda: runners.sim_inner_blocking(config, **PAPER_INNER_BLOCKING)),
        8: ("recursive inner product, 65536x131072x65536, b=16384",
            lambda: runners.sim_inner_recursive(config, **PAPER_INNER_RECURSIVE)),
        9: ("blocking outer product, 131072x16384x114688, b=16384",
            lambda: runners.sim_outer_blocking(config, **PAPER_OUTER_BLOCKING)),
        10: ("recursive outer product, 131072x65536x65536, b=8192",
             lambda: runners.sim_outer_recursive(config, **PAPER_OUTER_RECURSIVE)),
        11: ("blocking outer product with QR blocksize 8192, "
             "131072x8192x131072, tiles 32768^2",
             lambda: runners.sim_outer_blocking(
                 config, M=131072, K=8192, N=131072, blocksize=32768)),
    }
    if fig not in specs:
        raise ValidationError(f"figure must be 7..11, got {fig}")
    title, run = specs[fig]
    metrics = run()
    res = ExperimentResult(f"F{fig}", f"Figure {fig}: {title}")
    res.artifacts["timeline"] = render_timeline(
        metrics.trace, width=100, title=title
    )
    res.artifacts["summary"] = render_summary(metrics.trace)
    res.add_row("makespan", "(timeline)", fmt_s(metrics.makespan))
    res.add_row("overlap ratio", "(timeline)", f"{metrics.overlap_ratio:.2f}")

    if fig in (8, 10):
        res.add_check(
            "recursive GEMM pipeline hides nearly all transfers",
            metrics.overlap_ratio > 0.75,
        )
    if fig == 9:
        res.add_check(
            "blocking outer at b=16384 still overlaps well (paper Fig 9)",
            metrics.overlap_ratio > 0.6,
        )
    if fig == 11:
        # per-tile GEMM (paper 170 ms) is far below per-tile traffic
        # (paper 347 + 326 ms): the pipeline is transfer-bound
        res.add_check(
            "with QR blocksize 8192 the tile GEMMs can no longer hide "
            "the tile traffic (paper: 347/170/326 ms)",
            metrics.median_gemm < 0.7 * (metrics.median_h2d + metrics.median_d2h),
        )
        res.add_check(
            "per-tile times near paper's 347/170/326 ms",
            _close(metrics.median_gemm, 0.170, 0.25)
            and _close(metrics.median_h2d, 0.347, 0.25)
            and _close(metrics.median_d2h, 0.326, 0.25),
        )
    if fig == 7:
        res.add_check(
            "blocking inner pipeline is compute-bound on slow "
            "reduction-shaped GEMMs (GEMM > H2D per block)",
            metrics.median_gemm > metrics.median_h2d,
        )
    return res


# -- Figures 12-15: full QR timelines -----------------------------------------------


def exp_qr_timeline(fig: int) -> ExperimentResult:
    """Figures 12-15: end-to-end QR timelines (32 GB b=16384, 16 GB b=8192)."""
    specs = {
        12: ("blocking OOC QR, b=16384, 32 GB", "blocking", PAPER_SYSTEM, 16384),
        13: ("recursive OOC QR, b=16384, 32 GB", "recursive", PAPER_SYSTEM, 16384),
        14: ("blocking OOC QR, b=8192, 16 GB cap", "blocking", PAPER_SYSTEM_16GB, 8192),
        15: ("recursive OOC QR, b=8192, 16 GB cap", "recursive", PAPER_SYSTEM_16GB, 8192),
    }
    if fig not in specs:
        raise ValidationError(f"figure must be 12..15, got {fig}")
    title, method, config, b = specs[fig]
    result = ooc_qr(
        PAPER_MAIN_SHAPE, method=method, mode="sim", config=config,
        options=QrOptions(blocksize=b),
    )
    res = ExperimentResult(f"F{fig}", f"Figure {fig}: {title}")
    res.artifacts["timeline"] = render_timeline(result.trace, width=100, title=title)
    res.artifacts["summary"] = render_summary(result.trace)
    res.add_row("makespan", "(timeline)", fmt_s(result.makespan))
    res.add_row("achieved rate", "(timeline)", f"{result.achieved_tflops:.1f} TFLOPS")
    res.add_row("overlap ratio", "(timeline)", f"{result.trace.overlap_ratio():.2f}")
    if fig in (13, 15):
        res.add_check(
            "recursive QR keeps the compute engine mostly busy",
            result.trace.compute_time() / result.makespan > 0.65,
        )
    if fig == 14:
        # the small forced blocksize ruins blocking QR twice over: the
        # reduction-shaped inner GEMMs crawl in core and the outer tile
        # traffic can no longer hide — effective throughput collapses
        res.add_check(
            "blocking QR at 16 GB collapses below 35% of TensorCore peak",
            result.achieved_tflops * 1e12 / config.gpu.tc_peak_flops < 0.35,
        )
        res.add_check(
            "significant transfer time is exposed (overlap ratio drops)",
            result.trace.overlap_ratio() < 0.85,
        )
    return res


def run_core_experiments() -> list[ExperimentResult]:
    """Tables 1-4, the headline, and all nine figures."""
    results = [exp_table1(), exp_table2(), exp_table3(), exp_table4(), exp_headline()]
    results += [exp_gemm_timeline(f) for f in (7, 8, 9, 10, 11)]
    results += [exp_qr_timeline(f) for f in (12, 13, 14, 15)]
    return results
