"""Numerical-accuracy study of the CGS pipeline on emulated TensorCore.

The paper builds on [24] ("High accuracy matrix computations on neural
engines"), whose premise is that fp16-input/fp32-accumulate GEMMs plus
reorthogonalization keep Gram-Schmidt usable. This study measures, across
condition numbers and GEMM input formats:

* loss of orthogonality of CGS vs MGS vs CGS2 (the classic
  O(kappa^2 u) / O(kappa u) / O(u) hierarchy);
* the end-to-end OOC recursive QR's residual and orthogonality under
  fp16 / bf16 / tf32 / fp32 input rounding;
* that the OOC pipeline is numerically *identical in kind* to the in-core
  algorithm (tiling does not change the math).
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import ExperimentResult, fmt_s
from repro.bench.workloads import conditioned
from repro.config import SystemConfig
from repro.hw.gemm import Precision
from repro.hw.specs import GpuSpec
from repro.qr.api import ooc_qr
from repro.qr.cgs import (
    cgs2_qr,
    cgs_qr,
    factorization_error,
    mgs_qr,
    orthogonality_error,
)
from repro.qr.incore import incore_recursive_qr
from repro.util.units import gb, tflops


def _study_gpu() -> GpuSpec:
    """A small simulated device so the OOC paths really tile."""
    return GpuSpec(
        name="study",
        mem_bytes=2 << 20,
        tc_peak_flops=tflops(1),
        cuda_peak_flops=tflops(0.1),
        h2d_bytes_per_s=gb(1),
        d2h_bytes_per_s=gb(1),
        d2d_bytes_per_s=gb(50),
    )


def exp_numerics_study(m: int = 384, n: int = 128) -> ExperimentResult:
    """S9: orthogonality/residual across variants, kappas and formats."""
    res = ExperimentResult("S9", "CGS numerics on emulated TensorCore")

    # -- variant hierarchy across conditioning (fp32 arithmetic) ----------
    orth = {}
    for kappa in (1e2, 1e4, 1e6):
        a = conditioned(m, n, kappa=kappa, seed=int(np.log10(kappa)))
        for name, fn in (("CGS", cgs_qr), ("MGS", mgs_qr), ("CGS2", cgs2_qr)):
            q, _ = fn(a, dtype=np.float32)
            orth[(name, kappa)] = orthogonality_error(q)
        res.add_row(
            f"kappa={kappa:.0e} |QtQ-I|",
            "CGS >= MGS >= CGS2",
            f"{orth[('CGS', kappa)]:.1e} / {orth[('MGS', kappa)]:.1e} / "
            f"{orth[('CGS2', kappa)]:.1e}",
        )
    res.add_check(
        "stability hierarchy CGS >= MGS >= CGS2 holds at every kappa",
        all(
            orth[("CGS", k)] >= orth[("MGS", k)] * 0.5
            and orth[("MGS", k)] >= orth[("CGS2", k)] * 0.5
            for k in (1e2, 1e4, 1e6)
        ),
    )
    res.add_check(
        "CGS orthogonality degrades superlinearly with kappa",
        orth[("CGS", 1e6)] > 50 * orth[("CGS", 1e2)],
    )
    res.add_check(
        "CGS2 stays near machine precision even at kappa = 1e6",
        orth[("CGS2", 1e6)] < 1e-4,
    )

    # Householder reference (§3.1's stable-but-hard-to-block family)
    from repro.qr.householder import householder_qr

    ill = conditioned(m, n, kappa=1e6, seed=6)
    hh_orth = orthogonality_error(householder_qr(ill, dtype=np.float32)[0])
    cgs_orth = orthogonality_error(cgs_qr(ill, dtype=np.float32)[0])
    res.add_row("Householder |QtQ-I| at kappa=1e6", "~u (stable)",
                f"{hh_orth:.1e}", f"CGS: {cgs_orth:.1e}")
    res.add_check(
        "Householder stays orthogonal where CGS has fully degraded",
        hh_orth < 1e-4 < cgs_orth,
    )

    # -- input formats through the full OOC pipeline ----------------------
    a = conditioned(m, n, kappa=1e3, seed=9)
    fmt_err = {}
    for fmt, precision in (
        ("fp16", Precision.TC_FP16),
        ("fp32", Precision.FP32),
    ):
        config = SystemConfig(gpu=_study_gpu(), precision=precision)
        out = ooc_qr(a, method="recursive", config=config, blocksize=32)
        fmt_err[fmt] = (
            factorization_error(a, out.q, out.r),
            orthogonality_error(out.q),
        )
        res.add_row(
            f"OOC QR {fmt} residual / orth",
            "small / CGS-level (kappa^2 u)",
            f"{fmt_err[fmt][0]:.1e} / {fmt_err[fmt][1]:.1e}",
        )
    res.add_check(
        "fp16 input rounding costs ~3 digits of residual vs fp32",
        10 < fmt_err["fp16"][0] / fmt_err["fp32"][0] < 1e6,
    )
    res.add_check(
        "even fp16 keeps the residual far below 1 (usable factors)",
        fmt_err["fp16"][0] < 1e-2,
    )

    # -- tiling does not change the math -----------------------------------
    q_ic, r_ic = incore_recursive_qr(a, input_format="fp32")
    config = SystemConfig(gpu=_study_gpu(), precision=Precision.FP32)
    out = ooc_qr(a, method="recursive", config=config, blocksize=32)
    drift = float(np.abs(out.r - r_ic).max() / np.abs(r_ic).max())
    res.add_row("OOC vs in-core max |dR|/|R|", "fp32 roundoff", f"{drift:.1e}")
    res.add_check(
        "the OOC pipeline reproduces the in-core factorization to fp32 "
        "accumulation error",
        drift < 1e-4,
    )
    return res


def exp_precision_tradeoff() -> ExperimentResult:
    """S12: the accuracy/speed frontier across GEMM engines.

    The [16]/[24] precision-splitting technique recovers fp32-level GEMM
    accuracy from fp16 TensorCore at 3x the TensorCore work — still well
    ahead of CUDA-core SGEMM on a V100 (8x slower per flop). Measured two
    ways: numeric accuracy of the OOC QR on a small device, and simulated
    paper-scale time per engine.
    """
    from repro.config import PAPER_SYSTEM

    res = ExperimentResult("S12", "Precision/speed trade-off (fp16 / split / fp32)")
    a = conditioned(384, 128, kappa=1e3, seed=21)
    accuracy = {}
    for precision in (Precision.TC_FP16, Precision.TC_FP16_SPLIT3, Precision.FP32):
        config = SystemConfig(gpu=_study_gpu(), precision=precision)
        out = ooc_qr(a, method="recursive", config=config, blocksize=32)
        accuracy[precision] = factorization_error(a, out.q, out.r)
        sim_cfg = SystemConfig(
            gpu=PAPER_SYSTEM.gpu, precision=precision
        )
        sim = ooc_qr((65536, 65536), method="recursive", mode="sim",
                     config=sim_cfg, blocksize=8192)
        res.add_row(
            f"{precision.value} residual / sim time",
            "fp16 fast+rough, split3 ~3x, fp32 slowest+exact",
            f"{accuracy[precision]:.1e} / {fmt_s(sim.makespan)}",
        )
        if precision == Precision.TC_FP16:
            t_fp16 = sim.makespan
        elif precision == Precision.TC_FP16_SPLIT3:
            t_split = sim.makespan
        else:
            t_fp32 = sim.makespan

    res.add_check(
        "split3 recovers ~3 digits of residual over plain fp16",
        accuracy[Precision.TC_FP16_SPLIT3] < accuracy[Precision.TC_FP16] / 50,
    )
    res.add_check(
        "split3 accuracy is within 10x of exact fp32 GEMMs",
        accuracy[Precision.TC_FP16_SPLIT3] < 10 * accuracy[Precision.FP32],
    )
    res.add_check(
        "time ordering fp16 < split3 < fp32-on-CUDA-cores "
        "(split stays on the 8x-faster TensorCore)",
        t_fp16 < t_split < t_fp32,
    )
    res.add_check(
        "split3 costs < 3.2x fp16 end-to-end (transfers amortize the 3x "
        "compute)",
        t_split / t_fp16 < 3.2,
    )
    return res
