"""Paper-vs-measured reporting structures.

Every experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult`: labelled rows pairing the paper's published
number with our measured one, optional rendered artifacts (ASCII
timelines), and pass/fail shape checks (who wins, by roughly what factor).
EXPERIMENTS.md and the pytest benchmarks both render from these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.tables import render_table


@dataclass(frozen=True)
class Row:
    """One line of a paper-vs-measured table."""

    label: str
    paper: str
    measured: str
    note: str = ""


@dataclass(frozen=True)
class Check:
    """One qualitative reproduction criterion ("shape" assertion)."""

    description: str
    passed: bool


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    rows: list[Row] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    artifacts: dict[str, str] = field(default_factory=dict)

    def add_row(self, label: str, paper, measured, note: str = "") -> None:
        self.rows.append(Row(label, str(paper), str(measured), note))

    def add_check(self, description: str, passed: bool) -> None:
        self.checks.append(Check(description, bool(passed)))

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> list[Check]:
        return [c for c in self.checks if not c.passed]

    def render(self, *, include_artifacts: bool = True) -> str:
        """Human-readable report block."""
        parts = [f"== {self.exp_id}: {self.title} =="]
        if self.rows:
            parts.append(
                render_table(
                    ["quantity", "paper", "measured", "note"],
                    [(r.label, r.paper, r.measured, r.note) for r in self.rows],
                    align=["l", "r", "r", "l"],
                )
            )
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            parts.append(f"  [{mark}] {check.description}")
        if include_artifacts:
            for name, text in self.artifacts.items():
                parts.append(f"-- {name} --\n{text}")
        return "\n".join(parts)

    def render_markdown(self) -> str:
        """Markdown block for EXPERIMENTS.md."""
        parts = [f"### {self.exp_id} — {self.title}", ""]
        if self.rows:
            parts.append("| quantity | paper | measured | note |")
            parts.append("|---|---:|---:|---|")
            for r in self.rows:
                parts.append(f"| {r.label} | {r.paper} | {r.measured} | {r.note} |")
            parts.append("")
        for check in self.checks:
            mark = "x" if check.passed else " "
            parts.append(f"- [{mark}] {check.description}")
        for name, text in self.artifacts.items():
            parts.append("")
            parts.append(f"<details><summary>{name}</summary>")
            parts.append("")
            parts.append("```text")
            parts.append(text)
            parts.append("```")
            parts.append("</details>")
        parts.append("")
        return "\n".join(parts)


def fmt_s(seconds: float) -> str:
    """Seconds with sensible precision for report rows."""
    if seconds >= 100:
        return f"{seconds:.0f} s"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1e3:.0f} ms"


def fmt_tf(flops_per_s: float) -> str:
    """Rate in TFLOPS with one decimal, e.g. ``99.9 TFLOPS``."""
    return f"{flops_per_s / 1e12:.1f} TFLOPS"


def fmt_ratio(x: float) -> str:
    """Speedup ratio, e.g. ``1.25x``."""
    return f"{x:.2f}x"
