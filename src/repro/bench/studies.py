"""Ablations, model validation and hardware projections.

Everything in the paper's §4 implementation notes and §6 outlook that is
measurable but not a numbered table/figure:

* S2 — §4.1.3 gradual-blocksize trick (paper: ~85 -> ~87 TFLOPS on the
  largest inner product);
* S3 — §4.2 QR-level optimizations (paper: ~15% end-to-end);
* S4 — §3.2 analytic data-movement formulas vs the engines' measured
  byte counters, swept over k;
* S5 — §3.3 overlap crossovers located empirically with the simulator;
* S6 — §6 projections to A100 and RTX-class GPUs (the
  compute-to-bandwidth ratio keeps growing, so recursion keeps winning);
* S7 — the analytic predictor cross-validated against the simulator;
* S8 — the §6 LU/Cholesky future work, built and measured;
* S10 — the [3] communication lower bound + the pinned-memory ablation;
* S11 — blocksize sensitivity (the paper's concluding claim, swept);
* S13 — multi-GPU OOC GEMM scaling (§2.2's cuBLASXt/BLASX territory);
* S14 — multi-GPU TSQR panels vs Table 4's serial panel floor.

(S9 and S12, the numerics studies, live in :mod:`repro.bench.numerics`.)
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench import runners
from repro.bench.report import ExperimentResult, fmt_ratio, fmt_s, fmt_tf
from repro.bench.workloads import PAPER_INNER_RECURSIVE, PAPER_MAIN_SHAPE
from repro.config import PAPER_SYSTEM, PAPER_SYSTEM_16GB, SystemConfig
from repro.hw.specs import A100_40GB, RTX2080TI, RTX3090, V100_16GB, V100_32GB
from repro.models.movement import (
    blocking_d2h_words,
    blocking_h2d_words,
    recursive_h2d_words,
)
from repro.models.overlap import machine_balance, overlap_threshold
from repro.models.predict import predict, predicted_speedup
from repro.qr.api import ooc_qr
from repro.qr.options import QrOptions


def exp_gradual_blocksize(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S2: §4.1.3 — ramping the first chunks up from b/4 hides part of the
    first move-in; the paper gained 85 -> 87 TFLOPS on the big inner
    product."""
    res = ExperimentResult("S2", "Gradual-blocksize ablation (§4.1.3)")
    base = runners.sim_inner_recursive(config, gradual=False, **PAPER_INNER_RECURSIVE)
    ramp = runners.sim_inner_recursive(config, gradual=True, **PAPER_INNER_RECURSIVE)
    res.add_row("uniform blocksize rate", fmt_tf(85.0e12), fmt_tf(base.overall_rate))
    res.add_row("gradual blocksize rate", fmt_tf(87.0e12), fmt_tf(ramp.overall_rate))
    res.add_row("time saved", "(~300 ms)", fmt_s(base.makespan - ramp.makespan))
    res.add_check(
        "the ramp helps (paper: +2 TFLOPS on 85)",
        ramp.makespan < base.makespan,
    )
    res.add_check(
        "the gain is small but real (0.5% - 6%)",
        0.005 <= (base.makespan - ramp.makespan) / base.makespan <= 0.06,
    )
    return res


def exp_qr_level_opt(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S3: §4.2 — QR-level overlap + reuse vs phase-synchronized baseline;
    the paper credits these with ~15% on both factorizations."""
    res = ExperimentResult("S3", "QR-level optimization ablation (§4.2)")
    shape = PAPER_MAIN_SHAPE
    for method in ("recursive", "blocking"):
        on = ooc_qr(shape, method=method, mode="sim", config=config,
                    options=QrOptions(blocksize=16384))
        off = ooc_qr(shape, method=method, mode="sim", config=config,
                     options=QrOptions(blocksize=16384).all_optimizations_off())
        gain = off.makespan / on.makespan - 1.0
        res.add_row(f"{method} optimized", "(Fig 12/13)", fmt_s(on.makespan))
        res.add_row(f"{method} unoptimized", "(Fig 12/13)", fmt_s(off.makespan))
        res.add_row(f"{method} gain", "~15%", f"{gain:.0%}")
        res.add_check(
            f"{method}: QR-level optimizations give a 5% - 35% speedup "
            "(paper ~15%)",
            0.05 <= gain <= 0.35,
        )
    return res


def exp_movement_validation(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S4: §3.2 closed forms vs measured engine counters, swept over k.

    The analytic forms assume *no reuse*; the engines do reuse (that is
    §4.2), so measured volume must come in at or below the model while
    preserving the linear-vs-logarithmic growth in k.
    """
    res = ExperimentResult("S4", "Data-movement model vs measurement (§3.2)")
    m = n = 65536
    ratios = []
    for b in (16384, 8192, 4096):
        k = n // b
        opts = QrOptions(blocksize=b)
        rec = ooc_qr((m, n), method="recursive", mode="sim", config=config, options=opts)
        blk = ooc_qr((m, n), method="blocking", mode="sim", config=config, options=opts)
        eb = config.element_bytes
        model_blk = blocking_h2d_words(m, n, b) * eb
        model_rec = recursive_h2d_words(m, n, b) * eb
        res.add_row(
            f"k={k} blk H2D", f"{model_blk / 1e9:.0f} GB (model)",
            f"{blk.movement.h2d_bytes / 1e9:.0f} GB",
        )
        res.add_row(
            f"k={k} rec H2D", f"{model_rec / 1e9:.0f} GB (model)",
            f"{rec.movement.h2d_bytes / 1e9:.0f} GB",
        )
        ratios.append(blk.movement.h2d_bytes / rec.movement.h2d_bytes)
        res.add_check(
            f"k={k}: measured volumes do not exceed the no-reuse model",
            blk.movement.h2d_bytes <= model_blk * 1.02
            and rec.movement.h2d_bytes <= model_rec * 1.10,
        )
    res.add_check(
        "the blocking/recursive movement gap widens with k "
        "(linear vs logarithmic growth)",
        ratios == sorted(ratios) and ratios[-1] > ratios[0],
    )
    return res


def exp_overlap_crossover(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S5: locate the §3.3 overlap crossover empirically.

    Sweep the output dimension m of the k-split inner product: below the
    analytic threshold (4 R_g/R_m words) transfers dominate, above it the
    pipeline turns compute-bound. The empirical crossover must straddle the
    analytic one. (The analytic form uses peak R_g; the simulator's
    shape-dependent GEMM rate shifts the measured crossover somewhat
    lower.)
    """
    res = ExperimentResult("S5", "Overlap crossover (§3.3)")
    threshold = overlap_threshold(config.gpu, streams_both_operands=True,
                                  element_bytes=config.element_bytes)
    res.add_row("analytic threshold m*", "30,000 (paper, 90 TF/12 GB/s)",
                f"{threshold:,.0f}", f"{config.gpu.name} rates")
    res.add_row(
        "machine balance", "4 R_g/R_m words",
        f"{machine_balance(config.gpu, config.element_bytes):,.0f} flops/element",
    )

    compute_bound_at = None
    transfer_bound_at = None
    for m in (2048, 4096, 8192, 16384, 32768, 65536):
        run = runners.sim_inner_recursive(
            config, K=131072, M=m, N=m, blocksize=8192
        )
        compute_frac = run.gemm_busy / run.makespan
        res.add_row(f"m={m} compute fraction", "", f"{compute_frac:.2f}",
                    f"rate {run.overall_rate / 1e12:.1f} TF")
        if compute_frac < 0.5:
            transfer_bound_at = m
        # ~0.75 rather than ~1.0: the final M x M C move-out of a
        # standalone inner product can never overlap, capping the fraction
        if compute_frac > 0.75 and compute_bound_at is None:
            compute_bound_at = m
    res.add_check(
        "small m is transfer-bound, large m compute-bound",
        transfer_bound_at is not None and compute_bound_at is not None
        and transfer_bound_at < compute_bound_at,
    )
    res.add_check(
        "the empirical crossover brackets the analytic threshold's "
        "order of magnitude",
        compute_bound_at is not None
        and threshold / 8 <= compute_bound_at <= threshold * 4,
    )
    return res


def exp_future_hardware() -> ExperimentResult:
    """S6: §6 projections — the faster the TensorCore relative to PCIe,
    the bigger the recursive advantage (A100 > V100; small-memory RTX
    cards gain from recursion's insensitivity to blocksize)."""
    res = ExperimentResult("S6", "Hardware projections (§6)")
    m = n = 131072
    speedups = {}
    for spec, b in (
        (V100_32GB, 16384),
        (V100_16GB, 8192),
        (A100_40GB, 16384),
        (RTX3090, 8192),
        (RTX2080TI, 4096),
    ):
        config = SystemConfig(gpu=spec)
        s_analytic = predicted_speedup(config, m, n, b)
        rec = ooc_qr((m, n), method="recursive", mode="sim", config=config,
                     options=QrOptions(blocksize=b))
        blk = ooc_qr((m, n), method="blocking", mode="sim", config=config,
                     options=QrOptions(blocksize=b))
        s_sim = blk.makespan / rec.makespan
        speedups[spec.name] = s_sim
        res.add_row(
            f"{spec.name} (b={b})",
            f"{s_analytic:.2f}x (analytic)",
            fmt_ratio(s_sim),
            f"balance {machine_balance(spec):,.0f} flops/word",
        )
    res.add_check(
        "recursion wins on every projected GPU",
        all(s > 1.0 for s in speedups.values()),
    )
    res.add_check(
        "A100 (higher compute/bandwidth ratio) gains at least as much as "
        "the V100 (paper §6's prediction)",
        speedups[A100_40GB.name] >= speedups[V100_32GB.name] * 0.95,
    )
    res.add_check(
        "memory-starved cards gain more than the 32 GB V100",
        speedups[V100_16GB.name] > speedups[V100_32GB.name]
        and speedups[RTX2080TI.name] > speedups[V100_32GB.name],
    )
    return res


def exp_prediction_accuracy(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S7: the analytic predictor (a lower bound) tracks the simulator."""
    res = ExperimentResult("S7", "Analytic predictor vs simulator")
    for shape, b in ((PAPER_MAIN_SHAPE, 16384), ((65536, 65536), 8192)):
        for method in ("recursive", "blocking"):
            pred = predict(config, shape[0], shape[1], b, method).total_s
            sim = ooc_qr(shape, method=method, mode="sim", config=config,
                         options=QrOptions(blocksize=b)).makespan
            res.add_row(
                f"{shape[0]}x{shape[1]} {method}",
                f"{fmt_s(pred)} (analytic)", fmt_s(sim),
            )
            res.add_check(
                f"{shape[0]}x{shape[1]} {method}: simulator within "
                "[-10%, +45%] of the lower-bound predictor",
                0.90 * pred <= sim <= 1.45 * pred,
            )
    return res


def exp_lu_cholesky_extension() -> ExperimentResult:
    """S8: §6 future work, built — OOC LU and Cholesky, both variants.

    The paper predicts recursion "can definitely help" LU/Cholesky because
    their trailing updates are outer-product-form too, but leaves them
    unimplemented. We build them (on the same engines, plus an OOC TRSM for
    recursive LU's U12 solve) and measure: at the 32 GB / b = 16384 corner
    the blocking variants already overlap their tile traffic (recursion
    buys nothing — consistent with the paper's own finding that b = 16384
    suffices for the *outer-product* GEMM type), while under the 16 GB /
    b = 8192 memory pressure of §5.2, recursion wins for both
    factorizations, as it does for QR.
    """
    from repro.factor import ooc_cholesky, ooc_lu

    res = ExperimentResult("S8", "OOC LU & Cholesky extension (§6 future work)")
    shape = PAPER_MAIN_SHAPE
    speedups = {}
    for label, cfg, b in (("32GB b=16384", PAPER_SYSTEM, 16384),
                          ("16GB b=8192", PAPER_SYSTEM_16GB, 8192)):
        for kind, fn in (("LU", ooc_lu), ("Cholesky", ooc_cholesky)):
            rec = fn(shape, method="recursive", mode="sim", config=cfg, blocksize=b)
            blk = fn(shape, method="blocking", mode="sim", config=cfg, blocksize=b)
            s = blk.makespan / rec.makespan
            speedups[(kind, label)] = s
            res.add_row(
                f"{kind} {label} speedup",
                "(unmeasured in paper)",
                fmt_ratio(s),
                f"rec {fmt_s(rec.makespan)} vs blk {fmt_s(blk.makespan)}",
            )
    res.add_check(
        "under §5.2's memory pressure, recursion wins for both LU and "
        "Cholesky (the paper's §6 prediction)",
        speedups[("LU", "16GB b=8192")] > 1.1
        and speedups[("Cholesky", "16GB b=8192")] > 1.1,
    )
    res.add_check(
        "the advantage grows when memory shrinks, as for QR",
        speedups[("LU", "16GB b=8192")] > speedups[("LU", "32GB b=16384")]
        and speedups[("Cholesky", "16GB b=8192")]
        > speedups[("Cholesky", "32GB b=16384")],
    )
    res.add_check(
        "at 32 GB / b=16384 blocking's already-overlapped tile updates keep "
        "it competitive (no false recursive win)",
        0.8 <= speedups[("LU", "32GB b=16384")] <= 1.2,
    )
    return res


def exp_communication_analysis() -> ExperimentResult:
    """S10: measured traffic vs the [3] lower bound, and the pinned-memory
    ablation.

    The paper's §1 frames OOC design with the Ω(#flops/√M) communication
    lower bound; here we place both algorithms' measured H2D+D2H traffic
    against it (recursion lands within a small constant of the bound), and
    quantify how much of the headline depends on pinned transfers (§3.3
    computes its crossovers "if using pinned memory").
    """
    from dataclasses import replace as dc_replace

    from repro.models.bounds import (
        movement_optimality_ratio,
        qr_lower_bound_bytes,
    )

    res = ExperimentResult("S10", "Communication bound + pinned-memory ablation")
    m, n = PAPER_MAIN_SHAPE
    config = PAPER_SYSTEM
    bound = qr_lower_bound_bytes(config, m, n)
    res.add_row("Ω(#flops/√M) bound", "[3], §1", f"{bound / 1e9:.0f} GB")

    ratios = {}
    for method in ("recursive", "blocking"):
        run = ooc_qr((m, n), method=method, mode="sim", config=config,
                     options=QrOptions(blocksize=16384))
        ratios[method] = movement_optimality_ratio(
            config, m, n, run.movement.total_bytes
        )
        res.add_row(
            f"{method} traffic / bound",
            "small constant",
            f"{ratios[method]:.1f}x",
            f"{run.movement.total_bytes / 1e9:.0f} GB moved",
        )
    res.add_check(
        "recursive traffic is within 10x of the asymptotic lower bound",
        ratios["recursive"] < 10.0,
    )
    res.add_check(
        "recursive sits closer to the bound than blocking",
        ratios["recursive"] < ratios["blocking"],
    )

    times = {}
    for pinned in (True, False):
        cfg = dc_replace(config, pinned=pinned)
        run = ooc_qr((m, n), method="recursive", mode="sim", config=cfg,
                     options=QrOptions(blocksize=16384))
        times[pinned] = run.makespan
        res.add_row(
            f"recursive QR, {'pinned' if pinned else 'pageable'} transfers",
            "pinned ~2x pageable BW",
            fmt_s(run.makespan),
        )
    res.add_check(
        "pageable transfers slow the factorization materially "
        "(pinned staging is load-bearing)",
        times[False] > 1.15 * times[True],
    )
    return res


def exp_blocksize_sensitivity(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S11: the paper's conclusion, swept — "the GEMMs in recursive QR
    factorization is insensitive to the blocksize ... while the GEMMs in
    conventional blocking QR cannot run at peak ... due to the fixed
    blocksize".

    Sweeps the QR blocksize at fixed problem size and machine: blocking's
    time balloons as b shrinks (reduction-shaped inner GEMMs + unhidden
    tile traffic, and Θ(k·mn) movement with k = n/b), while recursive time
    stays nearly flat (its big GEMMs don't depend on b).
    """
    res = ExperimentResult("S11", "Blocksize sensitivity (§6 conclusion)")
    m, n = 65536, 65536
    times = {"recursive": {}, "blocking": {}}
    for b in (16384, 8192, 4096, 2048):
        for method in times:
            run = ooc_qr((m, n), method=method, mode="sim", config=config,
                         options=QrOptions(blocksize=b))
            times[method][b] = run.makespan
        res.add_row(
            f"b={b}",
            "blocking degrades, recursive flat",
            f"rec {fmt_s(times['recursive'][b])} / "
            f"blk {fmt_s(times['blocking'][b])}",
            f"speedup {times['blocking'][b] / times['recursive'][b]:.2f}x",
        )
    rec_spread = max(times["recursive"].values()) / min(times["recursive"].values())
    blk_growth = times["blocking"][2048] / times["blocking"][16384]
    res.add_row("recursive max/min over sweep", "~1", f"{rec_spread:.2f}x")
    res.add_row("blocking t(2048)/t(16384)", ">> 1", f"{blk_growth:.2f}x")
    res.add_check(
        "recursive time varies < 35% across an 8x blocksize range",
        rec_spread < 1.35,
    )
    res.add_check(
        "blocking slows > 1.8x when the blocksize shrinks 8x",
        blk_growth > 1.8,
    )
    res.add_check(
        "the recursive advantage grows monotonically as b shrinks",
        all(
            times["blocking"][b2] / times["recursive"][b2]
            >= times["blocking"][b1] / times["recursive"][b1] - 0.05
            for b1, b2 in ((16384, 8192), (8192, 4096), (4096, 2048))
        ),
    )
    return res


def exp_multi_gpu_scaling(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S13: multi-GPU OOC GEMM scaling (§2.2's cuBLASXt/BLASX territory).

    Naive output-column splitting re-reads the shared operand on every
    device, so aggregate traffic grows with the GPU count: with independent
    PCIe links scaling is sub-linear; behind one shared host link it
    *collapses* — which is precisely the problem BLASX's tile caching (and
    this paper's single-GPU data-movement discipline) exists to solve.
    """
    from repro.multi import scaling_sweep

    res = ExperimentResult("S13", "Multi-GPU OOC GEMM scaling (§2.2)")
    kwargs = dict(kind="inner", M=32768, N=65536, K=65536, blocksize=8192)
    results = {}
    for shared in (False, True):
        sweep = scaling_sweep(config, gpu_counts=(1, 2, 4, 8),
                              shared_link=shared, **kwargs)
        results[shared] = sweep
        label = "shared link" if shared else "own links"
        for g, r in sweep.items():
            res.add_row(
                f"{label}, {g} GPU{'s' if g > 1 else ''}",
                "sub-linear (redundant A reads)" if not shared
                else "collapses (host bottleneck)",
                f"{fmt_s(r.makespan)} ({r.speedup_over(sweep[1]):.2f}x)",
                f"{r.total_h2d_bytes / 1e9:.0f} GB total in",
            )
    own, shared_res = results[False], results[True]
    res.add_check(
        "with independent links, 4 GPUs give a real but sub-linear speedup",
        1.5 <= own[4].speedup_over(own[1]) <= 4.0,
    )
    res.add_check(
        "aggregate H2D traffic grows with GPU count (the shared operand is "
        "re-read per device — BLASX's motivating waste)",
        own[8].total_h2d_bytes > 2 * own[1].total_h2d_bytes,
    )
    res.add_check(
        "behind one shared host link, adding GPUs stops helping",
        shared_res[8].speedup_over(shared_res[1]) < 1.2,
    )
    res.add_check(
        "per-device results are identical across link models in compute",
        own[1].total_flops == shared_res[1].total_flops,
    )
    return res


def exp_multi_gpu_panel(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S14: multi-GPU TSQR panels vs the Table-4 panel bottleneck.

    Panel factorization is the serial floor of both OOC algorithms (Table 4
    charges it identically to both). TSQR splits a panel across devices;
    the sweep shows the regime split: skinny panels approach linear scaling
    (the tree reduction is negligible), while at the paper's fat b = 8192
    panels the (2b x b) reduction QRs eat the gain — multi-GPU TSQR is not
    the fix for the paper's configuration, only for skinny-panel variants.
    """
    from repro.multi import panel_scaling_sweep

    res = ExperimentResult("S14", "Multi-GPU TSQR panels (Table 4's serial floor)")
    speedups = {}
    for b in (1024, 8192):
        sweep = panel_scaling_sweep(
            config, m=131072, b=b, gpu_counts=(1, 2, 4), shared_link=False
        )
        for g, r in sweep.items():
            s = r.speedup_over(sweep[1])
            speedups[(b, g)] = s
            res.add_row(
                f"b={b}, {g} GPU{'s' if g > 1 else ''}",
                "skinny scales, fat hits the tree",
                f"{fmt_s(r.makespan)} ({s:.2f}x)",
                f"tree {fmt_s(r.tree_phase)}",
            )
    res.add_check(
        "skinny panels (b=1024) scale well on 4 GPUs (> 2.5x)",
        speedups[(1024, 4)] > 2.5,
    )
    res.add_check(
        "the paper's fat panels (b=8192) fall far short of the 4x ideal "
        "(< 2x on 4 GPUs): the reduction tree becomes the bottleneck",
        speedups[(8192, 4)] < 2.0,
    )
    res.add_check(
        "the fat-panel tree phase is comparable to the local phase",
        speedups[(8192, 4)] < 0.7 * speedups[(1024, 4)],
    )
    res.add_check(
        "scaling is monotone in GPU count for skinny panels",
        speedups[(1024, 2)] <= speedups[(1024, 4)],
    )
    return res


def run_studies() -> list[ExperimentResult]:
    """S2-S8, S10-S14 (S9/S12 live in bench.numerics)."""
    return [
        exp_gradual_blocksize(),
        exp_qr_level_opt(),
        exp_movement_validation(),
        exp_overlap_crossover(),
        exp_future_hardware(),
        exp_prediction_accuracy(),
        exp_lu_cholesky_extension(),
        exp_communication_analysis(),
        exp_blocksize_sensitivity(),
        exp_multi_gpu_scaling(),
        exp_multi_gpu_panel(),
    ]
