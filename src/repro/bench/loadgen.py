"""Open-loop serve load generator: Poisson arrivals, latency percentiles.

Drives the factorization service (docs/serve.md) the way a capacity test
drives a real endpoint: job arrivals follow a Poisson process whose rate
is fixed *in advance* and never slows down because the service is busy
(an **open loop** — closed-loop generators that wait for completions
before submitting hide queueing collapse, the "coordinated omission"
trap). Rejected submissions (queue saturated, footprint over budget) are
counted, not retried: under overload the right signal is goodput
dropping below the offered rate, not a generator that politely backs
off.

Latency percentiles come straight from the service's own ``turnaround_s``
histogram — the same numbers its metrics snapshot API exports — so the
benchmark measures what operators would see. Results serialize to
``BENCH_serve.json`` (schema below) for CI trend tracking::

    PYTHONPATH=src python -m repro.bench.loadgen          # writes ./BENCH_serve.json
    python -m repro loadgen --jobs 40 --rate 200          # CLI front-end

Pass a :class:`~repro.obs.span.SpanRecorder` to also capture the per-job
span trees (admission, queue wait, attempts) and export them as a Chrome
trace via :func:`repro.obs.export.spans_to_chrome_trace`.
"""

from __future__ import annotations

import json
from repro.obs import clock as _clock  # pacing sleeps + clock reads
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.concurrency import bench_spec
from repro.bench.serve import synthetic_workload
from repro.config import SystemConfig
from repro.errors import AdmissionError, ReproError, ValidationError
from repro.hw.gemm import Precision
from repro.obs.clock import monotonic as _monotonic
from repro.obs.span import SpanRecorder
from repro.serve.service import FactorService
from repro.util.rng import default_rng
from repro.util.tables import render_kv

#: Bumped whenever the BENCH_serve.json layout changes shape.
SCHEMA_VERSION = 1

#: Keys of the ``latency_s`` block, in emitted order.
LATENCY_KEYS = ("p50", "p90", "p99", "mean", "max")


@dataclass
class LoadgenResult:
    """Everything one load-generator run measured.

    ``to_json`` is the persisted form; the field layout mirrors it so
    tests can assert on either.
    """

    params: dict[str, Any]
    submitted: int
    completed: int
    rejected: int
    failed: int
    latency_s: dict[str, float]
    wall_s: float
    #: Full service metrics snapshot (``FactorService.snapshot_metrics``).
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def goodput_jobs_s(self) -> float:
        """Successfully completed jobs per second of wall time."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> dict[str, Any]:
        """The ``BENCH_serve.json`` document (plain JSON-able dict)."""
        return {
            "bench": "serve-loadgen",
            "schema_version": SCHEMA_VERSION,
            "generated_by": "repro.bench.loadgen",
            "params": dict(self.params),
            "jobs": {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "failed": self.failed,
            },
            "latency_s": {k: self.latency_s[k] for k in LATENCY_KEYS},
            "goodput_jobs_s": self.goodput_jobs_s,
            "wall_s": self.wall_s,
            "metrics": self.metrics,
        }

    def write(self, path: str | Path) -> Path:
        """Persist :meth:`to_json` to *path*; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def render(self) -> str:
        """Human-readable run summary."""
        lat = self.latency_s
        return render_kv(
            [
                ("offered rate", f"{self.params['rate_jobs_s']:.1f} jobs/s"),
                ("submitted", self.submitted),
                ("completed", self.completed),
                ("rejected", self.rejected),
                ("failed", self.failed),
                ("goodput", f"{self.goodput_jobs_s:.1f} jobs/s"),
                ("wall", f"{self.wall_s * 1e3:.1f} ms"),
                ("latency p50", f"{lat['p50'] * 1e3:.1f} ms"),
                ("latency p90", f"{lat['p90'] * 1e3:.1f} ms"),
                ("latency p99", f"{lat['p99'] * 1e3:.1f} ms"),
            ],
            title=f"loadgen: {self.params['n_jobs']} jobs, "
            f"workers={self.params['workers']}, "
            f"mix={'/'.join(self.params['mix'])}",
        )


def arrival_schedule(
    n_jobs: int, rate_jobs_s: float, *, seed: int = 0
) -> list[float]:
    """Poisson arrival offsets (seconds from t0) for *n_jobs* at the given
    mean rate: cumulative sums of exponential interarrival gaps."""
    if n_jobs < 0:
        raise ValidationError(f"n_jobs must be non-negative, got {n_jobs}")
    if rate_jobs_s <= 0:
        raise ValidationError(f"rate_jobs_s must be > 0, got {rate_jobs_s}")
    rng = default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_jobs_s, size=n_jobs)
    out, t = [], 0.0
    for gap in gaps:
        t += float(gap)
        out.append(t)
    return out


def run_loadgen(
    n_jobs: int = 32,
    *,
    rate_jobs_s: float = 200.0,
    workers: int = 2,
    size: int = 64,
    blocksize: int = 32,
    seed: int = 0,
    mix: tuple[str, ...] = ("qr", "gemm", "lu", "cholesky"),
    job_concurrency: str = "serial",
    config: SystemConfig | None = None,
    obs: SpanRecorder | None = None,
) -> LoadgenResult:
    """Run one open-loop load test against a fresh service instance.

    Submissions are paced by the precomputed Poisson schedule regardless
    of completions; after the last arrival the service drains. Latency
    aggregates are read from the service's metrics snapshot, goodput and
    wall time from this function's own clock.
    """
    config = config or SystemConfig(gpu=bench_spec(), precision=Precision.FP32)
    specs = synthetic_workload(
        n_jobs, size=size, blocksize=blocksize, seed=seed, kinds=mix
    )
    arrivals = arrival_schedule(n_jobs, rate_jobs_s, seed=seed + 1)
    svc = FactorService(
        config,
        n_workers=workers,
        queue_limit=max(n_jobs, 1),
        cache=None,  # capacity test: every admitted job really runs
        job_concurrency=job_concurrency,
        obs=obs,
    )
    submitted = rejected = failed = 0
    handles = []
    try:
        t0 = _monotonic()
        for spec, due in zip(specs, arrivals):
            lag = due - (_monotonic() - t0)
            if lag > 0:
                _clock.sleep(lag)
            try:
                handles.append(svc.submit(spec))
                submitted += 1
            except AdmissionError:
                rejected += 1
        svc.drain(timeout=600)
        for handle in handles:
            try:
                handle.result(timeout=600)
            except ReproError:
                failed += 1
        wall_s = _monotonic() - t0
        snap = svc.snapshot_metrics()
    finally:
        svc.close()
    turnaround = snap.get("turnaround_s", {})
    latency = {k: float(turnaround.get(k, 0.0)) for k in LATENCY_KEYS}
    return LoadgenResult(
        params={
            "n_jobs": n_jobs,
            "rate_jobs_s": rate_jobs_s,
            "workers": workers,
            "size": size,
            "blocksize": blocksize,
            "seed": seed,
            "mix": list(mix),
            "job_concurrency": job_concurrency,
        },
        submitted=submitted,
        completed=submitted - failed,
        rejected=rejected,
        failed=failed,
        latency_s=latency,
        wall_s=wall_s,
        metrics=snap,
    )


if __name__ == "__main__":  # pragma: no cover - manual benchmark entry
    result = run_loadgen()
    print(result.render())
    print(f"wrote {result.write('BENCH_serve.json')}")
