"""Benchmark/experiment harness: regenerates every table and figure of the
paper's evaluation section plus the ablations and §6 projections."""

from repro.bench.experiments import (
    PAPER,
    exp_gemm_timeline,
    exp_headline,
    exp_qr_timeline,
    exp_table1,
    exp_table2,
    exp_table3,
    exp_table4,
    run_core_experiments,
)
from repro.bench.numerics import exp_numerics_study, exp_precision_tradeoff
from repro.bench.report import Check, ExperimentResult, Row
from repro.bench.studies import (
    exp_blocksize_sensitivity,
    exp_communication_analysis,
    exp_future_hardware,
    exp_lu_cholesky_extension,
    exp_gradual_blocksize,
    exp_movement_validation,
    exp_multi_gpu_panel,
    exp_multi_gpu_scaling,
    exp_overlap_crossover,
    exp_prediction_accuracy,
    exp_qr_level_opt,
    run_studies,
)

__all__ = [
    "Check",
    "ExperimentResult",
    "PAPER",
    "Row",
    "exp_blocksize_sensitivity",
    "exp_communication_analysis",
    "exp_future_hardware",
    "exp_lu_cholesky_extension",
    "exp_gemm_timeline",
    "exp_gradual_blocksize",
    "exp_headline",
    "exp_movement_validation",
    "exp_multi_gpu_panel",
    "exp_multi_gpu_scaling",
    "exp_numerics_study",
    "exp_precision_tradeoff",
    "exp_overlap_crossover",
    "exp_prediction_accuracy",
    "exp_qr_level_opt",
    "exp_qr_timeline",
    "exp_table1",
    "exp_table2",
    "exp_table3",
    "exp_table4",
    "run_core_experiments",
    "run_studies",
]


def run_all() -> list[ExperimentResult]:
    """Every experiment: tables, figures, ablations, projections, studies."""
    return (
        run_core_experiments()
        + run_studies()
        + [exp_numerics_study(), exp_precision_tradeoff()]
    )
