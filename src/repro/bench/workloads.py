"""Workload generators: test matrices with controlled properties.

Numeric-mode experiments need matrices whose conditioning is known (CGS
orthogonality loss scales with kappa^2), and simulated-mode experiments
need the paper's problem shapes. Everything is seeded through
:func:`repro.util.rng.default_rng` for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.util.rng import default_rng
from repro.util.validation import positive_int


def random_tall(m: int, n: int, *, seed: int | None = None) -> np.ndarray:
    """A well-conditioned random tall matrix (i.i.d. Gaussian), fp32."""
    m, n = positive_int(m, "m"), positive_int(n, "n")
    if m < n:
        raise ValidationError(f"need m >= n, got {m}x{n}")
    rng = default_rng(seed)
    return rng.standard_normal((m, n)).astype(np.float32)


def conditioned(
    m: int, n: int, kappa: float, *, seed: int | None = None
) -> np.ndarray:
    """A tall matrix with 2-norm condition number ~*kappa*.

    Built as U diag(s) Vᵀ with geometrically graded singular values — the
    standard stress test for Gram-Schmidt orthogonality loss.
    """
    m, n = positive_int(m, "m"), positive_int(n, "n")
    if m < n:
        raise ValidationError(f"need m >= n, got {m}x{n}")
    if kappa < 1:
        raise ValidationError(f"kappa must be >= 1, got {kappa}")
    rng = default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = np.geomspace(1.0, 1.0 / kappa, n)
    return (u * s) @ v.T.astype(np.float64).astype(np.float32)


def graded_columns(
    m: int, n: int, *, decay: float = 0.5, seed: int | None = None
) -> np.ndarray:
    """Random matrix whose column norms decay geometrically by *decay* —
    exercises the scaling robustness of the panel factorization."""
    a = random_tall(m, n, seed=seed)
    scales = (decay ** np.arange(n)).astype(np.float32)
    return a * scales


def near_dependent(
    m: int, n: int, *, eps: float = 1e-4, seed: int | None = None
) -> np.ndarray:
    """Each column is the previous one plus eps-sized noise — nearly
    rank-one, the adversarial case for classic Gram-Schmidt."""
    m, n = positive_int(m, "m"), positive_int(n, "n")
    rng = default_rng(seed)
    base = rng.standard_normal(m).astype(np.float32)
    cols = [base]
    for _ in range(n - 1):
        cols.append(cols[-1] + eps * rng.standard_normal(m).astype(np.float32))
    return np.stack(cols, axis=1)


def least_squares_problem(
    m: int, n: int, *, noise: float = 1e-3, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """An overdetermined LS problem (A, b, x_true) with b = A x_true + noise."""
    a = random_tall(m, n, seed=seed)
    rng = default_rng(None if seed is None else seed + 1)
    x_true = rng.standard_normal(n).astype(np.float32)
    b = a @ x_true + noise * rng.standard_normal(m).astype(np.float32)
    return a, b, x_true


# -- the paper's evaluation shapes -------------------------------------------------

#: §5.2 main problem.
PAPER_MAIN_SHAPE = (131072, 131072)
#: Table 4 extra shapes.
PAPER_SQUARE_SHAPE = (65536, 65536)
PAPER_TALL_SHAPE = (262144, 65536)
#: Table 1 inner-product GEMMs (m x k x n in the paper's ordering).
PAPER_INNER_RECURSIVE = dict(K=131072, M=65536, N=65536, blocksize=16384)
PAPER_INNER_BLOCKING = dict(K=131072, M=16384, N=114688, blocksize=16384)
#: Table 2 outer-product GEMMs.
PAPER_OUTER_RECURSIVE = dict(M=131072, K=65536, N=65536, blocksize=8192)
PAPER_OUTER_BLOCKING = dict(M=131072, K=16384, N=114688, blocksize=16384)
