"""S15 — multi-device CAQR scaling bench and ``BENCH_dist.json``.

Sweeps the ``repro.dist`` simulated device pool over 1..64 devices on a
paper-size tall-skinny panel (the Table 4 regime: m in the millions,
b-width columns), records modeled makespan / speedup / per-device peak
memory / communication against the Demmel et al. lower bound, and
persists a fixed-key-order JSON document for CI trend tracking::

    PYTHONPATH=src python -m repro.bench.dist    # writes ./BENCH_dist.json

The binomial tree is the headline (meets the CAQR bound within the
documented 1.25x packed-triangle slack and gives >= 6x at 8 devices);
the flat tree rides along as the instructive bound-violating baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.report import ExperimentResult, fmt_s
from repro.config import PAPER_SYSTEM, SystemConfig
from repro.dist.sim import DistSimResult, dist_scaling_sweep
from repro.dist.tree import CAQR_SLACK
from repro.errors import ValidationError
from repro.util.tables import render_kv

#: Bumped whenever the BENCH_dist.json layout changes shape.
SCHEMA_VERSION = 1

#: Device counts of the standard sweep (1 is the speedup baseline).
DEVICE_COUNTS = (1, 8, 16, 32, 64)

#: Paper-size tall-skinny panel: 2^20 rows, b = 1024 columns. Large
#: enough that per-device slab traffic dominates fixed costs — the shape
#: where the >= 6x-at-8-devices acceptance bar is measured.
PAPER_TS_SHAPE = (1_048_576, 1_024)

#: Keys of each per-device-count row, in emitted order.
ROW_KEYS = (
    "n_devices",
    "makespan_s",
    "speedup",
    "verified",
    "peak_bytes_per_device",
    "transfer_bytes",
    "caqr_ratio",
    "meets_bound",
)


@dataclass
class DistBenchResult:
    """One scaling sweep, JSON-able with a fixed key order."""

    params: dict[str, Any]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "bench": "dist-scaling",
            "schema_version": SCHEMA_VERSION,
            "generated_by": "repro.bench.dist",
            "params": dict(self.params),
            "caqr_slack": CAQR_SLACK,
            "rows": [{k: row[k] for k in ROW_KEYS} for row in self.rows],
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def row_for(self, n_devices: int) -> dict[str, Any]:
        for row in self.rows:
            if row["n_devices"] == n_devices:
                return row
        raise ValidationError(f"no sweep row for {n_devices} devices")

    def render(self) -> str:
        pairs = []
        for row in self.rows:
            pairs.append(
                (
                    f"{row['n_devices']} device"
                    + ("s" if row["n_devices"] > 1 else ""),
                    f"{fmt_s(row['makespan_s'])} ({row['speedup']:.2f}x, "
                    f"caqr {row['caqr_ratio']:.3f})",
                )
            )
        return render_kv(
            pairs,
            title=f"dist sweep: {self.params['m']}x{self.params['n']} "
            f"{self.params['tree']} tree",
        )


def _row(result: DistSimResult, baseline: DistSimResult) -> dict[str, Any]:
    return {
        "n_devices": result.n_devices,
        "makespan_s": result.makespan,
        "speedup": result.speedup_over(baseline),
        "verified": result.all_verified,
        "peak_bytes_per_device": result.peak_bytes,
        "transfer_bytes": result.transfer_bytes,
        "caqr_ratio": result.comm.caqr_ratio,
        "meets_bound": result.comm.meets_bound,
    }


def run_dist_bench(
    config: SystemConfig = PAPER_SYSTEM,
    *,
    m: int = PAPER_TS_SHAPE[0],
    n: int = PAPER_TS_SHAPE[1],
    device_counts: tuple[int, ...] = DEVICE_COUNTS,
    tree: str = "binomial",
) -> DistBenchResult:
    """Run the scaling sweep and assemble the persisted document."""
    sweep = dist_scaling_sweep(
        config, m=m, n=n, device_counts=device_counts, tree=tree
    )
    baseline = sweep[min(sweep)]
    result = DistBenchResult(
        params={
            "m": m,
            "n": n,
            "tree": tree,
            "device_counts": list(device_counts),
            "gpu": config.gpu.name,
        }
    )
    for p in sorted(sweep):
        result.rows.append(_row(sweep[p], baseline))
    return result


def exp_dist_scaling(config: SystemConfig = PAPER_SYSTEM) -> ExperimentResult:
    """S15: multi-device CAQR scaling on a paper-size tall-skinny panel.

    The acceptance bar of the ``repro.dist`` tentpole: every per-device
    program verifies clean, the binomial tree's measured panel
    communication stays within :data:`~repro.dist.tree.CAQR_SLACK` of
    the Demmel et al. lower bound, and 8 devices deliver at least 6x
    over one.
    """
    bench = run_dist_bench(config)
    res = ExperimentResult(
        "S15", "Multi-device CAQR scaling (repro.dist, binomial tree)"
    )
    for row in bench.rows:
        res.add_row(
            f"{row['n_devices']} device" + ("s" if row["n_devices"] > 1 else ""),
            "comm-optimal tree scaling",
            f"{fmt_s(row['makespan_s'])} ({row['speedup']:.2f}x)",
            f"caqr {row['caqr_ratio']:.3f}, "
            f"peak {row['peak_bytes_per_device'] / 1e9:.2f} GB/dev",
        )
    res.add_check(
        "every per-device program verifies clean (races, lifetimes, budget)",
        all(row["verified"] for row in bench.rows),
    )
    res.add_check(
        "8 devices give >= 6x over one on the paper-size panel",
        bench.row_for(8)["speedup"] >= 6.0,
    )
    res.add_check(
        f"binomial panel communication within {CAQR_SLACK}x of the CAQR "
        "lower bound at every device count",
        all(row["meets_bound"] for row in bench.rows if row["n_devices"] > 1),
    )
    res.add_check(
        "speedup keeps growing through 64 devices",
        bench.row_for(64)["speedup"] > bench.row_for(8)["speedup"],
    )
    flat = run_dist_bench(config, device_counts=(1, 8), tree="flat")
    res.add_row(
        "flat tree, 8 devices",
        "violates bound (root hotspot)",
        f"caqr {flat.row_for(8)['caqr_ratio']:.3f}",
        "the non-optimal baseline",
    )
    res.add_check(
        "flat tree exceeds the bound at 8 devices (negative control)",
        not flat.row_for(8)["meets_bound"],
    )
    return res


def main(out: str = "BENCH_dist.json") -> DistBenchResult:
    """Run the standard sweep, print it, and persist *out*."""
    result = run_dist_bench()
    print(result.render())
    print(f"wrote {result.write(out)}")
    return result


if __name__ == "__main__":
    main()


__all__ = [
    "DEVICE_COUNTS",
    "DistBenchResult",
    "PAPER_TS_SHAPE",
    "ROW_KEYS",
    "SCHEMA_VERSION",
    "exp_dist_scaling",
    "main",
    "run_dist_bench",
]
