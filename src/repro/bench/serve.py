"""Wall-clock benchmark of the factorization service (docs/serve.md).

Drives a synthetic mixed QR/GEMM/LU/Cholesky workload through
:class:`~repro.serve.service.FactorService` at several worker counts and
compares against the serial baseline (the same jobs run back-to-back with
no service at all). Reports throughput and p50/p99 latencies straight from
the service's metrics registry. numpy kernels release the GIL, so worker
threads genuinely overlap on a multi-core host.

Used by ``tests/test_bench_serve.py`` (smoke + the REPRO_PERF-gated
speedup assertion) and runnable directly::

    PYTHONPATH=src python -m repro.bench.serve
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.concurrency import bench_spec
from repro.config import SystemConfig
from repro.errors import ValidationError
from repro.hw.gemm import Precision
from repro.obs.clock import monotonic as _monotonic
from repro.qr.options import QrOptions
from repro.serve.job import JobSpec
from repro.serve.service import FactorService, run_job
from repro.util.rng import default_rng
from repro.util.tables import render_table


def synthetic_workload(
    n_jobs: int,
    *,
    size: int = 96,
    blocksize: int = 32,
    seed: int = 0,
    kinds: tuple[str, ...] = ("qr", "gemm", "lu", "cholesky"),
) -> list[JobSpec]:
    """A deterministic mixed stream of numeric jobs, round-robin over
    *kinds*, with shapes jittered around *size* so footprints differ."""
    from repro.factor.incore import diagonally_dominant, spd_matrix

    if not kinds:
        raise ValidationError("kinds must name at least one job kind")
    for kind in kinds:
        if kind not in ("qr", "gemm", "lu", "cholesky"):
            raise ValidationError(f"unknown workload kind {kind!r}")
    rng = default_rng(seed)
    opts = QrOptions(blocksize=blocksize)
    specs: list[JobSpec] = []
    for i in range(n_jobs):
        kind = kinds[i % len(kinds)]
        n = size + 16 * (i % 3)
        m = n + (16 * (i % 2) if kind in ("qr", "gemm") else 0)
        if kind == "qr":
            a = rng.standard_normal((m, n)).astype(np.float32)
            operands = (a,)
        elif kind == "gemm":
            a = rng.standard_normal((m, n)).astype(np.float32)
            b = rng.standard_normal((m, max(n // 2, 8))).astype(np.float32)
            operands = (a, b)
        elif kind == "lu":
            operands = (diagonally_dominant(n, n, seed=seed + i),)
        else:
            operands = (spd_matrix(n, seed=seed + i),)
        specs.append(
            JobSpec(
                kind, operands, options=opts, priority=i % 3,
                name=f"{kind}-{i}",
            )
        )
    return specs


@dataclass
class ServeLevelResult:
    """One service run at a fixed worker count."""

    n_workers: int
    wall_s: float
    throughput_jobs_s: float
    p50_turnaround_s: float
    p99_turnaround_s: float
    p50_wait_s: float
    peak_admitted_bytes: int
    #: Full metrics snapshot taken from the service that actually ran the
    #: benchmark jobs (``FactorService.snapshot_metrics()``).
    metrics: dict = field(default_factory=dict)
    #: Per-job fault/retry provenance (label, attempts, degraded pool
    #: size, fault summary) — non-trivial entries only: jobs that needed
    #: more than one attempt, degraded, or saw injected faults.
    provenance: list = field(default_factory=list)


@dataclass
class ServeBenchResult:
    """Serial baseline vs the service at each worker count."""

    n_jobs: int
    budget_bytes: int
    serial_s: float                     # back-to-back run, no service
    levels: list[ServeLevelResult] = field(default_factory=list)

    def level(self, n_workers: int) -> ServeLevelResult:
        for lv in self.levels:
            if lv.n_workers == n_workers:
                return lv
        raise ValidationError(f"no level with n_workers={n_workers}")

    def speedup(self, n_workers: int) -> float:
        """Serial wall time over the service's (>1 means the service won)."""
        lv = self.level(n_workers)
        return self.serial_s / lv.wall_s if lv.wall_s > 0 else 0.0

    def render(self) -> str:
        rows = [
            [
                "serial", f"{self.serial_s * 1e3:8.1f}",
                f"{self.n_jobs / self.serial_s:6.1f}" if self.serial_s else "-",
                "-", "-", "1.00x",
            ]
        ]
        for lv in self.levels:
            rows.append([
                f"workers={lv.n_workers}",
                f"{lv.wall_s * 1e3:8.1f}",
                f"{lv.throughput_jobs_s:6.1f}",
                f"{lv.p50_turnaround_s * 1e3:7.1f}",
                f"{lv.p99_turnaround_s * 1e3:7.1f}",
                f"{self.speedup(lv.n_workers):.2f}x",
            ])
        header = (
            f"serve-bench: {self.n_jobs} mixed jobs, "
            f"budget {self.budget_bytes >> 20} MiB\n"
        )
        return header + render_table(
            ["run", "wall ms", "jobs/s", "p50 ms", "p99 ms", "speedup"], rows
        )


def bench_serve(
    n_jobs: int = 24,
    *,
    workers: tuple[int, ...] = (1, 2, 4),
    size: int = 96,
    blocksize: int = 32,
    seed: int = 0,
    job_concurrency: str = "serial",
    config: SystemConfig | None = None,
    faults=None,
) -> ServeBenchResult:
    """Benchmark the service against the serial baseline.

    The baseline runs every job back-to-back under the exact per-job
    capped config the service would grant, so both sides do identical
    numeric work; the service's edge is pure scheduling overlap.
    *faults* (a :class:`~repro.faults.plan.FaultPlan`) is injected into
    every service-level job — the serial baseline stays fault-free, so
    the bench doubles as a recovery-overhead measurement
    (docs/robustness.md).
    """
    config = config or SystemConfig(gpu=bench_spec(), precision=Precision.FP32)
    specs = synthetic_workload(n_jobs, size=size, blocksize=blocksize, seed=seed)

    # serial baseline: no queue, no threads, no cache
    probe = FactorService(config, n_workers=1, cache=None)
    try:
        capped = [probe.job_config(spec) for spec in specs]
    finally:
        probe.close()
    t0 = _monotonic()
    for spec, job_config in zip(specs, capped):
        run_job(spec, job_config, "serial")
    serial_s = _monotonic() - t0

    result = ServeBenchResult(
        n_jobs=n_jobs,
        budget_bytes=config.usable_device_bytes,
        serial_s=serial_s,
    )
    for n_workers in workers:
        svc = FactorService(
            config,
            n_workers=n_workers,
            queue_limit=max(n_jobs, 1),
            cache=None,  # every job must really run
            job_concurrency=job_concurrency,
            faults=faults,
        )
        try:
            t0 = _monotonic()
            handles = [svc.submit(spec) for spec in specs]
            results = [h.result(timeout=600) for h in handles]
            wall_s = _monotonic() - t0
            snap = svc.snapshot_metrics()
            provenance = [
                {
                    "job": spec.label(),
                    "attempts": res.attempts,
                    "degraded_to": res.degraded_to,
                    "faults": (
                        res.faults.summary() if res.faults is not None else None
                    ),
                }
                for spec, res in zip(specs, results)
                if res.attempts > 1
                or res.degraded_to is not None
                or res.faults is not None
            ]
            result.levels.append(
                ServeLevelResult(
                    n_workers=n_workers,
                    wall_s=wall_s,
                    throughput_jobs_s=n_jobs / wall_s if wall_s else 0.0,
                    p50_turnaround_s=snap["turnaround_s"]["p50"],
                    p99_turnaround_s=snap["turnaround_s"]["p99"],
                    p50_wait_s=snap["queue_wait_s"]["p50"],
                    peak_admitted_bytes=int(snap["admitted_bytes"]["max"]),
                    metrics=snap,
                    provenance=provenance,
                )
            )
        finally:
            svc.close()
    return result


if __name__ == "__main__":  # pragma: no cover - manual benchmark entry
    print(bench_serve().render())
