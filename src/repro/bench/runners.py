"""Shared run helpers for the experiment suite: standalone OOC GEMM runs
and full QR runs on the simulated executor, with per-block metrics
extracted from traces."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.execution.sim import SimExecutor
from repro.host.tiled import HostMatrix
from repro.ooc.inner import run_ksplit_inner, run_panel_inner
from repro.ooc.outer import run_rowstream_outer, run_tile_outer
from repro.ooc.plan import (
    plan_ksplit_inner,
    plan_panel_inner,
    plan_rowstream_outer,
    plan_tile_outer,
)
from repro.sim.ops import EngineKind, OpKind
from repro.sim.trace import Trace


@dataclass
class GemmRunMetrics:
    """Timing/volume metrics of one standalone OOC GEMM run."""

    makespan: float           # seconds spent inside the GEMM (excl. setup)
    total_flops: int
    h2d_bytes: int
    d2h_bytes: int
    gemm_busy: float          # compute seconds in GEMM kernels
    median_h2d: float         # steady-state per-copy H2D seconds
    median_gemm: float        # steady-state per-kernel seconds
    median_d2h: float
    overlap_ratio: float
    trace: Trace
    t0: float                 # run start within the trace

    @property
    def overall_rate(self) -> float:
        """End-to-end flops/s over the run's makespan."""
        return self.total_flops / self.makespan if self.makespan else 0.0

    @property
    def incore_rate(self) -> float:
        """flops/s of the GEMM kernels alone (the "In-core flops" row)."""
        return self.total_flops / self.gemm_busy if self.gemm_busy else 0.0


def _median(durations: list[float]) -> float:
    return statistics.median(durations) if durations else 0.0


def _metrics(ex: SimExecutor, t0: float, flops: int, h2d0: int, d2h0: int) -> GemmRunMetrics:
    trace = ex.finish()
    window = [op for op in trace.ops if op.end > t0 + 1e-12]
    gemms = [op for op in window if op.kind == OpKind.GEMM]
    h2ds = [op for op in window if op.kind == OpKind.COPY_H2D]
    d2hs = [op for op in window if op.kind == OpKind.COPY_D2H]
    sub = Trace()
    sub.extend(window)
    return GemmRunMetrics(
        makespan=trace.makespan - t0,
        total_flops=flops,
        h2d_bytes=ex.stats.h2d_bytes - h2d0,
        d2h_bytes=ex.stats.d2h_bytes - d2h0,
        gemm_busy=sum(op.duration for op in gemms),
        median_h2d=_median([op.duration for op in h2ds]),
        median_gemm=_median([op.duration for op in gemms]),
        median_d2h=_median([op.duration for op in d2hs]),
        overlap_ratio=sub.overlap_ratio(),
        trace=trace,
        t0=t0,
    )


def sim_inner_recursive(
    config: SystemConfig,
    *,
    K: int,
    M: int,
    N: int,
    blocksize: int,
    pipelined: bool = True,
    gradual: bool = False,
) -> GemmRunMetrics:
    """Standalone Fig-3 inner product on the simulated executor."""
    ex = SimExecutor(config)
    a = HostMatrix.shape_only(K, M, config.element_bytes, name="A")
    b = HostMatrix.shape_only(K, N, config.element_bytes, name="B")
    c = HostMatrix.shape_only(M, N, config.element_bytes, name="C")
    plan = plan_ksplit_inner(
        K, M, N, blocksize,
        ex.allocator.free_bytes // config.element_bytes,
        gradual=gradual,
    )
    run_ksplit_inner(ex, a.full(), b.full(), c.full(), plan, pipelined=pipelined)
    return _metrics(ex, 0.0, 2 * M * N * K, 0, 0)


def sim_inner_blocking(
    config: SystemConfig,
    *,
    K: int,
    M: int,
    N: int,
    blocksize: int,
    pipelined: bool = True,
) -> GemmRunMetrics:
    """Standalone Fig-4 inner product; the resident panel load is excluded
    from the metrics (as in the paper's Table 1)."""
    ex = SimExecutor(config)
    b = HostMatrix.shape_only(K, N, config.element_bytes, name="B")
    c = HostMatrix.shape_only(M, N, config.element_bytes, name="C")
    panel = ex.alloc(K, M, "panel")
    panel_src = HostMatrix.shape_only(K, M, config.element_bytes, name="Q")
    s = ex.stream("setup")
    ex.h2d(panel, panel_src.full(), s)
    ex.synchronize()
    t0 = ex.sim.now
    h2d0, d2h0 = ex.stats.h2d_bytes, ex.stats.d2h_bytes
    plan = plan_panel_inner(
        K, M, N, blocksize,
        ex.allocator.free_bytes // config.element_bytes,
        prefer_keep_c=False,
    )
    run_panel_inner(ex, panel, b.full(), c.full(), plan, pipelined=pipelined)
    metrics = _metrics(ex, t0, 2 * M * N * K, h2d0, d2h0)
    ex.free(panel)
    return metrics


def sim_outer_recursive(
    config: SystemConfig,
    *,
    M: int,
    K: int,
    N: int,
    blocksize: int,
    pipelined: bool = True,
    staging: bool = True,
) -> GemmRunMetrics:
    """Standalone Fig-5 outer product with B already device-resident."""
    ex = SimExecutor(config)
    a = HostMatrix.shape_only(M, K, config.element_bytes, name="A")
    c = HostMatrix.shape_only(M, N, config.element_bytes, name="C")
    b_dev = ex.alloc(K, N, "B")
    budget = ex.allocator.free_bytes // config.element_bytes
    plan = plan_rowstream_outer(
        M, K, N, blocksize, budget, staging=staging, b_resident=True
    )
    if plan.b_resident:
        run_rowstream_outer(
            ex, c.full(), a.full(), b_dev, plan, pipelined=pipelined
        )
    else:
        # B too large to keep: stream it from host instead
        ex.free(b_dev)
        b_dev = None
        b_host = HostMatrix.shape_only(K, N, config.element_bytes, name="B")
        run_rowstream_outer(
            ex, c.full(), a.full(), b_host.full(), plan, pipelined=pipelined
        )
    metrics = _metrics(ex, 0.0, 2 * M * N * K, 0, 0)
    if b_dev is not None:
        ex.free(b_dev)
    return metrics


def sim_outer_blocking(
    config: SystemConfig,
    *,
    M: int,
    K: int,
    N: int,
    blocksize: int,
    pipelined: bool = True,
    staging: bool = True,
) -> GemmRunMetrics:
    """Standalone Fig-6 outer product with A and B device-resident."""
    ex = SimExecutor(config)
    c = HostMatrix.shape_only(M, N, config.element_bytes, name="C")
    a_dev = ex.alloc(M, K, "A")
    b_dev = ex.alloc(K, N, "B")
    plan = plan_tile_outer(
        M, K, N, blocksize,
        ex.allocator.free_bytes // config.element_bytes,
        staging=staging,
    )
    run_tile_outer(ex, c.full(), a_dev, b_dev, plan, pipelined=pipelined)
    metrics = _metrics(ex, 0.0, 2 * M * N * K, 0, 0)
    ex.free(a_dev)
    ex.free(b_dev)
    return metrics
