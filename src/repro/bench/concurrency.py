"""Wall-clock benchmark: serial vs. threaded numeric execution.

Measures the real speedup the concurrent executor's engine overlap buys on
an out-of-core GEMM (the paper's Fig 3 inner-product pipeline) — the
numeric analogue of the simulator's overlap predictions. numpy GEMMs and
copies release the GIL, so on a multi-core host the three engine workers
genuinely overlap; on a single core the schedule is still valid but the
speedup converges to ~1x.

Used by ``tests/test_execution_concurrent.py`` (smoke + the REPRO_PERF
gated ≥1.2x assertion) and runnable directly::

    PYTHONPATH=src python -m repro.bench.concurrency
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.hw.gemm import Precision
from repro.hw.specs import GpuSpec
from repro.obs.clock import monotonic as _monotonic
from repro.ooc.api import ooc_gemm
from repro.util.rng import default_rng


def bench_spec(mem_bytes: int = 64 << 20) -> GpuSpec:
    """A capped GPU spec that forces out-of-core streaming at bench sizes."""
    return GpuSpec(
        name="bench",
        mem_bytes=mem_bytes,
        tc_peak_flops=1.0e12,
        cuda_peak_flops=1.0e11,
        h2d_bytes_per_s=1.0e9,
        d2h_bytes_per_s=1.1e9,
        d2d_bytes_per_s=50.0e9,
    )


@dataclass
class ConcurrencyBenchResult:
    """Timings of one serial-vs-threads comparison."""

    shape: tuple[int, int, int]     # (M, N, K)
    blocksize: int
    serial_s: float                 # best-of-repeats serial wall time
    threads_s: float                # best-of-repeats threaded wall time
    overlap_ratio: float            # from the threaded run's recorded trace
    identical: bool                 # outputs bitwise equal across modes

    @property
    def speedup(self) -> float:
        """Serial time over threaded time (>1 means threads won)."""
        return self.serial_s / self.threads_s if self.threads_s > 0 else 0.0

    def render(self) -> str:
        """One-line human-readable summary."""
        m, n, k = self.shape
        return (
            f"ooc_gemm {m}x{n}x{k} b={self.blocksize}: "
            f"serial {self.serial_s * 1e3:7.1f} ms, "
            f"threads {self.threads_s * 1e3:7.1f} ms, "
            f"speedup {self.speedup:4.2f}x, "
            f"overlap {self.overlap_ratio:4.2f}, "
            f"bitwise {'==' if self.identical else '!='}"
        )


def bench_gemm_concurrency(
    m: int = 1024,
    n: int = 1024,
    k: int = 4096,
    *,
    blocksize: int = 512,
    repeats: int = 3,
    config: SystemConfig | None = None,
) -> ConcurrencyBenchResult:
    """Time the OOC inner-product GEMM serially and with engine threads.

    Both modes run ``repeats`` times on identical inputs; the best time of
    each is compared (standard practice for wall-clock microbenchmarks —
    the minimum is the least noise-contaminated estimate).
    """
    config = config or SystemConfig(gpu=bench_spec(), precision=Precision.FP32)
    rng = default_rng(0)
    a = rng.standard_normal((k, m)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)

    def run(concurrency: str) -> tuple[float, np.ndarray, float]:
        best, out, overlap = float("inf"), None, 0.0
        for _ in range(repeats):
            t0 = _monotonic()
            res = ooc_gemm(
                a, b, trans_a=True, config=config, blocksize=blocksize,
                concurrency=concurrency,
            )
            elapsed = _monotonic() - t0
            if elapsed < best:
                best, out = elapsed, res.c
                overlap = (
                    res.trace.overlap_ratio() if res.trace is not None else 0.0
                )
        return best, out, overlap

    serial_s, serial_c, _ = run("serial")
    threads_s, threads_c, overlap = run("threads")
    return ConcurrencyBenchResult(
        shape=(m, n, k),
        blocksize=blocksize,
        serial_s=serial_s,
        threads_s=threads_s,
        overlap_ratio=overlap,
        identical=bool(np.array_equal(serial_c, threads_c)),
    )


if __name__ == "__main__":  # pragma: no cover - manual benchmark entry
    print(bench_gemm_concurrency().render())
