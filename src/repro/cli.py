"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``   run the paper's evaluation (all, or selected ids)
``qr``            simulated (or numeric) OOC QR with a timeline
``lu``/``chol``   the §6 extension factorizations, simulated or numeric
``gemm``          out-of-core GEMM (cuBLASXt-style)
``serve-bench``   benchmark the multi-tenant factorization service
``loadgen``       open-loop Poisson load test of the service (BENCH_serve.json)
``trace``         run a numeric QR under the span recorder and render the
                  measured per-engine timeline (docs/observability.md)
``analyze``       static plan verifier + repo lint pack (docs/analysis.md)
``dist``          multi-device sharded QR: simulated scaling sweep over a
                  device pool, or the numeric process-pool backend
                  (docs/dist.md)
``gpus``          list built-in GPU specs and their §3.3 thresholds

Domain failures (bad shapes, unknown GPUs, unplannable configs) exit with
code 2 and a one-line ``error:`` message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.hw.specs import KNOWN_GPUS, V100_32GB, get_gpu
from repro.qr.options import QrOptions
from repro.util.tables import render_table


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-m", "--rows", type=int, default=131072)
    parser.add_argument("-n", "--cols", type=int, default=131072)
    parser.add_argument("-b", "--blocksize", type=int, default=16384)
    parser.add_argument(
        "--method", choices=["recursive", "blocking", "both"], default="both"
    )
    parser.add_argument(
        "--gpu", default=V100_32GB.name, help="GPU spec name (see `gpus`)"
    )
    parser.add_argument(
        "--memory-gib", type=float, default=None,
        help="cap device memory (the paper's §5.2 experiment)",
    )
    parser.add_argument("--timeline", action="store_true", help="print the Gantt chart")
    parser.add_argument("--sync", action="store_true", help="disable pipelining")
    parser.add_argument(
        "--mode", choices=["sim", "numeric"], default="sim",
        help="sim: data-free timing model; numeric: really compute on "
        "random data (use small -m/-n)",
    )
    parser.add_argument(
        "--concurrency", choices=["serial", "threads"], default="serial",
        help="numeric mode: run ops serially or on per-engine worker "
        "threads (real H2D/compute/D2H overlap)",
    )
    parser.add_argument(
        "--runtime", choices=["legacy", "dag"], default="legacy",
        help="legacy: imperative executors; dag: record the run as a "
        "tile-task graph and execute it with the dynamic dataflow "
        "scheduler (QR and GEMM; see docs/runtime.md)",
    )
    parser.add_argument(
        "--no-opts", action="store_true", help="disable the §4.2 optimizations"
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="numeric mode: persist progress to DIR and resume from it "
        "(rerun the same command after a crash; see docs/checkpoint.md)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint every N completed steps (default 1)",
    )
    parser.add_argument(
        "--health", choices=["off", "monitor", "escalate"], default="off",
        help="numeric mode: numerical-health sentinel — monitor records "
        "NaN/Inf and loss-of-orthogonality probes, escalate also repairs "
        "drifted panels and raises GEMM precision (see docs/health.md)",
    )
    parser.add_argument(
        "--health-stride", type=int, default=1, metavar="N",
        help="probe 1-in-N h2d transfers / GEMM outputs (default 1: all)",
    )


def _config(args) -> SystemConfig:
    gpu = get_gpu(args.gpu)
    if args.memory_gib is not None:
        gpu = gpu.with_memory(int(args.memory_gib * (1 << 30)), suffix="capped")
    return SystemConfig(gpu=gpu)


def _options(args) -> QrOptions:
    opts = QrOptions(blocksize=args.blocksize, pipelined=not args.sync)
    if args.no_opts:
        opts = opts.all_optimizations_off()
    if getattr(args, "health", "off") != "off":
        from dataclasses import replace

        from repro.health import HealthOptions

        opts = replace(
            opts,
            health=HealthOptions(mode=args.health, stride=args.health_stride),
        )
    return opts


def _run_factorization(args, kind: str) -> int:
    from repro.factor.api import ooc_cholesky, ooc_lu
    from repro.qr.api import ooc_qr
    from repro.sim.timeline import render_summary, render_timeline

    runners = {"qr": ooc_qr, "lu": ooc_lu, "chol": ooc_cholesky}
    run = runners[kind]
    config = _config(args)
    options = _options(args)
    methods = ["recursive", "blocking"] if args.method == "both" else [args.method]
    shape = (args.rows, args.cols)
    if kind == "chol" and args.rows != args.cols:
        print("cholesky requires a square matrix", file=sys.stderr)
        return 2
    if kind == "lu" and args.mode == "numeric" and args.rows != args.cols:
        print("numeric lu (unpivoted) requires a square matrix", file=sys.stderr)
        return 2
    if args.health != "off" and args.mode != "numeric":
        print("--health requires --mode numeric", file=sys.stderr)
        return 2
    runtime = getattr(args, "runtime", "legacy")
    if runtime == "dag" and kind != "qr":
        print(
            f"--runtime dag covers qr and gemm; {kind} runs on the legacy "
            "path (its graph adapter is registered for analysis only, see "
            "docs/runtime.md)",
            file=sys.stderr,
        )
        return 2
    if runtime == "dag" and (args.checkpoint_dir or args.health != "off"):
        print("--runtime dag does not support --checkpoint-dir/--health yet",
              file=sys.stderr)
        return 2
    checkpoint = None
    if args.checkpoint_dir is not None:
        if args.mode != "numeric":
            print("--checkpoint-dir requires --mode numeric", file=sys.stderr)
            return 2
        if args.method == "both":
            print("--checkpoint-dir requires a single --method "
                  "(a checkpoint belongs to one run)", file=sys.stderr)
            return 2
        from repro.ckpt import CheckpointConfig, CheckpointPolicy

        checkpoint = CheckpointConfig(
            args.checkpoint_dir,
            policy=CheckpointPolicy(every_steps=args.checkpoint_every),
        )

    times = {}
    for method in methods:
        if args.mode == "numeric":
            import numpy as np

            from repro.util.rng import default_rng

            # inputs the kind can factor: LU needs diagonal dominance
            # (no pivoting), Cholesky needs SPD
            if kind == "lu":
                from repro.factor.incore import diagonally_dominant

                a = diagonally_dominant(*shape, seed=0)
            elif kind == "chol":
                from repro.factor.incore import spd_matrix

                a = spd_matrix(shape[0], seed=0)
            else:
                a = default_rng(0).standard_normal(shape).astype(np.float32)
            extra = {"runtime": runtime} if kind == "qr" else {}
            result = run(
                a, method=method, mode="numeric", config=config,
                options=options, concurrency=args.concurrency,
                checkpoint=checkpoint, **extra,
            )
        else:
            extra = {"runtime": runtime} if kind == "qr" else {}
            result = run(
                shape, method=method, mode="sim", config=config,
                options=options, **extra,
            )
        times[method] = result.makespan
        clock = "measured" if args.mode == "numeric" else "simulated"
        print(
            f"{kind} {method:10s} {shape[0]}x{shape[1]} b={options.blocksize} "
            f"on {config.gpu.name}: {result.makespan:8.3f} s {clock}, "
            f"{result.achieved_tflops:6.1f} TFLOPS, "
            f"H2D {result.movement.h2d_bytes / 1e9:7.1f} GB, "
            f"D2H {result.movement.d2h_bytes / 1e9:7.1f} GB"
        )
        if result.ckpt is not None:
            c = result.ckpt
            print(
                f"  checkpoint: {c.checkpoints_written} written "
                f"({c.checkpoint_bytes >> 10} KiB), resumes {c.resumes}, "
                f"steps skipped {c.steps_skipped}"
            )
        if result.health is not None:
            print(f"  health: {result.health.summary()}")
        if args.timeline and result.trace is not None:
            print(render_timeline(result.trace, width=100,
                                  title=f"{kind} {method}"))
            print(render_summary(result.trace))
    if len(times) == 2:
        print(f"speedup (blocking / recursive): "
              f"{times['blocking'] / times['recursive']:.2f}x")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Domain errors (:class:`~repro.errors.ReproError`: bad shapes, unknown
    GPUs or configs, simulation failures) become a one-line ``error:``
    message on stderr and exit code 2 — no traceback.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Recursive out-of-core TensorCore QR (ICPP'21) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="run the paper's evaluation")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_exp.add_argument("--no-artifacts", action="store_true",
                       help="omit timelines from the output")

    for kind, help_text in (
        ("qr", "simulated out-of-core QR factorization"),
        ("lu", "simulated out-of-core LU (unpivoted, §6 extension)"),
        ("chol", "simulated out-of-core Cholesky (§6 extension)"),
    ):
        p = sub.add_parser(kind, help=help_text)
        _add_common(p)

    p_gemm = sub.add_parser(
        "gemm", help="simulated out-of-core GEMM (cuBLASXt-style)"
    )
    p_gemm.add_argument("-M", type=int, default=65536)
    p_gemm.add_argument("-N", type=int, default=65536)
    p_gemm.add_argument("-K", type=int, default=131072)
    p_gemm.add_argument("-b", "--blocksize", type=int, default=16384)
    p_gemm.add_argument("--kind", choices=["inner", "outer"], default="inner")
    p_gemm.add_argument("--gpu", default=V100_32GB.name)
    p_gemm.add_argument("--memory-gib", type=float, default=None)
    p_gemm.add_argument("--timeline", action="store_true")
    p_gemm.add_argument("--sync", action="store_true")
    p_gemm.add_argument("--mode", choices=["sim", "numeric"], default="sim")
    p_gemm.add_argument(
        "--concurrency", choices=["serial", "threads"], default="serial"
    )
    p_gemm.add_argument(
        "--runtime", choices=["legacy", "dag"], default="legacy",
        help="dag: execute as a tile-task graph (docs/runtime.md)",
    )

    p_serve = sub.add_parser(
        "serve-bench",
        help="benchmark the factorization service vs the serial baseline",
    )
    p_serve.add_argument("--jobs", type=int, default=24,
                         help="synthetic mixed QR/GEMM/LU/Cholesky jobs")
    p_serve.add_argument("--size", type=int, default=96,
                         help="base matrix dimension of the workload")
    p_serve.add_argument("-b", "--blocksize", type=int, default=32)
    p_serve.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to benchmark (each vs the serial baseline)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--job-concurrency", choices=["serial", "threads"], default="serial",
        help="executor flavour inside each job (docs/concurrency.md)",
    )
    p_serve.add_argument(
        "--metrics", action="store_true",
        help="also print the final run's metrics snapshot as JSON, plus "
        "per-job fault/retry provenance (attempts, degraded pool size, "
        "injected faults) for any job that needed them",
    )
    p_serve.add_argument(
        "--inject", action="append", default=None,
        metavar="KIND[:DEV[:ROUND]]",
        help="inject one fault per flag into every service job "
        "(docs/robustness.md); the serial baseline stays fault-free",
    )

    p_lg = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load test of the factorization service "
        "(writes BENCH_serve.json; see docs/observability.md)",
    )
    p_lg.add_argument("--jobs", type=int, default=32,
                      help="number of jobs in the arrival schedule")
    p_lg.add_argument("--rate", type=float, default=200.0,
                      help="mean offered rate in jobs/s (Poisson arrivals)")
    p_lg.add_argument("--workers", type=int, default=2)
    p_lg.add_argument("--size", type=int, default=64,
                      help="base matrix dimension of the workload")
    p_lg.add_argument("-b", "--blocksize", type=int, default=32)
    p_lg.add_argument("--seed", type=int, default=0)
    p_lg.add_argument(
        "--mix", nargs="+", default=["qr", "gemm", "lu", "cholesky"],
        choices=["qr", "gemm", "lu", "cholesky"],
        help="job kinds, round-robined over the stream",
    )
    p_lg.add_argument(
        "--job-concurrency", choices=["serial", "threads"], default="serial",
    )
    p_lg.add_argument("--out", default="BENCH_serve.json",
                      help="result JSON path (default: ./BENCH_serve.json)")
    p_lg.add_argument(
        "--trace-out", default=None, metavar="JSON",
        help="also record per-job spans and export a Chrome trace "
        "(load in Perfetto / chrome://tracing)",
    )

    p_tr = sub.add_parser(
        "trace",
        help="numeric QR under the span recorder: measured per-engine "
        "timeline, optional Chrome trace and sim comparison",
    )
    p_tr.add_argument("-m", "--rows", type=int, default=256)
    p_tr.add_argument("-n", "--cols", type=int, default=128)
    p_tr.add_argument("-b", "--blocksize", type=int, default=32)
    p_tr.add_argument(
        "--method", choices=["recursive", "blocking"], default="recursive"
    )
    p_tr.add_argument("--gpu", default=V100_32GB.name)
    p_tr.add_argument("--memory-gib", type=float, default=None)
    p_tr.add_argument("--sync", action="store_true", help="disable pipelining")
    p_tr.add_argument(
        "--concurrency", choices=["serial", "threads"], default="serial"
    )
    p_tr.add_argument(
        "--runtime", choices=["legacy", "dag"], default="dag",
        help="dag (default): execute as a tile-task graph so per-task "
        "spans carry dependency edges; legacy: imperative executors",
    )
    p_tr.add_argument(
        "--out", default=None, metavar="JSON",
        help="write the spans as a Chrome trace (Perfetto-loadable)",
    )
    p_tr.add_argument(
        "--compare-sim", action="store_true",
        help="also simulate the same run and tabulate sim vs measured",
    )

    p_an = sub.add_parser(
        "analyze",
        help="statically verify engine plans and lint the repo "
        "(race/leak/budget/volume proofs; see docs/analysis.md)",
    )
    p_an.add_argument(
        "--what",
        choices=["lint", "plans", "graphs", "precision", "all"],
        default="all",
        help="run the repo lint pack, the captured-plan verifier sweep, "
        "the DAG-runtime task-graph sweep, the precision/error-flow "
        "sweep (split-precision plans must prove their bound, the "
        "flat-tree fp16 negative control must be flagged), or all",
    )
    p_an.add_argument("-m", "--rows", type=int, default=96,
                      help="capture shape rows (small by design: the "
                      "proofs are shape-generic per §3.2)")
    p_an.add_argument("-n", "--cols", type=int, default=64)
    p_an.add_argument("-b", "--blocksize", type=int, default=16)
    p_an.add_argument(
        "--engine", default=None,
        help="verify one engine from the registry (default: every engine)",
    )
    p_an.add_argument("--gpu", default=V100_32GB.name)
    p_an.add_argument("--memory-gib", type=float, default=None)
    p_an.add_argument(
        "--tolerance", type=float, default=None,
        help="forward-error tolerance for --what precision (default: the "
        "pass's DEFAULT_TOLERANCE)",
    )

    p_dist = sub.add_parser(
        "dist",
        help="multi-device sharded QR over a CAQR reduction tree: "
        "simulated scaling sweep or numeric process-pool run "
        "(docs/dist.md)",
    )
    p_dist.add_argument("-m", "--rows", type=int, default=1_048_576)
    p_dist.add_argument("-n", "--cols", type=int, default=1024)
    p_dist.add_argument(
        "--devices", type=int, nargs="+", default=[1, 8, 16, 32, 64],
        help="device counts to sweep (sim) or run (numeric)",
    )
    p_dist.add_argument(
        "--tree", choices=["binomial", "flat"], default="binomial",
        help="reduction tree: binomial meets the CAQR bound, flat is the "
        "instructive root-hotspot baseline",
    )
    p_dist.add_argument(
        "--mode", choices=["sim", "numeric"], default="sim",
        help="sim: partitioned-graph device-pool model; numeric: really "
        "factor random data through the memmap shard backend "
        "(use small -m/-n)",
    )
    p_dist.add_argument(
        "--processes", type=int, default=0,
        help="numeric mode worker processes (0 = inline, default)",
    )
    p_dist.add_argument(
        "--shared-link", action="store_true",
        help="sim: all devices contend for one host link",
    )
    p_dist.add_argument("--gpu", default=V100_32GB.name)
    p_dist.add_argument("--memory-gib", type=float, default=None)
    p_dist.add_argument(
        "--inject", action="append", default=None,
        metavar="KIND[:DEV[:ROUND]]",
        help="inject one fault per flag: KIND is worker_crash, "
        "device_loss, transfer_timeout, transfer_stall or task_error, "
        "optionally pinned to a device and reduction round "
        "(docs/robustness.md); repeatable",
    )
    p_dist.add_argument(
        "--no-recover", action="store_true",
        help="numeric: disable device-loss recovery so an injected loss "
        "fails the run loudly (the chaos-smoke negative control)",
    )
    p_dist.add_argument(
        "--bench-out", default=None, metavar="JSON",
        help="sim: write the sweep as a BENCH_dist.json document",
    )
    p_dist.add_argument(
        "--trace-out", default=None, metavar="JSON",
        help="sim: export per-device span lanes of the largest sweep "
        "point as a Chrome trace (Perfetto-loadable)",
    )

    sub.add_parser("gpus", help="list built-in GPU specs")

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.command == "gpus":
        from repro.models.overlap import machine_balance, overlap_threshold

        rows = [
            [
                spec.name,
                f"{spec.mem_bytes >> 30} GiB",
                f"{spec.tc_peak_flops / 1e12:.0f} TF",
                f"{spec.h2d_bytes_per_s / 1e9:.1f} GB/s",
                f"{overlap_threshold(spec):,.0f}",
            ]
            for spec in KNOWN_GPUS.values()
        ]
        print(render_table(
            ["name", "memory", "TC peak", "H2D", "overlap m*"], rows
        ))
        return 0

    if args.command == "experiments":
        from repro.bench import run_all
        from repro.bench.experiments import (
            exp_gemm_timeline,
            exp_headline,
            exp_qr_timeline,
            exp_table1,
            exp_table2,
            exp_table3,
            exp_table4,
        )
        from repro.bench.numerics import exp_numerics_study, exp_precision_tradeoff
        from repro.bench.studies import (
            exp_blocksize_sensitivity,
            exp_communication_analysis,
            exp_future_hardware,
            exp_gradual_blocksize,
            exp_lu_cholesky_extension,
            exp_movement_validation,
            exp_multi_gpu_panel,
            exp_multi_gpu_scaling,
            exp_overlap_crossover,
            exp_prediction_accuracy,
            exp_qr_level_opt,
        )

        registry = {
            "T1": exp_table1, "T2": exp_table2, "T3": exp_table3,
            "T4": exp_table4, "S1": exp_headline,
            "S2": exp_gradual_blocksize, "S3": exp_qr_level_opt,
            "S4": exp_movement_validation, "S5": exp_overlap_crossover,
            "S6": exp_future_hardware, "S7": exp_prediction_accuracy,
            "S8": exp_lu_cholesky_extension, "S9": exp_numerics_study,
            "S10": exp_communication_analysis,
            "S11": exp_blocksize_sensitivity,
            "S12": exp_precision_tradeoff,
            "S13": exp_multi_gpu_scaling,
            "S14": exp_multi_gpu_panel,
            **{f"F{f}": (lambda f=f: exp_gemm_timeline(f)) for f in range(7, 12)},
            **{f"F{f}": (lambda f=f: exp_qr_timeline(f)) for f in range(12, 16)},
        }
        if args.ids:
            unknown = [i for i in args.ids if i.upper() not in registry]
            if unknown:
                print(f"unknown ids {unknown}; available: {', '.join(registry)}",
                      file=sys.stderr)
                return 2
            results = [registry[i.upper()]() for i in args.ids]
        else:
            results = run_all()
        failures = 0
        for res in results:
            print(res.render(include_artifacts=not args.no_artifacts))
            print()
            failures += 0 if res.all_passed else 1
        print(f"{len(results)} experiments, {failures} failed shape checks")
        return 1 if failures else 0

    if args.command == "gemm":
        return _run_gemm(args)

    if args.command == "serve-bench":
        return _run_serve_bench(args)

    if args.command == "loadgen":
        return _run_loadgen(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "analyze":
        return _run_analyze(args)

    if args.command == "dist":
        return _run_dist(args)

    return _run_factorization(args, args.command)


def _parse_inject(values) -> "object | None":
    """``--inject KIND[:DEV[:ROUND]]`` flags -> a :class:`FaultPlan`."""
    if not values:
        return None
    from repro.errors import ValidationError
    from repro.faults import FaultPlan, FaultSpec

    specs = []
    for raw in values:
        parts = raw.split(":")
        if len(parts) > 3:
            raise ValidationError(
                f"--inject takes KIND[:DEV[:ROUND]], got {raw!r}"
            )
        try:
            device = int(parts[1]) if len(parts) > 1 and parts[1] else None
            rnd = int(parts[2]) if len(parts) > 2 and parts[2] else None
        except ValueError as exc:
            raise ValidationError(
                f"--inject device/round must be integers, got {raw!r}"
            ) from exc
        specs.append(FaultSpec(parts[0], device=device, round_index=rnd))
    return FaultPlan(specs=tuple(specs))


def _run_dist(args) -> int:
    config = _config(args)
    counts = sorted(set(args.devices))
    faults = _parse_inject(args.inject)

    if args.mode == "numeric":
        import numpy as np

        from repro.dist.numeric import dist_qr_numeric
        from repro.util.rng import default_rng

        a = default_rng(0).standard_normal((args.rows, args.cols))
        rows = []
        for p in counts:
            res = dist_qr_numeric(
                a, n_devices=p, tree=args.tree, processes=args.processes,
                faults=faults, recover=not args.no_recover,
            )
            resid = np.linalg.norm(res.q @ res.r - a) / np.linalg.norm(a)
            rows.append([
                str(p),
                f"{res.comm.max_up_words}",
                f"{res.comm.caqr_ratio:.3f}",
                "yes" if res.comm.meets_bound else "NO",
                f"{resid:.2e}",
                str(res.processes),
                res.faults.summary() if res.faults is not None else "off",
            ])
        print(render_table(
            ["devices", "up words/dev", "caqr ratio", "meets bound",
             "residual", "procs", "faults"],
            rows,
        ))
        return 0

    from repro.dist.sim import dist_scaling_sweep, dist_trace_spans

    sweep = dist_scaling_sweep(
        config, m=args.rows, n=args.cols, device_counts=tuple(counts),
        tree=args.tree, shared_host_link=args.shared_link, faults=faults,
    )
    baseline = sweep[min(sweep)]
    rows = []
    failures = 0
    for p in counts:
        r = sweep[p]
        failures += 0 if r.all_verified else 1
        rows.append([
            str(p),
            f"{r.makespan * 1e3:.1f} ms",
            f"{r.speedup_over(baseline):.2f}x",
            f"{r.peak_bytes / 1e9:.2f} GB",
            f"{r.transfer_bytes / 1e9:.2f} GB",
            f"{r.comm.caqr_ratio:.3f}",
            "ok" if r.all_verified else "FINDINGS",
        ])
    print(render_table(
        ["devices", "makespan", "speedup", "peak/dev", "transfers",
         "caqr ratio", "verify"],
        rows,
    ))
    if faults is not None:
        for p in counts:
            r = sweep[p]
            if r.faults is not None and not r.faults.clean:
                print(f"faults @{p} devices: {r.faults.summary()}")
    if args.bench_out is not None:
        from repro.bench.dist import run_dist_bench

        doc = run_dist_bench(
            config, m=args.rows, n=args.cols,
            device_counts=tuple(counts), tree=args.tree,
        )
        print(f"wrote {doc.write(args.bench_out)}")
    if args.trace_out is not None:
        from repro.obs import spans_to_chrome_trace

        spans = dist_trace_spans(sweep[max(sweep)])
        spans_to_chrome_trace(spans, args.trace_out)
        print(f"wrote {args.trace_out} ({len(spans)} spans, "
              f"{max(sweep)} device lanes)")
    return 1 if failures else 0


def _run_analyze(args) -> int:
    from repro.errors import ValidationError

    failures = 0
    if args.what in ("lint", "all"):
        from pathlib import Path

        from repro.analysis.lint import lint_tree

        root = Path(__file__).resolve().parent  # src/repro
        findings = lint_tree(root)
        for finding in findings:
            print(finding)
        verdict = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"lint: {verdict} over {root}")
        failures += len(findings)

    if args.what in ("plans", "all"):
        from repro.analysis import ENGINE_CAPTURES, verify_engine

        config = _config(args)
        if args.engine is not None and args.engine not in ENGINE_CAPTURES:
            raise ValidationError(
                f"unknown engine {args.engine!r}; available: "
                f"{', '.join(ENGINE_CAPTURES)}"
            )
        names = [args.engine] if args.engine else list(ENGINE_CAPTURES)
        for name in names:
            report = verify_engine(
                name, config, m=args.rows, n=args.cols, b=args.blocksize
            )
            print(report.summary())
            for finding in report.findings:
                print(f"  {finding}")
            for skip in report.skipped:
                print(f"  skipped: {skip}")
            failures += len(report.findings)

    if args.what in ("precision", "all"):
        from dataclasses import replace as _replace

        from repro.analysis import (
            DEFAULT_TOLERANCE,
            ENGINE_CAPTURES,
            verify_engine,
        )
        from repro.dist.sim import dist_precision_report
        from repro.hw.gemm import Precision

        config = _config(args)
        tol = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        m, n, b = args.rows, args.cols, args.blocksize

        # structural sweep: every engine at the config's own precision
        # (no tolerance judging — the bound is reported, not gated)
        for name in ENGINE_CAPTURES:
            report = verify_engine(name, config, m=m, n=n, b=b)
            print(f"precision {report.summary()}")

        # positive set: the paper's split-precision recursive-QR plans
        # must prove their bound within the tolerance
        for prec in (Precision.TC_FP16_SPLIT3, Precision.TC_FP16_SPLIT4):
            report = verify_engine(
                "qr-recursive", _replace(config, precision=prec),
                m=m, n=n, b=b, tolerance=tol,
            )
            print(f"precision [{prec.value}] {report.summary()}")
            for finding in report.findings:
                print(f"  {finding}")
            failures += len(report.findings)

        # dist positive: 64-device binomial tree under fp16x4 (the bound
        # accrues log2 P merge steps and must stay within tolerance)
        dist_n = b
        dist_m = 64 * b
        report = dist_precision_report(
            _replace(config, precision=Precision.TC_FP16_SPLIT4),
            m=dist_m, n=dist_n, n_devices=64, tree="binomial",
            tolerance=tol,
        )
        print(f"precision [tc-fp16x4 binomial-64] {report.summary()}")
        for finding in report.findings:
            print(f"  {finding}")
        failures += len(report.findings)

        # negative control: the same 64 devices on a *flat* tree under
        # plain fp16 accrue P-1 merge steps and must be flagged
        report = dist_precision_report(
            _replace(config, precision=Precision.TC_FP16),
            m=dist_m, n=dist_n, n_devices=64, tree="flat",
            tolerance=tol,
        )
        if report.findings:
            print(
                f"precision [tc-fp16 flat-64] negative control flagged "
                f"(expected): bound {report.precision_bound:.2e} > "
                f"tol {tol:.1e}"
            )
        else:
            print(
                f"precision [tc-fp16 flat-64] NEGATIVE CONTROL NOT "
                f"FLAGGED: bound {report.precision_bound:.2e} passed "
                f"tol {tol:.1e} — the pass lost its depth sensitivity"
            )
            failures += 1

    if args.what in ("graphs", "all"):
        from repro.runtime import GRAPH_BUILDERS, verify_engine_graph

        config = _config(args)
        if args.engine is not None and args.engine not in GRAPH_BUILDERS:
            raise ValidationError(
                f"unknown engine {args.engine!r}; available: "
                f"{', '.join(GRAPH_BUILDERS)}"
            )
        names = [args.engine] if args.engine else list(GRAPH_BUILDERS)
        for name in names:
            report = verify_engine_graph(
                name, config, m=args.rows, n=args.cols, b=args.blocksize
            )
            print(report.summary())
            for finding in report.findings:
                print(f"  {finding}")
            for skip in report.skipped:
                print(f"  skipped: {skip}")
            failures += len(report.findings)

    return 1 if failures else 0


def _run_serve_bench(args) -> int:
    from repro.bench.serve import bench_serve

    result = bench_serve(
        args.jobs,
        workers=tuple(args.workers),
        size=args.size,
        blocksize=args.blocksize,
        seed=args.seed,
        job_concurrency=args.job_concurrency,
        faults=_parse_inject(args.inject),
    )
    print(result.render())
    if args.metrics:
        import json

        # snapshots captured from the benchmark runs themselves — no
        # second service pass
        for level in result.levels:
            print(f"metrics (workers={level.n_workers}):")
            print(json.dumps(level.metrics, indent=2))
            for row in level.provenance:
                degraded = (
                    "" if row["degraded_to"] is None
                    else f", degraded to {row['degraded_to']} devices"
                )
                print(
                    f"  {row['job']}: {row['attempts']} attempt(s)"
                    f"{degraded}; {row['faults'] or 'no faults'}"
                )
    return 0


def _run_loadgen(args) -> int:
    from repro.bench.loadgen import run_loadgen

    obs = None
    if args.trace_out is not None:
        from repro.obs import SpanRecorder

        obs = SpanRecorder()
    result = run_loadgen(
        args.jobs,
        rate_jobs_s=args.rate,
        workers=args.workers,
        size=args.size,
        blocksize=args.blocksize,
        seed=args.seed,
        mix=tuple(args.mix),
        job_concurrency=args.job_concurrency,
        obs=obs,
    )
    print(result.render())
    print(f"wrote {result.write(args.out)}")
    if obs is not None:
        from repro.obs import spans_to_chrome_trace

        spans_to_chrome_trace(obs.spans(), args.trace_out)
        print(f"wrote {args.trace_out} ({len(obs)} spans)")
    return 0


def _run_trace(args) -> int:
    import numpy as np

    from repro.obs import (
        SpanRecorder,
        render_sim_vs_measured,
        run_summary,
        spans_to_chrome_trace,
        spans_to_trace,
    )
    from repro.qr.api import ooc_qr
    from repro.sim.timeline import render_summary, render_timeline
    from repro.util.rng import default_rng

    config = _config(args)
    options = QrOptions(blocksize=args.blocksize, pipelined=not args.sync)
    rec = SpanRecorder()
    a = default_rng(0).standard_normal(
        (args.rows, args.cols)
    ).astype(np.float32)
    ooc_qr(
        a, method=args.method, mode="numeric", config=config,
        options=options, concurrency=args.concurrency,
        runtime=args.runtime, obs=rec,
    )
    spans = rec.spans()
    trace = spans_to_trace(spans)
    summary = run_summary(spans)
    print(render_timeline(
        trace, width=100,
        title=f"qr {args.method} {args.rows}x{args.cols} "
        f"b={options.blocksize} — measured ({args.runtime} runtime)",
    ))
    print(render_summary(trace))
    print(f"  spans           : {summary.n_spans} "
          f"(+{summary.n_events} events)")
    if args.compare_sim:
        sim = ooc_qr(
            (args.rows, args.cols), method=args.method, mode="sim",
            config=config, options=options,
        )
        print()
        print(render_sim_vs_measured(
            sim.trace, spans,
            title=f"sim vs measured: qr {args.method} "
            f"{args.rows}x{args.cols} b={options.blocksize}",
        ))
    if args.out is not None:
        spans_to_chrome_trace(spans, args.out)
        print(f"wrote {args.out} ({len(spans)} spans)")
    return 0


def _run_gemm(args) -> int:
    from repro.ooc.api import ooc_gemm
    from repro.sim.timeline import render_summary, render_timeline

    config = _config(args)
    if args.mode == "numeric":
        import numpy as np

        from repro.util.rng import default_rng

        rng = default_rng(0)
        if args.kind == "inner":
            a = rng.standard_normal((args.K, args.M)).astype(np.float32)
            b = rng.standard_normal((args.K, args.N)).astype(np.float32)
            result = ooc_gemm(
                a, b, trans_a=True, mode="numeric", config=config,
                blocksize=args.blocksize, pipelined=not args.sync,
                concurrency=args.concurrency, runtime=args.runtime,
            )
        else:
            a = rng.standard_normal((args.M, args.K)).astype(np.float32)
            b = rng.standard_normal((args.K, args.N)).astype(np.float32)
            c = rng.standard_normal((args.M, args.N)).astype(np.float32)
            result = ooc_gemm(
                a, b, alpha=-1.0, beta=1.0, c=c, mode="numeric",
                config=config, blocksize=args.blocksize,
                pipelined=not args.sync, concurrency=args.concurrency,
                runtime=args.runtime,
            )
    elif args.kind == "inner":
        result = ooc_gemm(
            (args.K, args.M), (args.K, args.N), trans_a=True, mode="sim",
            config=config, blocksize=args.blocksize, pipelined=not args.sync,
            runtime=args.runtime,
        )
    else:
        result = ooc_gemm(
            (args.M, args.K), (args.K, args.N), alpha=-1.0, beta=1.0,
            c=(args.M, args.N), mode="sim", config=config,
            blocksize=args.blocksize, pipelined=not args.sync,
            runtime=args.runtime,
        )
    clock = "measured" if args.mode == "numeric" else "simulated"
    print(
        f"gemm {args.kind} {args.M}x{args.N}x{args.K} b={args.blocksize} "
        f"({result.strategy}) on {config.gpu.name}: "
        f"{result.makespan:7.2f} s {clock}, "
        f"{result.achieved_tflops:6.1f} TFLOPS, "
        f"H2D {result.movement.h2d_bytes / 1e9:6.1f} GB"
    )
    if args.timeline and result.trace is not None:
        print(render_timeline(result.trace, width=100, title=f"gemm {args.kind}"))
        print(render_summary(result.trace))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
