#!/usr/bin/env python3
"""Putting the pieces together: autotune, factorize, solve, refine.

A downstream user's workflow:

1. *tune* — simulate candidate configurations for their GPU and problem
   shape (milliseconds per candidate) and pick the winner;
2. *solve* — run the real out-of-core factorization at a small scale here,
   with fp16 TensorCore GEMMs;
3. *refine* — recover fp64-level solutions from the low-precision factors
   with a few cheap residual corrections (the Haidar/Wu mixed-precision
   recipe the paper's group is known for).

Run:  python examples/autotune_and_solve.py
"""

import numpy as np

from repro.config import PAPER_SYSTEM_16GB, SystemConfig
from repro.factor.incore import spd_matrix
from repro.hw.gemm import Precision
from repro.hw.specs import GpuSpec
from repro.solve import lstsq_ooc, solve_spd_ooc
from repro.tune import tune


def make_study_gpu(mem_bytes: int) -> GpuSpec:
    """A deliberately tiny device so the solves really run out of core."""
    return GpuSpec(
        name="study",
        mem_bytes=mem_bytes,
        tc_peak_flops=10e12,
        cuda_peak_flops=1e12,
        h2d_bytes_per_s=10e9,
        d2h_bytes_per_s=11e9,
        d2d_bytes_per_s=200e9,
    )

# ---------------------------------------------------------------------------
# 1. Autotune the paper's 16 GB scenario (simulated, fast)
# ---------------------------------------------------------------------------
print("tuning OOC QR for 131072^2 on the 16 GB V100...")
result = tune((131072, 131072), kind="qr", config=PAPER_SYSTEM_16GB,
              candidates=[4096, 8192, 16384])
print(result.render())
print(f"-> winner: {result.best_method} at b={result.best_blocksize} "
      f"({result.best.makespan:.1f} s simulated)\n")

# ---------------------------------------------------------------------------
# 2+3. Real factorization + refinement at example scale
# ---------------------------------------------------------------------------
cfg = SystemConfig(gpu=make_study_gpu(4 << 20), precision=Precision.TC_FP16)

# least squares from fp16 factors
rng = np.random.default_rng(3)
a = rng.standard_normal((2000, 256)).astype(np.float32)
x_true = rng.standard_normal(256)
b = a.astype(np.float64) @ x_true + 1e-5 * rng.standard_normal(2000)

res = lstsq_ooc(a, b, config=cfg, blocksize=64, max_iters=6, tol=1e-9)
x_ref = np.linalg.lstsq(a.astype(np.float64), b, rcond=None)[0]
print("least squares via fp16 OOC QR + refinement:")
print(f"  normal-eq residual per iteration: "
      f"{' -> '.join(f'{h:.1e}' for h in res.residual_history)}")
print(f"  |x - x_ref| = {np.linalg.norm(res.x - x_ref):.2e} "
      f"(converged={res.converged} in {res.iterations} refinements)\n")

# SPD solve from fp16 Cholesky
s = spd_matrix(512, seed=4)
xt = np.linspace(-1, 1, 512)
rhs = s.astype(np.float64) @ xt
spd = solve_spd_ooc(s, rhs, config=cfg, blocksize=64, tol=1e-11)
print("SPD solve via fp16 OOC Cholesky + refinement:")
print(f"  residual per iteration: "
      f"{' -> '.join(f'{h:.1e}' for h in spd.residual_history)}")
print(f"  |x - x_true|_inf = {np.abs(spd.x - xt).max():.2e} "
      f"(converged={spd.converged})")

assert res.converged and spd.converged
print("\nOK: fp16 factors + refinement reached fp64-level solutions")
