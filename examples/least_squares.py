#!/usr/bin/env python3
"""Least squares via out-of-core QR — the paper's motivating application.

QR factorization underlies orthogonalization, least squares, eigenvalue and
SVD computations (§3.1). This example solves an overdetermined system
``min ||Ax - b||`` whose design matrix exceeds device memory:

    A = Q R  (out of core)  ->  x = R^{-1} (Qᵀ b)

and compares against numpy's reference solution.

Run:  python examples/least_squares.py
"""

import numpy as np

from repro.bench.workloads import least_squares_problem
from repro.config import PAPER_SYSTEM
from repro.hw.gemm import Precision
from repro.qr import ooc_qr

m, n = 8192, 768                       # 25 MB design matrix
device_memory = 24 << 20               # 24 MiB simulated device

a, b, x_true = least_squares_problem(m, n, noise=1e-3, seed=11)
x_ref, *_ = np.linalg.lstsq(a.astype(np.float64), b.astype(np.float64), rcond=None)

print(f"solving min ||Ax - b|| with A {m}x{n} "
      f"({a.nbytes / 1e6:.0f} MB) on a {device_memory >> 20} MiB device")


def resid(x):
    return float(np.linalg.norm(a.astype(np.float64) @ x - b))


# Run once with TensorCore numerics (fp16 inputs, the paper's engine) and
# once with exact fp32 GEMMs — the accuracy/speed tradeoff mixed-precision
# solvers are built around.
for precision in (Precision.TC_FP16, Precision.FP32):
    config = PAPER_SYSTEM.with_gpu(
        PAPER_SYSTEM.gpu.with_memory(device_memory, suffix="capped")
    )
    from dataclasses import replace

    config = replace(config, precision=precision)
    result = ooc_qr(a, method="recursive", blocksize=256, config=config)
    q, r = result.q, result.r
    # back-substitution in fp64 for the small triangular solve
    x_qr = np.linalg.solve(r.astype(np.float64), q.astype(np.float64).T @ b)

    print(f"\n  GEMM precision {precision.value}:")
    print(f"    ||x_ooc - x_ref||    : {np.linalg.norm(x_qr - x_ref):.3e}")
    print(f"    ||x_ooc - x_true||   : {np.linalg.norm(x_qr - x_true):.3e}")
    print(f"    residual (OOC QR)    : {resid(x_qr):.6f}  "
          f"(numpy ref {resid(x_ref):.6f})")
    print(f"    PCIe traffic         : {result.movement.h2d_bytes / 1e6:.0f} MB in, "
          f"{result.movement.d2h_bytes / 1e6:.0f} MB out "
          f"({result.movement.arithmetic_intensity():.0f} flops/byte)")
    assert np.linalg.norm(x_qr - x_ref) < 1e-2, "OOC QR least squares diverged"

print("\nOK: out-of-core QR least squares matches the in-memory reference")
