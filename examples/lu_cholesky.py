#!/usr/bin/env python3
"""The §6 extensions in action: out-of-core LU and Cholesky.

The paper's conclusion predicts the recursive treatment transfers to LU
and Cholesky because their trailing updates are "of outer product form".
This repository built both (see repro/factor/); this example factorizes
real matrices out of core, verifies against numpy/scipy, and reruns the
§5.2 memory-pressure experiment for all three factorizations side by side.

Run:  python examples/lu_cholesky.py
"""

import numpy as np
import scipy.linalg

from repro.config import PAPER_SYSTEM, PAPER_SYSTEM_16GB
from repro.factor import diagonally_dominant, lu_unpack, ooc_cholesky, ooc_lu, spd_matrix
from repro.qr import ooc_qr
from repro.util.tables import render_table

# -- numeric: factorize out of core, check against references ---------------

device = 2 << 20  # 2 MiB simulated device

a = diagonally_dominant(512, 384, seed=1)           # stable without pivoting
lu = ooc_lu(a, method="recursive", blocksize=64, device_memory=device)
L, U = lu_unpack(lu.packed)
print(f"OOC LU        512x384: |A - LU|/|A| = "
      f"{np.abs(L @ U - a).max() / np.abs(a).max():.2e} "
      f"({lu.info.n_panels} panels, {lu.info.n_trsm} TRSMs, "
      f"{lu.movement.h2d_bytes / 1e6:.0f} MB in)")

s = spd_matrix(384, seed=2)
ch = ooc_cholesky(s, method="recursive", blocksize=64, device_memory=device)
Lc = ch.lower()
ref = np.linalg.cholesky(s.astype(np.float64))
print(f"OOC Cholesky  384x384: |A - LLt|/|A| = "
      f"{np.abs(Lc @ Lc.T - s).max() / np.abs(s).max():.2e}, "
      f"max |L - numpy| = {np.abs(Lc - ref).max():.2e}")

# solve an SPD system through the OOC factor
x_true = np.linspace(-1, 1, 384).astype(np.float32)
b = s @ x_true
y = scipy.linalg.solve_triangular(Lc.astype(np.float64), b, lower=True)
x = scipy.linalg.solve_triangular(Lc.T.astype(np.float64), y, lower=False)
print(f"SPD solve via OOC Cholesky: |x - x_true|_inf = {np.abs(x - x_true).max():.2e}")

# -- simulated: the §5.2 memory-pressure experiment, all factorizations -----

print("\nrecursive-vs-blocking speedup at paper scale (131072^2, simulated):")
rows = []
for label, cfg, bs in (("32 GB, b=16384", PAPER_SYSTEM, 16384),
                       ("16 GB, b=8192", PAPER_SYSTEM_16GB, 8192)):
    row = [label]
    for _kind, fn in (("QR", ooc_qr), ("LU", ooc_lu), ("Cholesky", ooc_cholesky)):
        rec = fn((131072, 131072), method="recursive", mode="sim",
                 config=cfg, blocksize=bs)
        blk = fn((131072, 131072), method="blocking", mode="sim",
                 config=cfg, blocksize=bs)
        row.append(f"{blk.makespan / rec.makespan:.2f}x")
    rows.append(row)
print(render_table(["configuration", "QR", "LU", "Cholesky"], rows))
print("recursion helps every factorization once memory gets tight —")
print("the paper's §6 conjecture, measured.")
