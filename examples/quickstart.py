#!/usr/bin/env python3
"""Quickstart: out-of-core QR in five lines, numerically and simulated.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench.workloads import random_tall
from repro.qr import ooc_qr
from repro.qr.cgs import factorization_error, orthogonality_error

# ---------------------------------------------------------------------------
# 1. Numeric mode: really factorize a matrix that does NOT fit on the
#    (here: deliberately tiny, 2 MiB) device. The library tiles it, streams
#    it through simulated device memory, and computes with TensorCore
#    numerics emulation (fp16 inputs, fp32 accumulation).
# ---------------------------------------------------------------------------
a = random_tall(2048, 512, seed=7)          # 4 MB of fp32 — 2x device memory
result = ooc_qr(a, method="recursive", blocksize=128, device_memory=2 << 20)

print("numeric out-of-core QR (2048 x 512, 2 MiB device memory)")
print(f"  residual  |A - QR|/|A| : {factorization_error(a, result.q, result.r):.2e}")
print(f"  orthogonality |QtQ - I|: {orthogonality_error(result.q):.2e}")
print(f"  R upper triangular     : {np.allclose(np.triu(result.r), result.r)}")
print(f"  PCIe traffic           : {result.movement.h2d_bytes / 1e6:.1f} MB in, "
      f"{result.movement.d2h_bytes / 1e6:.1f} MB out")
print(f"  panels / GEMM calls    : {result.info.n_panels} / {result.stats.n_gemms}")

# ---------------------------------------------------------------------------
# 2. Simulated mode: the paper's headline experiment — a 131072^2 matrix
#    (68 GB, far beyond any GPU) on the V100 testbed, in milliseconds of
#    wall time. Pass a shape instead of data.
# ---------------------------------------------------------------------------
print("\nsimulated paper-scale QR (131072 x 131072 on V100-32GB)")
runs = {}
for method in ("recursive", "blocking"):
    sim = ooc_qr((131072, 131072), method=method, mode="sim", blocksize=16384)
    runs[method] = sim
    print(f"  {method:10s}: {sim.makespan:6.1f} s simulated, "
          f"{sim.achieved_tflops:5.1f} TFLOPS, "
          f"{sim.movement.h2d_bytes / 1e9:6.1f} GB moved in")

print(f"  recursion speedup: "
      f"{runs['blocking'].makespan / runs['recursive'].makespan:.2f}x  "
      "(paper: ~1.25x at 32 GB)")
