#!/usr/bin/env python3
"""Regenerate the paper's full evaluation section (§5) in one run.

Every table (1-4), every figure (7-15), the §5.3 headline, the §4
ablations, the §6 extensions and projections — each printed as a
paper-vs-measured report with PASS/FAIL shape checks and ASCII timelines.

This is a thin wrapper over ``python -m repro experiments`` so the
experiment registry lives in exactly one place (repro/cli.py).

Run:  python examples/paper_evaluation.py            # everything (~2 min)
      python examples/paper_evaluation.py T1 F13 S8  # selected experiments
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["experiments", *sys.argv[1:]]))
