#!/usr/bin/env python3
"""Survey: where does recursion win, and by how much?

Sweeps GPU generations x problem sizes x blocksizes through the event
simulator and the analytic predictor, printing the recursive-vs-blocking
speedup surface — the §6 outlook ("the gap between computation speed and
data movement speed is likely going to continue to increase") made
quantitative.

Run:  python examples/gpu_survey.py
"""

from repro.config import SystemConfig
from repro.hw.specs import A100_40GB, RTX2080TI, RTX3090, V100_16GB, V100_32GB
from repro.models.overlap import machine_balance, overlap_threshold
from repro.models.predict import predicted_speedup
from repro.qr import QrOptions, ooc_qr
from repro.util.tables import render_table

GPUS = [V100_32GB, V100_16GB, A100_40GB, RTX3090, RTX2080TI]
PROBLEMS = [(65536, 65536, 8192), (131072, 131072, 8192), (131072, 131072, 16384)]


def sim_speedup(config, m, n, b):
    opts = QrOptions(blocksize=b)
    rec = ooc_qr((m, n), method="recursive", mode="sim", config=config, options=opts)
    blk = ooc_qr((m, n), method="blocking", mode="sim", config=config, options=opts)
    return blk.makespan / rec.makespan, rec


rows = []
for gpu in GPUS:
    config = SystemConfig(gpu=gpu)
    for m, n, b in PROBLEMS:
        if n * b * 4 * 2 > gpu.mem_bytes:      # panel alone must fit twice
            continue
        speedup, rec = sim_speedup(config, m, n, b)
        rows.append(
            [
                gpu.name,
                f"{m}x{n}",
                b,
                f"{speedup:.2f}x",
                f"{predicted_speedup(config, m, n, b):.2f}x",
                f"{rec.achieved_tflops:.0f} TF",
            ]
        )

print(render_table(
    ["GPU", "matrix", "blocksize", "sim speedup", "analytic", "rec rate"],
    rows,
    title="recursive vs blocking OOC QR across hardware",
))

print("\nmachine balance (flops per fp32 element over PCIe) and the §3.3")
print("overlap threshold m* = 4 R_g / R_m — blocking needs its *panel*")
print("above m*/2, recursion only the *matrix half*:")
bal_rows = [
    [g.name, f"{machine_balance(g):,.0f}", f"{overlap_threshold(g):,.0f}"]
    for g in GPUS
]
print(render_table(["GPU", "balance", "threshold m*"], bal_rows))
