#!/usr/bin/env python3
"""Two-level out-of-core: disk -> host -> (simulated) device.

The paper's OOC hierarchy is host RAM -> GPU memory; this example pushes it
one level further by backing the host matrix with a ``numpy.memmap``, so
the operand never needs to fit in RAM either — the same pattern the 1990s
SOLAR library (§2.1) used for disk-resident matrices.

Run:  python examples/disk_out_of_core.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.config import SystemConfig
from repro.execution.numeric import NumericExecutor
from repro.host.tiled import HostMatrix
from repro.hw.specs import GpuSpec
from repro.qr.cgs import factorization_error
from repro.qr.options import QrOptions
from repro.qr.recursive import ooc_recursive_qr

m, n = 16384, 1024          # 64 MB on disk
device_memory = 48 << 20    # 48 MiB simulated device

toy_gpu = GpuSpec(
    name="toy",
    mem_bytes=device_memory,
    tc_peak_flops=10e12,
    cuda_peak_flops=1e12,
    h2d_bytes_per_s=10e9,
    d2h_bytes_per_s=11e9,
    d2d_bytes_per_s=200e9,
)
config = SystemConfig(gpu=toy_gpu)

with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "A.dat"
    print(f"writing {m}x{n} fp32 matrix ({m * n * 4 / 1e6:.0f} MB) to {path.name}")
    mm = np.memmap(path, dtype=np.float32, mode="w+", shape=(m, n))
    rng = np.random.default_rng(3)
    for row0 in range(0, m, 4096):          # fill in slabs, RAM-friendly
        mm[row0 : row0 + 4096] = rng.standard_normal((4096, n)).astype(np.float32)
    mm.flush()

    # keep a checksum instead of a full copy (the factorization is in place)
    sample_rows = rng.choice(m, size=256, replace=False)
    a_sample = np.array(mm[np.sort(sample_rows)])

    host_a = HostMatrix.from_array(mm, name="A")
    host_r = HostMatrix.zeros(n, n, name="R")
    ex = NumericExecutor(config)

    print(f"factorizing out of core (device = {device_memory >> 20} MiB)...")
    info = ooc_recursive_qr(ex, host_a, host_r, QrOptions(blocksize=256))
    mm.flush()

    err = factorization_error(
        a_sample, np.array(mm[np.sort(sample_rows)]), host_r.data
    )
    print(f"  panels: {info.n_panels}, inner products: {info.n_inner}, "
          f"outer products: {info.n_outer}")
    print(f"  sampled residual |A - QR|/|A| : {err:.2e}")
    print(f"  H2D {ex.stats.h2d_bytes / 1e6:.0f} MB, "
          f"D2H {ex.stats.d2h_bytes / 1e6:.0f} MB, "
          f"{ex.stats.n_gemms} device GEMMs")
    assert err < 1e-2
    print(f"OK: disk-resident matrix factorized through a "
          f"{device_memory >> 20} MiB device")
