#!/usr/bin/env python3
"""Two-level out-of-core: disk -> host -> (simulated) device.

The paper's OOC hierarchy is host RAM -> GPU memory; this example pushes it
one level further by backing the host matrix with a ``numpy.memmap``, so
the operand never needs to fit in RAM either — the same pattern the 1990s
SOLAR library (§2.1) used for disk-resident matrices.

Act 2 kills a checkpointed run mid-factorization and resumes it: for a
memmap-backed matrix the finished column prefix is already durable in the
matrix's own file, so the checkpoint payload holds only the small mutable
tail (docs/checkpoint.md).

Run:  python examples/disk_out_of_core.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.ckpt import (
    CheckpointConfig,
    CheckpointManager,
    CheckpointSession,
    run_fingerprint,
)
from repro.config import SystemConfig
from repro.execution.numeric import NumericExecutor
from repro.host.tiled import HostMatrix
from repro.hw.specs import GpuSpec
from repro.qr.api import ooc_qr
from repro.qr.cgs import factorization_error
from repro.qr.options import QrOptions
from repro.qr.recursive import ooc_recursive_qr

m, n = 16384, 1024          # 64 MB on disk
device_memory = 48 << 20    # 48 MiB simulated device

toy_gpu = GpuSpec(
    name="toy",
    mem_bytes=device_memory,
    tc_peak_flops=10e12,
    cuda_peak_flops=1e12,
    h2d_bytes_per_s=10e9,
    d2h_bytes_per_s=11e9,
    d2d_bytes_per_s=200e9,
)
config = SystemConfig(gpu=toy_gpu)

with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "A.dat"
    print(f"writing {m}x{n} fp32 matrix ({m * n * 4 / 1e6:.0f} MB) to {path.name}")
    mm = np.memmap(path, dtype=np.float32, mode="w+", shape=(m, n))
    rng = np.random.default_rng(3)
    for row0 in range(0, m, 4096):          # fill in slabs, RAM-friendly
        mm[row0 : row0 + 4096] = rng.standard_normal((4096, n)).astype(np.float32)
    mm.flush()

    # keep a checksum instead of a full copy (the factorization is in place)
    sample_rows = rng.choice(m, size=256, replace=False)
    a_sample = np.array(mm[np.sort(sample_rows)])

    host_a = HostMatrix.from_array(mm, name="A")
    host_r = HostMatrix.zeros(n, n, name="R")
    ex = NumericExecutor(config)

    print(f"factorizing out of core (device = {device_memory >> 20} MiB)...")
    info = ooc_recursive_qr(ex, host_a, host_r, QrOptions(blocksize=256))
    mm.flush()

    err = factorization_error(
        a_sample, np.array(mm[np.sort(sample_rows)]), host_r.data
    )
    print(f"  panels: {info.n_panels}, inner products: {info.n_inner}, "
          f"outer products: {info.n_outer}")
    print(f"  sampled residual |A - QR|/|A| : {err:.2e}")
    print(f"  H2D {ex.stats.h2d_bytes / 1e6:.0f} MB, "
          f"D2H {ex.stats.d2h_bytes / 1e6:.0f} MB, "
          f"{ex.stats.n_gemms} device GEMMs")
    assert err < 1e-2
    print(f"OK: disk-resident matrix factorized through a "
          f"{device_memory >> 20} MiB device")

    # -- act 2: crash mid-run, resume from the checkpoint ----------------

    class CrashingExecutor(NumericExecutor):
        """Raises after the Nth device GEMM — a stand-in for the process
        dying (OOM-kill, preemption, power loss)."""

        def __init__(self, cfg, crash_after):
            super().__init__(cfg)
            self.remaining = crash_after

        def gemm(self, *args, **kwargs):
            if self.remaining == 0:
                raise RuntimeError("simulated crash")
            self.remaining -= 1
            return super().gemm(*args, **kwargs)

    m2, n2 = 8192, 512
    path2 = Path(tmp) / "B.dat"
    print(f"\nwriting {m2}x{n2} matrix to {path2.name} for the crash demo")
    host_b = HostMatrix.memmap(path2, m2, n2, name="B")
    host_b.data[:] = rng.standard_normal((m2, n2)).astype(np.float32)
    host_b.data.flush()
    b_sample = np.array(host_b.data[:256])

    opts = QrOptions(blocksize=128)
    ck = CheckpointConfig(Path(tmp) / "ckpt")
    fp = run_fingerprint("qr", "recursive", m2, n2, config, opts)

    host_r2 = HostMatrix.zeros(n2, n2, name="R")
    crashing = CrashingExecutor(config, crash_after=2)
    session = CheckpointSession(
        CheckpointManager(ck, fingerprint=fp),
        crashing, {"a": host_b, "r": host_r2},
    )
    try:
        ooc_recursive_qr(crashing, host_b, host_r2, opts, checkpoint=session)
        raise SystemExit("expected the simulated crash")
    except RuntimeError:
        print(f"  crashed after {session.stats.checkpoints_written} "
              f"checkpoint(s), {session.stats.checkpoint_bytes >> 10} KiB "
              f"of payload (prefix lives in {path2.name} itself)")

    # "restart the process": reopen the matrix file and hand the same
    # checkpoint directory to the public API
    host_b = HostMatrix.memmap(path2, m2, n2, mode="r+", name="B")
    result = ooc_qr(host_b, method="recursive", config=config, options=opts,
                    checkpoint=ck)
    print(f"  resumed: skipped {result.ckpt.steps_skipped} completed "
          f"step(s), {result.ckpt.resumes} resume")
    err2 = factorization_error(b_sample, np.array(host_b.data[:256]),
                               result.r)
    print(f"  sampled residual after resume: {err2:.2e}")
    assert result.ckpt.steps_skipped > 0
    assert err2 < 1e-2
    print("OK: crash + resume produced a valid factorization")
