"""Differential equivalence: DAG runtime vs legacy executors.

For every engine migrated to the DAG runtime (blocking QR, recursive QR,
both OOC GEMM engines), the same problem is run on the legacy imperative
path and on ``runtime="dag"`` — serial and concurrent, power-of-two and
ragged shapes — and the results must be *bitwise* identical. On top of
the numeric identity, recorded programs must be node-for-node comparable:
the task graph emits exactly the ops a capture of the legacy run records,
in the same order, and every dataflow edge the graph derives is ordered
the same way by the legacy program's happens-before closure.

Finally, ``verify_program`` must accept the task graphs *directly* —
race-free, leak-free, exact peak within budget, §3.2 transfer volume —
with no capture pass (the tentpole's acceptance criterion).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import verify_program
from repro.analysis.engines import capture_gemm, capture_qr
from repro.config import SystemConfig
from repro.errors import ValidationError
from repro.hw.gemm import Precision
from repro.ooc.api import ooc_gemm
from repro.qr.api import ooc_qr
from repro.runtime import (
    ENGINE_RUNTIME_STATUS,
    GRAPH_BUILDERS,
    build_gemm_graph,
    build_qr_graph,
    edges_consistent,
    node_signature,
    verify_engine_graph,
)
from repro.util.rng import default_rng, stable_seed
from tests.conftest import make_tiny_spec

#: (tag, m, n) QR shapes: power-of-two and ragged (non-multiple of b).
QR_SHAPES = [("pow2", 128, 64), ("ragged", 150, 70)]
#: (tag, m, n, k) GEMM shapes.
GEMM_SHAPES = [("pow2", 64, 64, 128), ("ragged", 90, 70, 130)]
BLOCK = 16
CONCURRENCY = ["serial", "threads"]


def _config() -> SystemConfig:
    return SystemConfig(gpu=make_tiny_spec(), precision=Precision.FP32)


def _matrix(*parts, shape) -> np.ndarray:
    rng = default_rng(stable_seed("runtime-differential", *parts))
    return rng.standard_normal(shape).astype(np.float32)


class TestQrBitwise:
    @pytest.mark.parametrize("concurrency", CONCURRENCY)
    @pytest.mark.parametrize("tag,m,n", QR_SHAPES)
    @pytest.mark.parametrize("method", ["blocking", "recursive"])
    def test_qr_bitwise_identical(self, method, tag, m, n, concurrency):
        cfg = _config()
        a = _matrix("qr", method, tag, shape=(m, n))
        legacy = ooc_qr(a, method=method, config=cfg, blocksize=BLOCK)
        dag = ooc_qr(
            a, method=method, config=cfg, blocksize=BLOCK,
            runtime="dag", concurrency=concurrency,
        )
        assert np.array_equal(legacy.q, dag.q)
        assert np.array_equal(legacy.r, dag.r)
        # identical movement accounting, not merely identical numbers
        assert legacy.stats.h2d_bytes == dag.stats.h2d_bytes
        assert legacy.stats.d2h_bytes == dag.stats.d2h_bytes
        assert legacy.stats.n_panels == dag.stats.n_panels
        assert legacy.stats.n_gemms == dag.stats.n_gemms

    @pytest.mark.parametrize("method", ["blocking", "recursive"])
    def test_qr_threads_trace_recorded(self, method):
        cfg = _config()
        a = _matrix("qr-trace", method, shape=(128, 64))
        dag = ooc_qr(
            a, method=method, config=cfg, blocksize=BLOCK,
            runtime="dag", concurrency="threads",
        )
        assert dag.trace is not None
        assert dag.trace.makespan > 0.0
        dag.trace.check_causality()


class TestGemmBitwise:
    @pytest.mark.parametrize("concurrency", CONCURRENCY)
    @pytest.mark.parametrize("tag,m,n,k", GEMM_SHAPES)
    def test_inner_bitwise_identical(self, tag, m, n, k, concurrency):
        cfg = _config()
        a = _matrix("gemm-inner", tag, "a", shape=(k, m))
        b = _matrix("gemm-inner", tag, "b", shape=(k, n))
        legacy = ooc_gemm(a, b, trans_a=True, config=cfg, blocksize=32)
        dag = ooc_gemm(
            a, b, trans_a=True, config=cfg, blocksize=32,
            runtime="dag", concurrency=concurrency,
        )
        assert np.array_equal(legacy.c, dag.c)
        assert legacy.stats.h2d_bytes == dag.stats.h2d_bytes

    @pytest.mark.parametrize("concurrency", CONCURRENCY)
    @pytest.mark.parametrize("tag,m,n,k", GEMM_SHAPES)
    def test_outer_bitwise_identical(self, tag, m, n, k, concurrency):
        cfg = _config()
        a = _matrix("gemm-outer", tag, "a", shape=(m, k))
        b = _matrix("gemm-outer", tag, "b", shape=(k, n))
        c = _matrix("gemm-outer", tag, "c", shape=(m, n))
        legacy = ooc_gemm(
            a, b, alpha=-1.0, beta=1.0, c=c, config=cfg, blocksize=32
        )
        dag = ooc_gemm(
            a, b, alpha=-1.0, beta=1.0, c=c, config=cfg, blocksize=32,
            runtime="dag", concurrency=concurrency,
        )
        assert np.array_equal(legacy.c, dag.c)
        assert legacy.stats.d2h_bytes == dag.stats.d2h_bytes


class TestProgramEquivalence:
    """The graph is node-for-node the legacy program."""

    @pytest.mark.parametrize("tag,m,n", QR_SHAPES)
    @pytest.mark.parametrize("method", ["blocking", "recursive"])
    def test_qr_node_for_node(self, method, tag, m, n):
        cfg = _config()
        graph = build_qr_graph(cfg, m, n, BLOCK, method=method)
        capture = capture_qr(cfg, m, n, BLOCK, method=method)
        assert node_signature(graph.ops) == node_signature(capture.ops)
        assert edges_consistent(graph.ops, capture.ops)
        # allocator logs line up event-for-event too
        assert [
            (e.kind, e.name, e.nbytes, e.position) for e in graph.mem_events
        ] == [
            (e.kind, e.name, e.nbytes, e.position) for e in capture.mem_events
        ]

    @pytest.mark.parametrize("kind", ["inner", "outer"])
    def test_gemm_node_for_node(self, kind):
        cfg = _config()
        graph = build_gemm_graph(cfg, 64, 64, 128, 32, kind=kind)
        capture = capture_gemm(cfg, 64, 64, 128, 32, kind=kind)
        assert node_signature(graph.ops) == node_signature(capture.ops)
        assert edges_consistent(graph.ops, capture.ops)

    def test_sim_mode_matches_legacy_accounting(self):
        cfg = _config()
        legacy = ooc_qr((1024, 256), method="recursive", config=cfg,
                        blocksize=64)
        dag = ooc_qr((1024, 256), method="recursive", config=cfg,
                     blocksize=64, runtime="dag")
        assert dag.stats.h2d_bytes == legacy.stats.h2d_bytes
        assert dag.stats.d2h_bytes == legacy.stats.d2h_bytes
        assert dag.trace is not None and dag.trace.makespan > 0.0


class TestGraphVerification:
    """verify_program consumes the DAG directly (no capture pass)."""

    @pytest.mark.parametrize(
        "name",
        [n for n, status in ENGINE_RUNTIME_STATUS.items() if status == "dag"],
    )
    def test_migrated_engine_graphs_verify_clean(self, name):
        report = verify_engine_graph(name, _config())
        assert report.ok, [str(f) for f in report.findings]

    @pytest.mark.parametrize(
        "name",
        [n for n, s in ENGINE_RUNTIME_STATUS.items() if s == "graph-adapter"],
    )
    def test_adapter_engine_graphs_verify_clean(self, name):
        # LU/Cholesky stay on the legacy execution path, but their
        # registered graph adapters must already verify for the follow-up
        report = verify_engine_graph(name, _config())
        assert report.ok, [str(f) for f in report.findings]

    def test_registry_covers_status_map(self):
        assert set(GRAPH_BUILDERS) == set(ENGINE_RUNTIME_STATUS)

    @pytest.mark.parametrize("tag,m,n", QR_SHAPES)
    def test_qr_graph_verifies_directly(self, tag, m, n):
        cfg = _config()
        graph = build_qr_graph(cfg, m, n, BLOCK, method="recursive")
        report = verify_program(graph, input_floor_words=m * n)
        assert report.ok, [str(f) for f in report.findings]
        assert report.peak_bytes > 0
        assert report.peak_bytes <= cfg.usable_device_bytes


class TestTsqrMigration:
    """TSQR panels execute through ``runtime="dag"`` (migrated with the
    ``repro.dist`` PR — the sharded numeric backend's bitwise chain ends
    at this path)."""

    def test_tsqr_status_is_dag(self):
        assert ENGINE_RUNTIME_STATUS["qr-tsqr"] == "dag"

    @pytest.mark.parametrize("concurrency", CONCURRENCY)
    @pytest.mark.parametrize("tag,m,n", QR_SHAPES)
    def test_tsqr_bitwise_identical(self, tag, m, n, concurrency):
        cfg = replace(_config(), panel_algorithm="tsqr")
        a = _matrix("qr-tsqr", tag, shape=(m, n))
        legacy = ooc_qr(a, method="recursive", config=cfg, blocksize=BLOCK)
        dag = ooc_qr(
            a, method="recursive", config=cfg, blocksize=BLOCK,
            runtime="dag", concurrency=concurrency,
        )
        assert np.array_equal(legacy.q, dag.q)
        assert np.array_equal(legacy.r, dag.r)
        assert legacy.stats.h2d_bytes == dag.stats.h2d_bytes
        assert legacy.stats.d2h_bytes == dag.stats.d2h_bytes


class TestRuntimeGates:
    def test_dag_rejects_hybrid(self):
        with pytest.raises(ValidationError):
            ooc_qr(
                _matrix("gate", shape=(64, 32)), mode="hybrid",
                config=_config(), blocksize=16, runtime="dag",
            )

    def test_dag_rejects_checkpoint(self, tmp_path):
        from repro.ckpt import CheckpointConfig

        with pytest.raises(ValidationError):
            ooc_qr(
                _matrix("gate", shape=(64, 32)), config=_config(),
                blocksize=16, runtime="dag",
                checkpoint=CheckpointConfig(str(tmp_path)),
            )

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValidationError):
            ooc_qr(
                _matrix("gate", shape=(64, 32)), config=_config(),
                blocksize=16, runtime="speculative",
            )
