"""Tests for the open-loop serve load generator (repro.bench.loadgen)."""

from __future__ import annotations

import json

import pytest

from repro.bench.loadgen import (
    LATENCY_KEYS,
    SCHEMA_VERSION,
    arrival_schedule,
    run_loadgen,
)
from repro.errors import ValidationError
from repro.obs import SpanRecorder

#: One small, fast run shared by most assertions (module-scoped: the
#: loadgen really drives the service, so we pay for it once).
N_JOBS = 10


@pytest.fixture(scope="module")
def result():
    return run_loadgen(
        N_JOBS, rate_jobs_s=500.0, workers=2, size=48, blocksize=16, seed=0
    )


class TestArrivalSchedule:
    def test_deterministic_for_a_seed(self):
        assert arrival_schedule(20, 100.0, seed=5) == \
            arrival_schedule(20, 100.0, seed=5)
        assert arrival_schedule(20, 100.0, seed=5) != \
            arrival_schedule(20, 100.0, seed=6)

    def test_monotone_increasing(self):
        times = arrival_schedule(50, 250.0, seed=1)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_gap_tracks_rate(self):
        times = arrival_schedule(2000, 100.0, seed=2)
        assert times[-1] / len(times) == pytest.approx(1 / 100.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            arrival_schedule(-1, 100.0)
        with pytest.raises(ValidationError):
            arrival_schedule(10, 0.0)


class TestLoadgenRun:
    def test_every_job_accounted_for(self, result):
        assert result.submitted + result.rejected == N_JOBS
        assert result.completed + result.failed == result.submitted
        assert result.failed == 0

    def test_goodput_positive(self, result):
        assert result.goodput_jobs_s > 0
        assert result.wall_s > 0

    def test_percentiles_monotone(self, result):
        lat = result.latency_s
        assert 0 < lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]
        assert lat["p50"] <= lat["max"]

    def test_metrics_snapshot_included(self, result):
        # the service's own registry, not a parallel accounting path
        assert result.metrics["jobs_completed"]["value"] == result.completed
        assert result.metrics["turnaround_s"]["count"] == result.completed


class TestBenchServeJson:
    def test_schema(self, result, tmp_path):
        path = result.write(tmp_path / "BENCH_serve.json")
        doc = json.loads(path.read_text())
        assert list(doc) == [
            "bench", "schema_version", "generated_by", "params", "jobs",
            "latency_s", "goodput_jobs_s", "wall_s", "metrics",
        ]
        assert doc["bench"] == "serve-loadgen"
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["generated_by"] == "repro.bench.loadgen"
        assert list(doc["latency_s"]) == list(LATENCY_KEYS)
        assert doc["jobs"]["submitted"] == result.submitted
        assert doc["goodput_jobs_s"] == pytest.approx(result.goodput_jobs_s)

    def test_params_recorded(self, result):
        doc = result.to_json()
        assert doc["params"]["n_jobs"] == N_JOBS
        assert doc["params"]["rate_jobs_s"] == 500.0
        assert doc["params"]["mix"] == ["qr", "gemm", "lu", "cholesky"]

    def test_render_mentions_goodput(self, result):
        out = result.render()
        assert "goodput" in out and "latency p99" in out


class TestLoadgenWithSpans:
    def test_job_root_spans_recorded(self):
        rec = SpanRecorder()
        result = run_loadgen(
            6, rate_jobs_s=500.0, workers=2, size=48, blocksize=16,
            seed=1, mix=("qr", "gemm"), obs=rec,
        )
        spans = rec.spans()
        roots = [s for s in spans if s.cat == "job"]
        assert len(roots) == result.submitted + result.rejected
        completed = [s for s in roots if s.attrs.get("outcome") == "completed"]
        assert len(completed) == result.completed
        root_ids = {s.span_id for s in roots}
        children = [s for s in spans if s.cat == "serve"]
        assert children and all(s.parent_id in root_ids for s in children)
