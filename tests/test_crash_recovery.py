"""Crash-recovery acceptance tests for the checkpoint subsystem.

The fault-injection wrappers from tests/test_fault_injection.py kill a
checkpointed run at every (or a spread of) operation index(es); a second
run pointed at the same checkpoint directory must restore state, skip the
completed prefix, and produce output *bitwise identical* to an
uninterrupted run — under both the serial and the per-engine-threaded
executor. Also covered: the two-level OOC case (memmap-backed HostMatrix
resumed in-place from disk), the service's retry-with-resume path, and
typed refusals surfacing through the public API.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointConfig,
    CheckpointManager,
    CheckpointSession,
    run_fingerprint,
)
from repro.ckpt.manager import MANIFEST_NAME
from repro.errors import CheckpointError, ValidationError
from repro.factor.cholesky import ooc_blocking_cholesky, ooc_recursive_cholesky
from repro.factor.lu import ooc_blocking_lu, ooc_recursive_lu
from repro.host.tiled import HostMatrix
from repro.qr.api import ooc_qr
from repro.qr.blocking import ooc_blocking_qr
from repro.qr.options import QrOptions
from repro.qr.recursive import ooc_recursive_qr
from tests.test_fault_injection import (
    FaultyExecutor,
    InjectedFault,
    WorkerFaultyExecutor,
    _config,
)

N = 64
OPTS = QrOptions(blocksize=16)
A_QR = np.random.default_rng(11).standard_normal((N, N)).astype(np.float32)

QR_DRIVERS = [ooc_recursive_qr, ooc_blocking_qr]
QR_IDS = [d.__name__ for d in QR_DRIVERS]


def _session(ex, ckdir, mats, fingerprint):
    mgr = CheckpointManager(CheckpointConfig(ckdir), fingerprint=fingerprint)
    return CheckpointSession(mgr, ex, mats)


def _qr_attempt(driver, ex, ckdir=None):
    """One QR run (fresh host matrices each attempt, as after a crash)."""
    a = HostMatrix.from_array(A_QR.copy())
    r = HostMatrix.zeros(N, N)
    session = None
    if ckdir is not None:
        session = _session(ex, ckdir, {"a": a, "r": r}, driver.__name__)
    driver(ex, a, r, OPTS, checkpoint=session)
    return a, r, session


@pytest.mark.parametrize("driver", QR_DRIVERS, ids=QR_IDS)
class TestKillAtEveryOpSerial:
    """ISSUE acceptance: kill at every op index, resume, bitwise equal."""

    def test_resume_is_bitwise_identical(self, driver, tmp_path):
        ref_ex = FaultyExecutor(_config())
        q_ref, r_ref, _ = _qr_attempt(driver, ref_ex)
        total = ref_ex.op_counter
        assert total > 10

        any_skipped = False
        for fail_at in range(1, total + 1):
            ckdir = tmp_path / f"ck-{fail_at}"
            ex = FaultyExecutor(_config(), fail_at=fail_at)
            with pytest.raises(InjectedFault):
                _qr_attempt(driver, ex, ckdir)
            ex.allocator.check_balanced()

            resumed = FaultyExecutor(_config())
            q, r, session = _qr_attempt(driver, resumed, ckdir)
            resumed.allocator.check_balanced()
            np.testing.assert_array_equal(q.data, q_ref.data)
            np.testing.assert_array_equal(r.data, r_ref.data)
            any_skipped = any_skipped or session.stats.steps_skipped > 0
            if fail_at == total:
                # everything but the uncommitted final step was skipped
                assert session.stats.resumes == 1
                assert session.stats.steps_skipped >= 1
        assert any_skipped


@pytest.mark.parametrize("driver", QR_DRIVERS, ids=QR_IDS)
class TestKillAtEveryOpThreads:
    """Same sweep with faults inside the concurrent executor's worker
    threads; the resumed result must stay bitwise equal to *serial*."""

    def test_resume_is_bitwise_identical(self, driver, tmp_path):
        serial_ex = FaultyExecutor(_config())
        q_ref, r_ref, _ = _qr_attempt(driver, serial_ex)

        probe = WorkerFaultyExecutor(_config())
        try:
            q_t, r_t, _ = _qr_attempt(driver, probe)
            probe.synchronize()
            total = probe.op_counter
            # cross-executor identity of the uninterrupted run
            np.testing.assert_array_equal(q_t.data, q_ref.data)
            np.testing.assert_array_equal(r_t.data, r_ref.data)
        finally:
            probe.close()
        assert total > 10

        any_skipped = False
        for fail_at in range(1, total + 1):
            ckdir = tmp_path / f"ck-{fail_at}"
            ex = WorkerFaultyExecutor(_config(), fail_at=fail_at)
            try:
                with pytest.raises(InjectedFault):
                    _qr_attempt(driver, ex, ckdir)
                    # late faults may only surface at the drain
                    ex.synchronize()
                ex.allocator.check_balanced()
            finally:
                ex.close()

            resumed = WorkerFaultyExecutor(_config())
            try:
                q, r, session = _qr_attempt(driver, resumed, ckdir)
                resumed.synchronize()
                resumed.allocator.check_balanced()
                np.testing.assert_array_equal(q.data, q_ref.data)
                np.testing.assert_array_equal(r.data, r_ref.data)
                any_skipped = any_skipped or session.stats.steps_skipped > 0
            finally:
                resumed.close()
        assert any_skipped


FACTOR_DRIVERS = [
    ooc_blocking_lu,
    ooc_recursive_lu,
    ooc_blocking_cholesky,
    ooc_recursive_cholesky,
]


def _factor_input(driver):
    if driver in (ooc_blocking_lu, ooc_recursive_lu):
        from repro.factor.incore import diagonally_dominant

        return diagonally_dominant(N, N, seed=5)
    from repro.factor.incore import spd_matrix

    return spd_matrix(N, seed=5)


@pytest.mark.parametrize("driver", FACTOR_DRIVERS,
                         ids=[d.__name__ for d in FACTOR_DRIVERS])
class TestFactorResume:
    """LU / Cholesky: fail at a spread of points, resume bitwise."""

    def test_resume_is_bitwise_identical(self, driver, tmp_path):
        a_np = _factor_input(driver)

        def attempt(ex, ckdir=None):
            a = HostMatrix.from_array(a_np.copy())
            session = None
            if ckdir is not None:
                session = _session(ex, ckdir, {"a": a}, driver.__name__)
            driver(ex, a, OPTS, checkpoint=session)
            return a, session

        ref_ex = FaultyExecutor(_config())
        a_ref, _ = attempt(ref_ex)
        total = ref_ex.op_counter
        assert total > 10

        points = sorted({total // 4, total // 2, 3 * total // 4, total})
        for fail_at in points:
            ckdir = tmp_path / f"ck-{fail_at}"
            ex = FaultyExecutor(_config(), fail_at=fail_at)
            with pytest.raises(InjectedFault):
                attempt(ex, ckdir)
            ex.allocator.check_balanced()

            resumed = FaultyExecutor(_config())
            a, session = attempt(resumed, ckdir)
            np.testing.assert_array_equal(a.data, a_ref.data)
        # the last point faulted on the very last op: everything but the
        # final step must have been skipped on its resume
        assert session.stats.resumes == 1
        assert session.stats.steps_skipped >= 1


class TestMemmapResume:
    """ISSUE satellite: two-level OOC — a memmap-backed HostMatrix killed
    mid-run resumes from its own on-disk file (in-place mode: only the
    mutable tail is in the checkpoint payload)."""

    def test_crash_and_resume_from_disk(self, tmp_path):
        from repro.execution.numeric import NumericExecutor

        ref = HostMatrix.from_array(A_QR.copy())
        r_ref = HostMatrix.zeros(N, N)
        ooc_recursive_qr(NumericExecutor(_config()), ref, r_ref, OPTS)

        probe = FaultyExecutor(_config())
        _qr_attempt(ooc_recursive_qr, probe)
        fail_at = 2 * probe.op_counter // 3

        a_path = tmp_path / "a.dat"
        mat = HostMatrix.memmap(a_path, N, N)
        mat.data[:] = A_QR
        mat.data.flush()

        ckdir = tmp_path / "ck"
        ex = FaultyExecutor(_config(), fail_at=fail_at)
        r1 = HostMatrix.zeros(N, N)
        session = _session(ex, ckdir, {"a": mat, "r": r1}, "memmap-qr")
        with pytest.raises(InjectedFault):
            ooc_recursive_qr(ex, mat, r1, OPTS, checkpoint=session)
        ex.allocator.check_balanced()

        manifest = CheckpointManager(
            CheckpointConfig(ckdir), fingerprint="memmap-qr"
        ).load_manifest()
        assert manifest is not None
        assert manifest["matrices"]["a"]["mode"] == "inplace"
        assert manifest["matrices"]["r"]["mode"] == "copy"

        # "restart the process": drop the mapping, reopen the file
        del mat
        reopened = HostMatrix.memmap(a_path, N, N, mode="r+")
        r2 = HostMatrix.zeros(N, N)
        resumed = FaultyExecutor(_config())
        session2 = _session(resumed, ckdir, {"a": reopened, "r": r2},
                            "memmap-qr")
        ooc_recursive_qr(resumed, reopened, r2, OPTS, checkpoint=session2)
        assert session2.stats.resumes == 1
        assert session2.stats.steps_skipped >= 1
        np.testing.assert_array_equal(np.asarray(reopened.data), ref.data)
        np.testing.assert_array_equal(r2.data, r_ref.data)


class TestServeRetryResume:
    """ISSUE acceptance: a service retry of a checkpointed job resumes
    instead of recomputing — ≥1 step skipped, nonzero resume metrics."""

    def test_retry_resumes_from_checkpoint(self, tmp_path):
        from repro.serve.job import JobSpec
        from repro.serve.service import FactorService, run_job

        spec = JobSpec(
            "qr", (A_QR.copy(),), options=OPTS,
            checkpoint_dir=str(tmp_path / "ck"), name="ckpt-qr",
        )
        calls = {"n": 0}

        def crash_once_runner(job_spec, config, concurrency):
            calls["n"] += 1
            if calls["n"] > 1:
                return run_job(job_spec, config, concurrency)
            # attempt 1: checkpoint under the job's capped config (same
            # fingerprint run_job derives), then die ~2/3 through
            probe = FaultyExecutor(config)
            pa = HostMatrix.from_array(A_QR.copy())
            pr = HostMatrix.zeros(N, N)
            ooc_recursive_qr(probe, pa, pr, job_spec.options)

            a = HostMatrix.from_array(
                np.array(job_spec.operands[0], dtype=np.float32, order="C",
                         copy=True)
            )
            r = HostMatrix.zeros(a.cols, a.cols)
            ex = FaultyExecutor(config, fail_at=2 * probe.op_counter // 3)
            fp = run_fingerprint(
                "qr", job_spec.method, a.rows, a.cols, config,
                job_spec.options,
            )
            session = CheckpointSession(
                CheckpointManager(
                    CheckpointConfig(job_spec.checkpoint_dir), fingerprint=fp
                ),
                ex, {"a": a, "r": r},
            )
            ooc_recursive_qr(ex, a, r, job_spec.options, checkpoint=session)
            raise AssertionError("injected fault did not fire")

        svc = FactorService(
            _config(), n_workers=1, cache=None, max_retries=2,
            backoff_base_s=0.001, runner=crash_once_runner,
        )
        try:
            job_cfg = svc.job_config(spec)
            handle = svc.submit(spec)
            result = handle.result(timeout=120)
            snap = svc.snapshot_metrics()
        finally:
            svc.close()

        assert handle.attempts == 2
        assert result.ckpt is not None
        assert result.ckpt.resumes == 1
        assert result.ckpt.steps_skipped >= 1
        assert snap["job_retries"]["value"] == 1
        assert snap["resumes"]["value"] >= 1
        assert snap["steps_skipped_on_resume"]["value"] >= 1
        assert snap["checkpoints_written"]["value"] >= 1

        # the resumed job's output matches a direct uncheckpointed run
        # under the identical capped config, bit for bit
        direct = ooc_qr(
            A_QR.copy(), method=spec.method, config=job_cfg, options=OPTS
        )
        np.testing.assert_array_equal(result.arrays["q"], direct.q)
        np.testing.assert_array_equal(result.arrays["r"], direct.r)


class TestApiRefusals:
    """Typed checkpoint errors surface through the public entry points."""

    def test_ooc_qr_full_roundtrip_and_config_mismatch(self, tmp_path):
        ck = CheckpointConfig(tmp_path)
        first = ooc_qr(A_QR, config=_config(), options=OPTS, checkpoint=ck)
        assert first.ckpt is not None
        assert first.ckpt.checkpoints_written > 0

        # rerunning against the completed checkpoint skips every step
        second = ooc_qr(A_QR, config=_config(), options=OPTS, checkpoint=ck)
        assert second.ckpt.resumes == 1
        assert second.ckpt.steps_skipped >= first.ckpt.checkpoints_written
        np.testing.assert_array_equal(second.q, first.q)
        np.testing.assert_array_equal(second.r, first.r)

        # a different blocksize is a different run: typed refusal
        with pytest.raises(CheckpointError) as exc:
            ooc_qr(A_QR, config=_config(),
                   options=QrOptions(blocksize=32), checkpoint=ck)
        assert exc.value.reason == "config-mismatch"

    def test_ooc_qr_corrupt_manifest(self, tmp_path):
        ck = CheckpointConfig(tmp_path)
        ooc_qr(A_QR, config=_config(), options=OPTS, checkpoint=ck)
        (tmp_path / MANIFEST_NAME).write_text("{broken")
        with pytest.raises(CheckpointError) as exc:
            ooc_qr(A_QR, config=_config(), options=OPTS, checkpoint=ck)
        assert exc.value.reason == "corrupt-manifest"

    def test_checkpoint_requires_numeric_mode(self, tmp_path):
        with pytest.raises(ValidationError):
            ooc_qr((256, 256), mode="sim", config=_config(),
                   checkpoint=CheckpointConfig(tmp_path))
