"""Tests for the public ooc_gemm entry point."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import ShapeError, ValidationError
from repro.hw.gemm import Precision
from repro.ooc.api import ooc_gemm
from tests.conftest import make_tiny_spec


@pytest.fixture
def config():
    return SystemConfig(gpu=make_tiny_spec(1 << 20), precision=Precision.FP32)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestInnerForm:
    def test_matches_numpy(self, config, rng):
        a = rng.standard_normal((300, 64)).astype(np.float32)
        b = rng.standard_normal((300, 80)).astype(np.float32)
        res = ooc_gemm(a, b, trans_a=True, config=config, blocksize=64)
        assert res.strategy == "ksplit-inner"
        np.testing.assert_allclose(res.c, a.T @ b, rtol=1e-4, atol=1e-4)
        assert res.movement.h2d_bytes >= (a.nbytes + b.nbytes)

    def test_simulated(self, config):
        res = ooc_gemm((2048, 128), (2048, 96), trans_a=True,
                       config=config, blocksize=256)
        assert res.c is None
        assert res.makespan > 0
        assert res.achieved_tflops > 0

    def test_alpha_beta_restricted(self, config):
        with pytest.raises(ValidationError):
            ooc_gemm((8, 4), (8, 4), trans_a=True, alpha=2.0, config=config)

    def test_k_mismatch(self, config):
        with pytest.raises(ShapeError):
            ooc_gemm((8, 4), (9, 4), trans_a=True, config=config)


class TestOuterForm:
    def test_update_matches_numpy(self, config, rng):
        a = rng.standard_normal((120, 24)).astype(np.float32)
        b = rng.standard_normal((24, 40)).astype(np.float32)
        c = rng.standard_normal((120, 40)).astype(np.float32)
        expected = c - a @ b
        res = ooc_gemm(a, b, alpha=-1.0, beta=1.0, c=c.copy(),
                       config=config, blocksize=32)
        assert res.strategy == "rowstream-outer"
        np.testing.assert_allclose(res.c, expected, rtol=1e-4, atol=1e-4)

    def test_plain_product(self, config, rng):
        a = rng.standard_normal((96, 16)).astype(np.float32)
        b = rng.standard_normal((16, 48)).astype(np.float32)
        res = ooc_gemm(a, b, config=config, blocksize=32)
        np.testing.assert_allclose(res.c, a @ b, rtol=1e-4, atol=1e-4)

    def test_update_requires_c(self, config):
        with pytest.raises(ValidationError, match="requires the C"):
            ooc_gemm((8, 4), (4, 8), alpha=-1.0, beta=1.0, config=config)

    def test_simulated_paper_scale(self):
        # Table 2's recursive outer product shape, via the public API
        res = ooc_gemm((131072, 65536), (65536, 65536), alpha=-1.0, beta=1.0,
                       c=(131072, 65536), blocksize=8192)
        assert res.makespan == pytest.approx(12.0, rel=0.25)

    def test_inner_dims_checked(self, config):
        with pytest.raises(ShapeError):
            ooc_gemm((8, 4), (5, 8), config=config)


class TestValidation:
    def test_mixed_backing_rejected(self, config, rng):
        a = rng.standard_normal((8, 4)).astype(np.float32)
        with pytest.raises(ValidationError):
            ooc_gemm(a, (4, 8), config=config)

    def test_numeric_mode_on_shapes_rejected(self, config):
        with pytest.raises(ValidationError):
            ooc_gemm((8, 4), (4, 8), mode="numeric", config=config)

    def test_device_memory_cap(self, rng):
        a = rng.standard_normal((256, 64)).astype(np.float32)
        b = rng.standard_normal((256, 64)).astype(np.float32)
        res = ooc_gemm(a, b, trans_a=True, blocksize=32,
                       device_memory=256 << 10)
        assert res.config.gpu.mem_bytes == 256 << 10
        # default precision is fp16 TensorCore emulation: loose check
        np.testing.assert_allclose(res.c, a.T @ b, rtol=5e-2, atol=5e-2)
